"""E1 — Fig. 1: Lift vs Halide vs RISE(cbuf+rot) on the Cortex A53.

The paper's headline figure: the existing LIFT compiler performs poorly,
while RISE with the added optimizations outperforms Halide by ~1.3x.
Expected shape: Lift >> Halide; RISE(cbuf+rot) ~0.7-0.8 of Halide.
"""

from repro.bench import fig1_normalized


def test_fig1_normalized(benchmark, programs, say):
    result = benchmark.pedantic(fig1_normalized, rounds=3, iterations=1)
    say("\nFig. 1 — normalized runtime on Cortex A53 (Halide = 1.0):")
    for name, value in result.items():
        bar = "#" * int(round(value * 20))
        say(f"  {name:<18} {value:5.2f}  {bar}")
    assert result["Halide"] == 1.0
    # Lift clearly slower than Halide (paper: 'performs poorly')
    assert result["Lift"] > 1.8
    # RISE with cbuf+rot outperforms Halide by ~1.3x (paper: 1.3x on A53)
    assert 0.6 < result["RISE (cbuf+rot)"] < 0.9
