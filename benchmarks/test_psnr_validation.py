"""E3 — output-consistency validation (paper section V-A).

Every implementation is *executed* (Python backend of the generated
imperative code) on the same image and compared against the Halide
reference output, exactly as the paper does.  Four of five outputs match
Halide bit-for-bit (PSNR = inf).  The cbuf+rot version re-associates the
convolution sums (separation), so it differs at float32 rounding level:
~140 dB on unit-range synthetic data, i.e. relative error ~1e-7.  The
paper reports ">170 dB" for 8-bit photographs under its peak convention;
the meaningful invariant — differences at rounding level only — holds,
so this test asserts PSNR > 120 dB and prints the paper threshold.
"""

import math

from repro.bench import validate_outputs
from repro.image.metrics import PSNR_THRESHOLD_DB


def test_psnr_validation(benchmark, say):
    rows = benchmark.pedantic(
        lambda: validate_outputs(height=36, width=36, chunk=32, vec=4),
        rounds=1,
        iterations=1,
    )
    say("\nOutput validation (36x36 input, vs Halide output):")
    say(f"{'implementation':<18} {'MSE':>12} {'PSNR (dB)':>12} {'vs numpy (dB)':>14}")
    for row in rows:
        psnr = "inf" if math.isinf(row.psnr_vs_halide_db) else f"{row.psnr_vs_halide_db:.1f}"
        psnr_np = "inf" if math.isinf(row.psnr_vs_numpy_db) else f"{row.psnr_vs_numpy_db:.1f}"
        say(f"{row.implementation:<18} {row.mse_vs_halide:>12.3e} {psnr:>12} {psnr_np:>14}")
    assert len(rows) == 5
    exact = sum(1 for row in rows if math.isinf(row.psnr_vs_halide_db))
    assert exact >= 4, "all but the re-associated cbuf+rot should match exactly"
    for row in rows:
        assert row.psnr_vs_halide_db > 120.0, row
        assert row.psnr_vs_numpy_db > 100.0, row
