"""Shared fixtures: compile every implementation once per session."""

import pytest

from repro.bench import compile_all, fig8_grid


@pytest.fixture(scope="session")
def programs():
    return compile_all()


@pytest.fixture(scope="session")
def fig8_cells(programs):
    return fig8_grid()


@pytest.fixture
def say(capsys):
    """Print reproduction tables to the real terminal (uncaptured), so the
    regenerated figures appear in `pytest benchmarks/ --benchmark-only`
    output (and in bench_output.txt)."""

    def _say(*parts):
        text = " ".join(str(p) for p in parts)
        with capsys.disabled():
            print(text)

    return _say
