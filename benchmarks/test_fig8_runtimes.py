"""E2 — Fig. 8: runtimes of all five implementations on every CPU/image.

Expected shape (paper section V-B):
* all three compilers outperform the OpenCV baseline on all processors;
* RISE clearly outperforms Lift;
* RISE (cbuf) is competitive with Halide;
* RISE (cbuf+rot) is the fastest in every cell.
"""

from repro.bench import format_fig8
from repro.bench.harness import IMPLEMENTATIONS


def _table(cells):
    table = {}
    for cell in cells:
        table.setdefault((cell.machine, cell.image), {})[cell.implementation] = (
            cell.runtime_ms
        )
    return table


def test_fig8_grid(benchmark, fig8_cells, say):
    benchmark.pedantic(lambda: _table(fig8_cells), rounds=5, iterations=1)
    say("\nFig. 8 — Harris runtimes (modeled, ms):")
    say(format_fig8(fig8_cells))
    table = _table(fig8_cells)
    assert len(table) == 8  # 4 CPUs x 2 images
    for key, values in table.items():
        # OpenCV slowest everywhere
        compilers = [v for n, v in values.items() if n != "OpenCV"]
        assert values["OpenCV"] > max(compilers), key
        # RISE clearly outperforms Lift
        assert values["Lift"] > 1.5 * values["RISE (cbuf)"], key
        # cbuf competitive with Halide (within 1.5x either way)
        ratio = values["RISE (cbuf)"] / values["Halide"]
        assert 0.6 < ratio < 1.5, (key, ratio)
        # cbuf+rot fastest overall
        others = [v for n, v in values.items() if n != "RISE (cbuf+rot)"]
        assert values["RISE (cbuf+rot)"] <= min(others) * 1.02, key
