"""E6 — ablation: contribution of each optimization strategy (Cortex A53).

Removing any of the studied optimizations should cost performance; the
full schedule is the fastest configuration.
"""

from repro.bench import run_ablation


def test_ablation(benchmark, say):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    say("\nAblation on Cortex A53 (small image, slowdown vs full schedule):")
    for row in rows:
        bar = "#" * min(60, int(round(row.slowdown_vs_full * 10)))
        say(f"  {row.variant:<24} {row.runtime_ms:8.1f} ms  {row.slowdown_vs_full:5.2f}x  {bar}")
    by_name = {r.variant: r for r in rows}
    full = by_name["full (cbuf+rot)"]
    assert full.slowdown_vs_full == 1.0
    # no ablated variant is faster ("no unrolling" ties: the backend
    # unrolls constant-size reductions regardless, as OpenCL compilers do)
    for name, row in by_name.items():
        assert row.slowdown_vs_full >= 1.0, name
    assert by_name["no multi-threading"].slowdown_vs_full > 1.4
    assert by_name["no vectorization"].slowdown_vs_full > 1.2
    assert by_name["no rotation (cbuf)"].slowdown_vs_full > 1.2
    # circular buffering is the make-or-break optimization: without it the
    # fused stages recompute their producers per consumed line
    assert by_name["no circular buffering"].slowdown_vs_full > 3.0
