"""E7 — Fig. 7: naive vs optimized vector loads for unaligned stencils.

The optimized scheme (two aligned loads + shuffles, used by the RISE
codegen and register rotation) should beat three mostly-unaligned loads
on every modeled CPU — most on the in-order cores with expensive
unaligned accesses.
"""

from repro.perf import ALL_MACHINES, vector_load_costs


def test_vector_load_strategies(benchmark, say):
    def run():
        return [vector_load_costs(m) for m in ALL_MACHINES]

    costs = benchmark.pedantic(run, rounds=10, iterations=1)
    say("\nFig. 7 — stencil vector-load cost per output vector (cycles):")
    say(f"{'CPU':<11} {'naive':>8} {'optimized':>10} {'speedup':>9}")
    for c in costs:
        say(f"{c.machine:<11} {c.naive_cycles:>8.2f} {c.optimized_cycles:>10.2f} {c.speedup:>8.2f}x")
    for c in costs:
        assert c.speedup > 1.0, c.machine
    by_name = {c.machine: c for c in costs}
    # in-order cores (A7, A53) benefit more than out-of-order (A15, A73)
    assert by_name["Cortex A7"].speedup > by_name["Cortex A15"].speedup
    assert by_name["Cortex A53"].speedup > by_name["Cortex A73"].speedup
