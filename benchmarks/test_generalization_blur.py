"""Beyond the case study: the paper argues its optimizations 'are
generalizable and applicable to other such compositions' (section III).
This bench applies the *unchanged* listing-5/listing-9 schedules to a
two-stage Gaussian blur chain and costs them on every modeled CPU."""

import pytest

from repro.codegen import compile_program
from repro.perf import ALL_MACHINES, estimate_runtime_ms
from repro.pipelines import blur_input_type, blur_pipeline
from repro.rise import Identifier
from repro.strategies import cbuf_rrot_version, cbuf_version, naive_version

SENV = {"img": blur_input_type()}


@pytest.fixture(scope="module")
def blur_programs():
    img = Identifier("img")
    programs = {}
    for make in (cbuf_version, cbuf_rrot_version):
        sched = make(SENV, chunk=32, vec=4)
        programs[sched.name] = compile_program(
            sched.apply(blur_pipeline(img)), SENV, sched.name.replace("-", "_")
        )
    return programs


def test_blur_generalization(benchmark, blur_programs, say):
    def run():
        sizes = {"n": 1536, "m": 2556}
        grid = {}
        for mach in ALL_MACHINES:
            grid[mach.name] = {
                name: estimate_runtime_ms(prog, sizes, mach, "opencl").runtime_ms
                for name, prog in blur_programs.items()
            }
        return grid

    grid = benchmark.pedantic(run, rounds=3, iterations=1)
    say("\nGeneralization: 2-stage Gaussian blur chain, unchanged schedules (ms):")
    say(f"{'CPU':<11} {'cbuf':>10} {'cbuf+rot':>10} {'speedup':>9}")
    for machine, times in grid.items():
        cbuf = times["rise-cbuf"]
        rot = times["rise-cbuf-rrot"]
        say(f"{machine:<11} {cbuf:>10.1f} {rot:>10.1f} {cbuf / rot:>8.2f}x")
    for machine, times in grid.items():
        # separation + rotation pays off on the blur chain too
        assert times["rise-cbuf-rrot"] < times["rise-cbuf"], machine
