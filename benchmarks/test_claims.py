"""E4/E5 — the in-text quantitative claims of section V-B.

* 'code ... outperforms OpenCV by up to 16x' — we expect the max speedup
  of the best RISE version over OpenCV in [6, 20];
* 'with convolution separation and register rotation, RISE always
  performs much better than without (almost 30% faster on average)' —
  mean cbuf/rot ratio in [1.2, 1.75];
* 'faster than the Halide reference in almost all cases by more than
  30%' / 'up to 1.4x better' — mean rot-vs-Halide >= 1.2, max in
  [1.25, 1.55].
"""

from repro.bench import claims


def test_section_vb_claims(benchmark, fig8_cells, say):
    values = benchmark.pedantic(lambda: claims(fig8_cells), rounds=3, iterations=1)
    say("\nSection V-B claims (paper -> measured):")
    say(f"  up to 16x vs OpenCV      -> {values['max_speedup_vs_opencv']:.1f}x max, "
          f"{values['mean_speedup_vs_opencv']:.1f}x mean")
    say(f"  ~30% rot over cbuf       -> {values['mean_rot_over_cbuf']:.2f}x mean")
    say(f"  >30%, up to 1.4x vs Halide -> {values['mean_rot_over_halide']:.2f}x mean, "
          f"{values['max_rot_over_halide']:.2f}x max")
    say(f"  Halide wins {values['halide_wins_cells']}/{values['total_cells']} cells")
    assert 6.0 <= values["max_speedup_vs_opencv"] <= 20.0
    assert 1.2 <= values["mean_rot_over_cbuf"] <= 1.75
    assert values["mean_rot_over_halide"] >= 1.2
    assert 1.25 <= values["max_rot_over_halide"] <= 1.55
