"""Rewrite-derivation tracing for the ELEVATE strategy language.

A :class:`TraceCollector` activated with :func:`tracing` receives one
callback per :class:`~repro.elevate.core.Strategy` invocation: rule name,
expression path, success/failure (with the failure reason), sub-expression
sizes and wall time.  Leaf rewrite *rules* (built with the ``rule``
decorator) additionally produce :class:`RuleEvent` records; combinator
calls are aggregated into per-strategy counters so arbitrarily deep
compositions stay cheap to trace.

    with tracing() as t:
        schedule.apply(program)
    print(t.summary_text())

Tracing is off by default: when no collector is active, the only overhead
in ``Strategy.__call__`` is a single context-variable read, and rewrite
results are bit-identical to untraced runs (asserted by the test suite).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Iterator, Optional

__all__ = ["RuleEvent", "TraceCollector", "tracing", "trace_active"]

_TRACE: ContextVar[Optional["TraceCollector"]] = ContextVar("repro_trace", default=None)

#: Default cap on retained per-call events; counters keep counting beyond it.
DEFAULT_MAX_EVENTS = 100_000


@dataclass
class RuleEvent:
    """One attempted application of a leaf rewrite rule.

    ``path`` locates the sub-expression the rule was tried on: a tuple of
    traversal steps from the root, where an ``int`` is a child index and
    the strings ``"body"``/``"fun"``/``"arg"`` are the position-restricted
    traversals.  ``before_nodes``/``after_nodes`` are RISE node counts of
    the rewritten sub-expression (``None`` for failed attempts, which are
    not sized to keep failure-heavy traversals cheap).
    """

    rule: str
    path: tuple
    succeeded: bool
    reason: str = ""
    before_nodes: Optional[int] = None
    after_nodes: Optional[int] = None
    wall_ms: float = 0.0

    def to_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "rule": self.rule,
            "path": list(self.path),
            "succeeded": self.succeeded,
            "reason": self.reason,
            "before_nodes": self.before_nodes,
            "after_nodes": self.after_nodes,
            "wall_ms": round(self.wall_ms, 4),
        }


class TraceCollector:
    """Accumulates rewrite-trace data for one traced region.

    Attributes:
        events: retained :class:`RuleEvent` records (capped at
            ``max_events``; counters keep counting past the cap).
        rule_fired / rule_failed: per-rule success/failure counts.
        strategy_calls: call counts for *every* strategy, combinators
            included.
        iterations: per-``repeat`` strategy, the list of iteration counts
            observed (one entry per completed ``repeat`` invocation);
            ``normalize`` shows up here through its inner ``repeat``.
    """

    def __init__(self, max_events: int = DEFAULT_MAX_EVENTS) -> None:
        self.events: list[RuleEvent] = []
        self.rule_fired: dict[str, int] = {}
        self.rule_failed: dict[str, int] = {}
        self.strategy_calls: dict[str, int] = {}
        self.iterations: dict[str, list[int]] = {}
        self.max_events = max_events
        self.dropped_events = 0
        self.total_rule_wall_ms = 0.0
        self._path: list = []

    # -- recording (called from repro.elevate.core) ----------------------

    def push(self, step) -> None:
        """Enter a child position during a traversal (int index or one of
        ``"body"``/``"fun"``/``"arg"``)."""
        self._path.append(step)

    def pop(self) -> None:
        """Leave the most recently entered child position."""
        self._path.pop()

    def current_path(self) -> tuple:
        """The traversal path from the root to the current sub-expression."""
        return tuple(self._path)

    def record_call(self, name: str, kind: str, succeeded: bool, reason: str,
                    wall_ms: float, before_nodes: Optional[int],
                    after_nodes: Optional[int]) -> None:
        """Record one strategy invocation (rule calls also get an event)."""
        self.strategy_calls[name] = self.strategy_calls.get(name, 0) + 1
        if kind != "rule":
            return
        table = self.rule_fired if succeeded else self.rule_failed
        table[name] = table.get(name, 0) + 1
        self.total_rule_wall_ms += wall_ms
        if len(self.events) >= self.max_events:
            self.dropped_events += 1
            return
        self.events.append(
            RuleEvent(
                rule=name,
                path=self.current_path(),
                succeeded=succeeded,
                reason=reason,
                before_nodes=before_nodes,
                after_nodes=after_nodes,
                wall_ms=wall_ms,
            )
        )

    def note_iterations(self, name: str, n: int) -> None:
        """Record that a ``repeat``-style strategy ran ``n`` iterations."""
        self.iterations.setdefault(name, []).append(n)

    # -- reading ---------------------------------------------------------

    def top_fired(self, k: int = 10) -> list[tuple[str, int]]:
        """The ``k`` most often successfully applied rules."""
        return sorted(self.rule_fired.items(), key=lambda kv: -kv[1])[:k]

    def top_failed(self, k: int = 10) -> list[tuple[str, int]]:
        """The ``k`` rules that failed to match most often."""
        return sorted(self.rule_failed.items(), key=lambda kv: -kv[1])[:k]

    def summary(self, k: int = 10) -> dict:
        """A JSON-ready digest: totals, top-K fired/failed rules, repeat
        iteration counts."""
        return {
            "rule_applications": sum(self.rule_fired.values()),
            "rule_failures": sum(self.rule_failed.values()),
            "strategy_invocations": sum(self.strategy_calls.values()),
            "distinct_rules": len(set(self.rule_fired) | set(self.rule_failed)),
            "rule_wall_ms": round(self.total_rule_wall_ms, 3),
            "events_retained": len(self.events),
            "events_dropped": self.dropped_events,
            "top_fired": [{"rule": r, "count": c} for r, c in self.top_fired(k)],
            "top_failed": [{"rule": r, "count": c} for r, c in self.top_failed(k)],
            "iterations": {
                name: {"calls": len(runs), "total": sum(runs), "max": max(runs)}
                for name, runs in sorted(self.iterations.items())
            },
        }

    def summary_text(self, k: int = 10) -> str:
        """Human-readable version of :meth:`summary`."""
        s = self.summary(k)
        lines = [
            f"rule applications: {s['rule_applications']}"
            f"  (failures: {s['rule_failures']},"
            f" strategies invoked: {s['strategy_invocations']})",
        ]
        if s["top_fired"]:
            lines.append("most-fired rules:")
            for row in s["top_fired"]:
                lines.append(f"  {row['rule']:<40} {row['count']:>7}")
        if s["top_failed"]:
            lines.append("most-failed rules:")
            for row in s["top_failed"]:
                lines.append(f"  {row['rule']:<40} {row['count']:>7}")
        if s["iterations"]:
            lines.append("repeat/normalize iterations:")
            for name, row in s["iterations"].items():
                lines.append(
                    f"  {name:<50} calls={row['calls']}"
                    f" total={row['total']} max={row['max']}"
                )
        return "\n".join(lines)


@contextmanager
def tracing(collector: TraceCollector | None = None) -> Iterator[TraceCollector]:
    """Activate rewrite tracing for the dynamic extent of the ``with``
    block; yields the (new or given) :class:`TraceCollector`."""
    t = collector if collector is not None else TraceCollector()
    token = _TRACE.set(t)
    try:
        yield t
    finally:
        _TRACE.reset(token)


def trace_active() -> TraceCollector | None:
    """The active trace collector, or ``None`` when tracing is off."""
    return _TRACE.get()


def timed_ms() -> float:
    """Monotonic wall clock in milliseconds (one place to swap clocks)."""
    return time.perf_counter() * 1e3
