"""The structured event log: a JSONL flight recorder for the serving path.

Spans measure *durations*; the event log records *decisions* — the
discrete things that happen to a request on its way through the serving
stack (admitted, queued, coalesced onto another build, expired at its
deadline, built, evicted, failed), each stamped with the request
context of :mod:`repro.observe.context`.  Metrics aggregate these away;
the event log is what lets ``tools/events.py`` answer "what exactly
happened to request ``req-1f3a...``" after the fact.

Two storage modes, both always-on and cheap:

* a **ring buffer** (bounded deque) keeps the last :data:`DEFAULT_CAPACITY`
  events in memory — the flight recorder that can be dumped on a crash
  (:meth:`EventLog.dump_jsonl`);
* an optional **file sink** appends every event as one JSON line,
  rotating ``path`` -> ``path.1`` when it exceeds ``max_bytes`` so a
  long-running server cannot fill the disk.

Records are schema-versioned (:data:`EVENTS_SCHEMA`): a sink file opens
with one header line ``{"schema": ...}`` and every record carries
``ts`` (epoch seconds), ``seq`` (process-monotonic), ``event`` (dotted
name), ``request_id``/``trace_id`` (from the active context), ``key``
(cache key, when known) and free-form ``attrs``.  By convention
``attrs["outcome"]`` classifies terminal events (``"ok"``, ``"error"``,
``"rejected"``, ``"deadline"``, ``"salvaged"``); anything not ``ok``/
absent counts as a failure for :meth:`EventLog.failures`.

    from repro.observe.events import emit, event_log

    emit("serve.admit", queue_depth=3)
    emit("engine.build.done", key=key, outcome="ok", build_ms=812.4)
    event_log().dump_jsonl("events.jsonl")
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque
from pathlib import Path
from typing import Iterable, Iterator, Mapping, Optional

from repro.observe.context import current_request

__all__ = [
    "EVENTS_SCHEMA",
    "DEFAULT_CAPACITY",
    "DEFAULT_MAX_BYTES",
    "EventLog",
    "event_log",
    "reset_event_log",
    "emit",
    "read_events",
    "is_failure",
    "request_timeline",
]

#: Schema identifier written as the first line of every sink file.
EVENTS_SCHEMA = "repro.observe.events/v1"

#: Ring-buffer depth of the in-memory flight recorder.
DEFAULT_CAPACITY = 2048

#: Default file-sink rotation threshold (bytes).
DEFAULT_MAX_BYTES = 4 * 1024 * 1024


def is_failure(record: Mapping) -> bool:
    """Whether a record's ``outcome`` classifies it as a failure.

    Terminal events carry ``attrs["outcome"]``; anything other than
    ``"ok"`` (or no outcome at all — purely informational events) is a
    failure: ``error``, ``rejected``, ``deadline``, ...
    """
    outcome = (record.get("attrs") or {}).get("outcome")
    return outcome is not None and outcome != "ok"


class EventLog:
    """A thread-safe ring buffer of structured events + optional file sink.

    One instance is process-global (see :func:`event_log`); tests create
    private instances.  Every mutation happens under one lock — events
    are small dicts and emission is rare relative to span/metric writes,
    so contention is negligible.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        path: Path | str | None = None,
        max_bytes: int = DEFAULT_MAX_BYTES,
    ):
        self._lock = threading.Lock()
        self._ring: deque[dict] = deque(maxlen=max(1, int(capacity)))
        self._seq = itertools.count()
        self._path: Path | None = None
        self._fh = None
        self._max_bytes = max_bytes
        if path is not None:
            self.open_sink(path, max_bytes=max_bytes)

    # -- recording -------------------------------------------------------

    def emit(
        self,
        event: str,
        key: str | None = None,
        request_id: str | None = None,
        trace_id: str | None = None,
        **attrs,
    ) -> dict:
        """Record one event; returns the stored record.

        ``request_id``/``trace_id`` default to the active
        :class:`~repro.observe.context.RequestContext` — emitters inside
        the engine or server never pass them explicitly.
        """
        if request_id is None or trace_id is None:
            ctx = current_request()
            if ctx is not None:
                request_id = request_id if request_id is not None else ctx.request_id
                trace_id = trace_id if trace_id is not None else ctx.trace_id
        record = {
            "ts": round(time.time(), 6),
            "seq": next(self._seq),
            "event": event,
            "request_id": request_id,
            "trace_id": trace_id,
            "key": key,
            "attrs": {k: _jsonable(v) for k, v in attrs.items()},
        }
        with self._lock:
            self._ring.append(record)
            if self._fh is not None:
                self._write_locked(record)
        return record

    def _write_locked(self, record: dict) -> None:
        # caller holds self._lock
        line = json.dumps(record, sort_keys=True) + "\n"
        try:
            if self._fh.tell() + len(line) > self._max_bytes:
                self._rotate_locked()
            self._fh.write(line)
            self._fh.flush()
        except (OSError, ValueError):
            # a broken sink must never take the serving path down
            self._close_sink_locked()

    def _rotate_locked(self) -> None:
        # caller holds self._lock; path -> path.1 (one rotation level)
        self._fh.close()
        rotated = self._path.with_name(self._path.name + ".1")
        os.replace(self._path, rotated)
        self._fh = open(self._path, "a", encoding="utf-8")
        self._write_header_locked()

    def _write_header_locked(self) -> None:
        self._fh.write(json.dumps({"schema": EVENTS_SCHEMA}) + "\n")
        self._fh.flush()

    # -- the file sink ---------------------------------------------------

    @property
    def sink_path(self) -> Path | None:
        """The active sink file, or ``None`` when only the ring records."""
        return self._path

    def open_sink(
        self, path: Path | str, max_bytes: int = DEFAULT_MAX_BYTES
    ) -> Path:
        """Start appending every future event to ``path`` (JSONL).

        A fresh file gets the schema header line; an existing file is
        appended to (the header is only written at creation).  Returns
        the sink path.
        """
        with self._lock:
            self._close_sink_locked()
            self._path = Path(path)
            self._max_bytes = int(max_bytes)
            self._path.parent.mkdir(parents=True, exist_ok=True)
            fresh = not self._path.exists() or self._path.stat().st_size == 0
            self._fh = open(self._path, "a", encoding="utf-8")
            if fresh:
                self._write_header_locked()
        return self._path

    def close_sink(self) -> None:
        """Stop writing to the sink file (the ring keeps recording)."""
        with self._lock:
            self._close_sink_locked()

    def _close_sink_locked(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
        self._fh = None
        self._path = None

    # -- reading ---------------------------------------------------------

    def events(self) -> list[dict]:
        """A snapshot of the ring buffer, oldest first."""
        with self._lock:
            return list(self._ring)

    def failures(self, n: int | None = None) -> list[dict]:
        """The last ``n`` failure records (all of them when ``n`` is None)."""
        bad = [r for r in self.events() if is_failure(r)]
        return bad if n is None else bad[-n:]

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def to_jsonl(self) -> str:
        """The ring serialized as JSONL (header line first)."""
        lines = [json.dumps({"schema": EVENTS_SCHEMA})]
        lines.extend(json.dumps(r, sort_keys=True) for r in self.events())
        return "\n".join(lines) + "\n"

    def dump_jsonl(self, path: Path | str) -> Path:
        """Write the ring to ``path`` (the crash/flight-recorder dump)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_jsonl(), encoding="utf-8")
        return path

    def clear(self) -> None:
        """Drop every buffered event (tests, fresh runs)."""
        with self._lock:
            self._ring.clear()


# ---------------------------------------------------------------------------
# The process-wide default log + write helper
# ---------------------------------------------------------------------------

_LOG = EventLog()


def event_log() -> EventLog:
    """The process-wide default event log (always on, ring only by default)."""
    return _LOG


def reset_event_log() -> None:
    """Clear the default log and detach its sink (tests, fresh runs)."""
    _LOG.close_sink()
    _LOG.clear()


def emit(event: str, key: str | None = None, **attrs) -> dict:
    """Record one event on the default log (request context auto-stamped)."""
    return _LOG.emit(event, key=key, **attrs)


# ---------------------------------------------------------------------------
# Reading event files back (tools/events.py, tests)
# ---------------------------------------------------------------------------


def read_events(path: Path | str) -> Iterator[dict]:
    """Yield the records of a JSONL event file, skipping header lines.

    Raises ``ValueError`` when a header line declares an unknown schema
    (a file from a future incompatible version must fail loudly, not
    parse as garbage).
    """
    path = Path(path)
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from None
            if "schema" in record and "event" not in record:
                if record["schema"] != EVENTS_SCHEMA:
                    raise ValueError(
                        f"{path}:{lineno}: unknown event schema "
                        f"{record['schema']!r} (expected {EVENTS_SCHEMA!r})"
                    )
                continue
            yield record


def request_timeline(records: Iterable[Mapping], request_id: str) -> list[dict]:
    """The ordered event timeline of one request.

    Filters ``records`` to the request, orders by ``(ts, seq)`` and adds
    a ``dt_ms`` field (milliseconds since the request's first event) —
    the reconstruction ``tools/events.py --timeline`` prints.
    """
    mine = sorted(
        (dict(r) for r in records if r.get("request_id") == request_id),
        key=lambda r: (r.get("ts", 0.0), r.get("seq", 0)),
    )
    if not mine:
        return []
    t0 = mine[0].get("ts", 0.0)
    for r in mine:
        r["dt_ms"] = round((r.get("ts", t0) - t0) * 1e3, 3)
    return mine


def _jsonable(value):
    """Coerce one attr into a JSON-safe value."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)
