"""Compile-phase profiling: per-program timers and node-count deltas.

The code generator brackets its phases (``typecheck``, ``lower``,
``vectorize``, ``fold``, ``cse``, ``cprint``) with :func:`phase`; a
:class:`ProfileCollector` activated with :func:`profiling` groups them
into one :class:`CompileProfile` per compiled program, so each schedule
(``cbuf``, ``cbuf+rot``, …) yields a compile profile:

    with profiling() as prof:
        compile_program(low, senv, "rise_cbuf")
    print(prof.render_text())

Repeated phases with the same name (e.g. one ``vectorize`` per strip
loop) accumulate wall time and a call count.  When no collector is
active, :func:`phase` returns a shared no-op context manager.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Iterator, Optional

__all__ = [
    "PhaseStat",
    "CompileProfile",
    "ProfileCollector",
    "profiling",
    "profile_active",
    "compile_profile",
    "phase",
]

_PROFILE: ContextVar[Optional["ProfileCollector"]] = ContextVar(
    "repro_profile", default=None
)


@dataclass
class PhaseStat:
    """Accumulated cost of one named compile phase within one program."""

    name: str
    wall_ms: float = 0.0
    calls: int = 0
    meta: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-ready representation."""
        out: dict = {
            "name": self.name,
            "wall_ms": round(self.wall_ms, 3),
            "calls": self.calls,
        }
        out.update(self.meta)
        return out


class CompileProfile:
    """All phase statistics for one compiled program, in first-seen order."""

    def __init__(self, program: str) -> None:
        self.program = program
        self.phases: dict[str, PhaseStat] = {}
        self.meta: dict = {}

    def add(self, name: str, wall_ms: float, meta: dict) -> None:
        """Fold one timed phase run into the accumulated statistics."""
        stat = self.phases.get(name)
        if stat is None:
            stat = self.phases[name] = PhaseStat(name)
        stat.wall_ms += wall_ms
        stat.calls += 1
        stat.meta.update(meta)

    def total_ms(self) -> float:
        """Total wall time across all phases (nested phases double-count:
        ``vectorize`` runs inside ``lower``)."""
        return sum(p.wall_ms for p in self.phases.values())

    def to_dict(self) -> dict:
        """JSON-ready representation."""
        out: dict = {
            "program": self.program,
            "phases": [p.to_dict() for p in self.phases.values()],
        }
        out.update(self.meta)
        return out


class ProfileCollector:
    """Groups :class:`CompileProfile` objects by program name."""

    def __init__(self) -> None:
        self.profiles: dict[str, CompileProfile] = {}
        self._current: list[CompileProfile] = []

    def profile(self, program: str) -> CompileProfile:
        """Get or create the profile for ``program``."""
        prof = self.profiles.get(program)
        if prof is None:
            prof = self.profiles[program] = CompileProfile(program)
        return prof

    def current(self) -> CompileProfile:
        """The profile phases currently attach to (``"(unattributed)"``
        when :func:`phase` runs outside any :func:`compile_profile`)."""
        if self._current:
            return self._current[-1]
        return self.profile("(unattributed)")

    def to_dict(self) -> list[dict]:
        """JSON-ready list of all program profiles."""
        return [p.to_dict() for p in self.profiles.values()]

    def render_text(self) -> str:
        """Human-readable table of phase timings per program."""
        lines: list[str] = []
        for prof in self.profiles.values():
            lines.append(f"{prof.program}  (total {prof.total_ms():.1f} ms)")
            for stat in prof.phases.values():
                meta = (
                    "  " + " ".join(f"{k}={v}" for k, v in stat.meta.items())
                    if stat.meta
                    else ""
                )
                lines.append(
                    f"  {stat.name:<12} {stat.wall_ms:9.3f} ms"
                    f"  x{stat.calls:<5}{meta}"
                )
        return "\n".join(lines)


@contextmanager
def profiling(collector: ProfileCollector | None = None) -> Iterator[ProfileCollector]:
    """Activate compile-phase profiling; yields the collector."""
    c = collector if collector is not None else ProfileCollector()
    token = _PROFILE.set(c)
    try:
        yield c
    finally:
        _PROFILE.reset(token)


def profile_active() -> ProfileCollector | None:
    """The active profile collector, or ``None`` when profiling is off."""
    return _PROFILE.get()


class _NullPhase:
    """Shared do-nothing context manager used when profiling is off."""

    def __enter__(self) -> dict:
        return {}

    def __exit__(self, *exc) -> bool:
        return False


_NULL_PHASE = _NullPhase()


class _Phase:
    """Times one phase run and folds it into the current program profile;
    the object yielded by ``with`` is a dict for extra metadata (node
    counts before/after, emitted bytes, …)."""

    def __init__(self, collector: ProfileCollector, name: str, meta: dict):
        self._collector = collector
        self._name = name
        self._meta = meta

    def __enter__(self) -> dict:
        self._start = time.perf_counter()
        return self._meta

    def __exit__(self, *exc) -> bool:
        wall_ms = (time.perf_counter() - self._start) * 1e3
        self._collector.current().add(self._name, wall_ms, self._meta)
        return False


def phase(name: str, **meta):
    """Bracket one compile phase; a no-op context manager when profiling
    is inactive, otherwise yields a metadata dict merged on exit."""
    c = _PROFILE.get()
    if c is None:
        return _NULL_PHASE
    return _Phase(c, name, dict(meta))


class _ProgramScope:
    """Context manager pushing one program's profile as the target of
    nested :func:`phase` calls."""

    def __init__(self, collector: ProfileCollector, program: str):
        self._collector = collector
        self._program = program

    def __enter__(self) -> CompileProfile:
        prof = self._collector.profile(self._program)
        self._collector._current.append(prof)
        return prof

    def __exit__(self, *exc) -> bool:
        self._collector._current.pop()
        return False


class _NullScope:
    """Shared do-nothing scope used when profiling is off."""

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SCOPE = _NullScope()


def compile_profile(program: str):
    """Attach nested :func:`phase` calls to ``program``'s profile (no-op
    context manager when profiling is inactive)."""
    c = _PROFILE.get()
    if c is None:
        return _NULL_SCOPE
    return _ProgramScope(c, program)
