"""Derivation pretty-printing: the paper's listing-style step-by-step view.

Koehler & Steuwer present the Harris optimization as a numbered sequence
of strategy applications (listings 5–9), each taking the program one step
closer to low-level RISE.  :func:`format_derivation` reproduces that view
from the ``(step name, program)`` pairs returned by
``Schedule.apply_traced``, annotated with node counts and — when a
:class:`~repro.observe.trace.TraceCollector` is supplied — the number of
rule rewrites each step performed.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.rise.expr import Expr
from repro.rise.pprint import pretty
from repro.rise.traverse import count_nodes

from repro.observe.trace import TraceCollector

__all__ = ["format_derivation", "derivation_stats"]


def _truncate(text: str, width: int) -> str:
    if len(text) <= width:
        return text
    return text[: width - 3] + "..."


def format_derivation(
    steps: Sequence[tuple[str, Expr]],
    collector: Optional[TraceCollector] = None,
    show_expr: bool = True,
    width: int = 110,
) -> str:
    """Render a derivation as numbered steps.

    ``steps`` is the list produced by ``Schedule.apply_traced`` (the first
    entry is the input program).  Each line shows the strategy name, the
    program's node count and its delta; with ``show_expr`` the (truncated)
    pretty-printed program follows each step, mirroring the paper's
    listings.
    """
    lines: list[str] = []
    prev_nodes: Optional[int] = None
    for index, (name, program) in enumerate(steps):
        nodes = count_nodes(program)
        delta = "" if prev_nodes is None else f"{nodes - prev_nodes:+6d}"
        lines.append(f"{index:>3}  {name:<52} nodes={nodes:>6} {delta}")
        if show_expr:
            lines.append(f"     {_truncate(pretty(program), width)}")
        prev_nodes = nodes
    if collector is not None:
        lines.append("")
        lines.append(collector.summary_text())
    return "\n".join(lines)


def derivation_stats(
    steps: Sequence[tuple[str, Expr]],
    collector: Optional[TraceCollector] = None,
) -> dict:
    """JSON-ready digest of a derivation: per-step node counts plus (when
    traced) the rule-application summary."""
    rows = []
    prev: Optional[int] = None
    for index, (name, program) in enumerate(steps):
        nodes = count_nodes(program)
        rows.append(
            {
                "step": index,
                "strategy": name,
                "nodes": nodes,
                "delta": None if prev is None else nodes - prev,
            }
        )
        prev = nodes
    out: dict = {"steps": rows}
    if collector is not None:
        out["rules"] = collector.summary()
    return out
