"""Spans and counters: the base layer of the observability subsystem.

An :class:`Observer` collects a tree of timed *spans* and a flat table of
named *counters*.  Activation is scoped with the :func:`observing` context
manager; instrumented code calls the module-level :func:`span` and
:func:`count` helpers, which are no-ops (one context-variable read) when
no observer is active — so instrumentation can stay in hot paths
permanently without a measurable cost when disabled.

    with observing() as obs:
        with span("compile", program="harris"):
            ...
            count("kernels")
    print(obs.render_text())
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Iterator, Optional

__all__ = ["Span", "Observer", "observing", "active", "span", "count"]

_OBSERVER: ContextVar[Optional["Observer"]] = ContextVar("repro_observer", default=None)


@dataclass
class Span:
    """One timed region: a name, a wall-clock duration, free-form metadata
    and the spans that were opened while it was active."""

    name: str
    duration_ms: float = 0.0
    meta: dict = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    def to_dict(self) -> dict:
        """JSON-ready representation (durations rounded to microseconds)."""
        out: dict = {"name": self.name, "duration_ms": round(self.duration_ms, 3)}
        if self.meta:
            out["meta"] = dict(self.meta)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out


class Observer:
    """Collects spans (nested) and counters (flat) for one observed region."""

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self.counters: dict[str, int] = {}
        self._stack: list[Span] = []

    # -- recording -------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        """Increment the named counter by ``n``."""
        self.counters[name] = self.counters.get(name, 0) + n

    @contextmanager
    def span(self, name: str, **meta) -> Iterator[Span]:
        """Open a timed span; nested ``span`` calls become its children."""
        entry = Span(name, meta=dict(meta))
        parent = self._stack[-1] if self._stack else None
        (parent.children if parent else self.spans).append(entry)
        self._stack.append(entry)
        start = time.perf_counter()
        try:
            yield entry
        finally:
            entry.duration_ms = (time.perf_counter() - start) * 1e3
            self._stack.pop()

    # -- reading ---------------------------------------------------------

    def flat_spans(self) -> list[Span]:
        """All spans in pre-order, flattened out of the tree."""
        out: list[Span] = []

        def visit(s: Span) -> None:
            out.append(s)
            for c in s.children:
                visit(c)

        for s in self.spans:
            visit(s)
        return out

    def to_dict(self) -> dict:
        """JSON-ready representation of all spans and counters."""
        return {
            "spans": [s.to_dict() for s in self.spans],
            "counters": dict(sorted(self.counters.items())),
        }

    def render_text(self) -> str:
        """Human-readable span tree plus the counter table."""
        lines: list[str] = []

        def visit(s: Span, depth: int) -> None:
            meta = (
                "  " + " ".join(f"{k}={v}" for k, v in s.meta.items())
                if s.meta
                else ""
            )
            lines.append(f"{'  ' * depth}{s.name:<32} {s.duration_ms:9.3f} ms{meta}")
            for c in s.children:
                visit(c, depth + 1)

        for s in self.spans:
            visit(s, 0)
        if self.counters:
            lines.append("counters:")
            for name, value in sorted(self.counters.items()):
                lines.append(f"  {name:<34} {value}")
        return "\n".join(lines)


@contextmanager
def observing(observer: Observer | None = None) -> Iterator[Observer]:
    """Activate an observer for the dynamic extent of the ``with`` block."""
    obs = observer if observer is not None else Observer()
    token = _OBSERVER.set(obs)
    try:
        yield obs
    finally:
        _OBSERVER.reset(token)


def active() -> Observer | None:
    """The currently active observer, or ``None`` when observation is off."""
    return _OBSERVER.get()


class _NullSpan:
    """Shared do-nothing span context used when no observer is active."""

    def __enter__(self) -> Span:
        return Span("<disabled>")

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


def span(name: str, **meta):
    """Module-level :meth:`Observer.span`; a no-op context manager when no
    observer is active."""
    obs = _OBSERVER.get()
    if obs is None:
        return _NULL_SPAN
    return obs.span(name, **meta)


def count(name: str, n: int = 1) -> None:
    """Module-level :meth:`Observer.count`; a no-op when inactive."""
    obs = _OBSERVER.get()
    if obs is not None:
        obs.count(name, n)
