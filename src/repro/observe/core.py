"""Spans and counters: the base layer of the observability subsystem.

An :class:`Observer` collects a tree of timed *spans* and a flat table of
named *counters*.  Activation is scoped with the :func:`observing` context
manager; instrumented code calls the module-level :func:`span` and
:func:`count` helpers, which are no-ops (one context-variable read) when
no observer is active — so instrumentation can stay in hot paths
permanently without a measurable cost when disabled.

    with observing() as obs:
        with span("compile", program="harris"):
            ...
            count("kernels")
    print(obs.render_text())

Both the active observer *and* the current span position live in
:mod:`contextvars` context variables, so concurrent recording is safe by
construction: a thread pool that submits work through
``contextvars.copy_context()`` (as :class:`repro.engine.batch.
BatchRunner` does) hands every worker the observer and the span it
should attach under, each worker nests its own spans independently, and
an instance lock serializes the actual tree/counter mutations.  Spans
record their start time (one shared monotonic clock) and recording
thread id, which is what lets :mod:`repro.observe.traceevent` lay them
out on a multi-thread timeline.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.observe.context import current_request, new_span_id

__all__ = [
    "Span",
    "Observer",
    "observing",
    "active",
    "span",
    "count",
    "current_span",
]

_OBSERVER: ContextVar[Optional["Observer"]] = ContextVar("repro_observer", default=None)

#: The innermost open span of the current context, tagged with the
#: observer that owns it (so nested ``observing()`` blocks never attach
#: spans to an outer observer's tree).  Copied by ``copy_context`` —
#: that is how pool workers inherit their parent span.
_CURRENT_SPAN: ContextVar[Optional[tuple["Observer", "Span"]]] = ContextVar(
    "repro_current_span", default=None
)


@dataclass
class Span:
    """One timed region: a name, a wall-clock duration, free-form metadata
    and the spans that were opened while it was active.

    ``t0`` is the opening timestamp on the shared ``perf_counter`` clock
    (0.0 for synthesized spans with no measured start) and ``tid`` the
    recording thread's identifier — both feed the Chrome trace exporter
    and neither appears in :meth:`to_dict`, keeping the report schema
    unchanged.

    ``span_id``/``parent_id``/``request_id`` are the correlation fields
    of :mod:`repro.observe.context`: assigned at recording time when a
    request scope is active, empty otherwise.  They *do* appear in
    :meth:`to_dict` (when set) — that is their point: a span in a run
    report or event log names the exact request it belongs to.
    """

    name: str
    duration_ms: float = 0.0
    meta: dict = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)
    t0: float = 0.0
    tid: int = 0
    span_id: str = ""
    parent_id: str = ""
    request_id: str = ""

    def to_dict(self) -> dict:
        """JSON-ready representation (durations rounded to microseconds)."""
        out: dict = {"name": self.name, "duration_ms": round(self.duration_ms, 3)}
        if self.span_id:
            out["span_id"] = self.span_id
        if self.parent_id:
            out["parent_id"] = self.parent_id
        if self.request_id:
            out["request_id"] = self.request_id
        if self.meta:
            out["meta"] = dict(self.meta)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out


class Observer:
    """Collects spans (nested) and counters (flat) for one observed region.

    Safe for concurrent recording: counter increments and span-tree
    mutations are guarded by an instance lock, and the *position* in the
    tree is context-local (see :data:`_CURRENT_SPAN`), so parallel
    workers each extend their own branch.
    """

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self.counters: dict[str, int] = {}
        self._lock = threading.Lock()

    # -- recording -------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        """Increment the named counter by ``n`` (atomic under the lock)."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + n

    @contextmanager
    def span(self, name: str, **meta) -> Iterator[Span]:
        """Open a timed span; nested ``span`` calls become its children.

        The parent is the innermost span open *in this context* — worker
        threads entered via ``copy_context`` therefore nest under the
        span that was open when their work item was submitted.  The span
        is stamped with a fresh ``span_id``, its parent's id, and the
        active request context's ``request_id`` (if any).
        """
        entry = Span(name, meta=dict(meta), tid=threading.get_ident())
        self.attach(entry)
        token = _CURRENT_SPAN.set((self, entry))
        entry.t0 = time.perf_counter()
        try:
            yield entry
        finally:
            entry.duration_ms = (time.perf_counter() - entry.t0) * 1e3
            _CURRENT_SPAN.reset(token)

    def attach(self, entry: Span) -> None:
        """Insert an externally built span at the current tree position.

        Used for spans whose timing happened elsewhere (process-pool
        workers report wall times back to the parent, which attaches one
        pre-timed span per item).  The attaching context stamps the
        correlation fields: the parent's ``span_id`` and the active
        request's ``request_id`` — which is how synthetic pool-worker
        spans stay attributable to their request even though the worker
        process never saw the context variable.
        """
        current = _CURRENT_SPAN.get()
        parent = current[1] if current is not None and current[0] is self else None
        if not entry.span_id:
            entry.span_id = new_span_id()
        if parent is not None and not entry.parent_id:
            entry.parent_id = parent.span_id
        if not entry.request_id:
            ctx = current_request()
            if ctx is not None:
                entry.request_id = ctx.request_id
        with self._lock:
            (parent.children if parent is not None else self.spans).append(entry)

    # -- reading ---------------------------------------------------------

    def flat_spans(self) -> list[Span]:
        """All spans in pre-order, flattened out of the tree."""
        out: list[Span] = []

        def visit(s: Span) -> None:
            out.append(s)
            for c in s.children:
                visit(c)

        for s in list(self.spans):
            visit(s)
        return out

    def to_dict(self) -> dict:
        """JSON-ready representation of all spans and counters."""
        return {
            "spans": [s.to_dict() for s in self.spans],
            "counters": dict(sorted(self.counters.items())),
        }

    def render_text(self) -> str:
        """Human-readable span tree plus the counter table."""
        lines: list[str] = []

        def visit(s: Span, depth: int) -> None:
            meta = (
                "  " + " ".join(f"{k}={v}" for k, v in s.meta.items())
                if s.meta
                else ""
            )
            lines.append(f"{'  ' * depth}{s.name:<32} {s.duration_ms:9.3f} ms{meta}")
            for c in s.children:
                visit(c, depth + 1)

        for s in self.spans:
            visit(s, 0)
        if self.counters:
            lines.append("counters:")
            for name, value in sorted(self.counters.items()):
                lines.append(f"  {name:<34} {value}")
        return "\n".join(lines)


@contextmanager
def observing(observer: Observer | None = None) -> Iterator[Observer]:
    """Activate an observer for the dynamic extent of the ``with`` block."""
    obs = observer if observer is not None else Observer()
    token = _OBSERVER.set(obs)
    try:
        yield obs
    finally:
        _OBSERVER.reset(token)


def active() -> Observer | None:
    """The currently active observer, or ``None`` when observation is off."""
    return _OBSERVER.get()


def current_span() -> Span | None:
    """The innermost open span of the *active* observer, or ``None``.

    Used by the engine's singleflight layer: the coalescing leader
    publishes its open ``engine.compile`` span's identity on the flight
    so follower spans can link to it.
    """
    obs = _OBSERVER.get()
    current = _CURRENT_SPAN.get()
    if obs is None or current is None or current[0] is not obs:
        return None
    return current[1]


class _NullSpan:
    """Shared do-nothing span context used when no observer is active."""

    def __enter__(self) -> Span:
        return Span("<disabled>")

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


def span(name: str, **meta):
    """Module-level :meth:`Observer.span`; a no-op context manager when no
    observer is active."""
    obs = _OBSERVER.get()
    if obs is None:
        return _NULL_SPAN
    return obs.span(name, **meta)


def count(name: str, n: int = 1) -> None:
    """Module-level :meth:`Observer.count`; a no-op when inactive."""
    obs = _OBSERVER.get()
    if obs is not None:
        obs.count(name, n)
