"""Process-wide runtime metrics: counters, gauges and streaming histograms.

Where :mod:`repro.observe.core` records one *scoped* view (spans and
counters for the dynamic extent of a ``with observing()`` block), this
module is the *always-on* telemetry layer: a thread-safe
:class:`MetricsRegistry` that any subsystem can write to at any time and
any consumer can snapshot — the engine cache, ``CompiledPipeline.run``,
the batch executor and the ctypes bridge are instrumented permanently.
One event costs a dict lookup plus a few float operations, so the
instrumentation stays in the hot paths.

Three instrument kinds:

* :class:`Counter` — a monotonically increasing total (cache hits,
  executed kernels, artifact bytes written);
* :class:`Gauge` — a last-written value (memory-cache entries, last
  batch throughput);
* :class:`Histogram` — a streaming latency distribution with exact
  ``count``/``sum``/``min``/``max`` and reservoir-sampled p50/p90/p99
  quantiles.

Instruments are identified by a dotted name plus optional labels::

    from repro.observe.metrics import inc, observe_value, registry

    inc("engine.cache.hit", tier="memory")
    observe_value("engine.run.latency_ms", 1.84, backend="c")
    print(registry().render_prometheus())

Exporters: :meth:`MetricsRegistry.snapshot` (JSON-ready dict, embedded
in run reports) and :meth:`MetricsRegistry.render_prometheus`
(Prometheus text exposition format; histograms render as summaries).
"""

from __future__ import annotations

import json
import random
import threading
import zlib
from typing import Iterator, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "reset_registry",
    "inc",
    "set_gauge",
    "observe_value",
]

#: Default reservoir capacity of a :class:`Histogram` (samples kept for
#: quantile estimation; count/sum/min/max stay exact beyond it).
DEFAULT_RESERVOIR = 1024

#: The quantiles reported by snapshots and the Prometheus exporter.
QUANTILES = (0.5, 0.9, 0.99)


def _label_key(labels: Mapping[str, object]) -> tuple[tuple[str, str], ...]:
    """Canonical, hashable identity of a label set."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A thread-safe monotonically increasing counter."""

    kind = "counter"

    def __init__(self, name: str, labels: Mapping[str, str] | None = None):
        self.name = name
        self.labels = dict(labels or {})
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, n: float = 1.0) -> None:
        """Add ``n`` (must be non-negative) to the total."""
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (n={n})")
        with self._lock:
            self._value += n

    @property
    def value(self) -> float:
        """The current total."""
        with self._lock:
            return self._value

    def snapshot(self) -> dict:
        """JSON-ready representation."""
        return {"value": self.value}


class Gauge:
    """A thread-safe instantaneous value (last write wins)."""

    kind = "gauge"

    def __init__(self, name: str, labels: Mapping[str, str] | None = None):
        self.name = name
        self.labels = dict(labels or {})
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        """Adjust the current value by ``delta`` (gauges may decrease)."""
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        """The last recorded value."""
        with self._lock:
            return self._value

    def snapshot(self) -> dict:
        """JSON-ready representation."""
        return {"value": self.value}


class Histogram:
    """A streaming distribution: exact count/sum/min/max plus quantiles
    estimated over a bounded reservoir (Vitter's algorithm R).

    The reservoir keeps every observation until ``reservoir`` samples,
    then replaces entries with decreasing probability, so quantiles stay
    representative of the whole stream at O(1) memory.  The replacement
    RNG is seeded from the metric name: identical runs produce identical
    snapshots.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: Mapping[str, str] | None = None,
        reservoir: int = DEFAULT_RESERVOIR,
    ):
        self.name = name
        self.labels = dict(labels or {})
        self._lock = threading.Lock()
        self._cap = max(1, int(reservoir))
        self._rng = random.Random(zlib.crc32(name.encode("utf-8")))
        self._samples: list[float] = []
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        with self._lock:
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            if len(self._samples) < self._cap:
                self._samples.append(value)
            else:
                j = self._rng.randrange(self.count)
                if j < self._cap:
                    self._samples[j] = value

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (0..1) of the sampled distribution, by
        linear interpolation; ``nan`` when empty."""
        with self._lock:
            samples = sorted(self._samples)
        if not samples:
            return float("nan")
        if len(samples) == 1:
            return samples[0]
        pos = q * (len(samples) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(samples) - 1)
        frac = pos - lo
        return samples[lo] * (1.0 - frac) + samples[hi] * frac

    def snapshot(self) -> dict:
        """JSON-ready summary: count, sum, min/max, mean and quantiles."""
        with self._lock:
            count, total = self.count, self.sum
            lo, hi = self.min, self.max
        if count == 0:
            return {"count": 0, "sum": 0.0}
        out = {
            "count": count,
            "sum": round(total, 6),
            "min": round(lo, 6),
            "max": round(hi, 6),
            "mean": round(total / count, 6),
        }
        for q in QUANTILES:
            out[f"p{int(q * 100)}"] = round(self.quantile(q), 6)
        return out


class MetricsRegistry:
    """A process-wide, thread-safe table of named instruments.

    Instruments are created on first use and identified by
    ``(name, labels)``; asking for an existing name with a different
    instrument kind raises.  The registry itself only locks around
    creation and iteration — each instrument carries its own lock, so
    concurrent writers on different metrics never contend.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[tuple[str, tuple[tuple[str, str], ...]], object] = {}

    # -- instrument access ----------------------------------------------

    def _get(self, cls, name: str, labels: Mapping[str, object], **kwargs):
        key = (name, _label_key(labels))
        with self._lock:
            inst = self._instruments.get(key)
            if inst is None:
                inst = cls(name, dict(_label_key(labels)), **kwargs)
                self._instruments[key] = inst
            elif not isinstance(inst, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {inst.kind}, "
                    f"not {cls.kind}"
                )
            return inst

    def counter(self, name: str, **labels) -> Counter:
        """The named counter, created on first use."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        """The named gauge, created on first use."""
        return self._get(Gauge, name, labels)

    def histogram(
        self, name: str, reservoir: int = DEFAULT_RESERVOIR, **labels
    ) -> Histogram:
        """The named histogram, created on first use."""
        return self._get(Histogram, name, labels, reservoir=reservoir)

    def __iter__(self) -> Iterator:
        """All registered instruments, sorted by (name, labels)."""
        with self._lock:
            items = sorted(self._instruments.items())
        return iter(inst for _, inst in items)

    def __len__(self) -> int:
        with self._lock:
            return len(self._instruments)

    def reset(self) -> None:
        """Drop every instrument (tests and fresh bench runs)."""
        with self._lock:
            self._instruments.clear()

    # -- exporters -------------------------------------------------------

    def snapshot(self) -> dict:
        """All instruments as one JSON-ready document, grouped by kind.

        Keys are ``name`` or ``name{k=v,...}`` when the instrument has
        labels; the document round-trips through ``json``.
        """
        out: dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        for inst in self:
            label = _format_labels(inst.labels)
            key = f"{inst.name}{label}"
            snap = inst.snapshot()
            if isinstance(inst, Counter):
                out["counters"][key] = snap["value"]
            elif isinstance(inst, Gauge):
                out["gauges"][key] = snap["value"]
            else:
                out["histograms"][key] = snap
        return out

    def to_json(self, indent: int = 2) -> str:
        """The snapshot serialized as JSON text."""
        return json.dumps(self.snapshot(), indent=indent)

    def render_prometheus(self, prefix: str = "repro") -> str:
        """The registry in Prometheus text exposition format.

        Counters render as ``<prefix>_<name>_total``, gauges as plain
        values and histograms as summaries (``quantile`` labels plus
        ``_count``/``_sum`` series).  Dots and dashes in metric names
        become underscores.
        """
        lines: list[str] = []
        typed: set[str] = set()
        for inst in self:
            base = _prom_name(prefix, inst.name)
            labels = dict(inst.labels)
            if isinstance(inst, Counter):
                name = f"{base}_total"
                if name not in typed:
                    lines.append(f"# TYPE {name} counter")
                    typed.add(name)
                lines.append(f"{name}{_prom_labels(labels)} {_prom_num(inst.value)}")
            elif isinstance(inst, Gauge):
                if base not in typed:
                    lines.append(f"# TYPE {base} gauge")
                    typed.add(base)
                lines.append(f"{base}{_prom_labels(labels)} {_prom_num(inst.value)}")
            else:
                if base not in typed:
                    lines.append(f"# TYPE {base} summary")
                    typed.add(base)
                for q in QUANTILES:
                    qlabels = dict(labels, quantile=repr(q))
                    lines.append(
                        f"{base}{_prom_labels(qlabels)} {_prom_num(inst.quantile(q))}"
                    )
                lines.append(f"{base}_count{_prom_labels(labels)} {inst.count}")
                lines.append(f"{base}_sum{_prom_labels(labels)} {_prom_num(inst.sum)}")
        return "\n".join(lines) + ("\n" if lines else "")


def _format_labels(labels: Mapping[str, str]) -> str:
    """Snapshot key suffix: ``{k=v,...}`` sorted, or empty."""
    if not labels:
        return ""
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def _prom_name(prefix: str, name: str) -> str:
    """A Prometheus-legal metric name: prefixed, dots/dashes -> ``_``."""
    cleaned = "".join(c if (c.isalnum() or c == "_") else "_" for c in name)
    return f"{prefix}_{cleaned}" if prefix else cleaned


def _prom_labels(labels: Mapping[str, str]) -> str:
    """A Prometheus label block ``{k="v",...}`` sorted, or empty."""
    if not labels:
        return ""

    def esc(v: str) -> str:
        return str(v).replace("\\", "\\\\").replace('"', '\\"')

    inner = ",".join(f'{k}="{esc(v)}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def _prom_num(value: float) -> str:
    """A compact number literal (integers lose the trailing ``.0``)."""
    if value != value:  # NaN
        return "NaN"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


# ---------------------------------------------------------------------------
# The process-wide default registry + write helpers
# ---------------------------------------------------------------------------

_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide default registry (always on, never replaced)."""
    return _REGISTRY


def reset_registry() -> None:
    """Clear the process-wide registry (tests, fresh bench runs)."""
    _REGISTRY.reset()


def inc(name: str, n: float = 1.0, **labels) -> None:
    """Increment a counter on the default registry."""
    _REGISTRY.counter(name, **labels).inc(n)


def set_gauge(name: str, value: float, **labels) -> None:
    """Set a gauge on the default registry."""
    _REGISTRY.gauge(name, **labels).set(value)


def observe_value(name: str, value: float, **labels) -> None:
    """Record one histogram observation on the default registry."""
    _REGISTRY.histogram(name, **labels).observe(value)
