"""Service-level objectives over the serve metrics: burn rates and gates.

An :class:`Objective` states what "good" means for the serving path —
either **availability** (the fraction of admitted-or-rejected requests
that complete without a rejection, deadline, or error) or **latency**
(the fraction of compiles finishing under a threshold).  This module
evaluates those objectives against a
:meth:`~repro.observe.metrics.MetricsRegistry.snapshot` document and
reports the classic SRE *error-budget burn rate*::

    burn = error_rate / (1 - target)

Burn 0 means no budget spent, burn 1 means errors are arriving exactly
at the budgeted rate, burn > 1 means the budget is being exhausted —
that is the gate condition ``tools/bench_compare.py --gate-slo`` applies
to the serve metrics embedded in ``BENCH_trajectory.json`` samples.

Latency objectives only have quantile summaries to work with (the
registry keeps p50/p90/p99 + min/max, not full histograms), so the
fraction of requests over the threshold is *estimated* by linear
interpolation through the known quantile points — exact at the recorded
quantiles, conservative-ish in between, and entirely sufficient for a
CI gate whose thresholds sit far from the interesting percentiles.

Evaluations are JSON documents (:data:`SLO_SCHEMA`) and can be mirrored
into the live registry as ``slo.*`` gauges (:func:`record_slo_gauges`)
so the Prometheus exposition and metrics snapshots carry the budget
state alongside the raw series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.observe.metrics import set_gauge

__all__ = [
    "SLO_SCHEMA",
    "Objective",
    "DEFAULT_OBJECTIVES",
    "parse_metric_key",
    "counter_total",
    "histograms_matching",
    "fraction_over_threshold",
    "evaluate_slo",
    "record_slo_gauges",
    "gate_slo",
]

#: Schema identifier of one SLO evaluation document.
SLO_SCHEMA = "repro.observe.slo/v1"


@dataclass(frozen=True)
class Objective:
    """One service-level objective over the serve metrics.

    ``kind`` selects the evaluator: ``"availability"`` counts request
    outcomes (rejected / deadline-exceeded / failed are bad), and
    ``"latency"`` estimates the fraction of ``serve.compile_ms``
    observations above ``threshold_ms``.  ``target`` is the good
    fraction promised (0.99 = "99% of requests are good"); the error
    budget is ``1 - target``.
    """

    name: str
    kind: str
    target: float
    threshold_ms: float | None = None
    description: str = ""

    def __post_init__(self):
        """Validate the objective shape eagerly."""
        if self.kind not in ("availability", "latency"):
            raise ValueError(f"unknown objective kind {self.kind!r}")
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"target must be in (0, 1), got {self.target}")
        if self.kind == "latency" and self.threshold_ms is None:
            raise ValueError("latency objectives need threshold_ms")


#: The serving path's default objectives.  The latency threshold sits
#: above a cold C-backend JIT (p99 ≈ 33s on CI hardware) on purpose:
#: cold compiles are expected, *slow* cold compiles are the regression.
DEFAULT_OBJECTIVES: tuple[Objective, ...] = (
    Objective(
        name="serve-availability",
        kind="availability",
        target=0.99,
        description="99% of submissions complete without rejection, "
        "deadline expiry, or error",
    ),
    Objective(
        name="serve-latency",
        kind="latency",
        target=0.95,
        threshold_ms=60_000.0,
        description="95% of compiles (cold JIT included) finish within 60s",
    ),
)


def parse_metric_key(key: str) -> tuple[str, dict[str, str]]:
    """Split a snapshot key ``name{k=v,...}`` into ``(name, labels)``."""
    if "{" not in key:
        return key, {}
    name, _, rest = key.partition("{")
    labels: dict[str, str] = {}
    for part in rest.rstrip("}").split(","):
        if not part:
            continue
        k, _, v = part.partition("=")
        labels[k] = v
    return name, labels


def counter_total(
    snapshot: Mapping, name: str, **label_filter: str
) -> float:
    """Sum all counter series named ``name`` whose labels match the filter."""
    total = 0.0
    for key, value in (snapshot.get("counters") or {}).items():
        base, labels = parse_metric_key(key)
        if base != name:
            continue
        if all(labels.get(k) == str(v) for k, v in label_filter.items()):
            total += float(value)
    return total


def histograms_matching(
    snapshot: Mapping, name: str, **label_filter: str
) -> list[dict]:
    """All histogram summaries named ``name`` whose labels match the filter."""
    out: list[dict] = []
    for key, hist in (snapshot.get("histograms") or {}).items():
        base, labels = parse_metric_key(key)
        if base != name:
            continue
        if all(labels.get(k) == str(v) for k, v in label_filter.items()):
            out.append(dict(hist))
    return out


def fraction_over_threshold(hist: Mapping, threshold_ms: float) -> float:
    """Estimated fraction of a histogram's observations above the threshold.

    The snapshot only keeps quantile points, so the CDF is linearly
    interpolated through ``(min, 0) (p50, .5) (p90, .9) (p99, .99)
    (max, 1)``; values outside ``[min, max]`` clamp to 0/1.  Empty
    histograms contribute nothing (fraction 0).
    """
    count = int(hist.get("count", 0))
    if count == 0:
        return 0.0
    points: list[tuple[float, float]] = []
    for key, cdf in (("min", 0.0), ("p50", 0.5), ("p90", 0.9), ("p99", 0.99), ("max", 1.0)):
        value = hist.get(key)
        if value is not None:
            points.append((float(value), cdf))
    if not points:
        return 0.0
    # the points are CDF samples; make x monotonically non-decreasing
    points.sort(key=lambda p: (p[0], p[1]))
    if threshold_ms < points[0][0]:
        return 1.0
    if threshold_ms >= points[-1][0]:
        return 0.0
    for (x0, c0), (x1, c1) in zip(points, points[1:]):
        if x0 <= threshold_ms < x1:
            frac = 0.0 if x1 == x0 else (threshold_ms - x0) / (x1 - x0)
            cdf = c0 + frac * (c1 - c0)
            return max(0.0, min(1.0, 1.0 - cdf))
    return 0.0


def _evaluate_one(objective: Objective, snapshot: Mapping) -> dict:
    """Evaluate one objective against a metrics snapshot."""
    if objective.kind == "availability":
        admitted = counter_total(snapshot, "serve.requests")
        rejected = counter_total(snapshot, "serve.rejected")
        total = admitted + rejected
        bad = (
            rejected
            + counter_total(snapshot, "serve.deadline_exceeded")
            + counter_total(snapshot, "serve.failed")
        )
    else:
        total = 0.0
        bad = 0.0
        for hist in histograms_matching(snapshot, "serve.compile_ms"):
            count = float(hist.get("count", 0))
            total += count
            bad += count * fraction_over_threshold(hist, objective.threshold_ms)
    error_rate = (bad / total) if total > 0 else 0.0
    budget = 1.0 - objective.target
    burn = (error_rate / budget) if budget > 0 else 0.0
    return {
        "name": objective.name,
        "kind": objective.kind,
        "target": objective.target,
        "threshold_ms": objective.threshold_ms,
        "total": round(total, 6),
        "bad": round(bad, 6),
        "error_rate": round(error_rate, 6),
        "burn_rate": round(burn, 6),
        "budget_remaining": round(1.0 - burn, 6),
        "description": objective.description,
    }


def evaluate_slo(
    snapshot: Mapping, objectives: Sequence[Objective] = DEFAULT_OBJECTIVES
) -> dict:
    """Evaluate every objective against one metrics snapshot.

    Returns a schema-versioned document — ``objectives`` is a list of
    per-objective results (counts, error rate, burn rate, remaining
    budget fraction).  A snapshot with no serve traffic at all evaluates
    to burn 0 everywhere: no traffic spends no budget.
    """
    return {
        "schema": SLO_SCHEMA,
        "objectives": [_evaluate_one(o, snapshot) for o in objectives],
    }


def record_slo_gauges(evaluation: Mapping) -> None:
    """Mirror an SLO evaluation into the live registry as ``slo.*`` gauges.

    After this, :meth:`~repro.observe.metrics.MetricsRegistry.snapshot`
    and the Prometheus exposition carry ``slo.burn_rate`` /
    ``slo.error_rate`` / ``slo.budget_remaining`` per objective.
    """
    for obj in evaluation.get("objectives", []):
        name = obj["name"]
        set_gauge("slo.burn_rate", obj["burn_rate"], objective=name)
        set_gauge("slo.error_rate", obj["error_rate"], objective=name)
        set_gauge("slo.budget_remaining", obj["budget_remaining"], objective=name)


def gate_slo(
    trajectory: Mapping,
    objectives: Sequence[Objective] = DEFAULT_OBJECTIVES,
    max_burn: float = 1.0,
) -> tuple[list[dict], dict]:
    """The CI gate: burn rates of the newest serve-bearing sample.

    Scans ``trajectory["samples"]`` newest-first for the first sample
    whose embedded ``metrics`` snapshot contains serve counters,
    evaluates the objectives against it, and returns ``(violations,
    info)`` where violations are the objective results with
    ``burn_rate > max_burn``.  A trajectory with no serve traffic gates
    clean (nothing to judge is not a failure).
    """
    samples = list(trajectory.get("samples", []))
    for sample in reversed(samples):
        snapshot = sample.get("metrics") or {}
        if counter_total(snapshot, "serve.requests") or counter_total(
            snapshot, "serve.rejected"
        ):
            evaluation = evaluate_slo(snapshot, objectives)
            violations = [
                o for o in evaluation["objectives"] if o["burn_rate"] > max_burn
            ]
            info = {
                "sample_sha": sample.get("git_sha", "unknown"),
                "max_burn": max_burn,
                "objectives": evaluation["objectives"],
            }
            return violations, info
    return [], {"sample_sha": None, "max_burn": max_burn, "objectives": []}
