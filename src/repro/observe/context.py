"""Request correlation: one ``request_id``/``trace_id`` per served compile.

The metrics registry can say *p99 compile latency is 32s* without being
able to say *which request* — coalesced followers, deadline-expired
builds and AOT warm hits are indistinguishable in a process-global
histogram.  This module is the missing join key: a
:class:`RequestContext` carried in a :mod:`contextvars` context variable
so that every span (:mod:`repro.observe.core`) and every structured
event (:mod:`repro.observe.events`) recorded while serving one request
carries the same ``request_id``, no matter which thread, pool worker or
backend it was recorded on.

Propagation is by construction, not by plumbing arguments around:

* the asyncio server captures ``contextvars.copy_context()`` at
  admission and runs the engine call inside it, so its worker threads
  see the submitting request's context (and the active observer);
* :class:`~repro.engine.batch.BatchRunner` already submits thread-pool
  items through ``copy_context()`` — the request context rides along;
* process-pool items cannot share a context variable, so their
  pre-timed spans are stamped at :meth:`~repro.observe.core.Observer.
  attach` time in the parent, which *does* hold the context.

Usage::

    with request_scope(request_id=req.request_id) as ctx:
        ...   # every span()/count()/emit() here carries ctx.request_id

:func:`ensure_request` is the idempotent variant used by library entry
points (``Engine.compile_request``, ``CompiledPipeline.run``): it
activates a scope only when none is active, so a server-assigned
context is never clobbered by the layers below it.
"""

from __future__ import annotations

import uuid
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Iterator, Optional

__all__ = [
    "RequestContext",
    "new_request_id",
    "new_trace_id",
    "new_span_id",
    "current_request",
    "request_scope",
    "ensure_request",
]

_REQUEST: ContextVar[Optional["RequestContext"]] = ContextVar(
    "repro_request_context", default=None
)


def new_request_id() -> str:
    """A fresh globally unique request identifier (``req-`` + 12 hex)."""
    return f"req-{uuid.uuid4().hex[:12]}"


def new_trace_id() -> str:
    """A fresh trace identifier (16 hex chars, W3C-trace-context sized)."""
    return uuid.uuid4().hex[:16]


def new_span_id() -> str:
    """A fresh span identifier (8 hex chars, unique within a trace)."""
    return uuid.uuid4().hex[:8]


@dataclass(frozen=True)
class RequestContext:
    """The correlation identity of one in-flight request.

    ``request_id`` names the logical request (stable across retries of
    the same :class:`~repro.engine.request.CompileRequest` object);
    ``trace_id`` names one end-to-end span tree.  Both are free-form
    strings — the engine never parses them, only stamps them onto spans
    and events.
    """

    request_id: str
    trace_id: str

    def to_dict(self) -> dict:
        """JSON-ready representation."""
        return {"request_id": self.request_id, "trace_id": self.trace_id}


def current_request() -> Optional[RequestContext]:
    """The active request context, or ``None`` outside any request scope."""
    return _REQUEST.get()


@contextmanager
def request_scope(
    request_id: str | None = None, trace_id: str | None = None
) -> Iterator[RequestContext]:
    """Activate a request context for the dynamic extent of the block.

    Missing identifiers are generated; nesting replaces the outer
    context for the inner extent (a server handling request B inside a
    span of request A is a bug upstream, not something this layer hides).
    """
    ctx = RequestContext(
        request_id=request_id if request_id is not None else new_request_id(),
        trace_id=trace_id if trace_id is not None else new_trace_id(),
    )
    token = _REQUEST.set(ctx)
    try:
        yield ctx
    finally:
        _REQUEST.reset(token)


@contextmanager
def ensure_request(request_id: str | None = None) -> Iterator[RequestContext]:
    """The active context, or a new scope when none is active.

    Library entry points wrap themselves in this so direct calls are
    correlated too, while server-assigned contexts pass through
    untouched (the serve layer activates the scope first and owns the
    identifiers).
    """
    existing = _REQUEST.get()
    if existing is not None:
        yield existing
        return
    with request_scope(request_id=request_id) as ctx:
        yield ctx
