"""Observability: rewrite tracing, compile-phase profiling, run reports.

The paper's thesis is that optimizations are *inspectable, user-defined
rewrite sequences*; this package is the inspection half of that claim.
It provides four cooperating layers, all off by default and activated
with context managers (zero behavioural effect on rewriting, codegen or
execution when disabled):

* :mod:`repro.observe.core` — generic timed spans and counters
  (:func:`observing`, :func:`span`, :func:`count`);
* :mod:`repro.observe.trace` — per-rule rewrite tracing threaded through
  ``Strategy.__call__`` (:func:`tracing`, :class:`TraceCollector`);
* :mod:`repro.observe.profile` — per-phase codegen timers and node-count
  deltas (:func:`profiling`, :func:`phase`, :func:`compile_profile`);
* :mod:`repro.observe.report` / :mod:`repro.observe.derivation` — the
  JSON run report and the paper-style derivation pretty-printer.
"""

from repro.observe.core import Observer, Span, active, count, observing, span
from repro.observe.derivation import derivation_stats, format_derivation
from repro.observe.profile import (
    CompileProfile,
    PhaseStat,
    ProfileCollector,
    compile_profile,
    phase,
    profile_active,
    profiling,
)
from repro.observe.report import SCHEMA, RunReport
from repro.observe.trace import RuleEvent, TraceCollector, trace_active, tracing

__all__ = [
    "Observer",
    "Span",
    "active",
    "count",
    "observing",
    "span",
    "RuleEvent",
    "TraceCollector",
    "trace_active",
    "tracing",
    "CompileProfile",
    "PhaseStat",
    "ProfileCollector",
    "compile_profile",
    "phase",
    "profile_active",
    "profiling",
    "SCHEMA",
    "RunReport",
    "derivation_stats",
    "format_derivation",
]
