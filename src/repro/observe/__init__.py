"""Observability: rewrite tracing, compile-phase profiling, run reports.

The paper's thesis is that optimizations are *inspectable, user-defined
rewrite sequences*; this package is the inspection half of that claim.
It provides four cooperating layers, all off by default and activated
with context managers (zero behavioural effect on rewriting, codegen or
execution when disabled):

* :mod:`repro.observe.core` — generic timed spans and counters
  (:func:`observing`, :func:`span`, :func:`count`);
* :mod:`repro.observe.trace` — per-rule rewrite tracing threaded through
  ``Strategy.__call__`` (:func:`tracing`, :class:`TraceCollector`);
* :mod:`repro.observe.profile` — per-phase codegen timers and node-count
  deltas (:func:`profiling`, :func:`phase`, :func:`compile_profile`);
* :mod:`repro.observe.report` / :mod:`repro.observe.derivation` — the
  JSON run report and the paper-style derivation pretty-printer;
* :mod:`repro.observe.metrics` — the always-on process-wide metrics
  registry (counters, gauges, quantile histograms) with JSON and
  Prometheus exporters (:func:`metrics_registry`, :func:`inc`, ...);
* :mod:`repro.observe.traceevent` — Chrome trace-event export of any
  observer's span tree (:func:`save_trace`), loadable in Perfetto;
* :mod:`repro.observe.context` — per-request correlation
  (``request_id``/``trace_id`` context variables stamped onto every span
  and event recorded while serving one request);
* :mod:`repro.observe.events` — the structured JSONL event log
  (``repro.observe.events/v1``): a ring-buffered flight recorder plus an
  optional rotating file sink for serve/engine decision events;
* :mod:`repro.observe.slo` — service-level objectives over the serve
  metrics: availability/latency targets, error-budget burn rates, and
  the ``--gate-slo`` CI gate.
"""

from repro.observe.context import (
    RequestContext,
    current_request,
    ensure_request,
    new_request_id,
    new_span_id,
    new_trace_id,
    request_scope,
)
from repro.observe.core import (
    Observer,
    Span,
    active,
    count,
    current_span,
    observing,
    span,
)
from repro.observe.events import (
    EVENTS_SCHEMA,
    EventLog,
    emit,
    event_log,
    read_events,
    request_timeline,
    reset_event_log,
)
from repro.observe.slo import (
    DEFAULT_OBJECTIVES,
    Objective,
    SLO_SCHEMA,
    evaluate_slo,
    gate_slo,
    record_slo_gauges,
)
from repro.observe.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    inc,
    observe_value,
    registry as metrics_registry,
    reset_registry,
    set_gauge,
)
from repro.observe.traceevent import (
    save_trace,
    to_chrome_trace,
    trace_events,
    validate_chrome_trace,
)
from repro.observe.derivation import derivation_stats, format_derivation
from repro.observe.profile import (
    CompileProfile,
    PhaseStat,
    ProfileCollector,
    compile_profile,
    phase,
    profile_active,
    profiling,
)
from repro.observe.report import SCHEMA, RunReport
from repro.observe.trace import RuleEvent, TraceCollector, trace_active, tracing

__all__ = [
    "Observer",
    "Span",
    "active",
    "count",
    "observing",
    "span",
    "RuleEvent",
    "TraceCollector",
    "trace_active",
    "tracing",
    "CompileProfile",
    "PhaseStat",
    "ProfileCollector",
    "compile_profile",
    "phase",
    "profile_active",
    "profiling",
    "SCHEMA",
    "RunReport",
    "derivation_stats",
    "format_derivation",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metrics_registry",
    "reset_registry",
    "inc",
    "set_gauge",
    "observe_value",
    "save_trace",
    "to_chrome_trace",
    "trace_events",
    "validate_chrome_trace",
    "RequestContext",
    "current_request",
    "current_span",
    "ensure_request",
    "new_request_id",
    "new_span_id",
    "new_trace_id",
    "request_scope",
    "EVENTS_SCHEMA",
    "EventLog",
    "emit",
    "event_log",
    "read_events",
    "request_timeline",
    "reset_event_log",
    "SLO_SCHEMA",
    "Objective",
    "DEFAULT_OBJECTIVES",
    "evaluate_slo",
    "gate_slo",
    "record_slo_gauges",
]
