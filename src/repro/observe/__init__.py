"""Observability: rewrite tracing, compile-phase profiling, run reports.

The paper's thesis is that optimizations are *inspectable, user-defined
rewrite sequences*; this package is the inspection half of that claim.
It provides four cooperating layers, all off by default and activated
with context managers (zero behavioural effect on rewriting, codegen or
execution when disabled):

* :mod:`repro.observe.core` — generic timed spans and counters
  (:func:`observing`, :func:`span`, :func:`count`);
* :mod:`repro.observe.trace` — per-rule rewrite tracing threaded through
  ``Strategy.__call__`` (:func:`tracing`, :class:`TraceCollector`);
* :mod:`repro.observe.profile` — per-phase codegen timers and node-count
  deltas (:func:`profiling`, :func:`phase`, :func:`compile_profile`);
* :mod:`repro.observe.report` / :mod:`repro.observe.derivation` — the
  JSON run report and the paper-style derivation pretty-printer;
* :mod:`repro.observe.metrics` — the always-on process-wide metrics
  registry (counters, gauges, quantile histograms) with JSON and
  Prometheus exporters (:func:`metrics_registry`, :func:`inc`, ...);
* :mod:`repro.observe.traceevent` — Chrome trace-event export of any
  observer's span tree (:func:`save_trace`), loadable in Perfetto.
"""

from repro.observe.core import Observer, Span, active, count, observing, span
from repro.observe.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    inc,
    observe_value,
    registry as metrics_registry,
    reset_registry,
    set_gauge,
)
from repro.observe.traceevent import save_trace, to_chrome_trace, trace_events
from repro.observe.derivation import derivation_stats, format_derivation
from repro.observe.profile import (
    CompileProfile,
    PhaseStat,
    ProfileCollector,
    compile_profile,
    phase,
    profile_active,
    profiling,
)
from repro.observe.report import SCHEMA, RunReport
from repro.observe.trace import RuleEvent, TraceCollector, trace_active, tracing

__all__ = [
    "Observer",
    "Span",
    "active",
    "count",
    "observing",
    "span",
    "RuleEvent",
    "TraceCollector",
    "trace_active",
    "tracing",
    "CompileProfile",
    "PhaseStat",
    "ProfileCollector",
    "compile_profile",
    "phase",
    "profile_active",
    "profiling",
    "SCHEMA",
    "RunReport",
    "derivation_stats",
    "format_derivation",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metrics_registry",
    "reset_registry",
    "inc",
    "set_gauge",
    "observe_value",
    "save_trace",
    "to_chrome_trace",
    "trace_events",
]
