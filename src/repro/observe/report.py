"""Structured run reports: one JSON document per compile-and-run.

A :class:`RunReport` bundles everything the observability layer collects
about one end-to-end run — derivation statistics, per-phase compile
timings, execution counters and quality metrics — under a stable schema
(:data:`SCHEMA`), with JSON and text renderers.  The bench harness and
``examples/harris_pipeline.py --trace`` both emit it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

__all__ = ["SCHEMA", "RunReport"]

#: Schema identifier; bump the version when report keys change shape.
#: v2 added the ``engine`` section (compile-cache and batch-execution
#: statistics, itself schema-versioned as ``repro.engine.report/v1``).
SCHEMA = "repro.observe.report/v2"

#: The fixed top-level keys of every report, in serialization order.
TOP_LEVEL_KEYS = (
    "schema",
    "name",
    "environment",
    "derivation",
    "compile",
    "engine",
    "execution",
    "metrics",
)


@dataclass
class RunReport:
    """One run's worth of observability data.

    Sections:
        environment: run parameters (image sizes, chunk/vec factors, …).
        derivation: per-schedule rewrite statistics
            (see :func:`repro.observe.derivation.derivation_stats`).
        compile: per-program compile profiles
            (see :class:`repro.observe.profile.ProfileCollector`).
        engine: compile-cache hit/miss accounting and batch-execution
            throughput from :mod:`repro.engine` (schema-versioned).
        execution: executor counters and kernel timings.
        metrics: quality/performance numbers (PSNR, modeled runtimes).
    """

    name: str
    environment: dict = field(default_factory=dict)
    derivation: dict = field(default_factory=dict)
    compile: list = field(default_factory=list)
    engine: dict = field(default_factory=dict)
    execution: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """The full report as a JSON-ready dict with stable key order."""
        return {
            "schema": SCHEMA,
            "name": self.name,
            "environment": self.environment,
            "derivation": self.derivation,
            "compile": self.compile,
            "engine": self.engine,
            "execution": self.execution,
            "metrics": self.metrics,
        }

    def to_json(self, indent: int = 2) -> str:
        """The full report serialized as JSON."""
        return json.dumps(self.to_dict(), indent=indent, default=_jsonable)

    def save(self, path) -> None:
        """Write the JSON report to ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
            fh.write("\n")

    def render_text(self) -> str:
        """A compact human-readable summary of every populated section."""
        lines = [f"run report: {self.name}   ({SCHEMA})"]
        if self.environment:
            lines.append("environment:")
            for key, value in self.environment.items():
                lines.append(f"  {key} = {value}")
        for schedule, stats in self.derivation.items():
            rules = stats.get("rules", {})
            applications = rules.get("rule_applications")
            suffix = f"  rule applications={applications}" if applications is not None else ""
            lines.append(f"derivation [{schedule}]: {len(stats.get('steps', []))} steps{suffix}")
            for row in rules.get("top_fired", [])[:5]:
                lines.append(f"  fired {row['rule']:<44} {row['count']:>6}")
        for profile in self.compile:
            phases = profile.get("phases", [])
            total = sum(p.get("wall_ms", 0.0) for p in phases)
            lines.append(f"compile [{profile.get('program')}]: {total:.1f} ms")
            for p in phases:
                extra = " ".join(
                    f"{k}={v}" for k, v in p.items()
                    if k not in ("name", "wall_ms", "calls")
                )
                lines.append(
                    f"  {p['name']:<12} {p['wall_ms']:9.3f} ms  x{p['calls']:<4} {extra}"
                )
        if self.engine:
            lines.append("engine:")
            cache = self.engine.get("cache", {})
            if cache:
                lines.append(
                    f"  cache: {cache.get('hits', 0)} hits"
                    f" ({cache.get('memory_hits', 0)} memory,"
                    f" {cache.get('disk_hits', 0)} disk),"
                    f" {cache.get('misses', 0)} misses"
                )
            batch = self.engine.get("batch", {})
            if batch:
                lines.append(
                    f"  batch: {batch.get('items', 0)} items x"
                    f" {batch.get('workers', 0)} workers ({batch.get('mode', '?')}),"
                    f" {batch.get('throughput_items_per_s', 0)} items/s"
                )
        if self.execution:
            lines.append("execution:")
            for key, value in self.execution.items():
                lines.append(f"  {key} = {value}")
        if self.metrics:
            lines.append("metrics:")
            for key, value in self.metrics.items():
                lines.append(f"  {key} = {value}")
        return "\n".join(lines)


def _jsonable(value: Any):
    """Fallback serializer for numpy scalars and other oddballs."""
    for attr in ("item",):
        if hasattr(value, attr):
            return value.item()
    return str(value)
