"""Chrome trace-event export: span trees on a Perfetto-loadable timeline.

Converts the span tree of an :class:`~repro.observe.core.Observer` into
the Chrome trace-event JSON format (the ``{"traceEvents": [...]}``
object form) accepted by Perfetto (https://ui.perfetto.dev) and
``chrome://tracing``.  Every span becomes one *complete* event
(``"ph": "X"``) with microsecond start/duration, placed on the track of
the thread that recorded it — batch-executor workers therefore appear as
separate rows, which is what makes parallel batch runs visually
inspectable.  Spans with no measured start (pre-timed spans aggregated
from process-pool workers) are laid out sequentially on a synthetic
track so nothing is silently dropped.

    with observing() as obs:
        pipeline.run_batch(items, workers=4, mode="thread")
    save_trace(obs, "batch_trace.json")   # load in ui.perfetto.dev

Producers wired in: ``examples/harris_pipeline.py --trace-out`` and
``python -m repro.bench.harness run_report --trace-out``.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path

from repro.observe.core import Observer, Span

__all__ = ["trace_events", "to_chrome_trace", "save_trace", "validate_chrome_trace"]

#: Synthetic tid base for spans recorded without a thread id (pre-timed
#: spans re-materialized from process-pool workers).
SYNTHETIC_TID_BASE = 1_000_000


def trace_events(observer: Observer, pid: int | None = None) -> list[dict]:
    """The observer's spans as a flat list of Chrome trace events.

    Emits one complete (``"ph": "X"``) event per span with ``ts``/``dur``
    in microseconds relative to the earliest recorded span, plus
    ``"M"`` metadata events naming the process and each thread track.
    Counters are attached as one instant event so they survive into the
    trace file.
    """
    pid = pid if pid is not None else os.getpid()
    spans = observer.flat_spans()
    timed = [s for s in spans if s.t0 > 0.0]
    origin = min((s.t0 for s in timed), default=0.0)
    events: list[dict] = []
    synthetic_cursor = 0.0

    def emit(s: Span, parent: Span | None) -> None:
        nonlocal synthetic_cursor
        if s.t0 > 0.0:
            ts = (s.t0 - origin) * 1e6
            tid = s.tid or SYNTHETIC_TID_BASE
        elif parent is not None and parent.t0 > 0.0:
            # Pre-timed child (process-pool item): anchor at its parent's
            # start on a synthetic worker track.
            ts = (parent.t0 - origin) * 1e6 + synthetic_cursor
            synthetic_cursor += s.duration_ms * 1e3
            tid = SYNTHETIC_TID_BASE + int(s.meta.get("index", 0))
        else:
            ts = synthetic_cursor
            synthetic_cursor += s.duration_ms * 1e3
            tid = SYNTHETIC_TID_BASE
        event = {
            "name": s.name,
            "ph": "X",
            "ts": round(ts, 3),
            "dur": round(s.duration_ms * 1e3, 3),
            "pid": pid,
            "tid": tid,
        }
        args = {k: _jsonable(v) for k, v in s.meta.items()}
        # correlation identity (repro.observe.context) rides along so a
        # track selected in Perfetto names the exact request it served
        if s.request_id:
            args["request_id"] = s.request_id
        if s.span_id:
            args["span_id"] = s.span_id
        if s.parent_id:
            args["parent_span_id"] = s.parent_id
        if args:
            event["args"] = args
        events.append(event)
        for child in s.children:
            emit(child, s)

    for root in observer.spans:
        emit(root, None)

    events.extend(_metadata_events(events, pid))
    if observer.counters:
        end = max((e["ts"] + e["dur"] for e in events if e.get("ph") == "X"), default=0.0)
        events.append(
            {
                "name": "counters",
                "ph": "I",
                "s": "g",
                "ts": round(end, 3),
                "pid": pid,
                "tid": _main_tid(events),
                "args": dict(sorted(observer.counters.items())),
            }
        )
    return events


def _metadata_events(events: list[dict], pid: int) -> list[dict]:
    """Process/thread naming metadata for every distinct track."""
    tids = sorted({e["tid"] for e in events if e.get("ph") == "X"})
    main_tid = threading.main_thread().ident
    meta: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": tids[0] if tids else 0,
            "args": {"name": "repro"},
        }
    ]
    for tid in tids:
        if tid == main_tid:
            name = "main"
        elif tid >= SYNTHETIC_TID_BASE:
            name = f"pool-worker-{tid - SYNTHETIC_TID_BASE}"
        else:
            name = f"thread-{tid}"
        meta.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": name},
            }
        )
    return meta


def _main_tid(events: list[dict]) -> int:
    """The main thread's tid if it appears in the events, else the first."""
    main_tid = threading.main_thread().ident
    tids = {e["tid"] for e in events if e.get("ph") == "X"}
    if main_tid in tids:
        return main_tid
    return min(tids) if tids else 0


def to_chrome_trace(observer: Observer, pid: int | None = None) -> dict:
    """The full trace document: ``{"traceEvents": [...], ...}``."""
    return {
        "traceEvents": trace_events(observer, pid=pid),
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.observe.traceevent"},
    }


def save_trace(observer: Observer, path, pid: int | None = None) -> Path:
    """Write the observer's trace to ``path`` and return it.

    The file loads directly in Perfetto (https://ui.perfetto.dev) or
    ``chrome://tracing``.
    """
    path = Path(path)
    path.write_text(json.dumps(to_chrome_trace(observer, pid=pid), indent=2))
    return path


#: Event phases the validator accepts (the subset this exporter emits).
_VALID_PHASES = {"X", "M", "I", "B", "E", "C"}


def validate_chrome_trace(doc) -> list[str]:
    """Structural problems of a Chrome-trace document (empty = valid).

    Checks the invariants Perfetto's JSON importer relies on: the
    ``{"traceEvents": [...]}`` object form, every event a dict with a
    string ``name`` and a known ``ph``, integer ``pid``/``tid`` on every
    event, non-negative numeric ``ts`` everywhere and ``dur`` on
    complete (``"X"``) events, and JSON-serializable ``args``.  Used by
    the tests to round-trip ``--trace-out`` files and by consumers that
    want to fail loudly instead of uploading a trace Perfetto will
    reject.
    """
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"trace document must be a dict, got {type(doc).__name__}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["trace document has no 'traceEvents' list"]
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        name = event.get("name")
        if not isinstance(name, str) or not name:
            problems.append(f"{where}: missing/empty 'name'")
        ph = event.get("ph")
        if ph not in _VALID_PHASES:
            problems.append(f"{where}: unknown phase {ph!r}")
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                problems.append(f"{where}: '{field}' must be an int")
        if ph != "M":
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"{where}: 'ts' must be a non-negative number")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: 'X' event needs non-negative 'dur'")
        args = event.get("args")
        if args is not None:
            if not isinstance(args, dict):
                problems.append(f"{where}: 'args' must be an object")
            else:
                try:
                    json.dumps(args)
                except (TypeError, ValueError):
                    problems.append(f"{where}: 'args' not JSON-serializable")
    return problems


def _jsonable(value):
    """Coerce span metadata into JSON-safe values."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)
