"""Output-consistency metrics: MSE and PSNR (paper section V-A).

The paper verifies that all Harris implementations agree by computing the
mean-squared error and peak signal-to-noise ratio against the Halide
reference output, recording PSNR always above 170 dB.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["mse", "psnr", "PSNR_THRESHOLD_DB"]

PSNR_THRESHOLD_DB = 170.0


def mse(reference: np.ndarray, candidate: np.ndarray) -> float:
    """Mean-squared error between two arrays of identical shape."""
    reference = np.asarray(reference, dtype=np.float64)
    candidate = np.asarray(candidate, dtype=np.float64)
    if reference.shape != candidate.shape:
        raise ValueError(
            f"shape mismatch: {reference.shape} vs {candidate.shape}"
        )
    return float(np.mean((reference - candidate) ** 2))


def psnr(reference: np.ndarray, candidate: np.ndarray) -> float:
    """Peak signal-to-noise ratio in decibels.

    The peak is the dynamic range of the reference signal.  Identical
    arrays give ``inf`` (reported as "> 170 dB" by the harness, matching
    how the paper states its validation).
    """
    error = mse(reference, candidate)
    if error == 0.0:
        return math.inf
    reference = np.asarray(reference, dtype=np.float64)
    peak = float(reference.max() - reference.min())
    if peak == 0.0:
        peak = 1.0
    return 10.0 * math.log10(peak * peak / error)
