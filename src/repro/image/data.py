"""Deterministic synthetic input images.

The paper benchmarks two photographs: one of 1536 x 2560 pixels (from the
Halide repository) and one of 4256 x 2832 pixels.  We cannot ship those
images, and the Harris pipeline's runtime is content-independent, so the
benchmarks use synthetic images of the same resolutions; correctness
checks only need all implementations to consume identical inputs.

The generator mixes gradients, sinusoids and a deterministic hash-based
texture so that corners actually exist (examples visualize the response).

Seeding convention (repo-wide, see ``docs/verify.md``): randomness is
always threaded explicitly — every entry point takes an integer ``seed``
or a caller-owned ``numpy.random.Generator``; no module reads or mutates
numpy's global RNG state, so results are reproducible per call site.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ImageSpec", "PAPER_IMAGE_SMALL", "PAPER_IMAGE_LARGE", "synthetic_rgb"]


@dataclass(frozen=True)
class ImageSpec:
    """An input-image workload: name plus resolution (rows x cols)."""

    name: str
    height: int
    width: int

    @property
    def pixels(self) -> int:
        return self.height * self.width

    def __str__(self) -> str:
        return f"{self.name} ({self.height}x{self.width})"


# The two image sizes of section V-A.
PAPER_IMAGE_SMALL = ImageSpec("small", 1536, 2560)
PAPER_IMAGE_LARGE = ImageSpec("large", 4256, 2832)


def synthetic_rgb(
    height: int,
    width: int,
    seed: int = 42,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """A deterministic [3][height][width] float32 image in [0, 1].

    Contains smooth gradients (flat regions), a checkerboard (corners) and
    pseudo-random texture so the Harris response is non-trivial.  The
    texture comes from ``rng`` when given (the caller owns the stream),
    else from a private ``default_rng(seed)`` — never from numpy's
    global RNG state.
    """
    if rng is None:
        rng = np.random.default_rng(seed)
    y = np.linspace(0.0, 1.0, height, dtype=np.float32)[:, None]
    x = np.linspace(0.0, 1.0, width, dtype=np.float32)[None, :]

    gradient = 0.5 * y + 0.3 * x
    waves = 0.2 * np.sin(12.0 * np.pi * y) * np.cos(10.0 * np.pi * x)
    checker = 0.15 * (
        (np.floor(y * 16.0) + np.floor(x * 16.0)) % 2.0
    )
    noise = 0.05 * rng.random((height, width), dtype=np.float32)

    base = (gradient + waves + checker + noise).astype(np.float32)
    r = np.clip(base, 0.0, 1.0)
    g = np.clip(0.8 * base + 0.1, 0.0, 1.0)
    b = np.clip(1.0 - 0.6 * base, 0.0, 1.0)
    return np.stack([r, g, b]).astype(np.float32)
