"""Pure-numpy reference implementations of the image pipeline operators.

These are the gold standard every compiled implementation is validated
against (the paper validates against Halide's output via PSNR; here the
numpy forms play that role, and the mini-Halide output is itself checked
against them).

Conventions follow the paper's Harris variant (from the Halide repository):
no border padding — each 3x3 stencil shrinks the image by 2 in both
dimensions, so a [3][n+4][m+4] input produces an [n][m] output.
All arithmetic is float32, matching the generated code.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "GRAY_WEIGHTS",
    "SOBEL_X",
    "SOBEL_Y",
    "SOBEL_X_VERTICAL",
    "SOBEL_X_HORIZONTAL",
    "SOBEL_Y_VERTICAL",
    "SOBEL_Y_HORIZONTAL",
    "SUM_3X3",
    "HARRIS_KAPPA",
    "grayscale",
    "conv2d_valid",
    "sobel_x",
    "sobel_y",
    "sum3x3",
    "coarsity",
    "harris",
]

GRAY_WEIGHTS = np.array([0.299, 0.587, 0.114], dtype=np.float32)

SOBEL_X = np.array(
    [[-1.0, 0.0, 1.0], [-2.0, 0.0, 2.0], [-1.0, 0.0, 1.0]], dtype=np.float32
)
SOBEL_Y = SOBEL_X.T.copy()

# Separable decompositions (section IV-B): W = column_vector @ row_vector.
SOBEL_X_VERTICAL = np.array([1.0, 2.0, 1.0], dtype=np.float32)
SOBEL_X_HORIZONTAL = np.array([-1.0, 0.0, 1.0], dtype=np.float32)
SOBEL_Y_VERTICAL = np.array([-1.0, 0.0, 1.0], dtype=np.float32)
SOBEL_Y_HORIZONTAL = np.array([1.0, 2.0, 1.0], dtype=np.float32)

SUM_3X3 = np.ones((3, 3), dtype=np.float32)

HARRIS_KAPPA = np.float32(0.04)


def grayscale(rgb: np.ndarray) -> np.ndarray:
    """[3][h][w] planar RGB -> [h][w] luminance."""
    rgb = np.asarray(rgb, dtype=np.float32)
    if rgb.ndim != 3 or rgb.shape[0] != 3:
        raise ValueError(f"expected [3][h][w] planar RGB, got shape {rgb.shape}")
    return np.tensordot(GRAY_WEIGHTS, rgb, axes=(0, 0)).astype(np.float32)


def conv2d_valid(image: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """'valid' 2-d correlation (no padding; output shrinks by kernel-1)."""
    image = np.asarray(image, dtype=np.float32)
    weights = np.asarray(weights, dtype=np.float32)
    kh, kw = weights.shape
    windows = np.lib.stride_tricks.sliding_window_view(image, (kh, kw))
    return np.einsum("ijkl,kl->ij", windows, weights, dtype=np.float32).astype(
        np.float32
    )


def sobel_x(image: np.ndarray) -> np.ndarray:
    return conv2d_valid(image, SOBEL_X)


def sobel_y(image: np.ndarray) -> np.ndarray:
    return conv2d_valid(image, SOBEL_Y)


def sum3x3(image: np.ndarray) -> np.ndarray:
    return conv2d_valid(image, SUM_3X3)


def coarsity(
    sxx: np.ndarray, sxy: np.ndarray, syy: np.ndarray, kappa: float = HARRIS_KAPPA
) -> np.ndarray:
    """det(M) - kappa * trace(M)^2 for the structure tensor M."""
    sxx = np.asarray(sxx, dtype=np.float32)
    sxy = np.asarray(sxy, dtype=np.float32)
    syy = np.asarray(syy, dtype=np.float32)
    det = sxx * syy - sxy * sxy
    trace = sxx + syy
    return (det - np.float32(kappa) * trace * trace).astype(np.float32)


def harris(rgb: np.ndarray, kappa: float = HARRIS_KAPPA) -> np.ndarray:
    """The full Harris operator: [3][n+4][m+4] RGB -> [n][m] response."""
    gray = grayscale(rgb)
    ix = sobel_x(gray)
    iy = sobel_y(gray)
    sxx = sum3x3(ix * ix)
    sxy = sum3x3(ix * iy)
    syy = sum3x3(iy * iy)
    return coarsity(sxx, sxy, syy, kappa)
