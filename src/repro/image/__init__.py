"""Reference implementations, synthetic data and output metrics."""

from repro.image.data import ImageSpec, PAPER_IMAGE_LARGE, PAPER_IMAGE_SMALL, synthetic_rgb
from repro.image.metrics import PSNR_THRESHOLD_DB, mse, psnr
from repro.image import reference
