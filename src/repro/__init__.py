"""repro: a Python reproduction of the CGO 2021 paper
"Towards a Domain-Extensible Compiler: Optimizing an Image Processing
Pipeline on Mobile CPUs" (Koehler & Steuwer).

The package implements the RISE functional IR, the ELEVATE strategy
language, the rewrite rules and strategies of the paper, a code generator
to imperative C-like code, baseline compilers (mini-Halide, OpenCV-like
library, LIFT preset), analytic ARM CPU performance models, and the
benchmark harness regenerating the paper's figures.
"""

__version__ = "1.0.0"

from repro.engine import (
    BatchResult,
    BatchRunner,
    CompiledPipeline,
    CompileRequest,
    Engine,
    compile,
)

__all__ = [
    "compile",
    "CompileRequest",
    "CompiledPipeline",
    "Engine",
    "BatchRunner",
    "BatchResult",
]
