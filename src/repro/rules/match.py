"""Pattern-matching helpers shared by the rewrite rules.

Rules match *applied* pipelines: the paper writes ``map(f) |> reduce(g, init)``
as a function composition, which in an applied program appears as the
application tree ``reduce(g, init, map(f, x))``.  The helpers here decompose
application spines and recognize primitive heads.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.rise.expr import App, Expr, Primitive
from repro.rise.traverse import app_spine, children

__all__ = ["match_prim_app", "exact_prim", "spine", "rewrite_sites"]


def spine(expr: Expr) -> tuple[Expr, list[Expr]]:
    return app_spine(expr)


def exact_prim(expr: Expr, prim_class: type) -> Optional[Primitive]:
    """Match a primitive of *exactly* this class (subclasses excluded).

    This distinction matters: ``mapSeq`` is a subclass of ``map`` in the
    class hierarchy, but algorithmic rules must only fire on the high-level
    ``map`` — rewriting an already-lowered ``mapSeq`` would undo explicit
    implementation decisions.
    """
    if type(expr) is prim_class:
        return expr  # type: ignore[return-value]
    return None


def match_prim_app(
    expr: Expr, prim_class: type, argc: int, exact: bool = True
) -> Optional[tuple[Primitive, list[Expr]]]:
    """Match ``prim(arg_1, ..., arg_argc)`` with the given head class."""
    head, args = app_spine(expr)
    if not isinstance(head, Primitive) or len(args) != argc:
        return None
    if exact:
        if type(head) is not prim_class:
            return None
    elif not isinstance(head, prim_class):
        return None
    return head, args


def rewrite_sites(
    expr: Expr, strategy, limit: Optional[int] = None
) -> list[tuple[int, ...]]:
    """Enumerate the subterm positions at which ``strategy`` succeeds.

    Walks ``expr`` depth-first and probes the strategy at every subterm,
    returning the matching positions as child-index paths from the root
    (``()`` is the root itself; ``(1, 0)`` is the first child of the
    second child).  This is the enumerable counterpart of the ELEVATE
    traversals: where ``top_down`` *commits* to the first match, this
    helper makes the whole match set visible — the autotuner uses it to
    count applicable sites before paying for a full rewrite, and tests
    use it to assert where a rule can fire.

    ``limit`` stops the walk after that many sites (probing is pure but
    not free; site *existence* only needs ``limit=1``).  The strategy is
    only probed, never applied — ``expr`` is not modified.
    """
    sites: list[tuple[int, ...]] = []

    def go(node: Expr, path: tuple[int, ...]) -> None:
        if limit is not None and len(sites) >= limit:
            return
        from repro.elevate.core import Success

        if isinstance(strategy(node), Success):
            sites.append(path)
        for i, kid in enumerate(children(node)):
            go(kid, path + (i,))

    go(expr, ())
    return sites
