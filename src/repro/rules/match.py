"""Pattern-matching helpers shared by the rewrite rules.

Rules match *applied* pipelines: the paper writes ``map(f) |> reduce(g, init)``
as a function composition, which in an applied program appears as the
application tree ``reduce(g, init, map(f, x))``.  The helpers here decompose
application spines and recognize primitive heads.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.rise.expr import App, Expr, Primitive
from repro.rise.traverse import app_spine

__all__ = ["match_prim_app", "exact_prim", "spine"]


def spine(expr: Expr) -> tuple[Expr, list[Expr]]:
    return app_spine(expr)


def exact_prim(expr: Expr, prim_class: type) -> Optional[Primitive]:
    """Match a primitive of *exactly* this class (subclasses excluded).

    This distinction matters: ``mapSeq`` is a subclass of ``map`` in the
    class hierarchy, but algorithmic rules must only fire on the high-level
    ``map`` — rewriting an already-lowered ``mapSeq`` would undo explicit
    implementation decisions.
    """
    if type(expr) is prim_class:
        return expr  # type: ignore[return-value]
    return None


def match_prim_app(
    expr: Expr, prim_class: type, argc: int, exact: bool = True
) -> Optional[tuple[Primitive, list[Expr]]]:
    """Match ``prim(arg_1, ..., arg_argc)`` with the given head class."""
    head, args = app_spine(expr)
    if not isinstance(head, Primitive) or len(args) != argc:
        return None
    if exact:
        if type(head) is not prim_class:
            return None
    elif not isinstance(head, prim_class):
        return None
    return head, args
