"""Rewrite rules: algorithmic, lowering, vectorization and domain-specific.

New rules are plain functions decorated with ``@rule`` — they extend the
compiler without modifying it (the paper's extensibility claim).
"""

from repro.rules.algorithmic import (
    beta_reduction, eta_reduction, fst_pair, let_inline, map_fusion,
    map_of_identity, map_outside_zip, reduce_map_fusion, slide_after_split,
    slide_before_map, slide_before_slide, slide_outside_zip, snd_pair,
    split_join, transpose_around_map_map, zip_same,
)
from repro.rules.lowering import (
    slide_to_circular_buffer, slide_to_rotate_values, store_to_memory,
    unroll_map_seq, unroll_reduce_seq, use_map_global, use_map_seq,
    use_map_seq_unroll, use_reduce_seq, use_reduce_seq_unroll,
)
from repro.rules.match import exact_prim, match_prim_app, rewrite_sites, spine
from repro.rules.vectorize import (
    start_vectorization, vectorize_before_map, vectorize_before_map_reduce,
)
