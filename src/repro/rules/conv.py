"""Convolution separation (paper section IV-B, listings 9 and 10).

A 2-d convolution whose kernel factors into a column vector times a row
vector can be computed as a vertical 1-d convolution followed by a
horizontal 1-d convolution:

    nbh |> transpose |> map(dot(weightsV)) |> slide(3,1) |> map(dot(weightsH))

Crucially, after this rewrite the *vertical* reductions are computed once
per column and shared between adjacent horizontal positions, which both
lowers arithmetic complexity (9 MACs -> 6 per output for a 3x3 kernel) and
enables register rotation over the vertical results.

``separate_conv_line`` implements the paper's
``pushSeparation(separateConvKernel(...))``: it recognizes line-level
stencil maps of the form

    map(fun w. C[dot(join W, join w), ...], transpose(map(slide(3,1), rows)))

(the shape fuseOperators produces for every 3x3 convolution), checks each
kernel is separable, and rewrites the whole site so all vertical
reductions are computed in one shared pass over the columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.elevate.core import Strategy, rule
from repro.nat import nat
from repro.rise.dsl import dot, arr, fst, fun, join as join_, make_pair, map_, pipe, slide as slide_, snd, transpose as transpose_
from repro.rise.expr import (
    App,
    ArrayLiteral,
    Expr,
    Identifier,
    Join,
    Lambda,
    Let,
    Map,
    Reduce,
    ScalarOp,
    Slide,
    Transpose,
    Zip,
    Fst,
    Snd,
    MakePair,
    Literal,
)
from repro.rise.traverse import app_spine, children, free_identifiers, rebuild, subterms
from repro.rules.match import match_prim_app

__all__ = ["separate_kernel", "separate_conv_line", "separate_conv_line_zip", "rotate_values_consume"]


def separate_kernel(weights: np.ndarray) -> Optional[tuple[np.ndarray, np.ndarray]]:
    """Factor a 2-d kernel W into (column, row) vectors with W = col x row,
    or return None when the kernel is not separable (rank > 1).

    This is the side condition of the paper's ``separateConvKernel`` rule,
    which must be given the separated weights explicitly; here we compute
    them, which also lets the rule *reject* non-separable kernels.
    """
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 2:
        return None
    if not w.any():
        return None
    # Use the largest-magnitude row as the row factor for stability.
    pivot = int(np.argmax(np.abs(w).sum(axis=1)))
    row = w[pivot]
    if not row.any():
        return None
    ratios = []
    for i in range(w.shape[0]):
        mask = row != 0
        candidate = w[i][mask] / row[mask]
        # float32-level tolerances: kernels quantized to float32 must
        # still be recognized as separable
        if not np.allclose(candidate, candidate[0], rtol=1e-5, atol=1e-7):
            return None
        if not np.allclose(w[i][~mask], 0.0, atol=1e-7):
            return None
        ratios.append(candidate[0])
    col = np.asarray(ratios, dtype=np.float64)
    if not np.allclose(np.outer(col, row), w, rtol=1e-5, atol=1e-7):
        return None
    return col.astype(np.float32), row.astype(np.float32)


@dataclass
class _ConvSite:
    """A 3x3 dot/sum over the stencil-map parameter found in a line body."""

    node: Expr
    weights: np.ndarray
    vertical: np.ndarray
    horizontal: np.ndarray


def _literal_matrix(e: Expr) -> Optional[np.ndarray]:
    if isinstance(e, ArrayLiteral) and len(e.shape()) == 2:
        return np.asarray(e.values, dtype=np.float32)
    return None


def _is_add_fun(e: Expr) -> bool:
    """The addition operator: bare ``(+)`` or ``fun a. fun b. a + b``."""
    if isinstance(e, ScalarOp) and e.op == "add":
        return True
    if not (isinstance(e, Lambda) and isinstance(e.body, Lambda)):
        return False
    inner = e.body.body
    head, args = app_spine(inner)
    return (
        isinstance(head, ScalarOp)
        and head.op == "add"
        and len(args) == 2
        and isinstance(args[0], Identifier)
        and isinstance(args[1], Identifier)
        and args[0].name == e.param.name
        and args[1].name == e.body.param.name
    )


def _is_mul_pair_fun(e: Expr) -> bool:
    """fun p. fst(p) * snd(p)"""
    if not isinstance(e, Lambda):
        return False
    head, args = app_spine(e.body)
    if not (isinstance(head, ScalarOp) and head.op == "mul" and len(args) == 2):
        return False

    def is_proj(x: Expr, proj) -> bool:
        m = match_prim_app(x, proj, 1)
        return (
            m is not None
            and isinstance(m[1][0], Identifier)
            and m[1][0].name == e.param.name
        )

    return is_proj(args[0], Fst) and is_proj(args[1], Snd)


def _match_conv_over_param(
    node: Expr, param: str, size: int
) -> Optional[np.ndarray]:
    """Match ``reduce(+, 0, map(mulp, zip(join(W), join(param))))`` (a 2-d
    dot product over the joined ``size`` x ``size`` window) or
    ``reduce(+, 0, join(param))`` (a 2-d sum); return the kernel matrix."""
    head, args = app_spine(node)
    if not isinstance(head, Reduce) or len(args) != 3:
        return None
    add_fn, init, source = args
    if not _is_add_fun(add_fn):
        return None
    if not (isinstance(init, Literal) and init.value == 0.0):
        return None
    # Case 1: plain sum of the joined window (sumNxN): kernel of ones,
    # sized by the slide the site's window came from.
    joined = match_prim_app(source, Join, 1)
    if joined is not None and isinstance(joined[1][0], Identifier):
        if joined[1][0].name == param:
            return np.ones((size, size), dtype=np.float32)
        return None
    # Case 2: weighted dot: map(mulp, zip(join(W), join(param)))
    mapped = match_prim_app(source, Map, 2)
    if mapped is None:
        return None
    _, (mul_fn, zipped) = mapped
    if not _is_mul_pair_fun(mul_fn):
        return None
    zm = match_prim_app(zipped, Zip, 2)
    if zm is None:
        return None
    _, (wside, xside) = zm
    wj = match_prim_app(wside, Join, 1)
    xj = match_prim_app(xside, Join, 1)
    if wj is None or xj is None:
        return None
    weights = _literal_matrix(wj[1][0])
    if weights is None or weights.shape != (size, size):
        return None
    if not (isinstance(xj[1][0], Identifier) and xj[1][0].name == param):
        return None
    return weights


def _dot1d(weights: np.ndarray) -> Lambda:
    return dot(arr([float(x) for x in weights]))


@rule("separateConvolutionsInLine")
def separate_conv_line(expr: Expr) -> Optional[Expr]:
    """The paper's separateConvolutions applied at a fused line-stencil site:

        map(fun w. C[conv_1(w), ..., conv_k(w)],
            transpose(map(slide(s,1), rows)))
      -->
        map(fun q. C[dot(wH_1, map(proj_1, q)), ...],
            slide(s,1,
                  map(fun col. (dot(wV_1, col), ..., dot(wV_k, col)),
                      transpose(rows))))

    The window size ``s`` is any constant (3x3 for the paper's kernels,
    but a 5x5 site separates the same way).  Every ``s x s`` convolution
    in the body must have a separable kernel; the vertical reductions of
    all convolutions at the site are fused into one shared pass over the
    columns.
    """
    outer = match_prim_app(expr, Map, 2)
    if outer is None:
        return None
    _, (f, source) = outer
    if not isinstance(f, Lambda):
        return None
    # source must be transpose(map(slide(3,1), rows))
    tm = match_prim_app(source, Transpose, 1)
    if tm is None:
        return None
    inner_map = match_prim_app(tm[1][0], Map, 2)
    if inner_map is None:
        return None
    _, (slide_fn, rows) = inner_map
    slide_head, slide_args = app_spine(slide_fn)
    if not (
        isinstance(slide_head, Slide)
        and slide_head.size.is_constant()
        and slide_head.step == nat(1)
        and not slide_args
    ):
        return None
    size = int(slide_head.size.constant_value())

    param = f.param.name
    sites: list[_ConvSite] = []
    seen_keys: list[Expr] = []
    for node in subterms(f.body):
        weights = _match_conv_over_param(node, param, size)
        if weights is None:
            continue
        separated = separate_kernel(weights)
        if separated is None:
            return None  # a non-separable kernel at this site: do not touch
        col, row = separated
        sites.append(_ConvSite(node, weights, col, row))
    if not sites:
        return None

    # Deduplicate identical kernels so the vertical pass computes each
    # distinct vertical reduction once.
    distinct: list[_ConvSite] = []
    index_of: dict[int, int] = {}
    for site in sites:
        for j, d in enumerate(distinct):
            if np.array_equal(site.weights, d.weights):
                index_of[id(site)] = j
                break
        else:
            index_of[id(site)] = len(distinct)
            distinct.append(site)

    k = len(distinct)

    def vertical_tuple(col: Expr) -> Expr:
        dots = [App(_dot1d(d.vertical), col) for d in distinct]
        result = dots[-1]
        for d in reversed(dots[:-1]):
            result = make_pair(d, result)
        return result

    def projection(q: Expr, index: int) -> Expr:
        """Project component ``index`` out of the right-nested tuple."""
        if k == 1:
            return q
        e = q
        for _ in range(index):
            e = snd(e)
        if index < k - 1:
            e = fst(e)
        return e

    new_source = slide_(
        size,
        1,
        map_(fun(lambda col: vertical_tuple(col)), transpose_(rows)),
    )

    new_param = Identifier(f.param.name + "_sep")

    def rewrite_body(e: Expr) -> Expr:
        for site in sites:
            if e is site.node:
                comp = index_of[id(site)]
                verticals = map_(
                    fun(lambda t: projection(t, comp)), new_param
                )
                return App(_dot1d(site.horizontal), verticals)
        kids = children(e)
        if not kids:
            return e
        return rebuild(e, [rewrite_body(kid) for kid in kids])

    new_body = rewrite_body(f.body)
    # The old parameter must no longer occur (every use was a conv site
    # or we must re-expose the raw window, which separation does not keep).
    from repro.rise.traverse import substitute

    if param in free_identifiers(new_body):
        return None
    new_f = Lambda(new_param, new_body)
    return map_(new_f, new_source)


@rule("rotateValuesConsume")
def rotate_values_consume(expr: Expr) -> Optional[Expr]:
    """map(g) o slide(3,1)  -->  mapSeq(g) o rotateValues(private, 3)
    (listing 11): replace the sliding window over per-column values with
    rotating registers, consumed sequentially.

    Fires on high-level ``map`` and on already-vectorized ``mapSeqVec``
    consumers (rotating vector registers, the paper's cbuf+rot variant).
    """
    from repro.rise.expr import MapSeq, MapSeqVec
    from repro.rise.dsl import rotate_values
    from repro.rise.types import AddressSpace

    head, args = app_spine(expr)
    if len(args) != 2:
        return None
    if type(head) is Map:
        new_head: Expr = MapSeq()
    elif type(head) is MapSeqVec:
        new_head = head
    else:
        return None
    g, windows = args
    sm = match_prim_app(windows, Slide, 1)
    if sm is None:
        return None
    slide_prim, (values,) = sm
    if slide_prim.step != nat(1):
        return None
    # Only rotate windows over *computed* values (a map pipeline), not
    # windows that are pure views of a buffer.
    inner_head, _ = app_spine(values)
    if not isinstance(inner_head, Map):
        return None
    return App(
        App(new_head, g),
        rotate_values(AddressSpace.PRIVATE, slide_prim.size, values),
    )


def _path_of_window(node: Expr, param: str) -> Optional[tuple[int, ...]]:
    """Match a fst/snd chain applied to the parameter; return the path."""
    path: list[int] = []
    e = node
    while isinstance(e, App):
        if isinstance(e.fun, Fst):
            path.append(0)
        elif isinstance(e.fun, Snd):
            path.append(1)
        else:
            return None
        e = e.arg
    if isinstance(e, Identifier) and e.name == param:
        return tuple(reversed(path))
    return None


def _match_conv_over_path(node: Expr, param: str, size: int):
    """Like _match_conv_over_param but the window is a projection of the
    parameter: reduce(+, 0, [map(mulp, zip(join(W),] join(PATH(param)) [))]).
    Returns (kernel, path) or None."""
    head, args = app_spine(node)
    if not isinstance(head, Reduce) or len(args) != 3:
        return None
    add_fn, init, source = args
    if not _is_add_fun(add_fn):
        return None
    if not (isinstance(init, Literal) and init.value == 0.0):
        return None
    joined = match_prim_app(source, Join, 1)
    if joined is not None:
        path = _path_of_window(joined[1][0], param)
        if path is not None:
            return np.ones((size, size), dtype=np.float32), path
        return None
    mapped = match_prim_app(source, Map, 2)
    if mapped is None:
        return None
    _, (mul_fn, zipped) = mapped
    if not _is_mul_pair_fun(mul_fn):
        return None
    zm = match_prim_app(zipped, Zip, 2)
    if zm is None:
        return None
    _, (wside, xside) = zm
    wj = match_prim_app(wside, Join, 1)
    xj = match_prim_app(xside, Join, 1)
    if wj is None or xj is None:
        return None
    weights = _literal_matrix(wj[1][0])
    if weights is None or weights.shape != (size, size):
        return None
    path = _path_of_window(xj[1][0], param)
    if path is None:
        return None
    return weights, path


def _proj_chain(e: Expr, path: tuple[int, ...]) -> Expr:
    for step in path:
        e = App(Fst() if step == 0 else Snd(), e)
    return e


@rule("separateConvolutionsZipped")
def separate_conv_line_zip(expr: Expr) -> Optional[Expr]:
    """Convolution separation at a fused multi-component line site:

        map(fun w. C[conv_k(PATH_k(w))],
            zip-tree of transpose(map(fun r. slide(3,1)(map(proj_k, r)), rows)))
      -->
        map(fun q. C[dot(wH_k, map(proj'_k, q))],
            slide(3,1, map(fun col. (vertical dots...), transpose(rows))))

    This is the form of the structure-tensor sums after sibling-stage
    merging: three 3x3 sums over the components of one tuple-line window.
    All vertical reductions share a single pass over the tuple columns.
    """
    outer = match_prim_app(expr, Map, 2)
    if outer is None:
        return None
    _, (f, src) = outer
    if not isinstance(f, Lambda):
        return None

    # 1. decompose the zip tree into leaves with their pair paths
    leaves: list[tuple[tuple[int, ...], Expr]] = []

    def collect(e: Expr, pos: tuple[int, ...]) -> bool:
        zm = match_prim_app(e, Zip, 2)
        if zm is not None:
            return collect(zm[1][0], pos + (0,)) and collect(zm[1][1], pos + (1,))
        leaves.append((pos, e))
        return True

    zm0 = match_prim_app(src, Zip, 2)
    if zm0 is None:
        return None
    if not collect(src, ()):
        return None

    # 2. each leaf: transpose(map(fun r. slide(3,1)(map(proj, r)), rows))
    from repro.rise.traverse import alpha_equal

    leaf_proj: dict[tuple[int, ...], tuple[int, ...]] = {}
    rows_exprs: list[Expr] = []
    size: Optional[int] = None
    for pos, leaf in leaves:
        tm = match_prim_app(leaf, Transpose, 1)
        if tm is None:
            return None
        mm = match_prim_app(tm[1][0], Map, 2, exact=False)
        if mm is None:
            return None
        g, rows = mm[1]
        if not isinstance(g, Lambda):
            return None
        sm = match_prim_app(g.body, Slide, 1)
        if sm is None or sm[0].step != nat(1) or not sm[0].size.is_constant():
            return None
        leaf_size = int(sm[0].size.constant_value())
        if size is None:
            size = leaf_size
        elif size != leaf_size:
            return None
        im = match_prim_app(sm[1][0], Map, 2, exact=False)
        if im is None:
            return None
        proj_fn, inner_arg = im[1]
        if not (isinstance(inner_arg, Identifier) and inner_arg.name == g.param.name):
            return None
        if isinstance(proj_fn, Fst):
            comp_path: Optional[tuple[int, ...]] = (0,)
        elif isinstance(proj_fn, Snd):
            comp_path = (1,)
        elif isinstance(proj_fn, Lambda):
            comp_path = _path_of_window(proj_fn.body, proj_fn.param.name)
        else:
            comp_path = None
        if comp_path is None:
            return None
        leaf_proj[pos] = comp_path
        rows_exprs.append(rows)
    if not all(alpha_equal(r, rows_exprs[0]) for r in rows_exprs[1:]):
        return None
    rows = rows_exprs[0]

    # 3. conv sites in the body, keyed by window path
    param = f.param.name
    sites: list[tuple[Expr, np.ndarray, tuple[int, ...]]] = []
    for node in subterms(f.body):
        matched = _match_conv_over_path(node, param, size)
        if matched is None:
            continue
        weights, path = matched
        if path not in leaf_proj:
            return None
        if separate_kernel(weights) is None:
            return None
        sites.append((node, weights, path))
    if not sites:
        return None

    # 4. distinct (kernel, component) pairs -> one vertical reduction each
    distinct: list[tuple[np.ndarray, tuple[int, ...]]] = []
    site_index: dict[int, int] = {}
    for node, weights, path in sites:
        comp = leaf_proj[path]
        for j, (w2, c2) in enumerate(distinct):
            if np.array_equal(weights, w2) and comp == c2:
                site_index[id(node)] = j
                break
        else:
            site_index[id(node)] = len(distinct)
            distinct.append((weights, comp))
    k = len(distinct)

    def _mk_comp_proj(comp_path):
        return fun(lambda t: _proj_chain(t, comp_path))

    def vertical_tuple(col: Expr) -> Expr:
        dots = []
        for weights, comp in distinct:
            colv, _roww = separate_kernel(weights)
            component = map_(_mk_comp_proj(comp), col)
            dots.append(App(_dot1d(colv), component))
        result = dots[-1]
        for d in reversed(dots[:-1]):
            result = make_pair(d, result)
        return result

    def tuple_proj(q: Expr, index: int) -> Expr:
        if k == 1:
            return q
        e = q
        for _ in range(index):
            e = snd(e)
        if index < k - 1:
            e = fst(e)
        return e

    new_source = slide_(size, 1, map_(fun(vertical_tuple), transpose_(rows)))
    new_param = Identifier(f.param.name + "_sep")

    from repro.rise.traverse import children, rebuild, free_identifiers

    def rewrite_body(e: Expr) -> Expr:
        for node, weights, path in sites:
            if e is node:
                _colv, roww = separate_kernel(weights)
                idx = site_index[id(node)]

                def _mk_tuple_proj(index):
                    return fun(lambda t: tuple_proj(t, index))

                verticals = map_(_mk_tuple_proj(idx), new_param)
                return App(_dot1d(roww), verticals)
        kids = children(e)
        if not kids:
            return e
        return rebuild(e, [rewrite_body(kid) for kid in kids])

    new_body = rewrite_body(f.body)
    if param in free_identifiers(new_body):
        return None
    return map_(Lambda(new_param, new_body), new_source)
