"""Algorithmic (semantics-preserving, hardware-agnostic) rewrite rules.

These are the rules of paper listing 6 plus the standard RISE/LIFT fusion
and movement rules the strategies compose.  Every rule here has a matching
property test in ``tests/rules`` that interprets programs before and after
rewriting and compares results numerically.
"""

from __future__ import annotations

from typing import Optional

from repro.nat import Nat, nat
from repro.rise.dsl import fun, make_pair, map_, slide as slide_, unzip_, zip_
from repro.rise.expr import (
    App,
    Expr,
    Identifier,
    Join,
    Lambda,
    Let,
    Map,
    MakePair,
    Fst,
    Snd,
    Reduce,
    ReduceSeq,
    Slide,
    Split,
    Transpose,
    Zip,
)
from repro.elevate.core import Strategy, rule
from repro.rise.traverse import alpha_equal, free_identifiers, substitute
from repro.rules.match import match_prim_app

__all__ = [
    "beta_reduction",
    "eta_reduction",
    "let_inline",
    "fst_pair",
    "snd_pair",
    "map_fusion",
    "map_of_identity",
    "reduce_map_fusion",
    "split_join",
    "slide_after_split",
    "slide_before_map",
    "slide_before_slide",
    "map_outside_zip",
    "zip_same",
    "slide_outside_zip",
    "transpose_around_map_map",
    "fst_unzip",
    "snd_unzip",
    "map_proj_fusion",
]


@rule("betaReduction")
def beta_reduction(expr: Expr) -> Optional[Expr]:
    """(fun x. body)(arg)  -->  body[x := arg]"""
    if isinstance(expr, App) and isinstance(expr.fun, Lambda):
        return substitute(expr.fun.body, expr.fun.param.name, expr.arg)
    return None


@rule("etaReduction")
def eta_reduction(expr: Expr) -> Optional[Expr]:
    """fun x. f(x)  -->  f   (when x is not free in f)"""
    if (
        isinstance(expr, Lambda)
        and isinstance(expr.body, App)
        and isinstance(expr.body.arg, Identifier)
        and expr.body.arg.name == expr.param.name
        and expr.param.name not in free_identifiers(expr.body.fun)
    ):
        return expr.body.fun
    return None


@rule("letInline")
def let_inline(expr: Expr) -> Optional[Expr]:
    """def x = v in body  -->  body[x := v]"""
    if isinstance(expr, Let):
        return substitute(expr.body, expr.ident.name, expr.value)
    return None


@rule("fstPair")
def fst_pair(expr: Expr) -> Optional[Expr]:
    """fst(pair(a, b))  -->  a"""
    match = match_prim_app(expr, Fst, 1)
    if match is None:
        return None
    inner = match_prim_app(match[1][0], MakePair, 2)
    if inner is None:
        return None
    return inner[1][0]


@rule("sndPair")
def snd_pair(expr: Expr) -> Optional[Expr]:
    """snd(pair(a, b))  -->  b"""
    match = match_prim_app(expr, Snd, 1)
    if match is None:
        return None
    inner = match_prim_app(match[1][0], MakePair, 2)
    if inner is None:
        return None
    return inner[1][1]


@rule("mapFusion")
def map_fusion(expr: Expr) -> Optional[Expr]:
    """map(f) |> map(h)  -->  map(f |> h)          (listing 6)"""
    outer = match_prim_app(expr, Map, 2)
    if outer is None:
        return None
    _, (h, inner_expr) = outer
    inner = match_prim_app(inner_expr, Map, 2)
    if inner is None:
        return None
    _, (f, x) = inner
    return map_(fun(lambda a: App(h, App(f, a))), x)


@rule("mapOfIdentity")
def map_of_identity(expr: Expr) -> Optional[Expr]:
    """map(fun a. a)  -->  identity (drop the application)"""
    outer = match_prim_app(expr, Map, 2)
    if outer is None:
        return None
    _, (f, x) = outer
    if isinstance(f, Lambda) and isinstance(f.body, Identifier) and f.body.name == f.param.name:
        return x
    return None


@rule("reduceMapFusion")
def reduce_map_fusion(expr: Expr) -> Optional[Expr]:
    """map(f) |> reduce(g, init)
       -->  reduceSeq(fun (acc, x). g(acc, f(x)), init)     (paper section II-A)
    """
    outer = match_prim_app(expr, Reduce, 3)
    if outer is None:
        return None
    _, (g, init, mapped) = outer
    inner = match_prim_app(mapped, Map, 2)
    if inner is None:
        return None
    _, (f, x) = inner
    from repro.rise.dsl import reduce_seq

    return reduce_seq(fun(lambda acc, y: App(App(g, acc), App(f, y))), init, x)


def split_join(p) -> Strategy:
    """map(f)  -->  split(p) |> map(map(f)) |> join      (listing 6)"""
    p = nat(p)

    @rule(f"splitJoin({p!r})")
    def run(expr: Expr) -> Optional[Expr]:
        match = match_prim_app(expr, Map, 2)
        if match is None:
            return None
        _, (f, x) = match
        from repro.rise.dsl import join, split

        return join(map_(map_(f), split(p, x)))

    return run


@rule("slideAfterSplit")
def slide_after_split(expr: Expr) -> Optional[Expr]:
    """slide(n, m) |> split(p)
       -->  slide((p-1)*m + n, p*m) |> map(slide(n, m))    (listing 6)

    Listing 6 states the step/size for m == 1; this is the general form,
    which coincides with the paper's when m == 1.
    """
    outer = match_prim_app(expr, Split, 1)
    if outer is None:
        return None
    split_prim, (slided,) = outer
    inner = match_prim_app(slided, Slide, 1)
    if inner is None:
        return None
    slide_prim, (x,) = inner
    p: Nat = split_prim.chunk
    n: Nat = slide_prim.size
    m: Nat = slide_prim.step
    outer_size = (p - 1) * m + n
    outer_step = p * m
    return map_(
        fun(lambda chunk: slide_(n, m, chunk)),
        slide_(outer_size, outer_step, x),
    )


@rule("slideBeforeMap")
def slide_before_map(expr: Expr) -> Optional[Expr]:
    """map(f) |> slide(n, m)  -->  slide(n, m) |> map(map(f))   (listing 6)"""
    outer = match_prim_app(expr, Slide, 1)
    if outer is None:
        return None
    slide_prim, (mapped,) = outer
    inner = match_prim_app(mapped, Map, 2)
    if inner is None:
        return None
    _, (f, x) = inner
    return map_(map_(f), slide_(slide_prim.size, slide_prim.step, x))


@rule("slideBeforeSlide")
def slide_before_slide(expr: Expr) -> Optional[Expr]:
    """slide(n, 1) |> slide(m, k)
       -->  slide(m + n - 1, k) |> map(slide(n, 1))            (listing 6)"""
    outer = match_prim_app(expr, Slide, 1)
    if outer is None:
        return None
    outer_prim, (slided,) = outer
    inner = match_prim_app(slided, Slide, 1)
    if inner is None:
        return None
    inner_prim, (x,) = inner
    if inner_prim.step != nat(1):
        return None
    n: Nat = inner_prim.size
    m: Nat = outer_prim.size
    k: Nat = outer_prim.step
    return map_(
        fun(lambda w: slide_(n, 1, w)),
        slide_(m + n - 1, k, x),
    )


@rule("mapOutsideZip")
def map_outside_zip(expr: Expr) -> Optional[Expr]:
    """zip(map(f, x), map(g, y))  -->  map(fun a. pair(f(a), g(a)), x)
    when x and y are the same (alpha-equal) expression.

    Also covers the asymmetric forms where one side is the bare source.
    This is the fusion step that merges the Ix and Iy sobel stages so they
    are computed in one pass (the Halide schedule's ``compute_with``).
    """
    match = match_prim_app(expr, Zip, 2)
    if match is None:
        return None
    _, (left, right) = match

    def as_map(e: Expr):
        inner = match_prim_app(e, Map, 2)
        if inner is None:
            return None
        return inner[1]

    left_map = as_map(left)
    right_map = as_map(right)
    if left_map is not None and right_map is not None:
        f, x = left_map
        g, y = right_map
        if alpha_equal(x, y):
            return map_(fun(lambda a: make_pair(App(f, a), App(g, a))), x)
    if left_map is not None:
        f, x = left_map
        if alpha_equal(x, right):
            return map_(fun(lambda a: make_pair(App(f, a), a)), x)
    if right_map is not None:
        g, y = right_map
        if alpha_equal(left, y):
            return map_(fun(lambda a: make_pair(a, App(g, a))), left)
    return None


@rule("zipSame")
def zip_same(expr: Expr) -> Optional[Expr]:
    """zip(x, x)  -->  map(fun a. pair(a, a), x)"""
    match = match_prim_app(expr, Zip, 2)
    if match is None:
        return None
    _, (left, right) = match
    if alpha_equal(left, right):
        return map_(fun(lambda a: make_pair(a, a)), left)
    return None


@rule("slideOutsideZip")
def slide_outside_zip(expr: Expr) -> Optional[Expr]:
    """zip(slide(n, s, a), slide(n, s, b))
       -->  slide(n, s, zip(a, b)) |> map(unzip)

    Turns a pair of sliding windows over two arrays into sliding windows
    over the zipped array — the step that lets separately-produced stencil
    inputs share one line pipeline.
    """
    match = match_prim_app(expr, Zip, 2)
    if match is None:
        return None
    _, (left, right) = match
    left_slide = match_prim_app(left, Slide, 1)
    right_slide = match_prim_app(right, Slide, 1)
    if left_slide is None or right_slide is None:
        return None
    lp, (a,) = left_slide
    rp, (b,) = right_slide
    if lp.size != rp.size or lp.step != rp.step:
        return None
    return map_(unzip_(), slide_(lp.size, lp.step, zip_(a, b)))


@rule("transposeAroundMapMap")
def transpose_around_map_map(expr: Expr) -> Optional[Expr]:
    """map(map(f)) |> transpose  -->  transpose |> map(map(f))"""
    outer = match_prim_app(expr, Transpose, 1)
    if outer is None:
        return None
    _, (mapped,) = outer
    inner = match_prim_app(mapped, Map, 2)
    if inner is None:
        return None
    _, (f, x) = inner
    inner2 = match_prim_app(f, Map, 1)
    if inner2 is None:
        return None
    from repro.rise.dsl import transpose as transpose_

    return map_(f, transpose_(x))


@rule("fstUnzip")
def fst_unzip(expr: Expr) -> Optional[Expr]:
    """fst(unzip(e))  -->  map(fst, e)"""
    from repro.rise.expr import Unzip
    from repro.rise.dsl import fst as fst_

    match = match_prim_app(expr, Fst, 1)
    if match is None:
        return None
    inner = match_prim_app(match[1][0], Unzip, 1)
    if inner is None:
        return None
    return map_(Fst(), inner[1][0])


@rule("sndUnzip")
def snd_unzip(expr: Expr) -> Optional[Expr]:
    """snd(unzip(e))  -->  map(snd, e)"""
    from repro.rise.expr import Unzip

    match = match_prim_app(expr, Snd, 1)
    if match is None:
        return None
    inner = match_prim_app(match[1][0], Unzip, 1)
    if inner is None:
        return None
    return map_(Snd(), inner[1][0])


@rule("mapProjFusion")
def map_proj_fusion(expr: Expr) -> Optional[Expr]:
    """map(proj, map(f, x))  -->  map(fun a. proj(f(a)), x) — like mapFusion
    but with a bare primitive as the outer function (fst/snd)."""
    outer = match_prim_app(expr, Map, 2)
    if outer is None:
        return None
    _, (p, mapped) = outer
    if not isinstance(p, (Fst, Snd)):
        return None
    inner = match_prim_app(mapped, Map, 2)
    if inner is None:
        return None
    _, (f, x) = inner
    return map_(fun(lambda a: App(p, App(f, a))), x)
