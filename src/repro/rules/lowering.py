"""Lowering rules: rewrite high-level patterns into low-level implementation
patterns (paper fig. 4), encoding explicit implementation decisions.

``circularBuffer`` and ``rotateValues`` introduction are the paper's key new
lowerings (listings 8 and 11).
"""

from __future__ import annotations

from typing import Optional

from repro.elevate.core import Strategy, rule
from repro.rise.dsl import fun, id_fun
from repro.rise.expr import (
    App,
    Expr,
    Map,
    MapGlobal,
    MapSeq,
    MapSeqUnroll,
    MapVec,
    Reduce,
    ReduceSeq,
    ReduceSeqUnroll,
    Slide,
    ToMem,
)
from repro.rise.types import AddressSpace
from repro.nat import nat
from repro.rules.match import match_prim_app

__all__ = [
    "use_map_seq",
    "use_map_global",
    "strip_parallel_map",
    "use_map_seq_unroll",
    "use_reduce_seq",
    "use_reduce_seq_unroll",
    "unroll_map_seq",
    "unroll_reduce_seq",
    "slide_to_circular_buffer",
    "slide_to_rotate_values",
    "store_to_memory",
]


@rule("useMapSeq")
def use_map_seq(expr: Expr) -> Optional[Expr]:
    """map  -->  mapSeq  (implement with a sequential loop)"""
    if type(expr) is Map:
        return MapSeq()
    return None


@rule("useMapGlobal")
def use_map_global(expr: Expr) -> Optional[Expr]:
    """map  -->  mapGlobal  (parallelize across global threads; listing 6)"""
    if type(expr) is Map:
        return MapGlobal()
    return None


def strip_parallel_map(strip) -> Strategy:
    """mapGlobal(f) $ x  -->  split(strip) |> mapGlobal(mapSeq(f)) |> join

    Strip parallelization (the structure behind Halide's ``parallel(y)``
    with static chunking): the global map's iteration space is regrouped
    into contiguous strips of ``strip`` iterations; one global thread owns
    one strip and walks it sequentially.  Applied to a lowered pipeline
    whose ``mapGlobal`` ranges over row chunks, this yields per-thread
    strips of ``strip`` chunks — the parallel extent becomes the number
    of strips, matching a static OpenMP schedule exactly.

    Valid because ``mapGlobal`` iterations are independent by definition;
    the split only requires the iteration count to divide by ``strip``
    (solved numerically with the concrete sizes, like the pipeline split).
    """
    strip = nat(strip)

    @rule(f"stripParallelMap({strip!r})")
    def run(expr: Expr) -> Optional[Expr]:
        match = match_prim_app(expr, MapGlobal, 2)
        if match is None:
            return None
        _, (f, x) = match
        from repro.rise.dsl import join, split

        return join(App(App(MapGlobal(), App(MapSeq(), f)), split(strip, x)))

    return run


@rule("useMapSeqUnroll")
def use_map_seq_unroll(expr: Expr) -> Optional[Expr]:
    """map  -->  mapSeqUnroll"""
    if type(expr) is Map:
        return MapSeqUnroll()
    return None


@rule("useReduceSeq")
def use_reduce_seq(expr: Expr) -> Optional[Expr]:
    """reduce  -->  reduceSeq"""
    if type(expr) is Reduce:
        return ReduceSeq()
    return None


@rule("useReduceSeqUnroll")
def use_reduce_seq_unroll(expr: Expr) -> Optional[Expr]:
    """reduce  -->  reduceSeqUnroll  (the paper's unrollReductions)"""
    if type(expr) is Reduce:
        return ReduceSeqUnroll()
    return None


@rule("unrollMapSeq")
def unroll_map_seq(expr: Expr) -> Optional[Expr]:
    """mapSeq  -->  mapSeqUnroll"""
    if type(expr) is MapSeq:
        return MapSeqUnroll()
    return None


@rule("unrollReduceSeq")
def unroll_reduce_seq(expr: Expr) -> Optional[Expr]:
    """reduceSeq  -->  reduceSeqUnroll"""
    if type(expr) is ReduceSeq:
        return ReduceSeqUnroll()
    return None


def slide_to_circular_buffer(addr: AddressSpace = AddressSpace.GLOBAL) -> Strategy:
    """map(f) |> slide(m, 1)  -->  circularBuffer(addr, m, f)     (listing 8)

    The producing map is fused into the buffer's load function, so each
    input line is loaded (computed) exactly once and the last ``m`` results
    stay in the circular buffer.  A bare ``slide(m, 1)`` gets the identity
    load function.
    """

    @rule(f"slideToCircularBuffer({addr.value})")
    def run(expr: Expr) -> Optional[Expr]:
        match = match_prim_app(expr, Slide, 1)
        if match is None:
            return None
        slide_prim, (source,) = match
        if slide_prim.step != nat(1):
            return None
        from repro.rise.dsl import circular_buffer

        inner = match_prim_app(source, Map, 2)
        if inner is not None:
            _, (f, x) = inner
            return circular_buffer(addr, slide_prim.size, f, x)
        return circular_buffer(addr, slide_prim.size, id_fun(), source)

    return run


def slide_to_rotate_values(addr: AddressSpace = AddressSpace.PRIVATE) -> Strategy:
    """slide(m, 1)  -->  rotateValues(addr, m)                    (listing 11)

    Valid when the windows are consumed sequentially; the strategy that
    applies this rule (rotateValuesAndConsume) also introduces the
    sequential consumer.
    """

    @rule(f"slideToRotateValues({addr.value})")
    def run(expr: Expr) -> Optional[Expr]:
        match = match_prim_app(expr, Slide, 1)
        if match is None:
            return None
        slide_prim, (source,) = match
        if slide_prim.step != nat(1):
            return None
        from repro.rise.dsl import rotate_values

        return rotate_values(addr, slide_prim.size, source)

    return run


def store_to_memory(addr: AddressSpace) -> Strategy:
    """e  -->  toMem(addr, e) — materialize a value (usePrivateMemory)."""

    @rule(f"storeToMemory({addr.value})")
    def run(expr: Expr) -> Optional[Expr]:
        head, _args = match_prim_app(expr, ToMem, 1) or (None, None)
        if head is not None:
            return None  # already materialized
        if isinstance(expr, ToMem):
            return None
        from repro.rise.dsl import to_mem

        return to_mem(addr, expr)

    return run
