"""Vectorization rewrite rules (paper listing 7).

SIMD vectorization is expressed by reinterpreting arrays as arrays of
vectors (``asVector``/``asScalar``) and pushing the reinterpretation
through ``map`` and ``map(reduce(...))`` until scalar functions become
vector functions (``mapVec``).
"""

from __future__ import annotations

from typing import Optional

from repro.elevate.core import Strategy, rule
from repro.nat import Nat, nat
from repro.rise.dsl import (
    as_vector,
    fun,
    map_,
    map_vec,
    reduce_,
    transpose as transpose_,
    vector_from_scalar,
)
from repro.rise.expr import App, Expr, Map, Reduce
from repro.rules.match import match_prim_app

__all__ = [
    "start_vectorization",
    "vectorize_before_map",
    "vectorize_before_map_reduce",
]


def start_vectorization(width) -> Strategy:
    """a : [n*v]s  -->  a |> asVector(v) |> asScalar      (listing 7)

    The rewrite is locally unconditioned; the strategy that applies it
    (vectorizeReductions) checks that the result still type-checks, which
    enforces the `size divisible by v` side condition.
    """
    width = nat(width)

    @rule(f"startVectorization({width!r})")
    def run(expr: Expr) -> Optional[Expr]:
        from repro.rise.dsl import as_scalar

        return as_scalar(as_vector(width, expr))

    return run


def _is_basic_scalar_fun(f: Expr) -> bool:
    """mapVec 'is currently supported for functions that use basic
    operations such as addition and multiplication' (paper §IV-A) — the
    side condition of vectorizeBeforeMap."""
    from repro.rise.expr import App, Identifier, Lambda, Literal, ScalarOp, UnaryOp
    from repro.rise.traverse import subterms

    if isinstance(f, (ScalarOp, UnaryOp)):
        return True
    if not isinstance(f, Lambda):
        return False
    return all(
        isinstance(node, (App, Identifier, Lambda, Literal, ScalarOp, UnaryOp))
        for node in subterms(f.body)
    )


@rule("vectorizeBeforeMap")
def vectorize_before_map(expr: Expr) -> Optional[Expr]:
    """map(f) |> asVector(v)  -->  asVector(v) |> map(mapVec(f))   (listing 7)

    Only for basic scalar functions f (the published mapVec restriction);
    reductions are handled by vectorizeBeforeMapReduce instead.
    """
    from repro.rise.expr import AsVector

    outer = match_prim_app(expr, AsVector, 1)
    if outer is None:
        return None
    vec_prim, (mapped,) = outer
    inner = match_prim_app(mapped, Map, 2)
    if inner is None:
        return None
    _, (f, x) = inner
    if not _is_basic_scalar_fun(f):
        return None
    return map_(map_vec(f), as_vector(vec_prim.width, x))


@rule("vectorizeBeforeMapReduce")
def vectorize_before_map_reduce(expr: Expr) -> Optional[Expr]:
    """map(reduce(op, init)) |> asVector(v)
       -->  transpose |> map(asVector(v)) |> transpose
            |> map(reduce(op, vectorFromScalar(init)))           (listing 7)

    A row-wise reduction vectorized across *rows*: v adjacent rows are
    reduced in lockstep, one row per vector lane.  The binary operator is
    reused at vector type (the paper's mapVec(+) — arithmetic primitives
    are overloaded for vectors in this implementation).
    """
    from repro.rise.expr import AsVector

    outer = match_prim_app(expr, AsVector, 1)
    if outer is None:
        return None
    vec_prim, (mapped,) = outer
    inner = match_prim_app(mapped, Map, 2)
    if inner is None:
        return None
    _, (f, x) = inner
    reduction = match_prim_app(f, Reduce, 2)
    if reduction is None:
        return None
    _, (op, init) = reduction
    v: Nat = vec_prim.width
    return map_(
        reduce_(op, vector_from_scalar(v, init)),
        transpose_(map_(as_vector(v), transpose_(x))),
    )
