"""Structural rules used by operator fusion (paper section IV-A).

``fuseOperators`` turns the Harris dataflow graph into a line-based
pipeline.  The load-bearing rules are:

* ``zip_of_maps``   — push zips past maps toward the shared source, which
  merges independently-written stages (Ix and Iy; the three products;
  the three structure-tensor sums) into single passes;
* ``slide_before_map_view`` — move *view-only* maps (windowing /
  transposition, which cost nothing at code-generation time) inside the
  consuming stage, so stage boundaries sit exactly at the line slides;
* ``cse_in_lambda`` — factor repeated computations that stage merging
  would otherwise duplicate (the sobel lines feeding all three products),
  the effect Halide gets from ``compute_with``.
"""

from __future__ import annotations

from typing import Optional

from repro.elevate.core import Strategy, rule
from repro.nat import nat
from repro.rise.dsl import fst, fun, make_pair, map_, snd, zip_
from repro.rise.expr import (
    App,
    Expr,
    Identifier,
    Lambda,
    Let,
    MakePair,
    Map,
    Slide,
    Transpose,
    Primitive,
    Join,
    Split,
    Unzip,
    Fst,
    Snd,
)
from repro.rise.traverse import alpha_equal, children, free_identifiers, subterms, substitute
from repro.rules.match import match_prim_app

__all__ = [
    "zip_of_maps",
    "narrow_shared_pair_producer",
    "merge_sibling_maps",
    "slide_before_map_view",
    "map_fission_at",
    "cse_in_lambda",
    "canonical_key",
]


@rule("zipOfMaps")
def zip_of_maps(expr: Expr) -> Optional[Expr]:
    """zip(map(f, a), map(g, b))
       -->  zip(a, b) |> map(fun p. pair(f(fst p), g(snd p)))

    Valid for any a and b; combined with ``zip_same`` and the projection
    reductions it subsumes the shared-source ``map_outside_zip`` while also
    handling different sources.
    """
    from repro.rise.expr import Zip

    match = match_prim_app(expr, Zip, 2)
    if match is None:
        return None
    _, (left, right) = match
    left_map = match_prim_app(left, Map, 2)
    right_map = match_prim_app(right, Map, 2)
    if left_map is not None and right_map is not None:
        _, (f, a) = left_map
        _, (g, b) = right_map
        return map_(
            fun(lambda p: make_pair(App(f, fst(p)), App(g, snd(p)))),
            zip_(a, b),
        )
    # One-sided variants: zip(map(f, a), b) --> zip(a, b) |> map-with-fst,
    # needed when stage merging has already rewritten one side further.
    if left_map is not None:
        _, (f, a) = left_map
        return map_(
            fun(lambda p: make_pair(App(f, fst(p)), snd(p))),
            zip_(a, right),
        )
    if right_map is not None:
        _, (g, b) = right_map
        return map_(
            fun(lambda p: make_pair(fst(p), App(g, snd(p)))),
            zip_(left, b),
        )
    return None


def _is_view_function(f: Expr) -> bool:
    """Functions that code generation implements as index transformations
    (no computation): windowing, transposition, flattening and projections."""
    head = f
    while isinstance(head, App):
        head = head.fun
    return isinstance(head, (Slide, Transpose, Join, Split, Unzip, Fst, Snd))


@rule("slideBeforeMapView")
def slide_before_map_view(expr: Expr) -> Optional[Expr]:
    """map(view) |> slide(n, m)  -->  slide(n, m) |> map(map(view))

    The restriction of listing 6's slideBeforeMap to view-only functions:
    moving a *computing* map inside a slide would re-compute overlapping
    elements once per window, so operator fusion only moves views.  (The
    unrestricted rule is still available for splitPipeline, where the
    recomputation at chunk borders is exactly the paper's design.)
    """
    outer = match_prim_app(expr, Slide, 1)
    if outer is None:
        return None
    slide_prim, (mapped,) = outer
    inner = match_prim_app(mapped, Map, 2)
    if inner is None:
        return None
    _, (f, x) = inner
    if not _is_view_function(f):
        return None
    from repro.rise.dsl import slide as slide_

    return map_(map_(f), slide_(slide_prim.size, slide_prim.step, x))


def map_fission_at(expr: Expr) -> Optional[Expr]:
    """map(fun a. g(h(a)))  -->  map(fun a. h(a)) |> map(g)
    when ``a`` does not occur free in ``g``."""
    match = match_prim_app(expr, Map, 2)
    if match is None:
        return None
    _, (f, x) = match
    if not isinstance(f, Lambda) or not isinstance(f.body, App):
        return None
    g, inner = f.body.fun, f.body.arg
    if f.param.name in free_identifiers(g):
        return None
    return map_(g, map_(Lambda(f.param, inner), x))


map_fission = rule("mapFission")(map_fission_at)


# ---------------------------------------------------------------------------
# Common-subexpression factoring inside stage functions
# ---------------------------------------------------------------------------


def canonical_key(expr: Expr) -> str:
    """A string key equal for alpha-equivalent expressions (de Bruijn form)."""

    def go(e: Expr, env: dict[str, int], depth: int) -> str:
        if isinstance(e, Identifier):
            bound = env.get(e.name)
            return f"b{depth - bound}" if bound is not None else f"f:{e.name}"
        if isinstance(e, Lambda):
            return f"(lam {go(e.body, {**env, e.param.name: depth}, depth + 1)})"
        if isinstance(e, Let):
            value = go(e.value, env, depth)
            body = go(e.body, {**env, e.ident.name: depth}, depth + 1)
            return f"(let {value} {body})"
        if isinstance(e, App):
            return f"({go(e.fun, env, depth)} {go(e.arg, env, depth)})"
        return repr(e)

    return go(expr, {}, 0)


def _internal_binders(expr: Expr) -> frozenset[str]:
    names: set[str] = set()
    for node in subterms(expr):
        if isinstance(node, Lambda):
            names.add(node.param.name)
        elif isinstance(node, Let):
            names.add(node.ident.name)
    return frozenset(names)


def _replace_by_key(expr: Expr, key: str, replacement: Expr) -> Expr:
    if canonical_key(expr) == key:
        return replacement
    kids = children(expr)
    if not kids:
        return expr
    from repro.rise.traverse import rebuild

    return rebuild(expr, [_replace_by_key(k, key, replacement) for k in kids])


def cse_in_lambda(min_nodes: int = 8) -> Strategy:
    """fun p. C[A, A]  -->  fun p. (fun t. C[t, t])(A)

    Factors the largest repeated (alpha-equivalent) application inside a
    lambda body, provided the repeated term only refers to the lambda's own
    parameter or truly free variables (never to binders introduced inside
    the body).  Repeatedly applied, this recovers the sharing of the sobel
    lines after zip-merging duplicated them.
    """

    @rule(f"cseInLambda({min_nodes})")
    def run(expr: Expr) -> Optional[Expr]:
        if not isinstance(expr, Lambda):
            return None
        body = expr.body
        internal = _internal_binders(body)
        candidates: dict[str, list[Expr]] = {}
        for node in subterms(body):
            if not isinstance(node, App):
                continue
            if not _is_saturated(node):
                # Partial applications are function-valued; let-binding them
                # monomorphically would break uses at different types.
                continue
            size = sum(1 for _ in subterms(node))
            if size < min_nodes:
                continue
            if free_identifiers(node) & internal:
                continue
            candidates.setdefault(canonical_key(node), []).append(node)
        repeated = {
            key: nodes for key, nodes in candidates.items() if len(nodes) >= 2
        }
        if not repeated:
            return None
        # Choose the largest repeated term; skip candidates nested inside a
        # larger repeated term (factoring the outer one subsumes them).
        def size_of(key: str) -> int:
            return sum(1 for _ in subterms(repeated[key][0]))

        best_key = max(repeated, key=size_of)
        shared = repeated[best_key][0]
        from repro.rise.expr import Fresh

        temp = Identifier(Fresh.name("shared_"))
        new_body = _replace_by_key(body, best_key, temp)
        # A Let (not a beta-redex) so later simplification passes do not
        # re-inline the shared value.
        return Lambda(expr.param, Let(temp, shared, new_body))

    return run


def _is_saturated(expr: Expr) -> bool:
    """True when the application spine fully applies a primitive (the term
    denotes data, not a partially-applied function)."""
    from repro.rise.expr import primitive_arity

    head = expr
    argc = 0
    while isinstance(head, App):
        head = head.fun
        argc += 1
    if isinstance(head, Primitive):
        try:
            return argc == primitive_arity(head)
        except KeyError:
            return False
    return False


@rule("narrowSharedPairProducer")
def narrow_shared_pair_producer(expr: Expr) -> Optional[Expr]:
    """slide(k,1)(map(fun l. def t = V in PT[t], src))
       -->  map(map(fun r. PT[r]))(slide(k,1)(map(fun l. V, src)))

    When a stage produces a pair tree whose leaves are all views of one
    shared value ``t`` (the gray line feeding Ixx/Ixy/Iyy), narrow the
    produced element to the shared value itself and rebuild the pair
    structure as a view on the consumer side of the slide.  This makes the
    consumers' projections reduce to a *single* syntactic source, enabling
    sibling-stage merging (the compute_with effect).
    """
    from repro.rise.expr import Slide as SlideP

    outer = match_prim_app(expr, SlideP, 1)
    if outer is None:
        return None
    slide_prim, (mapped,) = outer
    from repro.nat import nat as _nat

    if slide_prim.step != _nat(1):
        return None
    inner = match_prim_app(mapped, Map, 2)
    if inner is None:
        return None
    _, (g, src) = inner
    if not (isinstance(g, Lambda) and isinstance(g.body, Let)):
        return None
    let_node = g.body
    t = let_node.ident.name
    pair_tree = let_node.body

    def is_view_of_t(e: Expr) -> bool:
        if free_identifiers(e) != {t}:
            return False
        head = e
        while isinstance(head, App):
            head = head.fun
        from repro.rise.expr import Identifier as Ident

        return isinstance(head, (Slide, Transpose, Join, Split, Map, Ident)) or (
            isinstance(e, Ident)
        )

    def check_tree(e: Expr) -> bool:
        head, args = (e, [])
        node = e
        m = match_prim_app(node, MakePair, 2)
        if m is not None:
            return check_tree(m[1][0]) and check_tree(m[1][1])
        return is_view_of_t(node)

    if not check_tree(pair_tree):
        return None

    from repro.rise.dsl import slide as slide_dsl
    from repro.rise.expr import Fresh, Identifier as Ident

    r = Ident(Fresh.name("row_"))
    rebuilt_tree = substitute(pair_tree, t, r)
    pairize = Lambda(r, rebuilt_tree)
    narrow_g = Lambda(g.param, let_node.value)
    return map_(
        map_(pairize),
        slide_dsl(slide_prim.size, slide_prim.step, map_(narrow_g, src)),
    )


def _projection_path(f: Expr) -> Optional[tuple[int, ...]]:
    """Recognize fst/snd primitives and fun p. <fst/snd chain>(p)."""
    if isinstance(f, Fst):
        return (0,)
    if isinstance(f, Snd):
        return (1,)
    if isinstance(f, Lambda):
        path: list[int] = []
        body = f.body
        while isinstance(body, App):
            head = body.fun
            if isinstance(head, Fst):
                path.append(0)
            elif isinstance(head, Snd):
                path.append(1)
            else:
                return None
            body = body.arg
        if isinstance(body, Identifier) and body.name == f.param.name:
            return tuple(reversed(path))
        return None
    return None


@rule("mergeSiblingMaps")
def merge_sibling_maps(expr: Expr) -> Optional[Expr]:
    """pair(phi_1(map(f_1, A)), ..., phi_k(map(f_k, A)))
       -->  def P = map(fun a. (f_1(a), ..., f_k(a)), A)
            in pair(phi_1(map(proj_1, P)), ...)

    with phi in {identity, slide(s, 1)}: sibling stages mapping over the
    *same* source merge into one pass over a shared tuple-producing map —
    the sharing Halide expresses with compute_with.  Components that are
    already projections of a shared map are left alone (idempotence).
    """
    # collect pair-tree leaves with their positions
    leaves: list[tuple[tuple[int, ...], Expr]] = []

    def collect(e: Expr, pos: tuple[int, ...]) -> None:
        m = match_prim_app(e, MakePair, 2)
        if m is not None:
            collect(m[1][0], pos + (0,))
            collect(m[1][1], pos + (1,))
            return
        leaves.append((pos, e))

    m0 = match_prim_app(expr, MakePair, 2)
    if m0 is None:
        return None
    collect(expr, ())
    if len(leaves) < 2:
        return None

    def decompose(e: Expr):
        """leaf -> (wrap_fn, map_fn, source) for phi(map(f, A)) forms."""
        head, args = (e, [])
        sm = match_prim_app(e, Slide, 1)
        if sm is not None and sm[0].step == nat(1):
            inner = match_prim_app(sm[1][0], Map, 2)
            if inner is None:
                return None
            _, (f, a) = inner
            if _projection_path(f) is not None:
                return None  # already shared
            size = sm[0].size
            from repro.rise.dsl import slide as slide_dsl

            return (lambda x, s=size: slide_dsl(s, 1, x)), f, a
        mm = match_prim_app(e, Map, 2)
        if mm is not None:
            f, a = mm[1]
            if _projection_path(f) is not None:
                return None
            return (lambda x: x), f, a
        return None

    parts = [(pos, decompose(e)) for pos, e in leaves]
    if any(p[1] is None for p in parts):
        return None
    # group by alpha-equal source; merge the largest group (>= 2)
    groups: list[list[int]] = []
    for i, (_pos, (_w, _f, a)) in enumerate(parts):
        for group in groups:
            _, (_w2, _f2, a2) = parts[group[0]]
            if alpha_equal(a, a2):
                group.append(i)
                break
        else:
            groups.append([i])
    groups = [g for g in groups if len(g) >= 2]
    if not groups:
        return None
    group = max(groups, key=len)

    from repro.rise.expr import Fresh, Identifier as Ident

    source = parts[group[0]][1][2]
    fns = [parts[i][1][1] for i in group]
    a_var = Ident(Fresh.name("a_"))
    tuple_body: Expr = App(fns[-1], a_var)
    for f in reversed(fns[:-1]):
        tuple_body = make_pair(App(f, a_var), tuple_body)
    shared_map = map_(Lambda(a_var, tuple_body), source)
    shared = Ident(Fresh.name("sharedmap_"))

    def proj_fn(index: int) -> Expr:
        p_var = Ident(Fresh.name("p_"))
        e: Expr = p_var
        for _ in range(index):
            e = App(Snd(), e)
        if index < len(fns) - 1:
            e = App(Fst(), e)
        return Lambda(p_var, e)

    replacement: dict[tuple[int, ...], Expr] = {}
    for rank, i in enumerate(group):
        pos, (wrap, _f, _a) = parts[i]
        replacement[pos] = wrap(map_(proj_fn(rank), shared))

    def rebuild_tree(e: Expr, pos: tuple[int, ...]) -> Expr:
        if pos in replacement:
            return replacement[pos]
        m = match_prim_app(e, MakePair, 2)
        if m is not None:
            return make_pair(
                rebuild_tree(m[1][0], pos + (0,)),
                rebuild_tree(m[1][1], pos + (1,)),
            )
        return e

    new_tree = rebuild_tree(expr, ())
    return Let(shared, shared_map, new_tree)
