"""Complete optimization schedules (paper listings 5 and 9) plus the
baseline lowerings used in the evaluation.

A schedule is a named composition of the strategies of
:mod:`repro.strategies.harris` that takes a high-level program to a
low-level program ready for code generation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro.elevate.core import Strategy, StrategyError, normalize, try_
from repro.rise.expr import Expr
from repro.rise.types import Type
from repro.rules.conv import rotate_values_consume, separate_conv_line, separate_conv_line_zip
from repro.strategies.harris import (
    circular_buffer_stages,
    fuse_operators,
    harris_ix_with_iy,
    parallel,
    sequential,
    simplify,
    split_pipeline,
    strip_parallel,
    unroll_reductions,
    use_private_memory,
    vectorize_reductions,
)

__all__ = [
    "Schedule",
    "cbuf_version",
    "cbuf_rrot_version",
    "cbuf_par_version",
    "cbuf_rrot_par_version",
    "naive_version",
    "DEFAULT_CHUNK",
    "DEFAULT_VEC",
    "DEFAULT_STRIP",
]

DEFAULT_CHUNK = 32
DEFAULT_VEC = 4

#: Chunks per thread strip of the strip-parallel schedule variants: each
#: global thread owns ``DEFAULT_STRIP`` consecutive 32-line chunks.
DEFAULT_STRIP = 2


@dataclass
class Schedule:
    """A named strategy pipeline from high-level to low-level RISE."""

    name: str
    steps: list[Strategy]

    def apply(self, program: Expr) -> Expr:
        for step in self.steps:
            program = step.apply(program)
        return program

    def apply_traced(self, program: Expr) -> list[tuple[str, Expr]]:
        """Apply, returning (step name, program after step) pairs."""
        trace = [("input", program)]
        for step in self.steps:
            program = step.apply(program)
            trace.append((step.name, program))
        return trace


def cbuf_version(
    type_env: Mapping[str, Type],
    chunk: int = DEFAULT_CHUNK,
    vec: int = DEFAULT_VEC,
) -> Schedule:
    """Listing 5: the ELEVATE strategy reproducing the reference Halide
    schedule — operator fusion, multi-threading over 32-line chunks,
    vectorization, sobel sharing, circular buffering, sequential line
    loops and unrolled reductions."""
    return Schedule(
        name="rise-cbuf",
        steps=[
            fuse_operators,
            harris_ix_with_iy,
            split_pipeline(chunk),
            parallel,
            simplify,
            harris_ix_with_iy,
            vectorize_reductions(vec, type_env),
            harris_ix_with_iy,
            circular_buffer_stages,
            sequential,
            use_private_memory(),
            unroll_reductions,
        ],
    )


def cbuf_rrot_version(
    type_env: Mapping[str, Type],
    chunk: int = DEFAULT_CHUNK,
    vec: int = DEFAULT_VEC,
) -> Schedule:
    """Listing 9: listing 5 plus convolution separation and register
    rotation — the optimizations beyond Halide."""
    return Schedule(
        name="rise-cbuf-rrot",
        steps=[
            fuse_operators,
            harris_ix_with_iy,
            split_pipeline(chunk),
            parallel,
            simplify,
            harris_ix_with_iy,
            try_(normalize(separate_conv_line | separate_conv_line_zip)),
            vectorize_reductions(vec, type_env),
            harris_ix_with_iy,
            circular_buffer_stages,
            try_(normalize(rotate_values_consume)),
            sequential,
            use_private_memory(),
            unroll_reductions,
        ],
    )


def cbuf_par_version(
    type_env: Mapping[str, Type],
    chunk: int = DEFAULT_CHUNK,
    vec: int = DEFAULT_VEC,
    strip: int = DEFAULT_STRIP,
) -> Schedule:
    """``cbuf+par``: listing 5 plus explicit strip parallelization — the
    chunk-level ``mapGlobal`` is regrouped into per-thread strips of
    ``strip`` chunks (Halide's ``parallel(y)`` with static chunking), so
    the multicore backends execute one strip per thread."""
    base = cbuf_version(type_env, chunk=chunk, vec=vec)
    return Schedule(name="rise-cbuf-par", steps=[*base.steps, strip_parallel(strip)])


def cbuf_rrot_par_version(
    type_env: Mapping[str, Type],
    chunk: int = DEFAULT_CHUNK,
    vec: int = DEFAULT_VEC,
    strip: int = DEFAULT_STRIP,
) -> Schedule:
    """``cbuf+rot+par``: listing 9 plus strip parallelization — the
    schedule the wall-clock evaluation runs across thread counts."""
    base = cbuf_rrot_version(type_env, chunk=chunk, vec=vec)
    return Schedule(
        name="rise-cbuf-rrot-par", steps=[*base.steps, strip_parallel(strip)]
    )


def naive_version(type_env: Mapping[str, Type] | None = None) -> Schedule:
    """A deliberately unoptimized lowering: inline everything and implement
    every pattern sequentially (no fusion control, no parallelism, no
    vectorization, no buffering).  Used as a sanity baseline."""
    from repro.rules.algorithmic import let_inline
    from repro.rules.lowering import use_map_seq, use_reduce_seq
    from repro.elevate.core import normalize

    return Schedule(
        name="rise-naive",
        steps=[
            normalize(let_inline),
            simplify,
            try_(normalize(use_map_seq | use_reduce_seq)),
        ],
    )
