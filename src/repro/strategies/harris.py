"""The paper's optimization strategies for the Harris pipeline
(section IV, listings 5 and 9), expressed as compositions of rewrite rules.

The strategy names follow the paper:

* ``fuse_operators``        — listing 5 step 1: dataflow graph -> line pipeline
* ``split_pipeline(n)``     — chunk the pipeline for multi-threading
* ``parallel``              — run chunks across global threads (mapGlobal)
* ``vectorize_reductions``  — SIMD-vectorize the per-line loops
* ``harris_ix_with_iy``     — share the sobel computations (compute_with)
* ``circular_buffer_stages``— buffer lines between stages
* ``sequential``            — make line computations sequential loops
* ``use_private_memory``    — keep per-line temporaries in private memory
* ``unroll_reductions``     — fully unroll the 3- and 9-element reductions
"""

from __future__ import annotations

from repro.elevate.core import (
    Strategy,
    apply_once,
    normalize,
    repeat,
    seq,
    try_,
)
from repro.nat import Nat, nat
from repro.rise.expr import (
    App,
    ArrayType,
    Expr,
    Map,
    MapSeqVec,
    PairType,
    ScalarType,
)
from repro.rise.traverse import children, rebuild
from repro.rules.algorithmic import (
    beta_reduction,
    fst_pair,
    let_inline,
    map_fusion,
    map_of_identity,
    slide_after_split,
    slide_before_map,
    slide_before_slide,
    slide_outside_zip,
    snd_pair,
    split_join,
    zip_same,
)
from repro.rules.lowering import (
    slide_to_circular_buffer,
    slide_to_rotate_values,
    unroll_map_seq,
    unroll_reduce_seq,
    use_map_global,
    use_map_seq,
    use_reduce_seq,
    use_reduce_seq_unroll,
)
from repro.rules.structure import cse_in_lambda, zip_of_maps
from repro.rise.types import AddressSpace
from repro.strategies.scoping import down_arg, in_chunk_function

__all__ = [
    "lower_dot",
    "simplify",
    "fuse_operators",
    "split_pipeline",
    "parallel",
    "strip_parallel",
    "sequential",
    "harris_ix_with_iy",
    "share_stages",
    "circular_buffer_stages",
    "vectorize_reductions",
    "unroll_reductions",
    "use_private_memory",
]

from repro.rules.algorithmic import reduce_map_fusion

#: The paper's first example strategy (section II-A).
lower_dot = apply_once(reduce_map_fusion)
lower_dot.name = "lowerDot"

_SIMPLIFY_RULES = beta_reduction | fst_pair | snd_pair | map_of_identity

#: Cleanup pass: beta/projection reduction and identity-map removal.
simplify = normalize(_SIMPLIFY_RULES)
simplify.name = "simplify"

from repro.rules.structure import slide_before_map_view  # noqa: E402

_FUSION_RULES = (
    beta_reduction
    | fst_pair
    | snd_pair
    | map_of_identity
    | map_fusion
    | zip_of_maps
    | zip_same
    | slide_outside_zip
    | slide_before_map_view
)

#: fuseOperators (listing 5): inline the dataflow lets, then normalize with
#: the fusion rule set until the program is a line pipeline
#: ``map(grayLine) |> slide(3,1) |> map(sobelLine) |> slide(3,1) |> map(coarsityLine)``.
fuse_operators = seq(
    normalize(let_inline),
    normalize(_FUSION_RULES),
)
fuse_operators.name = "fuseOperators"


from repro.rules.algorithmic import (  # noqa: E402
    eta_reduction,
    fst_unzip,
    map_proj_fusion,
    snd_unzip,
)
from repro.rules.structure import (  # noqa: E402
    merge_sibling_maps,
    narrow_shared_pair_producer,
)

_PROJECTION_CLEANUP = (
    beta_reduction
    | eta_reduction
    | fst_unzip
    | snd_unzip
    | map_fusion
    | map_proj_fusion
    | fst_pair
    | snd_pair
    | map_of_identity
)

#: harrisIxWithIy: share the sobel-line computations between their consumers
#: (the effect of Halide's ``Ix.compute_with(Iy, x)``).  Composition:
#: factor repeated computations inside stage functions (cse), narrow
#: producers that emit duplicated pair components, clean up the resulting
#: projections, merge sibling maps over the now-identical source into one
#: tuple-producing pass, and factor again so each sobel is computed once.
harris_ix_with_iy = (
    normalize(cse_in_lambda(min_nodes=10))
    >> try_(normalize(narrow_shared_pair_producer))
    >> normalize(_PROJECTION_CLEANUP)
    >> try_(normalize(merge_sibling_maps))
    >> normalize(cse_in_lambda(min_nodes=10))
)
harris_ix_with_iy.name = "harrisIxWithIy"

#: Pipeline-agnostic alias for the sharing pass.  The name above is the
#: paper's (it demonstrates the pass on Harris's sobel stage); nothing
#: in the composition mentions Harris — it is generic CSE plus
#: pair-producer narrowing — and the zoo registry and the autotuner
#: apply it to every registered pipeline.  Same object, so search logs
#: and schedule step names keep the paper's ``harrisIxWithIy`` label.
share_stages = harris_ix_with_iy


def split_pipeline(chunk_lines) -> Strategy:
    """splitPipeline(n) (section IV-A): split the output into chunks of n
    lines and propagate the split to the start of the pipeline, producing
    ``slide(n+4, n) |> map(<whole pipeline on a chunk>) |> join``.

    Composition per listing 6: splitJoin on the last map, then movement
    rules (slideAfterSplit, slideBeforeMap, slideBeforeSlide) and map
    fusions — applied along the pipeline's argument chain only, so stage
    *functions* are never rewritten (the recomputation the unrestricted
    slideBeforeMap would introduce at stage level is only correct at chunk
    borders, which is precisely where this traversal applies it).
    """
    chunk_lines = nat(chunk_lines)
    propagate = repeat(
        down_arg(
            slide_after_split
            | slide_before_slide
            | slide_before_map
            | map_fusion
            | beta_reduction
        )
    )
    strategy = seq(apply_once(split_join(chunk_lines)), propagate)
    strategy.name = f"splitPipeline({chunk_lines!r})"
    return strategy


#: parallel: implement the outermost (chunk) map across global threads.
parallel = apply_once(use_map_global)
parallel.name = "parallel"


def strip_parallel(strip) -> Strategy:
    """stripParallel(k): regroup the global chunk map into per-thread
    strips of ``k`` chunks (Halide's ``parallel(y)`` with static chunking).

    Applied as the *final* schedule step, after every other lowering: the
    fully lowered pipeline's outermost ``mapGlobal`` (over row chunks)
    becomes ``split(k) |> mapGlobal(mapSeq(chunk)) |> join`` — each global
    thread walks ``k`` consecutive chunks sequentially, so the parallel
    extent equals the strip count and one strip maps onto one OpenMP /
    strip-pool thread.  Running it last keeps the chunk-scoped strategies
    (``circularBufferStages``, ``sequential``) oblivious to the regrouping.
    """
    from repro.rules.lowering import strip_parallel_map

    strategy = apply_once(strip_parallel_map(strip))
    strategy.name = f"stripParallel({nat(strip)!r})"
    return strategy


#: circularBufferStages (listing 8): rewrite the stage slides inside the
#: parallel chunk into circular buffers, fusing each producing map into the
#: buffer's load function.
circular_buffer_stages = in_chunk_function(
    repeat(down_arg(slide_to_circular_buffer(AddressSpace.GLOBAL)))
)
circular_buffer_stages.name = "circularBufferStages"


#: sequential: implement remaining high-level maps/reduces inside the chunk
#: with sequential loops.
sequential = try_(
    in_chunk_function(normalize(use_map_seq | use_reduce_seq))
) >> try_(normalize(use_map_seq | use_reduce_seq))
sequential.name = "sequential"


#: unrollReductions: fully unroll the small (3- and 9-element) reductions.
unroll_reductions = try_(normalize(unroll_reduce_seq | use_reduce_seq_unroll))
unroll_reductions.name = "unrollReductions"


def use_private_memory() -> Strategy:
    """usePrivateMemory: keep rotation temporaries in private memory.

    Ensures every ``rotateValues`` targets the PRIVATE address space, so
    code generation keeps the rotating window in registers (materializing
    it with ``toMem`` would turn the streamed vertical reductions into a
    separate scalar pass, which is exactly what rotation avoids)."""
    from repro.rise.expr import RotateValues

    from repro.elevate.core import rule

    @rule("privateRotation")
    def mark(expr: Expr):
        if isinstance(expr, RotateValues) and expr.addr is not AddressSpace.PRIVATE:
            return RotateValues(addr=AddressSpace.PRIVATE, size=expr.size)
        return None

    strategy = try_(normalize(mark))
    strategy.name = "usePrivateMemory"
    return strategy


def _is_vectorizable_data(dtype) -> bool:
    if isinstance(dtype, ScalarType):
        return True
    if isinstance(dtype, PairType):
        return _is_vectorizable_data(dtype.fst) and _is_vectorizable_data(dtype.snd)
    return False


def vectorize_reductions(width, type_env) -> Strategy:
    """vectorizeReductions(vec) (listing 7): SIMD-vectorize every per-line
    loop of the program.

    The elementary rewrites of listing 7 (startVectorization,
    vectorizeBeforeMap, vectorizeBeforeMapReduce) are implemented and
    tested in :mod:`repro.rules.vectorize`; at whole-pipeline scale this
    strategy introduces their packaged result directly: each line-level
    ``map`` — a map over a *symbolic-length* array producing scalar (or
    pair-of-scalar) elements — becomes the low-level ``mapSeqVec`` pattern,
    a strip-mined SIMD loop.  Line lengths are rounded up to a multiple of
    the vector width by the code generator, the option the paper also uses.

    Type information decides applicability, so this is a typed strategy:
    it infers types once per application (``type_env`` types the free
    identifiers of the program being rewritten).
    """
    width = nat(width)
    from repro.elevate.core import Failure, RewriteResult, Success
    from repro.rise.typecheck import infer_types

    def run(expr: Expr) -> RewriteResult:
        typing = infer_types(expr, type_env, strict=False)
        changed: list[bool] = []

        def _line_result(result_type) -> bool:
            if not isinstance(result_type, ArrayType):
                return False
            if result_type.size.is_constant():
                return False  # window dimension, not a line
            return _is_vectorizable_data(result_type.elem)

        def should_vectorize(node: Expr) -> bool:
            if not (isinstance(node, App) and isinstance(node.fun, App)):
                return False
            if type(node.fun.fun) is not Map:
                return False
            try:
                result_type = typing.of(node)
            except Exception:
                return False
            return _line_result(result_type)

        def should_vectorize_partial(node: Expr) -> bool:
            # map(f) used point-free (e.g. as the function of an outer map):
            # its type is [n]s -> [n]t
            from repro.rise.types import FunType

            if not (isinstance(node, App) and type(node.fun) is Map):
                return False
            try:
                result_type = typing.of(node)
            except Exception:
                return False
            return isinstance(result_type, FunType) and _line_result(result_type.ret)

        def go(node: Expr) -> Expr:
            kids = children(node)
            node2 = rebuild(node, [go(k) for k in kids]) if kids else node
            # Applicability is decided on the *original* node (rebuilt nodes
            # have no typing entry; rewrites below preserve the type).
            if should_vectorize(node):
                changed.append(True)
                inner = node2.fun
                return App(App(MapSeqVec(width=width), inner.arg), node2.arg)
            if should_vectorize_partial(node):
                changed.append(True)
                return App(MapSeqVec(width=width), node2.arg)
            return node2

        rewritten = go(expr)
        if not changed:
            return Failure(strategy, "no line-level map to vectorize")
        return Success(rewritten)

    strategy = Strategy(run, f"vectorizeReductions({width!r})")
    return strategy
