"""Scoped traversal combinators used by the pipeline-level strategies.

The pipeline transformations of section IV act at precise locations:
splitting propagates along the *argument chain* of the pipeline (never
into stage functions), and circular buffering rewrites the stage slides
inside the parallel chunk function.  These combinators express those
scopes on top of the generic ELEVATE traversals.
"""

from __future__ import annotations

from repro.elevate.core import Failure, RewriteResult, Strategy, Success
from repro.rise.expr import App, Expr, Lambda, MapGlobal, MapSeq, Primitive
from repro.rise.traverse import app_spine, from_spine

__all__ = ["down_arg", "in_chunk_function", "typed_rewrite"]


def down_arg(strategy: Strategy) -> Strategy:
    """Try the strategy at the current node, else descend into the argument
    position only: ``s <+ argument(down_arg(s))``.

    This walks the pipeline spine ``x |> f |> g`` (which nests as
    ``g(f(x))``) without ever entering the stage functions ``f``/``g`` —
    the scope in which split propagation is valid.
    """

    def run(expr: Expr) -> RewriteResult:
        result = strategy(expr)
        if isinstance(result, Success):
            return result
        if isinstance(expr, App):
            inner = run(expr.arg)
            if isinstance(inner, Success):
                return Success(App(expr.fun, inner.expr))
        return Failure(wrapper, "no location on the argument chain matched")

    wrapper = Strategy(run, f"downArg({strategy.name})")
    return wrapper


def in_chunk_function(strategy: Strategy) -> Strategy:
    """Apply a strategy to the body of the chunk function — the lambda
    inside the (first) ``mapGlobal`` (or ``mapSeq`` for single-threaded
    ablation variants)."""

    def run(expr: Expr) -> RewriteResult:
        found: list[bool] = []

        def go(e: Expr) -> Expr | None:
            if found:
                return None
            head, args = app_spine(e)
            if isinstance(head, (MapGlobal, MapSeq)) and args and isinstance(args[0], Lambda):
                chunk = args[0]
                result = strategy(chunk.body)
                if isinstance(result, Failure):
                    return None
                found.append(True)
                new_chunk = Lambda(chunk.param, result.expr)
                return from_spine(head, [new_chunk] + args[1:])
            if isinstance(e, App):
                new_fun = go(e.fun)
                if new_fun is not None:
                    return App(new_fun, e.arg)
                new_arg = go(e.arg)
                if new_arg is not None:
                    return App(e.fun, new_arg)
            if isinstance(e, Lambda):
                new_body = go(e.body)
                if new_body is not None:
                    return Lambda(e.param, new_body)
            return None

        rewritten = go(expr)
        if rewritten is None:
            return Failure(wrapper, "no mapGlobal chunk found or strategy failed")
        return Success(rewritten)

    wrapper = Strategy(run, f"inChunkFunction({strategy.name})")
    return wrapper


def typed_rewrite(name: str, type_env, node_rewriter) -> Strategy:
    """Build a strategy that may inspect inferred types.

    ``node_rewriter(expr, typing)`` returns the rewritten expression or
    None.  Types are inferred once per application over the whole program,
    which keeps rules that need type information (such as vectorization's
    divisibility/scalar-element conditions) out of the untyped core.
    """
    from repro.elevate.core import rule
    from repro.rise.typecheck import infer_types
    from repro.rise.types import TypeError_

    @rule(name)
    def run(expr: Expr):
        try:
            typing = infer_types(expr, type_env)
        except TypeError_:
            return None
        return node_rewriter(expr, typing)

    return run
