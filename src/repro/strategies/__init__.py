"""ELEVATE optimization strategies for the Harris pipeline (paper section IV)."""

from repro.strategies.discovered import (
    TUNED_SCHEDULES, register_tuned_schedule, tuned_schedule,
)
from repro.strategies.harris import (
    circular_buffer_stages, fuse_operators, harris_ix_with_iy, lower_dot, share_stages,
    parallel, sequential, simplify, split_pipeline, strip_parallel,
    unroll_reductions, use_private_memory, vectorize_reductions,
)
from repro.strategies.schedules import (
    DEFAULT_CHUNK, DEFAULT_STRIP, DEFAULT_VEC, Schedule, cbuf_par_version,
    cbuf_rrot_par_version, cbuf_rrot_version, cbuf_version, naive_version,
)
from repro.strategies.scoping import down_arg, in_chunk_function
