"""Machine-discovered schedules, registered as replayable artifacts.

The autotuner (:mod:`repro.tune`) searches sequences of the paper's
optimization moves and exports the winner as an action-name tuple.  This
module is where a discovery graduates into the codebase: the tuple is
committed under a stable name, and :func:`tuned_schedule` rebuilds the
exact :class:`~repro.strategies.schedules.Schedule` on demand — the same
replay path a fresh search log uses, so a registered discovery can never
drift from what the search actually ranked.

Registered discoveries (see ``docs/autotuner.md`` for the search that
produced them):

* ``tuned-harris-v1`` — found by ``tools/tune.py --seed 0 --beam 4
  --steps 6`` on the default objective (Cortex A73, 128x128, OpenCL-style
  launch).  Four moves — vectorize 8-wide, fuse, split into 32-line
  chunks across threads, circular-buffer the stages — reaching the same
  modeled runtime (0.156257 ms) as the hand-written listing 9
  ``cbuf+rot`` schedule with a shorter derivation: on this cost model,
  8-wide vectorization plus circular buffering already captures the
  savings listing 9 obtains from convolution separation and register
  rotation.  (Vectorization commutes with fusion here; the search's
  deterministic hash tie-break picked the vectorize-first order among
  equal-cost frontier states.)
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["TUNED_SCHEDULES", "register_tuned_schedule", "tuned_schedule"]

#: Registered discoveries: stable name -> ordered action names from the
#: :func:`repro.tune.space.default_action_pool` vocabulary.
TUNED_SCHEDULES: dict[str, tuple[str, ...]] = {
    "tuned-harris-v1": (
        "vectorize(8)",
        "fuse",
        "split(32)+parallel",
        "circularBufferStages",
    ),
}


def register_tuned_schedule(name: str, action_names: Sequence[str]) -> None:
    """Register (or re-pin) a discovered schedule under a stable name.

    Idempotent for identical action lists; re-registering a name with
    *different* actions raises ``ValueError`` — replace the name (bump
    the version suffix) instead of silently changing what it replays.
    """
    actions = tuple(str(a) for a in action_names)
    existing = TUNED_SCHEDULES.get(name)
    if existing is not None and existing != actions:
        raise ValueError(
            f"tuned schedule {name!r} already registered with different "
            f"actions {existing!r}; register a new name instead"
        )
    TUNED_SCHEDULES[name] = actions


def tuned_schedule(name: str, type_env: Mapping[str, "object"]):
    """Rebuild a registered discovery as a runnable ``Schedule``.

    Resolves the registered action names against ``type_env`` through
    :func:`repro.tune.export.schedule_from_actions` (imported lazily —
    the strategies package must not depend on the tuner at import time).
    Unknown names raise ``KeyError`` listing the registry.
    """
    actions = TUNED_SCHEDULES.get(name)
    if actions is None:
        known = ", ".join(sorted(TUNED_SCHEDULES)) or "<none>"
        raise KeyError(f"unknown tuned schedule {name!r} (registered: {known})")
    from repro.tune.export import schedule_from_actions

    return schedule_from_actions(actions, type_env, name=name)
