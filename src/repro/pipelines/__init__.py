"""Image-processing pipelines expressed in RISE (paper section III).

:mod:`~repro.pipelines.harris` is the paper's case study;
:mod:`~repro.pipelines.zoo` the workloads beyond it, and
:mod:`~repro.pipelines.registry` the catalog every generic consumer
(bench harness, AOT prebuild, autotuner, fuzzer) enumerates.
"""

from repro.pipelines.harris import (
    blur3x3, blur_input_type, blur_pipeline, gaussian3x3, harris,
    harris_input_type, harris_output_size, sobel_magnitude,
)
from repro.pipelines import operators
from repro.pipelines import zoo
from repro.pipelines import registry
