"""Image-processing pipelines expressed in RISE (paper section III)."""

from repro.pipelines.harris import (
    blur3x3, blur_input_type, blur_pipeline, gaussian3x3, harris,
    harris_input_type, harris_output_size, sobel_magnitude,
)
from repro.pipelines import operators
