"""The pipeline registry: one catalog for every end-to-end workload.

Every consumer that used to hardcode Harris — the bench harness, the
AOT kernel library, the autotuner CLI, the fuzzer — enumerates this
registry instead.  A :class:`PipelineSpec` bundles what each of them
needs:

* the RISE **builder** (algorithm only, no schedule) and its symbolic
  input type;
* the **NumPy reference** implementation for PSNR validation and
  differential tests;
* the valid **size domain** (:meth:`PipelineSpec.concrete_sizes` picks
  the smallest sizes legal under a schedule's chunk/vec/strip
  divisibility) and default **parameters** (e.g. the unsharp amount);
* the **named schedules** that structurally apply to it —
  *detected* by applying each schedule and inspecting the lowered
  program for its characteristic patterns (circular buffers, rotating
  registers, thread strips), never asserted per pipeline.

The registry also backs the engine's registered-builder source: the
``"zoo"`` builder (:func:`build_zoo_program`) compiles
``repro.compile("zoo", options={"pipeline": ..., "schedule": ...})``
for any registered pipeline, so serving and AOT prebuilds address zoo
kernels by name exactly like the Harris baselines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

from repro.nat import nat
from repro.rise.expr import Expr, Identifier
from repro.rise.traverse import subterms
from repro.rise.types import ArrayType, DataType
from repro.strategies.schedules import (
    DEFAULT_CHUNK,
    DEFAULT_STRIP,
    DEFAULT_VEC,
    Schedule,
    cbuf_par_version,
    cbuf_rrot_par_version,
    cbuf_rrot_version,
    cbuf_version,
    naive_version,
)

__all__ = [
    "SCHEDULE_NAMES",
    "DEFAULT_SCHEDULE",
    "PipelineSpec",
    "ScheduleReport",
    "REGISTRY",
    "names",
    "get",
    "register",
    "make_schedule",
    "applicable_schedules",
    "strategy_coverage",
    "build_zoo_program",
]

#: The named schedule family every pipeline is probed against, in
#: optimization order (each adds one more paper transformation).
SCHEDULE_NAMES = ("naive", "cbuf", "cbuf-rot", "cbuf-par", "cbuf-rot-par")

#: Schedule used when a caller does not pick one (the listing-5 ladder
#: rung that applies to every current pipeline).
DEFAULT_SCHEDULE = "naive"

_SCHEDULE_FACTORIES = {
    "naive": lambda env, chunk, vec, strip: naive_version(env),
    "cbuf": lambda env, chunk, vec, strip: cbuf_version(env, chunk=chunk, vec=vec),
    "cbuf-rot": lambda env, chunk, vec, strip: cbuf_rrot_version(
        env, chunk=chunk, vec=vec
    ),
    "cbuf-par": lambda env, chunk, vec, strip: cbuf_par_version(
        env, chunk=chunk, vec=vec, strip=strip
    ),
    "cbuf-rot-par": lambda env, chunk, vec, strip: cbuf_rrot_par_version(
        env, chunk=chunk, vec=vec, strip=strip
    ),
}


def make_schedule(
    name: str,
    type_env: Mapping[str, DataType],
    chunk: int | None = None,
    vec: int | None = None,
    strip: int | None = None,
) -> Schedule:
    """Instantiate a named schedule of the family for ``type_env``.

    Unknown names raise ``KeyError`` listing the family, so a typo'd
    request fails loudly instead of silently falling back to naive.
    """
    try:
        factory = _SCHEDULE_FACTORIES[name]
    except KeyError:
        known = ", ".join(SCHEDULE_NAMES)
        raise KeyError(f"no schedule {name!r} (known: {known})") from None
    chunk = chunk if chunk is not None else DEFAULT_CHUNK
    vec = vec if vec is not None else DEFAULT_VEC
    strip = strip if strip is not None else DEFAULT_STRIP
    return factory(dict(type_env), chunk, vec, strip)


@dataclass(frozen=True)
class PipelineSpec:
    """One registered workload: builder, reference, domain, baselines."""

    name: str
    title: str
    description: str
    #: RISE builder: ``build(input_expr, **params) -> Expr``.
    build: Callable[..., Expr]
    #: Name of the single free input array.
    input_name: str
    #: Zero-argument symbolic input type constructor.
    input_type: Callable[[], DataType]
    #: NumPy gold: ``reference(input_array, **params) -> np.ndarray``.
    reference: Callable[..., np.ndarray]
    #: Default values of the builder's scalar parameters.
    params: Mapping[str, float] = field(default_factory=dict)
    #: Smallest interesting output extent per dimension.
    floor: int = 8
    #: Registered-builder names of external baseline implementations.
    baselines: tuple[str, ...] = ()

    def expr(self, **params) -> Expr:
        """The high-level RISE program over its named input."""
        merged = {**self.params, **params}
        return self.build(Identifier(self.input_name), **merged)

    def type_env(self) -> dict[str, DataType]:
        """The symbolic type environment binding the input."""
        return {self.input_name: self.input_type()}

    def concrete_sizes(
        self,
        chunk: int | None = None,
        vec: int | None = None,
        strip: int = 1,
    ) -> dict[str, int]:
        """Smallest output sizes >= ``floor`` legal under a schedule's
        divisibility: ``chunk * strip | n`` (two chunks minimum, so the
        chunk boundary is inside the image) and ``vec | m``."""
        n_mult = max(1, int(chunk or 1) * int(strip or 1))
        m_mult = max(1, int(vec or 1))
        n = n_mult * max(1, math.ceil(self.floor / n_mult))
        if n == n_mult and n_mult > 1:
            n = 2 * n_mult
        m = m_mult * max(1, math.ceil(self.floor / m_mult))
        return {"n": n, "m": m}

    def input_shape(self, sizes: Mapping[str, int]) -> tuple[int, ...]:
        """The concrete input shape under ``sizes``."""
        dims: list[int] = []
        t = self.input_type()
        while isinstance(t, ArrayType):
            dims.append(int(t.size.evaluate(dict(sizes))))
            t = t.elem
        return tuple(dims)

    def make_inputs(
        self, sizes: Mapping[str, int], seed: int = 0
    ) -> dict[str, np.ndarray]:
        """A seeded random float32 input bound to the input name."""
        rng = np.random.default_rng(seed)
        return {self.input_name: rng.random(self.input_shape(sizes), dtype=np.float32)}

    def reference_output(
        self, inputs: Mapping[str, np.ndarray], **params
    ) -> np.ndarray:
        """The NumPy gold output for ``inputs`` (accepts overrides)."""
        merged = {**self.params, **params}
        return np.asarray(self.reference(inputs[self.input_name], **merged))

    def schedule(
        self,
        name: str = DEFAULT_SCHEDULE,
        chunk: int | None = None,
        vec: int | None = None,
        strip: int | None = None,
    ) -> Schedule:
        """A named schedule instantiated for this pipeline's type env."""
        return make_schedule(name, self.type_env(), chunk=chunk, vec=vec, strip=strip)


@dataclass(frozen=True)
class ScheduleReport:
    """Applicability verdict of one named schedule on one pipeline.

    ``lowers`` records that the schedule produced a compilable program
    at all; ``applies`` that its characteristic optimization actually
    fired (strategies are built from ``try_``/``repeat`` and degrade to
    no-ops on non-matching structure — a no-op is not applicability).
    ``markers`` counts the witness patterns in the lowered program.
    """

    schedule: str
    lowers: bool
    applies: bool
    markers: Mapping[str, int] = field(default_factory=dict)


_MARKER_KINDS = (
    "CircularBuffer",
    "RotateValues",
    "MapSeqVec",
    "MapGlobal",
    "Split",
)

_APPLICABILITY_CACHE: dict[tuple, dict[str, ScheduleReport]] = {}


def _markers(expr: Expr) -> dict[str, int]:
    kinds = [type(node).__name__ for node in subterms(expr)]
    return {k: kinds.count(k) for k in _MARKER_KINDS}


def applicable_schedules(
    spec: PipelineSpec | str,
    chunk: int = 4,
    vec: int = 4,
    strip: int = 2,
) -> dict[str, ScheduleReport]:
    """Probe every named schedule against one pipeline, structurally.

    Each schedule is applied to the high-level program and the result
    inspected for the patterns that *are* the optimization: ``cbuf``
    applies when a :class:`CircularBuffer` materialized, ``cbuf-rot``
    when rotating registers did, and the ``-par`` variants when strip
    parallelization introduced a thread-strip ``Split`` on top of an
    applying base schedule.  ``naive`` applies to anything that lowers.
    The probe is cached per (pipeline, chunk, vec, strip).
    """
    if isinstance(spec, str):
        spec = get(spec)
    key = (spec.name, chunk, vec, strip)
    cached = _APPLICABILITY_CACHE.get(key)
    if cached is not None:
        return cached

    env = spec.type_env()
    expr = spec.expr()
    lowered: dict[str, Expr | None] = {}
    for name in SCHEDULE_NAMES:
        sched = make_schedule(name, env, chunk=chunk, vec=vec, strip=strip)
        try:
            lowered[name] = sched.apply(expr)
        except Exception:
            lowered[name] = None

    reports: dict[str, ScheduleReport] = {}
    for name in SCHEDULE_NAMES:
        low = lowered[name]
        if low is None:
            reports[name] = ScheduleReport(name, lowers=False, applies=False)
            continue
        marks = _markers(low)
        if name == "naive":
            applies = True
        elif name == "cbuf":
            applies = marks["CircularBuffer"] > 0
        elif name == "cbuf-rot":
            applies = marks["RotateValues"] > 0
        else:
            base = lowered["cbuf" if name == "cbuf-par" else "cbuf-rot"]
            base_applies = (
                marks["CircularBuffer"] > 0
                if name == "cbuf-par"
                else marks["RotateValues"] > 0
            )
            strip_fired = base is not None and marks["Split"] > _markers(base)["Split"]
            applies = base_applies and strip_fired
        reports[name] = ScheduleReport(name, lowers=True, applies=applies, markers=marks)

    _APPLICABILITY_CACHE[key] = reports
    return reports


def strategy_coverage(
    spec: PipelineSpec | str,
    chunk: int = 4,
    vec: int = 4,
    strip: int = 2,
) -> dict[str, bool]:
    """Which *component* strategies fire on one pipeline.

    Reported per transformation rather than per schedule:
    ``separation`` is probed in the listing-9 position (after fusion,
    sharing and the parallel split, where the line-stencil shape the
    separation rules match actually exists), the rest are read off the
    schedule probes of :func:`applicable_schedules`.
    """
    from repro.elevate.core import normalize, try_
    from repro.rise.traverse import alpha_equal
    from repro.rules.conv import separate_conv_line, separate_conv_line_zip
    from repro.strategies.harris import (
        fuse_operators,
        harris_ix_with_iy,
        parallel,
        simplify,
        split_pipeline,
    )

    if isinstance(spec, str):
        spec = get(spec)
    reports = applicable_schedules(spec, chunk=chunk, vec=vec, strip=strip)

    prefix = [
        fuse_operators,
        harris_ix_with_iy,
        split_pipeline(chunk),
        parallel,
        simplify,
        harris_ix_with_iy,
    ]
    staged = spec.expr()
    for step in prefix:
        staged = step.apply(staged)
    separated = try_(normalize(separate_conv_line | separate_conv_line_zip)).apply(staged)

    cbuf = reports["cbuf"]
    par = reports["cbuf-par"]
    strip_fired = (
        par.lowers
        and cbuf.lowers
        and par.markers.get("Split", 0) > cbuf.markers.get("Split", 0)
    )
    return {
        "separation": not alpha_equal(staged, separated),
        "circular-buffer": cbuf.applies,
        "rotation": reports["cbuf-rot"].applies,
        "vectorize": bool(cbuf.markers.get("MapSeqVec", 0)),
        "strip-parallel": strip_fired,
    }


# ----------------------------------------------------------------------
# The catalog.
# ----------------------------------------------------------------------

REGISTRY: dict[str, PipelineSpec] = {}


def register(spec: PipelineSpec) -> PipelineSpec:
    """Add a spec to the catalog; duplicate names are an error."""
    if spec.name in REGISTRY:
        raise ValueError(f"pipeline {spec.name!r} is already registered")
    REGISTRY[spec.name] = spec
    return spec


def names() -> tuple[str, ...]:
    """All registered pipeline names, in registration order."""
    return tuple(REGISTRY)


def get(name: str) -> PipelineSpec:
    """Look up a spec; unknown names raise with the catalog listed."""
    try:
        return REGISTRY[name]
    except KeyError:
        known = ", ".join(REGISTRY)
        raise KeyError(f"no pipeline {name!r} (known: {known})") from None


def _register_all() -> None:
    from repro.image import reference
    from repro.pipelines import zoo
    from repro.pipelines.harris import harris as harris_expr
    from repro.pipelines.harris import harris_input_type

    register(
        PipelineSpec(
            name="harris",
            title="Harris corner detection",
            description="The paper's case study: grayscale, Sobel "
            "gradients, structure tensor, coarsity (listing 3).",
            build=lambda rgb, kappa=float(reference.HARRIS_KAPPA): harris_expr(
                rgb, kappa=kappa
            ),
            input_name="rgb",
            input_type=harris_input_type,
            reference=lambda rgb, kappa=float(
                reference.HARRIS_KAPPA
            ): reference.harris(rgb, kappa=kappa),
            params={"kappa": float(reference.HARRIS_KAPPA)},
            baselines=("harris-halide", "harris-opencv", "harris-lift"),
        )
    )
    register(
        PipelineSpec(
            name="gaussian-blur",
            title="Separable Gaussian blur",
            description="Two chained binomial 3x3 convolutions (an "
            "effective 5x5 Gaussian) with a buffered intermediate stage.",
            build=zoo.gaussian_blur,
            input_name="img",
            input_type=zoo.gaussian_blur_input_type,
            reference=zoo.reference_gaussian_blur,
        )
    )
    register(
        PipelineSpec(
            name="sobel-magnitude",
            title="Sobel gradient magnitude",
            description="Grayscale stage, Sobel x/y stencils, squared "
            "gradient magnitude ix^2 + iy^2.",
            build=zoo.sobel_magnitude_rgb,
            input_name="rgb",
            input_type=zoo.sobel_magnitude_input_type,
            reference=zoo.reference_sobel_magnitude,
        )
    )
    register(
        PipelineSpec(
            name="unsharp-mask",
            title="Unsharp masking",
            description="(1+amount)*center - amount*gaussian over the "
            "grayscale stage; amount=0 is the identity.",
            build=zoo.unsharp_mask,
            input_name="rgb",
            input_type=zoo.unsharp_mask_input_type,
            reference=zoo.reference_unsharp_mask,
            params={"amount": zoo.DEFAULT_UNSHARP_AMOUNT},
        )
    )
    register(
        PipelineSpec(
            name="box-blur",
            title="Box blur",
            description="3x3 neighborhood mean (sum3x3 / 9), the "
            "simplest single-stencil pipeline.",
            build=zoo.box_blur,
            input_name="img",
            input_type=zoo.box_blur_input_type,
            reference=zoo.reference_box_blur,
        )
    )
    register(
        PipelineSpec(
            name="pyramid",
            title="Gaussian downsample pyramid",
            description="Two stride-2 Gaussian levels (blur + decimate "
            "fused into strided stencils).",
            build=zoo.downsample_pyramid,
            input_name="img",
            input_type=zoo.downsample_pyramid_input_type,
            reference=zoo.reference_downsample_pyramid,
        )
    )


_register_all()


# ----------------------------------------------------------------------
# The engine's registered-builder entry point.
# ----------------------------------------------------------------------


def build_zoo_program(
    pipeline: str,
    schedule: str = DEFAULT_SCHEDULE,
    chunk: int | None = None,
    vec: int | None = None,
    strip: int | None = None,
    **params,
):
    """Builder behind ``repro.compile("zoo", options={...})``.

    Lowers one registered pipeline under one named schedule to an
    :class:`~repro.codegen.ir.ImpProgram`.  All options are plain JSON
    values, so zoo kernels are addressable — and content-addressed —
    through :class:`~repro.engine.request.CompileRequest` exactly like
    the Harris baseline builders.
    """
    from repro.codegen.lower import compile_program

    spec = get(pipeline)
    env = spec.type_env()
    sched = make_schedule(schedule, env, chunk=chunk, vec=vec, strip=strip)
    lowered = sched.apply(spec.expr(**params))
    name = f"zoo_{pipeline}_{schedule}".replace("-", "_")
    return compile_program(lowered, env, name)
