"""The image-processing macro layer (paper listings 1 and 2).

Macros are Python functions that expand to generic RISE patterns — exactly
the paper's extension mechanism: ``stencil2d`` and friends add domain
abstractions *without* touching the compiler.  All operators are built
from ``map``, ``zip``, ``slide``, ``transpose``, ``join`` and ``reduce``.
"""

from __future__ import annotations

import numpy as np

from repro.rise.dsl import (
    arr,
    dot,
    fst,
    fun,
    join,
    lit,
    map_,
    pipe,
    reduce_,
    slide,
    snd,
    transpose,
    zip_,
)
from repro.rise.expr import Expr, Lambda
from repro.image.reference import (
    GRAY_WEIGHTS,
    HARRIS_KAPPA,
    SOBEL_X,
    SOBEL_Y,
)

__all__ = [
    "map2d",
    "zip2d",
    "grayscale",
    "mul2d",
    "coarsity",
    "slide2d",
    "stencil2d",
    "convolve",
    "conv3x3",
    "sobel_x",
    "sobel_y",
    "sum_stencil",
    "sum3x3",
    "SOBEL_X_WEIGHTS",
    "SOBEL_Y_WEIGHTS",
    "GRAY_WEIGHT_VECTOR",
]

GRAY_WEIGHT_VECTOR = arr(list(GRAY_WEIGHTS))
SOBEL_X_WEIGHTS = arr([list(row) for row in SOBEL_X])
SOBEL_Y_WEIGHTS = arr([list(row) for row in SOBEL_Y])


def map2d(f: Expr, image: Expr) -> Expr:
    """map2d(f) = map(map(f))                          (listing 1)"""
    return map_(map_(f), image)


def zip2d(a: Expr, b: Expr) -> Expr:
    """zip2d : [n][m]s -> [n][m]t -> [n][m](s x t)     (listing 1)"""
    return map_(fun(lambda p: zip_(fst(p), snd(p))), zip_(a, b))


def grayscale(rgb: Expr) -> Expr:
    """[3][n][m]f32 -> [n][m]f32: per-pixel dot with the RGB weights
    after bringing the channel dimension innermost.   (listing 1)"""
    lines = map_(transpose(), transpose(rgb))
    return map2d(dot(GRAY_WEIGHT_VECTOR), lines)


def mul2d(a: Expr, b: Expr) -> Expr:
    """Pointwise product of two images (listing 1's x2d)."""
    return map2d(fun(lambda p: fst(p) * snd(p)), zip2d(a, b))


def coarsity(sxx: Expr, sxy: Expr, syy: Expr, kappa: float = float(HARRIS_KAPPA)) -> Expr:
    """det - kappa * trace^2 over zipped structure-tensor images (listing 1)."""
    k = lit(kappa)

    def per_pixel(p: Expr) -> Expr:
        s_xx = fst(p)
        s_xy = fst(snd(p))
        s_yy = snd(snd(p))
        det = s_xx * s_yy - s_xy * s_xy
        trace = s_xx + s_yy
        return det - k * trace * trace

    return map2d(fun(per_pixel), zip2d(sxx, zip2d(sxy, syy)))


def slide2d(size: int, step: int, image: Expr) -> Expr:
    """2-d sliding windows: map(slide) |> slide |> map(transpose)
                                                       (listing 2)"""
    return pipe(
        image,
        map_(slide(size, step)),
        slide(size, step),
        map_(transpose()),
    )


def stencil2d(size: int, f: Lambda, image: Expr) -> Expr:
    """stencil2d(N, f) = slide2d(N, 1) |> map2d(f)     (listing 2)"""
    return map2d(f, slide2d(size, 1, image))


def convolve(size: int, weights: Expr, image: Expr) -> Expr:
    """``size`` x ``size`` convolution: dot of flattened weights and
    neighborhood (listing 2, window size as a macro parameter)."""
    f = fun(lambda w: dot(join(weights))(join(w)))
    return stencil2d(size, f, image)


def conv3x3(weights: Expr, image: Expr) -> Expr:
    """3x3 convolution: dot of flattened weights and neighborhood
                                                       (listing 2)"""
    return convolve(3, weights, image)


def sobel_x(image: Expr) -> Expr:
    return conv3x3(SOBEL_X_WEIGHTS, image)


def sobel_y(image: Expr) -> Expr:
    return conv3x3(SOBEL_Y_WEIGHTS, image)


def sum_stencil(size: int, image: Expr) -> Expr:
    """+NxN = stencil2d(N, fun w. reduce(+, 0, join(w)))  (listing 2)"""
    f = fun(lambda w: reduce_(fun(lambda a, b: a + b), lit(0.0), join(w)))
    return stencil2d(size, f, image)


def sum3x3(image: Expr) -> Expr:
    """+3x3 = stencil2d(3, fun w. reduce(+, 0, join(w)))  (listing 2)"""
    return sum_stencil(3, image)
