"""The pipeline zoo: image-processing workloads beyond Harris.

Each pipeline here is an algorithm-only RISE builder in the style of
:mod:`repro.pipelines.harris` — built from the listing-1/2 macro layer,
with no schedule decisions baked in — paired with a NumPy reference
implementation used for PSNR validation, differential testing and
fuzzing.  The catalog lives in :mod:`repro.pipelines.registry`, which
maps every builder to its input type, size domain and the named
schedules that structurally apply to it.

Design notes that make the strategies transfer:

* ``sobel_magnitude_rgb`` and ``unsharp_mask`` take an RGB input and
  compute ``grayscale`` as an explicit first stage, so circular
  buffering has a *computed* producer stage to buffer (a slide over a
  raw input view is a free access pattern and is deliberately not
  buffered).
* ``unsharp_mask`` expresses the center-pixel term as a convolution
  with the separable delta kernel ``[0,1,0] x [0,1,0]`` so the whole
  pipeline stays inside the stencil vocabulary and convolution
  separation applies to both of its convolutions.
* ``downsample_pyramid`` uses stride-2 sliding windows
  (``slide2d(3, 2)``); the slide type scheme ``[sp*n + sz - sp]t ->
  [n][sz]t`` and the Nat solver handle the strided sizes symbolically,
  but stride-2 windows are not circular-bufferable (the rotation and
  buffering rules require unit step), which the registry records as a
  structural fact rather than asserting.
"""

from __future__ import annotations

import numpy as np

from repro.nat import nat
from repro.rise.dsl import arr, dot, fst, fun, join, let, lit, map_, snd
from repro.rise.expr import Expr
from repro.rise.types import DataType, array, f32
from repro.image import reference
from repro.pipelines.harris import gaussian3x3
from repro.pipelines.operators import (
    conv3x3,
    grayscale,
    map2d,
    mul2d,
    slide2d,
    sobel_x,
    sobel_y,
    sum3x3,
    zip2d,
)

__all__ = [
    "GAUSSIAN_KERNEL_2D",
    "DELTA_KERNEL_2D",
    "DEFAULT_UNSHARP_AMOUNT",
    "gaussian_blur",
    "gaussian_blur_input_type",
    "sobel_magnitude_rgb",
    "sobel_magnitude_input_type",
    "unsharp_mask",
    "unsharp_mask_input_type",
    "box_blur",
    "box_blur_input_type",
    "downsample_pyramid",
    "downsample_pyramid_input_type",
    "reference_gaussian_blur",
    "reference_sobel_magnitude",
    "reference_unsharp_mask",
    "reference_box_blur",
    "reference_downsample_pyramid",
]

#: The binomial 3x3 Gaussian ([1,2,1] x [1,2,1] / 16) shared by the
#: blur, unsharp and pyramid pipelines — separable by construction.
GAUSSIAN_KERNEL_2D = np.outer([1.0, 2.0, 1.0], [1.0, 2.0, 1.0]).astype(np.float32) / 16.0

#: The 3x3 identity (delta) kernel: convolution with it reproduces the
#: valid-region center pixel.  Separable as [0,1,0] x [0,1,0].
DELTA_KERNEL_2D = np.zeros((3, 3), dtype=np.float32)
DELTA_KERNEL_2D[1, 1] = 1.0

DEFAULT_UNSHARP_AMOUNT = 0.5

_DELTA_WEIGHTS = arr([[0.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 0.0]])


# ----------------------------------------------------------------------
# Separable Gaussian blur: two 3x3 Gaussian passes.
# ----------------------------------------------------------------------


def gaussian_blur(image: Expr) -> Expr:
    """Two-stage Gaussian blur: ``[n+4][m+4]f32 -> [n][m]f32``.

    Two chained binomial 3x3 convolutions (an effective 5x5 Gaussian);
    the intermediate blur is a ``let``-bound stage so circular
    buffering can stream it line by line.
    """
    return let(gaussian3x3(image), lambda g1: gaussian3x3(g1), name="G1")


def gaussian_blur_input_type(n=None, m=None) -> DataType:
    """``[n+4][m+4]f32`` — each 3x3 stage shrinks the image by 2."""
    n = n if n is not None else nat("n")
    m = m if m is not None else nat("m")
    return array(n + 4, array(m + 4, f32))


def reference_gaussian_blur(image: np.ndarray) -> np.ndarray:
    """NumPy gold: two valid-region 3x3 Gaussian convolutions."""
    once = reference.conv2d_valid(image, GAUSSIAN_KERNEL_2D)
    return reference.conv2d_valid(once, GAUSSIAN_KERNEL_2D)


# ----------------------------------------------------------------------
# Sobel gradient magnitude over an RGB input.
# ----------------------------------------------------------------------


def sobel_magnitude_rgb(rgb: Expr) -> Expr:
    """Squared Sobel gradient magnitude: ``[3][n+2][m+2]f32 -> [n][m]f32``.

    Grayscale conversion is the first (buffered) stage; the two Sobel
    convolutions then combine as ``ix^2 + iy^2`` (the squared magnitude,
    as in the Harris structure tensor — no square root is taken).
    """
    return let(
        grayscale(rgb),
        lambda gray: let(
            sobel_x(gray),
            lambda ix: let(
                sobel_y(gray),
                lambda iy: map2d(
                    fun(lambda p: fst(p) + snd(p)),
                    zip2d(mul2d(ix, ix), mul2d(iy, iy)),
                ),
                name="Iy",
            ),
            name="Ix",
        ),
        name="I",
    )


def sobel_magnitude_input_type(n=None, m=None) -> DataType:
    """``[3][n+2][m+2]f32`` — one 3x3 stencil of shrink."""
    n = n if n is not None else nat("n")
    m = m if m is not None else nat("m")
    return array(3, array(n + 2, array(m + 2, f32)))


def reference_sobel_magnitude(rgb: np.ndarray) -> np.ndarray:
    """NumPy gold: grayscale, Sobel x/y, squared magnitude."""
    gray = reference.grayscale(rgb)
    ix = reference.sobel_x(gray)
    iy = reference.sobel_y(gray)
    return ix * ix + iy * iy


# ----------------------------------------------------------------------
# Unsharp masking over an RGB input.
# ----------------------------------------------------------------------


def unsharp_mask(rgb: Expr, amount: float = DEFAULT_UNSHARP_AMOUNT) -> Expr:
    """Unsharp mask: ``[3][n+2][m+2]f32 -> [n][m]f32``.

    ``sharp = (1 + amount) * center - amount * blur`` over the
    grayscale image.  The center term is a convolution with the delta
    kernel, so both terms are 3x3 stencils over the same grayscale
    stage and separation/buffering see one uniform structure.  With
    ``amount = 0`` the pipeline is the identity on the valid region.
    """
    a = float(amount)
    return let(
        grayscale(rgb),
        lambda gray: let(
            conv3x3(_DELTA_WEIGHTS, gray),
            lambda center: let(
                gaussian3x3(gray),
                lambda blurred: map2d(
                    fun(lambda p: lit(1.0 + a) * fst(p) - lit(a) * snd(p)),
                    zip2d(center, blurred),
                ),
                name="B",
            ),
            name="C",
        ),
        name="I",
    )


def unsharp_mask_input_type(n=None, m=None) -> DataType:
    """``[3][n+2][m+2]f32`` — one 3x3 stencil of shrink."""
    n = n if n is not None else nat("n")
    m = m if m is not None else nat("m")
    return array(3, array(n + 2, array(m + 2, f32)))


def reference_unsharp_mask(
    rgb: np.ndarray, amount: float = DEFAULT_UNSHARP_AMOUNT
) -> np.ndarray:
    """NumPy gold: sharpened = (1+a) * center - a * Gaussian blur."""
    gray = reference.grayscale(rgb)
    center = gray[1:-1, 1:-1]
    blur = reference.conv2d_valid(gray, GAUSSIAN_KERNEL_2D)
    return (1.0 + amount) * center - amount * blur


# ----------------------------------------------------------------------
# Box blur.
# ----------------------------------------------------------------------


def box_blur(image: Expr) -> Expr:
    """3x3 box blur: ``[n+2][m+2]f32 -> [n][m]f32`` (sum3x3 / 9)."""
    return map2d(fun(lambda x: x * lit(1.0 / 9.0)), sum3x3(image))


def box_blur_input_type(n=None, m=None) -> DataType:
    """``[n+2][m+2]f32`` — one 3x3 stencil of shrink."""
    n = n if n is not None else nat("n")
    m = m if m is not None else nat("m")
    return array(n + 2, array(m + 2, f32))


def reference_box_blur(image: np.ndarray) -> np.ndarray:
    """NumPy gold: valid-region 3x3 neighborhood mean."""
    return reference.sum3x3(image) / 9.0


# ----------------------------------------------------------------------
# Two-level Gaussian downsample pyramid (stride-2 stencils).
# ----------------------------------------------------------------------


def _gaussian_level(image: Expr, step: int) -> Expr:
    f = fun(lambda w: dot(join(arr([[float(v) for v in row] for row in GAUSSIAN_KERNEL_2D])))(join(w)))
    return map2d(f, slide2d(3, step, image))


def downsample_pyramid(image: Expr) -> Expr:
    """Two-level Gaussian pyramid: ``[4n+3][4m+3]f32 -> [n][m]f32``.

    Each level is a 3x3 Gaussian sampled with stride 2 (blur +
    decimate fused into one strided stencil); the level-1 image is a
    ``let``-bound stage.  Strided windows type-check symbolically via
    the slide scheme ``[sp*n + sz - sp]t -> [n][sz]t``.
    """
    return let(
        _gaussian_level(image, 2),
        lambda level1: _gaussian_level(level1, 2),
        name="L1",
    )


def downsample_pyramid_input_type(n=None, m=None) -> DataType:
    """``[4n+3][4m+3]f32``: two stride-2 levels; level 1 is
    ``[2n+1][2m+1]`` and level 2 ``[n][m]``."""
    n = n if n is not None else nat("n")
    m = m if m is not None else nat("m")
    return array(4 * n + 3, array(4 * m + 3, f32))


def reference_downsample_pyramid(image: np.ndarray) -> np.ndarray:
    """NumPy gold: two rounds of 3x3 Gaussian + take-every-other."""
    level1 = reference.conv2d_valid(image, GAUSSIAN_KERNEL_2D)[::2, ::2]
    return reference.conv2d_valid(level1, GAUSSIAN_KERNEL_2D)[::2, ::2]
