"""The high-level Harris corner detector in RISE (paper listing 3) and
additional pipelines used by the examples.

``harris`` builds the exact dataflow of fig. 5: grayscale, the two sobel
convolutions, three pointwise products, three 3x3 sums, and coarsity —
written with ``def``-style lets that remain visible to the optimization
strategies.
"""

from __future__ import annotations

import numpy as np

from repro.image.reference import HARRIS_KAPPA
from repro.nat import Nat, nat
from repro.rise.dsl import arr, fun, let, lit, map_, pipe
from repro.rise.expr import Expr, Identifier
from repro.rise.types import DataType, array, f32
from repro.pipelines.operators import (
    coarsity,
    conv3x3,
    grayscale,
    map2d,
    mul2d,
    sobel_x,
    sobel_y,
    sum3x3,
)

__all__ = [
    "harris",
    "harris_input_type",
    "harris_output_size",
    "blur3x3",
    "sobel_magnitude",
]


def harris(rgb: Expr, kappa: float = float(HARRIS_KAPPA)) -> Expr:
    """def harris(RGB: [3][n+4][m+4]f32): [n][m]f32    (listing 3)"""
    return let(
        grayscale(rgb),
        lambda gray: let(
            sobel_x(gray),
            lambda ix: let(
                sobel_y(gray),
                lambda iy: let(
                    mul2d(ix, ix),
                    lambda ixx: let(
                        mul2d(ix, iy),
                        lambda ixy: let(
                            mul2d(iy, iy),
                            lambda iyy: let(
                                sum3x3(ixx),
                                lambda sxx: let(
                                    sum3x3(ixy),
                                    lambda sxy: let(
                                        sum3x3(iyy),
                                        lambda syy: coarsity(sxx, sxy, syy, kappa),
                                        name="Syy",
                                    ),
                                    name="Sxy",
                                ),
                                name="Sxx",
                            ),
                            name="Iyy",
                        ),
                        name="Ixy",
                    ),
                    name="Ixx",
                ),
                name="Iy",
            ),
            name="Ix",
        ),
        name="I",
    )


def harris_input_type(n=None, m=None) -> DataType:
    """[3][n+4][m+4]f32 — symbolic by default, concrete when sizes given."""
    rows = (nat(n) if n is not None else nat("n")) + 4
    cols = (nat(m) if m is not None else nat("m")) + 4
    return array(3, array(rows, array(cols, f32)))


def harris_output_size(input_rows: int, input_cols: int) -> tuple[int, int]:
    """Output dimensions for a given (rows, cols) input image."""
    return input_rows - 4, input_cols - 4


def blur3x3(image: Expr) -> Expr:
    """A 3x3 box blur (normalized sum) — an extra pipeline for the examples,
    built entirely from the same macro layer."""
    ninth = 1.0 / 9.0
    blurred = sum3x3(image)
    return map2d(fun(lambda x: x * lit(ninth)), blurred)


def sobel_magnitude(image: Expr) -> Expr:
    """Approximate gradient magnitude |Ix| + |Iy| via squares (another
    example pipeline exercising shared inputs like Harris)."""
    return let(
        sobel_x(image),
        lambda ix: let(
            sobel_y(image),
            lambda iy: let(
                mul2d(ix, ix),
                lambda ixx: let(
                    mul2d(iy, iy),
                    lambda iyy: _add2d(ixx, iyy),
                    name="Iyy",
                ),
                name="Ixx",
            ),
            name="Iy",
        ),
        name="Ix",
    )


def _add2d(a: Expr, b: Expr) -> Expr:
    from repro.pipelines.operators import map2d, zip2d
    from repro.rise.dsl import fst, snd

    return map2d(fun(lambda p: fst(p) + snd(p)), zip2d(a, b))


def gaussian3x3(image: Expr) -> Expr:
    """A 3x3 Gaussian blur (separable kernel [1,2,1]x[1,2,1] / 16)."""
    from repro.rise.dsl import arr
    from repro.pipelines.operators import conv3x3

    weights = arr([[1 / 16, 2 / 16, 1 / 16], [2 / 16, 4 / 16, 2 / 16], [1 / 16, 2 / 16, 1 / 16]])
    return conv3x3(weights, image)


def blur_pipeline(image: Expr) -> Expr:
    """A two-stage blur chain — another 'composition of point-wise and
    stencil operators' (paper section III) used to check that the Harris
    strategies generalize beyond the case study."""
    return let(
        gaussian3x3(image),
        lambda once: let(
            gaussian3x3(once),
            lambda twice: map2d(fun(lambda v: v * lit(2.0) - lit(0.5)), twice),
            name="twice",
        ),
        name="once",
    )


def blur_input_type(n=None, m=None) -> DataType:
    """[n+4][m+4]f32 for the two-stage blur chain."""
    rows = (nat(n) if n is not None else nat("n")) + 4
    cols = (nat(m) if m is not None else nat("m")) + 4
    return array(rows, array(cols, f32))
