"""Per-operator compilation of Let-structured RISE pipelines (LIFT style)."""

from __future__ import annotations

from typing import Mapping

from repro.elevate.core import apply_once, normalize, try_
from repro.nat import nat
from repro.rise.expr import Expr, Identifier, Let
from repro.rise.typecheck import infer_types
from repro.rise.types import DataType, Type
from repro.rules.lowering import use_map_global, use_map_seq, use_reduce_seq, use_reduce_seq_unroll
from repro.codegen.ir import ImpProgram
from repro.codegen.lower import compile_program
from repro.strategies.harris import simplify, vectorize_reductions

__all__ = [
    "compile_pipeline_per_operator",
    "build_harris_lift_program",
    "compile_harris_lift",
]


def compile_pipeline_per_operator(
    program: Expr,
    type_env: Mapping[str, Type],
    name: str = "lift",
    vec: int = 4,
) -> ImpProgram:
    """Compile each ``def`` of a Let-structured pipeline as its own kernel.

    Per-operator schedule (what LIFT's stencil work [7] provides): the
    outer map runs across global threads, line loops are vectorized, the
    rest is sequential; the operator's result is materialized in global
    memory and later kernels read it as an input.
    """
    bindings: list[tuple[str, Expr]] = []
    env = dict(type_env)
    body = program
    while isinstance(body, Let):
        bindings.append((body.ident.name, body.value))
        body = body.body
    bindings.append(("out_final", body))

    functions = []
    known_types: dict[str, Type] = dict(type_env)
    produced_names: list[str] = []
    for index, (bind_name, value) in enumerate(bindings):
        kernel_env = {
            n: t for n, t in known_types.items()
            if n in _free_ids(value)
        }
        lowered = _lift_operator_schedule(value, kernel_env, vec)
        # The kernel is named after its binding: the runner publishes every
        # kernel's result under its function name, which is how later
        # kernels' input buffers (named after the bindings they read) find
        # the materialized intermediates.
        prog = compile_program(lowered, kernel_env, bind_name)
        fn = prog.functions[0]
        functions.append(fn)
        typing = infer_types(value, kernel_env, strict=False)
        known_types[bind_name] = typing.root_type
        produced_names.append(bind_name)

    out = ImpProgram(
        name=name,
        functions=functions,
        size_vars=sorted(
            {v for t in type_env.values() for v in t.free_nat_vars()}
        ),
        launch_overheads=len(functions),
    )
    out.size_constraints = []
    out.vector_fallbacks = []
    return out


def _free_ids(expr: Expr) -> frozenset[str]:
    from repro.rise.traverse import free_identifiers

    return free_identifiers(expr)


def _lift_operator_schedule(value: Expr, type_env, vec: int) -> Expr:
    """parallel outer map + vectorized lines + sequential rest."""
    lowered = simplify.apply(value)
    lowered = try_(apply_once(use_map_global)).apply(lowered)
    lowered = try_(vectorize_reductions(vec, type_env)).apply(lowered)
    lowered = try_(normalize(use_map_seq | use_reduce_seq)).apply(lowered)
    lowered = try_(normalize(use_reduce_seq_unroll)).apply(lowered)
    return lowered


def build_harris_lift_program(vec: int = 4) -> ImpProgram:
    """The Harris pipeline compiled LIFT-style (multi-kernel).

    Registered with the engine as the ``"harris-lift"`` builder.
    """
    from repro.pipelines import harris, harris_input_type

    rgb = Identifier("rgb")
    return compile_pipeline_per_operator(
        harris(rgb), {"rgb": harris_input_type()}, name="lift_harris", vec=vec
    )


def compile_harris_lift(vec: int = 4) -> ImpProgram:
    """Removed: compile through the engine front door instead.

    This pre-engine entry point spent two releases as a
    ``DeprecationWarning`` shim and is now retired; calling it raises
    with the migration below.
    """
    raise RuntimeError(
        "compile_harris_lift was removed; migrate to the engine front door:\n"
        "    repro.compile('harris-lift', options={'vec': vec}).program"
    )
