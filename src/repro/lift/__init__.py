"""The LIFT baseline: per-operator compilation without cross-stage fusion.

The paper compares against the LIFT implementation of [7], which optimizes
individual stencil operators well (parallelism, vectorization) but "lacks
crucial optimizations for image processing pipelines: notably operator
fusion and circular buffering" (section V-B).  We model it faithfully to
that diagnosis: every ``def`` of the high-level Harris program (listing 3)
is compiled as its *own* kernel — parallelized over rows and vectorized
along lines — with every intermediate materialized in a full-size global
buffer, and one OpenCL launch per kernel.
"""

from repro.lift.compile import (
    build_harris_lift_program,
    compile_harris_lift,
    compile_pipeline_per_operator,
)

__all__ = [
    "build_harris_lift_program",
    "compile_harris_lift",
    "compile_pipeline_per_operator",
]
