"""The unified compile front door: ``repro.compile(...)`` -> :class:`CompiledPipeline`.

One entry point replaces the five differently-shaped ones that grew with
the reproduction (``codegen.compile_program``, ``compile_harris_halide``
/ ``_opencv`` / ``_lift``, ``exec.run_program``, ``exec.cbridge.
run_program_c``).  It accepts a :class:`~repro.engine.request.
CompileRequest` — the typed request object the serving layer speaks —
or the equivalent keywords, over three kinds of source:

* a high-level RISE :class:`~repro.rise.expr.Expr` plus an optional
  optimization strategy/:class:`~repro.strategies.schedules.Schedule`;
* an already-lowered :class:`~repro.codegen.ir.ImpProgram`;
* the registered name of a baseline builder (``"harris-halide"``,
  ``"harris-opencv"``, ``"harris-lift"``).

Every compile is content-addressed (see :mod:`repro.engine.hashing`) and
served through an :class:`~repro.engine.cache.EngineCache`: a warm call
touches no rewrite, typecheck or lowering phase at all — the test suite
asserts zero ``lower`` phases on the hit path.  Concurrent cold calls
for the same key are **coalesced**: within a process, follower threads
block on the leader's in-flight build (``engine.compile.coalesced``
counters); across processes sharing a disk store, a per-key build lock
elects exactly one builder and everyone else warm-starts from the
published artifact.  The returned :class:`CompiledPipeline` runs single
inputs (``.run``) or parallel batches (``.run_batch``), exposes the
generated source and reports its own cache provenance via ``.report()``.
"""

from __future__ import annotations

import contextlib
import importlib
import json
import threading
import time
from typing import Any, Mapping, Sequence

import numpy as np

from repro.codegen.ir import ImpProgram
from repro.engine.batch import BatchResult, BatchRunner
from repro.engine.cache import CacheEntry, EngineCache, ArtifactStore, default_cache_dir
from repro.engine.hashing import (
    cache_key,
    program_fingerprint,
    size_signature,
    strategy_identity,
    structural_hash,
    type_env_signature,
)
from repro.engine.request import CompileRequest
from repro.observe.context import ensure_request
from repro.observe.core import count, current_span, span
from repro.observe.events import emit
from repro.observe.metrics import inc, observe_value, set_gauge
from repro.rise.expr import Expr

__all__ = [
    "CompiledPipeline",
    "Engine",
    "compile",
    "default_engine",
    "reset_default_engine",
    "register_builder",
    "BUILDER_REGISTRY",
]

#: Builder name -> (module, attribute) of a zero-setup program builder.
#: Lazily imported so the engine has no import-time dependency on the
#: baseline compiler packages (which themselves route through the engine).
BUILDER_REGISTRY: dict[str, tuple[str, str]] = {
    "harris-halide": ("repro.halide.harris", "build_harris_halide_program"),
    "harris-opencv": ("repro.opencv.pipeline", "build_harris_opencv_program"),
    "harris-lift": ("repro.lift.compile", "build_harris_lift_program"),
    # Any registered zoo pipeline under any named schedule, addressed by
    # options: {"pipeline": <registry name>, "schedule": <family name>}.
    "zoo": ("repro.pipelines.registry", "build_zoo_program"),
}


def register_builder(name: str, module: str, attribute: str) -> None:
    """Register a named program builder usable as ``repro.compile(name)``."""
    BUILDER_REGISTRY[name] = (module, attribute)


class _Flight:
    """One in-flight build that follower threads can wait on.

    ``leader_request_id``/``leader_span_id`` publish the leader's open
    ``engine.compile`` span identity so coalesced followers can link
    their own spans to the build that actually ran (set before the
    ``done`` event, read only after it).
    """

    __slots__ = (
        "done",
        "entry",
        "status",
        "error",
        "leader_request_id",
        "leader_span_id",
    )

    def __init__(self):
        self.done = threading.Event()
        self.entry: CacheEntry | None = None
        self.status: str | None = None
        self.error: BaseException | None = None
        self.leader_request_id: str = ""
        self.leader_span_id: str = ""


class CompiledPipeline:
    """A compiled, cached, runnable pipeline — the engine's user-facing object.

    Obtained from :func:`compile`; wraps one cache entry (the imperative
    program plus backend artifacts) together with the originating
    :class:`~repro.engine.request.CompileRequest`.
    """

    def __init__(
        self,
        engine: "Engine",
        entry: CacheEntry,
        request: CompileRequest,
        cache_status: str,
        compile_ms: float,
        sizes: Mapping[str, int] | None = None,
    ):
        self._engine = engine
        self._entry = entry
        self.request = request
        self.sizes = dict(sizes if sizes is not None else (request.sizes or {}))
        self.cache_status = cache_status
        self.compile_ms = compile_ms
        #: Default thread count for PARALLEL loops (None = resolve per run
        #: from $REPRO_THREADS / $OMP_NUM_THREADS / cpu count).
        self.threads = request.threads

    # -- introspection ---------------------------------------------------

    @property
    def key(self) -> str:
        """The content-address of the underlying artifact."""
        return self._entry.key

    @property
    def program(self) -> ImpProgram:
        """The compiled imperative program (symbolic sizes intact)."""
        return self._entry.program

    @property
    def backend(self) -> str:
        """Execution backend: ``"python"`` or ``"c"``."""
        return self._entry.backend

    @property
    def source(self) -> str:
        """The generated source: C for the C backend, Python otherwise.

        The Python backend specializes generated code to concrete sizes,
        so default ``sizes`` must be bound (pass ``sizes=`` to
        :func:`compile` or use :meth:`bind`).
        """
        if self.backend == "c":
            if self._entry.c_source is None:
                from repro.codegen.cprint import program_to_c

                self._entry.c_source = program_to_c(self.program)
            return self._entry.c_source
        from repro.exec.pyexec import program_to_python

        return program_to_python(self.program, self.resolve_run_sizes(None))

    def report(self) -> dict:
        """Provenance of this handle: the echoed request, cache status,
        key, timings and engine statistics."""
        return {
            "request": self.request.to_dict(),
            "key": self.key,
            "program": self.program.name,
            "backend": self.backend,
            "cache": self.cache_status,
            "compile_ms": round(self.compile_ms, 3),
            "engine": self._engine.stats(),
        }

    def bind(self, sizes: Mapping[str, int]) -> "CompiledPipeline":
        """A new handle over the same artifact with merged default sizes."""
        merged = {**self.sizes, **dict(sizes)}
        return CompiledPipeline(
            self._engine,
            self._entry,
            self.request,
            self.cache_status,
            self.compile_ms,
            sizes=merged,
        )

    def resolve_run_sizes(self, sizes: Mapping[str, int] | None) -> dict[str, int]:
        """Default sizes merged with a per-call override, with the
        program's leftover size constraints solved numerically (so
        inference variables such as chunk counts are bound too)."""
        from repro.codegen.sizes import resolve_sizes

        merged = dict(self.sizes)
        if sizes:
            merged.update(sizes)
        return resolve_sizes(self.program, merged)

    # -- execution -------------------------------------------------------

    def run(
        self,
        sizes: Mapping[str, int] | None = None,
        threads: int | None = None,
        **inputs: np.ndarray,
    ) -> np.ndarray:
        """Execute once on the pipeline's backend; returns the flat output.

        Input buffers are keyword arguments named after the program's
        free identifiers (``pipeline.run(rgb=img)``).  ``threads``
        overrides the pipeline's compile-time thread default for this
        call; both backends resolve it through
        :func:`repro.exec.parallel.effective_threads`.
        """
        from repro.exec.parallel import effective_threads

        bound = self.resolve_run_sizes(sizes)
        nthreads = effective_threads(threads if threads is not None else self.threads)
        start = time.perf_counter()
        with ensure_request(self.request.request_id), span(
            "engine.run",
            program=self.program.name,
            backend=self.backend,
            threads=nthreads,
        ):
            count("engine.runs")
            if self.backend == "c":
                from repro.exec.cbridge import execute_with_library

                out = execute_with_library(
                    self._engine.library_for(self._entry),
                    self.program,
                    bound,
                    inputs,
                    threads=nthreads,
                )
            else:
                from repro.exec.pyexec import execute_program

                out = execute_program(self.program, bound, inputs, threads=nthreads)
        inc("engine.runs", backend=self.backend)
        set_gauge("engine.run.threads", nthreads, backend=self.backend)
        observe_value(
            "engine.run.latency_ms",
            (time.perf_counter() - start) * 1e3,
            pipeline=self.key[:12],
            backend=self.backend,
        )
        return out

    def run_batch(
        self,
        items: Sequence[Mapping[str, np.ndarray]],
        workers: int | None = None,
        mode: str | None = None,
        sizes: Mapping[str, int] | None = None,
    ) -> BatchResult:
        """Execute every input dict in ``items`` across parallel workers.

        See :class:`repro.engine.batch.BatchRunner` for pool semantics;
        outputs are bit-identical to a sequential loop over :meth:`run`.
        """
        return BatchRunner(self, workers=workers, mode=mode).run(items, sizes=sizes)

    def __repr__(self) -> str:
        return (
            f"<CompiledPipeline {self.program.name!r} backend={self.backend} "
            f"cache={self.cache_status} key={self.key[:10]}>"
        )


class Engine:
    """A compile cache plus the machinery to fill it.

    Each engine owns one :class:`~repro.engine.cache.EngineCache`
    (memory LRU + optional disk artifact store).  The process-wide
    default engine (see :func:`default_engine`) reads its store location
    from ``$REPRO_CACHE_DIR``; private engines take an explicit
    ``cache_dir`` (tests use a tmpdir) or ``None`` for memory-only.
    ``max_disk_entries`` / ``max_disk_bytes`` bound the disk tier (see
    :meth:`ArtifactStore.enforce_limits`).
    """

    def __init__(
        self,
        cache_dir=None,
        memory_slots: int = 64,
        use_env_cache_dir: bool = False,
        max_disk_entries: int | None = None,
        max_disk_bytes: int | None = None,
    ):
        if cache_dir is None and use_env_cache_dir:
            cache_dir = default_cache_dir()
        store = (
            ArtifactStore(
                cache_dir, max_entries=max_disk_entries, max_bytes=max_disk_bytes
            )
            if cache_dir is not None
            else None
        )
        self.cache = EngineCache(store, memory_slots=memory_slots)
        self._inflight: dict[str, _Flight] = {}
        self._inflight_lock = threading.Lock()

    # -- the front door --------------------------------------------------

    def compile(
        self,
        source: CompileRequest | Expr | ImpProgram | str,
        *,
        strategy=None,
        backend: str = "python",
        sizes: Mapping[str, int] | None = None,
        type_env: Mapping[str, Any] | None = None,
        name: str | None = None,
        options: Mapping[str, Any] | None = None,
        cflags: tuple[str, ...] = ("-O2",),
        threads: int | None = None,
    ) -> CompiledPipeline:
        """Compile (or fetch from cache) and return a runnable pipeline.

        ``source`` is either a ready-made :class:`CompileRequest` (the
        serving layer's calling convention — keywords must then be left
        at their defaults) or one of the three source kinds, with the
        keywords assembled into a request internally: a RISE expression
        (give ``type_env``, and optionally a ``strategy``/Schedule applied
        before lowering), an already lowered :class:`~repro.codegen.ir.
        ImpProgram`, or a registered builder name (``options`` are its
        keyword arguments).  ``sizes`` binds default run-time sizes; it
        never affects the cache key.

        ``threads`` pins a default thread count for ``PARALLEL`` loops on
        the returned handle.  Thread configuration is part of the cache
        key: the C backend resolves its *effective* flags (appending
        ``-fopenmp`` when the toolchain supports it, see
        :func:`repro.exec.cbridge.effective_cflags`) **before** keying, so
        a sequential ``.so`` cached on an OpenMP-less host is never reused
        by an OpenMP-capable build — and vice versa — and an explicit
        thread pin is keyed separately from auto resolution.

        Identical concurrent compiles coalesce onto one build: follower
        threads wait for the leader and return ``cache_status ==
        "coalesced"``; across processes the store's build lock elects a
        single builder per key.
        """
        if isinstance(source, CompileRequest):
            request = source
        else:
            request = CompileRequest(
                source=source,
                strategy=strategy,
                backend=backend,
                sizes=sizes,
                type_env=type_env,
                name=name,
                options=options,
                cflags=cflags,
                threads=threads,
            )
        return self.compile_request(request)

    def compile_request(self, request: CompileRequest) -> CompiledPipeline:
        """Serve one :class:`CompileRequest` (see :meth:`compile`).

        Runs inside a request scope keyed by ``request.request_id``
        (opened here for direct callers, inherited untouched when the
        serve layer already activated one), so every span and event the
        compile emits — across singleflight, pool workers and backends —
        carries the same correlation identity.
        """
        with ensure_request(request.request_id):
            return self._compile_in_scope(request)

    def _compile_in_scope(self, request: CompileRequest) -> CompiledPipeline:
        """The body of :meth:`compile_request`, under an active request scope."""
        if request.backend == "c":
            from repro.exec.cbridge import effective_cflags

            request = request.replace(cflags=effective_cflags(tuple(request.cflags)))
        key = self._key_for(
            request.source,
            request.strategy,
            request.backend,
            request.type_env,
            request.options,
            request.cflags,
            request.threads,
        )
        start = time.perf_counter()
        with span(
            "engine.compile",
            backend=request.backend,
            strategy=strategy_identity(request.strategy),
            threads="auto" if request.threads is None else request.threads,
            cflags=" ".join(request.cflags) if request.backend == "c" else "",
        ) as compile_span:
            try:
                entry, tier = self.cache.get(key)
                if entry is not None:
                    status = f"hit-{tier}"
                else:
                    entry, status = self._build_coalesced(key, request)
            except BaseException as exc:
                compile_span.meta["cache"] = "error"
                emit(
                    "engine.compile.error",
                    key=key,
                    outcome="error",
                    backend=request.backend,
                    error=f"{type(exc).__name__}: {exc}",
                )
                raise
            compile_span.meta["cache"] = status
            compile_span.meta["key"] = key
        elapsed_ms = (time.perf_counter() - start) * 1e3
        observe_value("engine.compile.latency_ms", elapsed_ms, cache=status)
        emit(
            "engine.compile.done",
            key=key,
            outcome="ok",
            cache=status,
            backend=request.backend,
            compile_ms=round(elapsed_ms, 3),
        )
        return CompiledPipeline(self, entry, request, status, elapsed_ms)

    # -- internals -------------------------------------------------------

    def _build_coalesced(
        self, key: str, request: CompileRequest
    ) -> tuple[CacheEntry, str]:
        """Build ``key`` exactly once per process (and, with a disk
        store, once across processes), coalescing concurrent callers.

        The first caller becomes the *leader* and builds; followers wait
        on the leader's flight and share its entry (``"coalesced"``).
        The leader holds the store's per-key build lock for the duration,
        so a cold key compiled by N processes is built by exactly one —
        everyone else re-checks the cache under the lock and finds the
        published artifact.
        """
        with self._inflight_lock:
            flight = self._inflight.get(key)
            leader = flight is None
            if leader:
                flight = self._inflight[key] = _Flight()
                lead_span = current_span()
                if lead_span is not None:
                    flight.leader_span_id = lead_span.span_id
                    flight.leader_request_id = lead_span.request_id
        if not leader:
            flight.done.wait()
            count("engine.compile.coalesced")
            inc("engine.compile.coalesced")
            follower_span = current_span()
            if follower_span is not None and flight.leader_span_id:
                follower_span.meta["leader_span_id"] = flight.leader_span_id
                follower_span.meta["leader_request_id"] = flight.leader_request_id
            emit(
                "engine.coalesced",
                key=key,
                leader_request_id=flight.leader_request_id or None,
                leader_span_id=flight.leader_span_id or None,
            )
            if flight.error is not None:
                raise flight.error
            return flight.entry, "coalesced"
        try:
            store = self.cache.store
            build_lock = store.build_lock(key) if store is not None else contextlib.nullcontext()
            with build_lock:
                # another process may have published while we waited
                entry, tier = self.cache.get(key, count_miss=False)
                if entry is not None:
                    flight.entry, flight.status = entry, f"hit-{tier}"
                    return entry, f"hit-{tier}"
                emit("engine.build.start", key=key, backend=request.backend)
                build_t0 = time.perf_counter()
                prog = self._build_program(request)
                entry = CacheEntry(
                    key=key,
                    program=prog,
                    backend=request.backend,
                    meta={"cflags": list(request.cflags), "threads": request.threads},
                )
                if request.backend == "c":
                    self._attach_library(entry, request.cflags)
                self.cache.put(entry)
                emit(
                    "engine.build.done",
                    key=key,
                    outcome="ok",
                    backend=request.backend,
                    build_ms=round((time.perf_counter() - build_t0) * 1e3, 3),
                )
            count("engine.compiles")
            inc("engine.compiles", backend=request.backend)
            flight.entry, flight.status = entry, "miss"
            return entry, "miss"
        except BaseException as exc:
            flight.error = exc
            raise
        finally:
            with self._inflight_lock:
                self._inflight.pop(key, None)
            flight.done.set()

    def _key_for(
        self, source, strategy, backend, type_env, options, cflags, threads=None
    ) -> str:
        flags = ",".join(cflags) if backend == "c" else ""
        tconf = "threads=auto" if threads is None else f"threads={int(threads)}"
        if isinstance(source, ImpProgram):
            return cache_key(
                "program", program_fingerprint(source), backend, flags, tconf
            )
        if isinstance(source, str):
            opts = json.dumps(dict(options or {}), sort_keys=True, default=repr)
            return cache_key("builder", source, opts, backend, flags, tconf)
        if isinstance(source, Expr):
            return cache_key(
                "expr",
                structural_hash(source),
                strategy_identity(strategy),
                type_env_signature(type_env),
                size_signature(type_env),
                backend,
                flags,
                tconf,
            )
        raise TypeError(
            f"cannot compile {type(source).__name__}: expected a RISE Expr, "
            "an ImpProgram, or a registered builder name"
        )

    def _build_program(self, request: CompileRequest) -> ImpProgram:
        """Lower one request's source into an :class:`ImpProgram`.

        The rewrite and lowering phases open their own spans
        (``engine.rewrite``, ``backend.lower``) so a cold compile's span
        tree shows where the time went per backend phase.
        """
        source, strategy = request.source, request.strategy
        if isinstance(source, ImpProgram):
            return source
        if isinstance(source, str):
            try:
                module_name, attribute = BUILDER_REGISTRY[source]
            except KeyError:
                known = ", ".join(sorted(BUILDER_REGISTRY))
                raise KeyError(f"no builder {source!r} (known: {known})") from None
            builder = getattr(importlib.import_module(module_name), attribute)
            with span("engine.build", builder=source):
                return builder(**dict(request.options or {}))
        program = source
        if strategy is not None:
            with span("engine.rewrite", strategy=strategy_identity(strategy)):
                program = strategy.apply(program)
        from repro.codegen.lower import compile_program

        name = request.name or "pipeline"
        with span("backend.lower", backend=request.backend, program=name):
            return compile_program(program, dict(request.type_env or {}), name)

    def _attach_library(self, entry: CacheEntry, cflags: tuple[str, ...]) -> None:
        from repro.codegen.cprint import program_to_c
        from repro.exec.cbridge import compile_c_library, have_c_compiler

        if not have_c_compiler():
            raise RuntimeError("backend='c' requires a host C compiler (gcc/cc)")
        with span("backend.cbuild", backend="c", cflags=" ".join(cflags)):
            entry.c_source = program_to_c(entry.program)
            entry.library = compile_c_library(
                entry.program, extra_flags=tuple(cflags), source=entry.c_source
            )

    def library_for(self, entry: CacheEntry):
        """The live C library for ``entry``, loading or building on demand.

        Warm disk hits reload the stored ``.so`` without recompiling;
        memory-only engines rebuild once and keep the handle on the entry.
        """
        if entry.library is not None and not entry.library.closed:
            return entry.library
        from repro.exec.cbridge import compile_c_library, load_c_library

        store = self.cache.store
        so_path = store.so_path(entry.key) if store is not None else None
        if so_path is not None:
            entry.library = load_c_library(so_path)
        else:
            entry.library = compile_c_library(
                entry.program,
                extra_flags=tuple(entry.meta.get("cflags", ("-O2",))),
                source=entry.c_source,
            )
        return entry.library

    def stats(self) -> dict:
        """JSON-ready cache statistics (the run report's ``engine.cache``)."""
        return self.cache.to_dict()


# ---------------------------------------------------------------------------
# Module-level default engine + the public compile() function
# ---------------------------------------------------------------------------

_DEFAULT_ENGINE: Engine | None = None


def default_engine() -> Engine:
    """The process-wide engine (created on first use; honors
    ``$REPRO_CACHE_DIR`` for its disk tier)."""
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = Engine(use_env_cache_dir=True)
    return _DEFAULT_ENGINE


def reset_default_engine(cache_dir=None, memory_slots: int = 64) -> Engine:
    """Replace the default engine (tests and CLIs use this to point the
    artifact store at a fresh directory)."""
    global _DEFAULT_ENGINE
    _DEFAULT_ENGINE = Engine(
        cache_dir=cache_dir, memory_slots=memory_slots, use_env_cache_dir=cache_dir is None
    )
    return _DEFAULT_ENGINE


def compile(
    source: CompileRequest | Expr | ImpProgram | str,
    *,
    strategy=None,
    backend: str = "python",
    sizes: Mapping[str, int] | None = None,
    type_env: Mapping[str, Any] | None = None,
    name: str | None = None,
    options: Mapping[str, Any] | None = None,
    cflags: tuple[str, ...] = ("-O2",),
    threads: int | None = None,
    engine: Engine | None = None,
) -> CompiledPipeline:
    """Compile through the default (or given) engine; see :meth:`Engine.compile`.

    This is the single front door re-exported as ``repro.compile``.  Both
    calling conventions are equivalent::

        pipeline = repro.compile(harris(rgb), strategy=cbuf_version(env),
                                 type_env=env, sizes={"n": 32, "m": 64})
        pipeline = repro.compile(CompileRequest(
            source=harris(rgb), strategy=cbuf_version(env),
            type_env=env, sizes={"n": 32, "m": 64}))
        out = pipeline.run(rgb=img)
        batch = pipeline.run_batch([{"rgb": img} for img in images])
    """
    eng = engine if engine is not None else default_engine()
    if isinstance(source, CompileRequest):
        return eng.compile_request(source)
    return eng.compile(
        source,
        strategy=strategy,
        backend=backend,
        sizes=sizes,
        type_env=type_env,
        name=name,
        options=options,
        cflags=cflags,
        threads=threads,
    )
