"""Content-addressed memo tables for search-time compile reuse.

The engine cache (:mod:`repro.engine.cache`) stores *finished artifacts*
keyed by the full compile identity.  A search loop needs something
lighter: the autotuner re-derives the same intermediate expressions over
and over (two action orders frequently commute into the same alpha-
equivalent state), and re-scoring an already-scored state wastes the
most expensive part of a search step.  :class:`Memo` is a small bounded
mapping keyed by content addresses — typically
:func:`repro.engine.hashing.structural_hash` values or tuples built from
them — with LRU eviction and hit/miss accounting in the process-wide
metrics registry (``<name>.hits`` / ``<name>.misses``), so a search
session's reuse rate is visible in the same telemetry as the engine
cache's.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Hashable, Iterator, TypeVar

from repro.observe.metrics import inc, set_gauge

__all__ = ["Memo"]

T = TypeVar("T")

_MISS = object()


class Memo:
    """A bounded LRU mapping from content-address keys to computed values.

    ``name`` prefixes the metric names (``tune.memo.score.hits`` etc.);
    ``maxsize`` bounds the entry count (oldest-used entries evicted).
    Stored values may be ``None`` — a memoized "this candidate is pruned"
    outcome is as valuable as a memoized score — so membership is
    distinct from truthiness throughout.
    """

    def __init__(self, name: str = "engine.memo", maxsize: int = 4096):
        if maxsize < 1:
            raise ValueError(f"maxsize must be positive (got {maxsize})")
        self.name = name
        self.maxsize = maxsize
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self._hits = 0
        self._misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._entries)

    def get(self, key: Hashable, default: T | None = None):
        """The stored value for ``key`` (counting a hit), else ``default``
        (counting a miss)."""
        value = self._entries.get(key, _MISS)
        if value is _MISS:
            self._misses += 1
            inc(f"{self.name}.misses")
            return default
        self._entries.move_to_end(key)
        self._hits += 1
        inc(f"{self.name}.hits")
        return value

    def put(self, key: Hashable, value) -> None:
        """Store ``value`` under ``key``, evicting the least recently used
        entry when full."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            inc(f"{self.name}.evictions")
        set_gauge(f"{self.name}.entries", len(self._entries))

    def get_or(self, key: Hashable, producer: Callable[[], T]) -> T:
        """The memoized value for ``key``, computing and storing it via
        ``producer()`` on a miss."""
        value = self._entries.get(key, _MISS)
        if value is not _MISS:
            self._entries.move_to_end(key)
            self._hits += 1
            inc(f"{self.name}.hits")
            return value  # type: ignore[return-value]
        self._misses += 1
        inc(f"{self.name}.misses")
        produced = producer()
        self.put(key, produced)
        return produced

    def stats(self) -> dict:
        """JSON-ready hit/miss/size accounting for reports and logs."""
        total = self._hits + self._misses
        return {
            "name": self.name,
            "entries": len(self._entries),
            "maxsize": self.maxsize,
            "hits": self._hits,
            "misses": self._misses,
            "hit_rate": round(self._hits / total, 4) if total else 0.0,
        }
