"""Parallel batch execution: fan a list of inputs across worker pools.

A :class:`BatchRunner` executes one :class:`~repro.engine.pipeline.
CompiledPipeline` over many input items concurrently.  The pool flavor
follows the backend:

* ``python`` (the numpy interpreter backend) uses a **process** pool —
  the generated Python runs under the GIL, so threads would serialize;
  the pickled :class:`~repro.codegen.ir.ImpProgram` ships to each worker
  and results return as numpy arrays (bit-identical to a sequential run,
  since the same generated code executes either way).
* ``c`` (the ctypes bridge) uses a **thread** pool — ctypes releases the
  GIL for the duration of each kernel call and every call allocates its
  own buffers, so one loaded library serves all threads.

Pool setup failures (restricted sandboxes without ``fork``) degrade to
sequential execution rather than erroring; ``BatchResult.mode`` records
what actually ran.

Observability: thread-pool work items are submitted through
``contextvars.copy_context()``, so the active :class:`~repro.observe.
core.Observer` *and* the open ``engine.batch`` span propagate into the
workers — each item records its own ``engine.batch.item`` span (with the
worker's thread id) and counter.  Process-pool workers run in another
interpreter; their measured wall times are aggregated back into the
parent observer as pre-timed spans, so the count of ``engine.batch.item``
events always equals the batch size regardless of pool flavor.  Item
latencies and batch throughput also land in the process-wide metrics
registry (``engine.batch.*``, see :mod:`repro.observe.metrics`).
"""

from __future__ import annotations

import contextvars
import os
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.codegen.ir import ImpProgram
from repro.observe.context import ensure_request
from repro.observe.core import Span, active, count, span
from repro.observe.metrics import inc, observe_value, set_gauge

__all__ = ["BatchResult", "BatchRunner", "DEFAULT_MAX_WORKERS"]

#: Upper bound on auto-selected pool sizes (small batches stay small).
DEFAULT_MAX_WORKERS = 8


def _run_item_python(
    prog: ImpProgram, sizes: Mapping[str, int], inputs: Mapping[str, np.ndarray]
) -> tuple[np.ndarray, float]:
    """Process-pool worker: execute one item on the Python backend.

    Module-level so it pickles under every multiprocessing start method.
    Runs under :func:`repro.exec.parallel.batch_worker_scope`, so nested
    ``PARALLEL`` loops degrade to sequential instead of oversubscribing
    the cores the pool already owns.
    """
    from repro.exec.parallel import batch_worker_scope
    from repro.exec.pyexec import execute_program

    start = time.perf_counter()
    with batch_worker_scope():
        out = execute_program(prog, sizes, inputs)
    return out, (time.perf_counter() - start) * 1e3


@dataclass
class BatchResult:
    """Per-item outputs plus aggregate timing for one batch run."""

    outputs: list[np.ndarray]
    item_wall_ms: list[float]
    total_wall_ms: float
    workers: int
    mode: str  # "process" | "thread" | "sequential"
    meta: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.outputs)

    @property
    def throughput_items_per_s(self) -> float:
        """Completed items per wall-clock second."""
        if self.total_wall_ms <= 0:
            return float("inf")
        return len(self.outputs) / (self.total_wall_ms / 1e3)

    def to_dict(self) -> dict:
        """JSON-ready summary (outputs omitted) for the run report."""
        return {
            "items": len(self.outputs),
            "workers": self.workers,
            "mode": self.mode,
            "total_wall_ms": round(self.total_wall_ms, 3),
            "mean_item_ms": round(
                float(np.mean(self.item_wall_ms)) if self.item_wall_ms else 0.0, 3
            ),
            "throughput_items_per_s": round(self.throughput_items_per_s, 3),
            **self.meta,
        }


class BatchRunner:
    """Fans a list of input dicts across workers for one compiled pipeline.

    ``mode`` forces a pool flavor (``"process"``, ``"thread"`` or
    ``"sequential"``); by default it follows the pipeline's backend as
    described in the module docstring.
    """

    def __init__(self, pipeline, workers: int | None = None, mode: str | None = None):
        self.pipeline = pipeline
        self.workers = workers
        if mode not in (None, "process", "thread", "sequential"):
            raise ValueError(f"unknown batch mode {mode!r}")
        self.mode = mode

    def _auto_mode(self) -> str:
        return "thread" if self.pipeline.backend == "c" else "process"

    def _pool_size(self, n_items: int) -> int:
        if self.workers is not None:
            return max(1, self.workers)
        return max(1, min(n_items, os.cpu_count() or 1, DEFAULT_MAX_WORKERS))

    def run(
        self,
        items: Sequence[Mapping[str, np.ndarray]],
        sizes: Mapping[str, int] | None = None,
    ) -> BatchResult:
        """Execute every input dict in ``items``; order is preserved.

        ``sizes`` overrides the pipeline's default size bindings for the
        whole batch (items share one compiled artifact, hence one shape).
        """
        items = list(items)
        sizes = self.pipeline.resolve_run_sizes(sizes)
        mode = self.mode or self._auto_mode()
        workers = self._pool_size(len(items))
        if workers == 1 or len(items) <= 1:
            mode = "sequential"
        start = time.perf_counter()
        request = getattr(self.pipeline, "request", None)
        with ensure_request(getattr(request, "request_id", None)), span(
            "engine.batch", program=self.pipeline.program.name, mode=mode, workers=workers
        ):
            outputs, item_ms, mode, workers = self._execute(items, sizes, mode, workers)
        total_ms = (time.perf_counter() - start) * 1e3
        count("engine.batch.runs")
        count("engine.batch.items", len(items))
        result = BatchResult(
            outputs=outputs,
            item_wall_ms=item_ms,
            total_wall_ms=total_ms,
            workers=workers,
            mode=mode,
        )
        inc("engine.batch.runs", mode=mode)
        inc("engine.batch.items", len(items), mode=mode)
        for ms in item_ms:
            observe_value("engine.batch.item_ms", ms, mode=mode)
        set_gauge("engine.batch.last_throughput_items_per_s", result.throughput_items_per_s)
        set_gauge("engine.batch.last_workers", workers)
        return result

    # -- execution flavors ----------------------------------------------

    def _execute(self, items, sizes, mode: str, workers: int):
        if mode == "process":
            try:
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    outputs, item_ms = self._map_python(pool, items, sizes)
                return outputs, item_ms, mode, workers
            except (OSError, PermissionError, BrokenPipeError):
                mode = "sequential"  # no subprocess support here; degrade
        if mode == "thread":
            try:
                with ThreadPoolExecutor(max_workers=workers) as pool:
                    outputs, item_ms = self._map_inline(pool, items, sizes)
                return outputs, item_ms, mode, workers
            except (OSError, PermissionError):
                mode = "sequential"
        outputs: list[np.ndarray] = []
        item_ms: list[float] = []
        for index, inputs in enumerate(items):
            t0 = time.perf_counter()
            with span("engine.batch.item", index=index, mode="sequential"):
                outputs.append(self.pipeline.run(sizes=sizes, **inputs))
            count("engine.batch.item")
            item_ms.append((time.perf_counter() - t0) * 1e3)
        return outputs, item_ms, "sequential", 1

    def _map_python(self, pool: Executor, items, sizes):
        prog = self.pipeline.program
        futures = [pool.submit(_run_item_python, prog, dict(sizes), item) for item in items]
        results = [f.result() for f in futures]
        obs = active()
        for index, (_, ms) in enumerate(results):
            # The worker lives in another process: re-materialize its
            # measured wall time as a pre-timed span on the parent.
            count("engine.batch.item")
            if obs is not None:
                obs.attach(
                    Span(
                        "engine.batch.item",
                        duration_ms=ms,
                        meta={"index": index, "mode": "process"},
                    )
                )
        return [out for out, _ in results], [ms for _, ms in results]

    def _map_inline(self, pool: Executor, items, sizes):
        from repro.exec.parallel import batch_worker_scope

        def one(index, inputs):
            t0 = time.perf_counter()
            # batch_worker_scope: batch-level parallelism wins; nested
            # PARALLEL loops inside the item run sequentially (thread
            # pins degrade to 1) instead of oversubscribing the pool.
            with batch_worker_scope(), span(
                "engine.batch.item", index=index, mode="thread"
            ):
                out = self.pipeline.run(sizes=sizes, **inputs)
            count("engine.batch.item")
            return out, (time.perf_counter() - t0) * 1e3

        # copy_context() per item carries the active observer and the
        # open engine.batch span into the pool thread (satellite fix for
        # the silent drop of engine.batch.* counters in workers).
        futures = [
            pool.submit(contextvars.copy_context().run, one, index, inputs)
            for index, inputs in enumerate(items)
        ]
        results = [f.result() for f in futures]
        return [out for out, _ in results], [ms for _, ms in results]
