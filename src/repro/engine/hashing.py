"""Stable structural hashing: the content-addressing half of the engine.

A compiled artifact is reusable only if we can *name* it by what went in:
the RISE expression (up to alpha-renaming — the DSL generates fresh
binder names on every construction, so a nominal hash would never hit),
the identity of the optimization strategy, the execution backend, and
the symbolic-size signature of the inputs.  Everything here hashes with
:func:`hashlib.blake2b` over canonical byte strings, never with Python's
randomized ``hash()``, so keys are stable across processes and runs —
the property the on-disk artifact store depends on.
"""

from __future__ import annotations

import hashlib
from dataclasses import fields
from typing import Any, Mapping

from repro.rise.expr import (
    App,
    ArrayLiteral,
    Expr,
    Identifier,
    Lambda,
    Let,
    Literal,
    Primitive,
)

__all__ = [
    "ENGINE_VERSION",
    "structural_hash",
    "program_fingerprint",
    "strategy_identity",
    "size_signature",
    "type_env_signature",
    "cache_key",
]

#: Bumped whenever hashing, pickling or artifact layout changes shape;
#: part of every cache key so stale on-disk artifacts are never reused.
ENGINE_VERSION = "repro.engine/v1"


def _hasher() -> "hashlib.blake2b":
    return hashlib.blake2b(digest_size=20)


# ---------------------------------------------------------------------------
# Expression hashing (alpha-invariant)
# ---------------------------------------------------------------------------


def _feed_expr(expr: Expr, binders: dict[str, list[int]], depth: int, h) -> None:
    """Feed a canonical serialization of ``expr`` into hasher ``h``.

    Bound identifiers are serialized as de Bruijn-style distances to their
    binder, so alpha-renamed expressions serialize identically; free
    identifiers (the program's inputs) keep their names.
    """
    if isinstance(expr, Identifier):
        stack = binders.get(expr.name)
        if stack:
            h.update(b"B%d;" % (depth - stack[-1]))
        else:
            h.update(b"F" + expr.name.encode() + b";")
        return
    if isinstance(expr, Lambda):
        h.update(b"L;")
        binders.setdefault(expr.param.name, []).append(depth)
        _feed_expr(expr.body, binders, depth + 1, h)
        binders[expr.param.name].pop()
        return
    if isinstance(expr, Let):
        h.update(b"D;")
        _feed_expr(expr.value, binders, depth, h)
        binders.setdefault(expr.ident.name, []).append(depth)
        _feed_expr(expr.body, binders, depth + 1, h)
        binders[expr.ident.name].pop()
        return
    if isinstance(expr, App):
        h.update(b"A;")
        _feed_expr(expr.fun, binders, depth, h)
        _feed_expr(expr.arg, binders, depth, h)
        return
    if isinstance(expr, Literal):
        h.update(f"l{expr.value!r}:{expr.dtype!r};".encode())
        return
    if isinstance(expr, ArrayLiteral):
        h.update(f"a{expr.values!r}:{expr.dtype!r};".encode())
        return
    if isinstance(expr, Primitive):
        h.update(b"P" + type(expr).__name__.encode())
        for f in fields(expr):
            h.update(f"|{f.name}={getattr(expr, f.name)!r}".encode())
        h.update(b";")
        return
    raise TypeError(f"cannot hash expression node {type(expr).__name__}")


def structural_hash(expr: Expr) -> str:
    """Hex digest of ``expr``'s structure, invariant under alpha-renaming.

    Two expressions built independently through the DSL (which generates
    fresh binder names each time) hash equal iff they are alpha-equivalent;
    the digest is identical across interpreter processes.
    """
    h = _hasher()
    _feed_expr(expr, {}, 0, h)
    return h.hexdigest()


# ---------------------------------------------------------------------------
# Key components beyond the expression
# ---------------------------------------------------------------------------


def program_fingerprint(prog) -> str:
    """Hex digest of an already-lowered :class:`~repro.codegen.ir.ImpProgram`.

    The imperative IR is plain frozen dataclasses with deterministic
    ``repr`` (symbolic :class:`~repro.nat.Nat` sizes print in normal
    form), so ``repr`` is a canonical serialization.
    """
    h = _hasher()
    h.update(repr(prog).encode())
    for attr in ("size_constraints", "vector_fallbacks"):
        h.update(f"|{attr}={getattr(prog, attr, ())!r}".encode())
    return h.hexdigest()


def strategy_identity(strategy) -> str:
    """A stable string naming an optimization strategy (or ``None``).

    Parametrized strategies embed their parameters in their names
    (``splitPipeline(32)``, ``vectorizeReductions(4)``), so for a
    :class:`~repro.strategies.schedules.Schedule` the step-name list
    distinguishes e.g. ``chunk=4`` from ``chunk=32`` even though the
    schedule name is the same.
    """
    if strategy is None:
        return "none"
    steps = getattr(strategy, "steps", None)
    if steps is not None:  # a Schedule: name + each step's name
        inner = ";".join(getattr(s, "name", repr(s)) for s in steps)
        return f"schedule:{strategy.name}[{inner}]"
    name = getattr(strategy, "name", None)
    if name is not None:
        return f"strategy:{name}"
    return repr(strategy)


def type_env_signature(type_env: Mapping[str, Any] | None) -> str:
    """Canonical string for the input typing environment."""
    if not type_env:
        return "{}"
    return "{" + ",".join(f"{k}:{type_env[k]!r}" for k in sorted(type_env)) + "}"


def size_signature(type_env: Mapping[str, Any] | None) -> str:
    """The *symbolic* size signature: the sorted free nat variables of the
    input types.  Concrete size bindings are applied at run time, not at
    compile time, so they deliberately do not enter the cache key."""
    if not type_env:
        return ""
    vars_: set[str] = set()
    for t in type_env.values():
        free = getattr(t, "free_nat_vars", None)
        if free is not None:
            vars_ |= set(free())
    return ",".join(sorted(vars_))


def cache_key(*parts: str) -> str:
    """Combine canonical key parts (plus :data:`ENGINE_VERSION`) into the
    final content-address used by the memory and disk caches."""
    h = _hasher()
    h.update(ENGINE_VERSION.encode())
    for part in parts:
        h.update(b"\x1f" + part.encode())
    return h.hexdigest()
