"""The typed compile-request surface: :class:`CompileRequest`.

``repro.compile()`` grew keyword by keyword; serving the compiler to
concurrent callers needs a *value* instead — one frozen, validated,
hashable-by-content description of a compilation that can be queued,
coalesced, logged and echoed back in reports.  Everything above the
engine (the :mod:`repro.serve` front door, the AOT prebuilder, the load
tester) speaks only :class:`CompileRequest`; ``Engine.compile()`` keeps
accepting the historical kwargs and simply constructs a request from
them, so the two call styles are exactly equivalent::

    req = CompileRequest(source=harris(rgb), strategy=cbuf_version(env),
                         type_env=env, sizes={"n": 32, "m": 64})
    pipeline = repro.compile(req)          # ... == repro.compile(harris(rgb), ...)

Validation happens eagerly in ``__post_init__`` — a malformed request
fails at construction time on the caller's stack, not deep inside a
server worker where the traceback helps nobody.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from types import MappingProxyType
from typing import Any, Mapping

from repro.codegen.ir import ImpProgram
from repro.observe.context import new_request_id
from repro.rise.expr import Expr

__all__ = ["CompileRequest", "BACKENDS", "DEFAULT_CFLAGS"]

#: The execution backends the engine can target.
BACKENDS = ("python", "c")

#: Default C compiler flags (the engine appends ``-fopenmp`` when the
#: toolchain supports it, see :func:`repro.exec.cbridge.effective_cflags`).
DEFAULT_CFLAGS = ("-O2",)


def _frozen_mapping(value: Mapping | None, what: str) -> Mapping:
    """A read-only snapshot of ``value`` (``{}`` when ``None``)."""
    if value is None:
        return MappingProxyType({})
    if not isinstance(value, Mapping):
        raise TypeError(f"{what} must be a mapping, got {type(value).__name__}")
    return MappingProxyType(dict(value))


@dataclass(frozen=True)
class CompileRequest:
    """One validated, immutable description of a compilation.

    Fields mirror the keywords of :meth:`repro.engine.Engine.compile`:

    * ``source`` — a RISE :class:`~repro.rise.expr.Expr`, an
      :class:`~repro.codegen.ir.ImpProgram`, or a registered builder name;
    * ``strategy`` — optional ELEVATE strategy / Schedule applied before
      lowering (RISE sources only);
    * ``backend`` — ``"python"`` or ``"c"``;
    * ``sizes`` — default run-time size bindings (never part of the key);
    * ``type_env`` — free-identifier types for RISE sources;
    * ``name`` — program name for generated code;
    * ``options`` — builder keyword arguments (builder sources only);
    * ``cflags`` — C compiler flags (C backend only);
    * ``threads`` — default thread count for ``PARALLEL`` loops;
    * ``request_id`` — correlation identity for observability
      (auto-generated when omitted; stable across :meth:`replace`, so the
      engine's internal cflag normalization never changes a request's
      identity in spans, events, or the serve accounting).

    Instances are frozen; the mapping fields are snapshotted into
    read-only views at construction, so a request can be shared across
    threads and queues without defensive copying.
    """

    source: Expr | ImpProgram | str
    strategy: Any = None
    backend: str = "python"
    sizes: Mapping[str, int] | None = None
    type_env: Mapping[str, Any] | None = None
    name: str | None = None
    options: Mapping[str, Any] | None = None
    cflags: tuple[str, ...] = DEFAULT_CFLAGS
    threads: int | None = None
    request_id: str | None = None

    def __post_init__(self):
        """Validate field shapes eagerly; raises ``TypeError``/``ValueError``."""
        if not isinstance(self.source, (Expr, ImpProgram, str)):
            raise TypeError(
                f"source must be a RISE Expr, an ImpProgram, or a registered "
                f"builder name, got {type(self.source).__name__}"
            )
        if isinstance(self.source, str) and not self.source:
            raise ValueError("builder-name source must be non-empty")
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r} (expected one of {BACKENDS})"
            )
        if self.strategy is not None and not hasattr(self.strategy, "apply"):
            raise TypeError(
                f"strategy must expose .apply(program), "
                f"got {type(self.strategy).__name__}"
            )
        if self.name is not None and not isinstance(self.name, str):
            raise TypeError(f"name must be a string, got {type(self.name).__name__}")
        sizes = _frozen_mapping(self.sizes, "sizes")
        for key, value in sizes.items():
            if not isinstance(key, str):
                raise TypeError(f"size names must be strings, got {key!r}")
            if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
                raise ValueError(f"size {key!r} must be a positive int, got {value!r}")
        object.__setattr__(self, "sizes", sizes)
        object.__setattr__(
            self, "type_env", _frozen_mapping(self.type_env, "type_env")
        )
        object.__setattr__(self, "options", _frozen_mapping(self.options, "options"))
        if self.options and not isinstance(self.source, str):
            raise ValueError("options are only valid for builder-name sources")
        if isinstance(self.cflags, str):
            raise TypeError("cflags must be a sequence of flags, not a bare string")
        cflags = tuple(self.cflags)
        if not all(isinstance(flag, str) for flag in cflags):
            raise TypeError(f"cflags must be strings, got {cflags!r}")
        object.__setattr__(self, "cflags", cflags)
        if self.threads is not None:
            if not isinstance(self.threads, int) or isinstance(self.threads, bool):
                raise TypeError(
                    f"threads must be an int or None, got {type(self.threads).__name__}"
                )
            if self.threads < 1:
                raise ValueError(f"threads must be >= 1, got {self.threads}")
        if self.request_id is None:
            object.__setattr__(self, "request_id", new_request_id())
        elif not isinstance(self.request_id, str) or not self.request_id:
            raise TypeError(
                f"request_id must be a non-empty string, got {self.request_id!r}"
            )

    # -- derived views ----------------------------------------------------

    @property
    def kind(self) -> str:
        """The source kind: ``"expr"``, ``"program"`` or ``"builder"``."""
        if isinstance(self.source, str):
            return "builder"
        if isinstance(self.source, ImpProgram):
            return "program"
        return "expr"

    def replace(self, **changes) -> "CompileRequest":
        """A new request with ``changes`` applied (re-validated)."""
        current = {f.name: getattr(self, f.name) for f in fields(self)}
        current.update(changes)
        return CompileRequest(**current)

    def describe(self) -> str:
        """A short human-readable label (logs, load-test output)."""
        if isinstance(self.source, str):
            src = self.source
        elif isinstance(self.source, ImpProgram):
            src = f"program:{self.source.name}"
        else:
            src = self.name or "expr"
        strategy = getattr(self.strategy, "name", None)
        parts = [src]
        if strategy:
            parts.append(str(strategy))
        parts.append(self.backend)
        return "/".join(parts)

    def to_dict(self) -> dict:
        """A JSON-ready echo of the request (for ``pipeline.report()``).

        ``source``/``strategy`` are summarized, not serialized — the
        report documents provenance, it is not a wire format.
        """
        return {
            "kind": self.kind,
            "source": (
                self.source
                if isinstance(self.source, str)
                else (
                    f"program:{self.source.name}"
                    if isinstance(self.source, ImpProgram)
                    else "expr"
                )
            ),
            "strategy": getattr(self.strategy, "name", None)
            if self.strategy is not None
            else None,
            "backend": self.backend,
            "sizes": dict(self.sizes or {}),
            "type_env": sorted(self.type_env or {}),
            "name": self.name,
            "options": dict(self.options or {}),
            "cflags": list(self.cflags),
            "threads": self.threads,
            "request_id": self.request_id,
        }
