"""The compile cache: an in-memory LRU in front of an on-disk artifact store.

Artifacts are content-addressed by the keys of :mod:`repro.engine.hashing`.
The memory tier holds live :class:`CacheEntry` objects (including loaded
C libraries); the disk tier persists the pickled imperative program plus,
for the C backend, the emitted source and the compiled ``.so`` — so a new
process warm-starts without re-running a single compiler phase and the
ctypes bridge stops recompiling into a fresh tempdir per call.

Layout of one disk artifact (``<root>/<key[:2]>/<key>/``)::

    meta.json     backend, program name, key provenance, artifact sizes
    program.pkl   pickled ImpProgram (symbolic sizes intact)
    kernel.c      emitted C source          (C backend only)
    kernel.so     compiled shared library   (C backend only)

Cache hits and misses are emitted as ``engine.cache.*`` counters through
:mod:`repro.observe` and aggregated in :class:`CacheStats` for the run
report's ``engine`` section.
"""

from __future__ import annotations

import json
import os
import pickle
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.codegen.ir import ImpProgram
from repro.observe.core import count, span
from repro.observe.metrics import inc, set_gauge

__all__ = ["CacheEntry", "CacheStats", "ArtifactStore", "EngineCache", "default_cache_dir"]

#: Environment variable selecting the on-disk artifact store location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Optional[Path]:
    """The artifact-store root from ``$REPRO_CACHE_DIR``, or ``None``
    (memory-only caching) when the variable is unset or empty."""
    value = os.environ.get(CACHE_DIR_ENV, "").strip()
    return Path(value) if value else None


@dataclass
class CacheEntry:
    """One cached compilation: the program plus backend-specific artifacts."""

    key: str
    program: ImpProgram
    backend: str
    c_source: str | None = None
    library: object | None = None  # a repro.exec.cbridge.CLibrary, C backend
    meta: dict = field(default_factory=dict)


@dataclass
class CacheStats:
    """Aggregate hit/miss accounting for one cache instance."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def hits(self) -> int:
        """Total hits across both tiers."""
        return self.memory_hits + self.disk_hits

    def to_dict(self) -> dict:
        """JSON-ready representation for the run report."""
        return {
            "hits": self.hits,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
        }


class ArtifactStore:
    """Content-addressed on-disk artifacts under one root directory."""

    def __init__(self, root: Path | str):
        self.root = Path(root)

    def _dir(self, key: str) -> Path:
        return self.root / key[:2] / key

    def contains(self, key: str) -> bool:
        """Whether a complete artifact for ``key`` is on disk."""
        return (self._dir(key) / "meta.json").is_file()

    def save(self, entry: CacheEntry) -> dict:
        """Persist ``entry``; returns the written meta document."""
        adir = self._dir(entry.key)
        adir.mkdir(parents=True, exist_ok=True)
        program_path = adir / "program.pkl"
        with open(program_path, "wb") as fh:
            pickle.dump(entry.program, fh, protocol=pickle.HIGHEST_PROTOCOL)
        artifact_bytes = program_path.stat().st_size
        if entry.c_source is not None:
            (adir / "kernel.c").write_text(entry.c_source)
            artifact_bytes += (adir / "kernel.c").stat().st_size
        library = entry.library
        if library is not None and getattr(library, "path", None) is not None:
            so_bytes = Path(library.path).read_bytes()
            (adir / "kernel.so").write_bytes(so_bytes)
            artifact_bytes += len(so_bytes)
        meta = {
            "key": entry.key,
            "backend": entry.backend,
            "program": entry.program.name,
            "artifact_bytes": artifact_bytes,
            **entry.meta,
        }
        (adir / "meta.json").write_text(json.dumps(meta, indent=2, default=str))
        count("engine.cache.disk_bytes", artifact_bytes)
        inc("engine.cache.disk_bytes", artifact_bytes)
        return meta

    def load(self, key: str) -> Optional[CacheEntry]:
        """Reconstruct an entry from disk; ``None`` when absent/corrupt.

        The shared library (if any) is *not* loaded here — the engine
        attaches a live :class:`~repro.exec.cbridge.CLibrary` lazily from
        :meth:`so_path`, keeping the store import-light.
        """
        adir = self._dir(key)
        meta_path = adir / "meta.json"
        if not meta_path.is_file():
            return None
        try:
            meta = json.loads(meta_path.read_text())
            with open(adir / "program.pkl", "rb") as fh:
                program = pickle.load(fh)
        except (OSError, ValueError, pickle.UnpicklingError):
            return None
        c_path = adir / "kernel.c"
        return CacheEntry(
            key=key,
            program=program,
            backend=meta.get("backend", "python"),
            c_source=c_path.read_text() if c_path.is_file() else None,
            meta=meta,
        )

    def so_path(self, key: str) -> Optional[Path]:
        """Path of the stored shared library for ``key``, if present."""
        path = self._dir(key) / "kernel.so"
        return path if path.is_file() else None


class EngineCache:
    """LRU memory tier over an optional :class:`ArtifactStore` disk tier."""

    def __init__(self, store: ArtifactStore | None = None, memory_slots: int = 64):
        self.store = store
        self.memory_slots = memory_slots
        self.stats = CacheStats()
        self._memory: OrderedDict[str, CacheEntry] = OrderedDict()

    def get(self, key: str) -> tuple[Optional[CacheEntry], Optional[str]]:
        """Look ``key`` up in memory, then on disk (promoting to memory).

        Returns ``(entry, tier)`` where tier is ``"memory"``, ``"disk"``
        or ``None`` on a miss.
        """
        entry = self._memory.get(key)
        if entry is not None:
            self._memory.move_to_end(key)
            self.stats.memory_hits += 1
            count("engine.cache.hit")
            count("engine.cache.hit_memory")
            inc("engine.cache.hits", tier="memory")
            return entry, "memory"
        if self.store is not None:
            with span("engine.cache.disk-load", key=key):
                entry = self.store.load(key)
            if entry is not None:
                self._remember(key, entry)
                self.stats.disk_hits += 1
                count("engine.cache.hit")
                count("engine.cache.hit_disk")
                inc("engine.cache.hits", tier="disk")
                return entry, "disk"
        self.stats.misses += 1
        count("engine.cache.miss")
        inc("engine.cache.misses")
        return None, None

    def put(self, entry: CacheEntry) -> None:
        """Insert a freshly compiled entry into both tiers."""
        self._remember(entry.key, entry)
        self.stats.stores += 1
        inc("engine.cache.stores")
        if self.store is not None:
            with span("engine.cache.disk-store", key=entry.key):
                entry.meta = self.store.save(entry)

    def _remember(self, key: str, entry: CacheEntry) -> None:
        self._memory[key] = entry
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_slots:
            evicted_key, evicted = self._memory.popitem(last=False)
            library = evicted.library
            if library is not None and hasattr(library, "close"):
                library.close()
            count("engine.cache.evictions")
            inc("engine.cache.evictions")
        set_gauge("engine.cache.memory_entries", len(self._memory))

    def __len__(self) -> int:
        return len(self._memory)

    def to_dict(self) -> dict:
        """JSON-ready stats (plus tier configuration) for the run report."""
        out = self.stats.to_dict()
        out["memory_entries"] = len(self._memory)
        out["memory_slots"] = self.memory_slots
        out["disk_store"] = str(self.store.root) if self.store else None
        return out
