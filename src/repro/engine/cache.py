"""The compile cache: an in-memory LRU in front of an on-disk artifact store.

Artifacts are content-addressed by the keys of :mod:`repro.engine.hashing`.
The memory tier holds live :class:`CacheEntry` objects (including loaded
C libraries); the disk tier persists the pickled imperative program plus,
for the C backend, the emitted source and the compiled ``.so`` — so a new
process warm-starts without re-running a single compiler phase and the
ctypes bridge stops recompiling into a fresh tempdir per call.

Layout of one disk artifact (``<root>/<key[:2]>/<key>/``)::

    meta.json     backend, program name, key provenance, artifact sizes
    program.pkl   pickled ImpProgram (symbolic sizes intact)
    kernel.c      emitted C source          (C backend only)
    kernel.so     compiled shared library   (C backend only)

The store is **multiprocess-safe** (many serving workers may share one
``$REPRO_CACHE_DIR``):

* *Atomic publish* — :meth:`ArtifactStore.save` stages every file into a
  private directory under ``<root>/.tmp`` and promotes it with one
  ``os.replace``; readers never observe a half-written entry, and a
  crash mid-write leaves only an orphaned tmp dir (reclaimed by
  :meth:`ArtifactStore.sweep_orphans`), never a corrupt artifact.
* *Advisory locking* — save/load/evict serialize per key through
  ``flock`` lock files under ``<root>/.locks`` (see :class:`FileLock`;
  a no-op on platforms without ``fcntl``).  The engine additionally
  uses :meth:`ArtifactStore.build_lock` to elect exactly one *builder*
  per key across processes.
* *Bounded eviction* — ``max_entries`` / ``max_bytes`` cap the store;
  :meth:`ArtifactStore.enforce_limits` drops least-recently-published
  entries and emits ``engine.cache.evictions{tier="disk"}``.

Cache hits and misses are emitted as ``engine.cache.*`` counters through
:mod:`repro.observe` and aggregated in :class:`CacheStats` for the run
report's ``engine`` section.
"""

from __future__ import annotations

import json
import os
import pickle
import shutil
import threading
import time
import uuid
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional

try:  # pragma: no cover - exercised indirectly on POSIX
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

from repro.codegen.ir import ImpProgram
from repro.observe.core import count, span
from repro.observe.events import emit
from repro.observe.metrics import inc, set_gauge

__all__ = [
    "CacheEntry",
    "CacheStats",
    "FileLock",
    "ArtifactStore",
    "EngineCache",
    "default_cache_dir",
]

#: Environment variable selecting the on-disk artifact store location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Tmp staging dirs older than this (seconds) are orphans from a crashed
#: writer and safe to reclaim: a live save stages for milliseconds.
ORPHAN_TMP_AGE_S = 3600.0


def default_cache_dir() -> Optional[Path]:
    """The artifact-store root from ``$REPRO_CACHE_DIR``, or ``None``
    (memory-only caching) when the variable is unset or empty."""
    value = os.environ.get(CACHE_DIR_ENV, "").strip()
    return Path(value) if value else None


@dataclass
class CacheEntry:
    """One cached compilation: the program plus backend-specific artifacts."""

    key: str
    program: ImpProgram
    backend: str
    c_source: str | None = None
    library: object | None = None  # a repro.exec.cbridge.CLibrary, C backend
    meta: dict = field(default_factory=dict)


@dataclass
class CacheStats:
    """Aggregate hit/miss accounting for one cache instance."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def hits(self) -> int:
        """Total hits across both tiers."""
        return self.memory_hits + self.disk_hits

    def to_dict(self) -> dict:
        """JSON-ready representation for the run report."""
        return {
            "hits": self.hits,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
        }


class FileLock:
    """An advisory inter-process lock over one lock file (``flock``).

    Reentrant-unaware and blocking: entering the context acquires an
    exclusive (or ``shared``) lock, exiting releases it.  On platforms
    without ``fcntl`` the lock degrades to a no-op — single-process
    correctness is then guaranteed by the engine's thread locks alone.
    """

    def __init__(self, path: Path, shared: bool = False):
        self.path = Path(path)
        self.shared = shared
        self._fh = None

    def __enter__(self) -> "FileLock":
        """Acquire the lock, creating the lock file if needed."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a+b")
        if fcntl is not None:
            mode = fcntl.LOCK_SH if self.shared else fcntl.LOCK_EX
            fcntl.flock(self._fh.fileno(), mode)
        return self

    def __exit__(self, *exc) -> None:
        """Release the lock and close the handle."""
        if self._fh is not None:
            if fcntl is not None:
                fcntl.flock(self._fh.fileno(), fcntl.LOCK_UN)
            self._fh.close()
            self._fh = None


class ArtifactStore:
    """Content-addressed on-disk artifacts under one root directory.

    ``max_entries`` / ``max_bytes`` bound the store (``None`` =
    unbounded); limits are enforced after every publish by dropping the
    least-recently-published entries.
    """

    def __init__(
        self,
        root: Path | str,
        max_entries: int | None = None,
        max_bytes: int | None = None,
    ):
        self.root = Path(root)
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._swept = False

    # -- layout -----------------------------------------------------------

    def _dir(self, key: str) -> Path:
        return self.root / key[:2] / key

    def _tmp_root(self) -> Path:
        return self.root / ".tmp"

    def _lock_path(self, name: str) -> Path:
        return self.root / ".locks" / f"{name}.lock"

    def lock(self, key: str, shared: bool = False) -> FileLock:
        """The per-key artifact lock (save/load/evict serialization)."""
        return FileLock(self._lock_path(key), shared=shared)

    def build_lock(self, key: str) -> FileLock:
        """The per-key *builder election* lock.

        Distinct from :meth:`lock` so that holding the build lock for the
        full duration of an expensive compile never blocks readers of
        already-published sibling artifacts.
        """
        return FileLock(self._lock_path(f"{key}.build"))

    def contains(self, key: str) -> bool:
        """Whether a complete artifact for ``key`` is on disk."""
        return (self._dir(key) / "meta.json").is_file()

    # -- write path --------------------------------------------------------

    def save(self, entry: CacheEntry) -> dict:
        """Persist ``entry`` atomically; returns the written meta document.

        All files are staged into a fresh directory under ``.tmp`` and
        promoted into place with a single ``os.replace`` under the
        per-key lock — a failure at any point (pickling included) leaves
        the published tree untouched.  Losing a publish race to another
        process is not an error: the staged copy is discarded and the
        winner's meta document is returned.
        """
        self._sweep_once()
        adir = self._dir(entry.key)
        tmp_root = self._tmp_root()
        tmp_root.mkdir(parents=True, exist_ok=True)
        staging = tmp_root / f"{entry.key}.{os.getpid()}.{uuid.uuid4().hex[:8]}"
        try:
            staging.mkdir()
            program_path = staging / "program.pkl"
            with open(program_path, "wb") as fh:
                pickle.dump(entry.program, fh, protocol=pickle.HIGHEST_PROTOCOL)
            artifact_bytes = program_path.stat().st_size
            if entry.c_source is not None:
                (staging / "kernel.c").write_text(entry.c_source)
                artifact_bytes += (staging / "kernel.c").stat().st_size
            library = entry.library
            if library is not None and getattr(library, "path", None) is not None:
                so_bytes = Path(library.path).read_bytes()
                (staging / "kernel.so").write_bytes(so_bytes)
                artifact_bytes += len(so_bytes)
            meta = {
                "key": entry.key,
                "backend": entry.backend,
                "program": entry.program.name,
                "artifact_bytes": artifact_bytes,
                **entry.meta,
            }
            (staging / "meta.json").write_text(json.dumps(meta, indent=2, default=str))
            with self.lock(entry.key):
                if self.contains(entry.key):
                    # lost the publish race: keep the winner's artifact
                    published = json.loads((adir / "meta.json").read_text())
                    return published
                adir.parent.mkdir(parents=True, exist_ok=True)
                os.replace(staging, adir)
        finally:
            if staging.is_dir():
                shutil.rmtree(staging, ignore_errors=True)
        count("engine.cache.disk_bytes", artifact_bytes)
        inc("engine.cache.disk_bytes", artifact_bytes)
        self.enforce_limits(keep=entry.key)
        return meta

    # -- read path ---------------------------------------------------------

    def load(self, key: str) -> Optional[CacheEntry]:
        """Reconstruct an entry from disk; ``None`` when absent/corrupt.

        The shared library (if any) is *not* loaded here — the engine
        attaches a live :class:`~repro.exec.cbridge.CLibrary` lazily from
        :meth:`so_path`, keeping the store import-light.
        """
        adir = self._dir(key)
        if not (adir / "meta.json").is_file():
            return None
        try:
            with self.lock(key, shared=True):
                meta = json.loads((adir / "meta.json").read_text())
                with open(adir / "program.pkl", "rb") as fh:
                    program = pickle.load(fh)
                c_path = adir / "kernel.c"
                c_source = c_path.read_text() if c_path.is_file() else None
        except (OSError, ValueError, pickle.UnpicklingError):
            return None
        return CacheEntry(
            key=key,
            program=program,
            backend=meta.get("backend", "python"),
            c_source=c_source,
            meta=meta,
        )

    def so_path(self, key: str) -> Optional[Path]:
        """Path of the stored shared library for ``key``, if present."""
        path = self._dir(key) / "kernel.so"
        return path if path.is_file() else None

    # -- maintenance -------------------------------------------------------

    def entries(self) -> Iterator[tuple[str, Path]]:
        """All published ``(key, entry_dir)`` pairs, unordered."""
        if not self.root.is_dir():
            return
        for shard in self.root.iterdir():
            if shard.name.startswith(".") or not shard.is_dir():
                continue
            for adir in shard.iterdir():
                if (adir / "meta.json").is_file():
                    yield adir.name, adir

    def usage(self) -> tuple[int, int]:
        """Current ``(entry_count, artifact_bytes)`` of the store."""
        entries = 0
        total = 0
        for _, adir in self.entries():
            entries += 1
            try:
                meta = json.loads((adir / "meta.json").read_text())
                total += int(meta.get("artifact_bytes", 0))
            except (OSError, ValueError):
                continue
        return entries, total

    def evict(self, key: str) -> bool:
        """Remove one published artifact; returns whether it existed."""
        adir = self._dir(key)
        with self.lock(key):
            if not (adir / "meta.json").is_file():
                return False
            # unpublish atomically (rename away), then delete at leisure:
            # a concurrent reader sees either the full entry or nothing.
            tmp_root = self._tmp_root()
            tmp_root.mkdir(parents=True, exist_ok=True)
            doomed = tmp_root / f"{key}.{os.getpid()}.evict.{uuid.uuid4().hex[:8]}"
            os.replace(adir, doomed)
        shutil.rmtree(doomed, ignore_errors=True)
        count("engine.cache.evictions")
        inc("engine.cache.evictions", tier="disk")
        emit("engine.cache.evict", key=key, tier="disk")
        return True

    def enforce_limits(self, keep: str | None = None) -> int:
        """Drop least-recently-published entries beyond the store bounds.

        ``keep`` protects one key (the just-published artifact) from
        being evicted by its own publish.  Returns the eviction count.
        Age is the ``meta.json`` mtime — publish time, since the whole
        entry is promoted in one rename.
        """
        if self.max_entries is None and self.max_bytes is None:
            return 0
        aged: list[tuple[float, str, int]] = []
        entry_count = 0
        total_bytes = 0
        for key, adir in self.entries():
            try:
                meta_path = adir / "meta.json"
                mtime = meta_path.stat().st_mtime
                size = int(json.loads(meta_path.read_text()).get("artifact_bytes", 0))
            except (OSError, ValueError):
                continue
            entry_count += 1
            total_bytes += size
            aged.append((mtime, key, size))
        aged.sort()  # oldest first
        evicted = 0
        with FileLock(self._lock_path(".store")):
            for mtime, key, size in aged:
                over_count = (
                    self.max_entries is not None and entry_count > self.max_entries
                )
                over_bytes = (
                    self.max_bytes is not None and total_bytes > self.max_bytes
                )
                if not (over_count or over_bytes):
                    break
                if key == keep:
                    continue
                if self.evict(key):
                    evicted += 1
                    entry_count -= 1
                    total_bytes -= size
        set_gauge("engine.cache.disk_entries", entry_count)
        return evicted

    def sweep_orphans(self, max_age_s: float = ORPHAN_TMP_AGE_S) -> int:
        """Reclaim staging dirs abandoned by crashed writers.

        Only tmp dirs older than ``max_age_s`` are removed, so a live
        writer in another process is never swept mid-stage.  Returns the
        number of directories reclaimed.
        """
        tmp_root = self._tmp_root()
        if not tmp_root.is_dir():
            return 0
        now = time.time()
        reclaimed = 0
        for orphan in tmp_root.iterdir():
            try:
                age = now - orphan.stat().st_mtime
            except OSError:
                continue
            if age > max_age_s:
                shutil.rmtree(orphan, ignore_errors=True)
                reclaimed += 1
        if reclaimed:
            inc("engine.cache.orphans_swept", reclaimed)
        return reclaimed

    def _sweep_once(self) -> None:
        """Run the orphan sweep once per store instance (first save)."""
        if not self._swept:
            self._swept = True
            self.sweep_orphans()


class EngineCache:
    """LRU memory tier over an optional :class:`ArtifactStore` disk tier.

    Thread-safe: the memory tier is guarded by one reentrant lock, so
    concurrent serving workers can hit/promote/evict without corrupting
    the LRU order (disk-tier safety is the store's job).
    """

    def __init__(self, store: ArtifactStore | None = None, memory_slots: int = 64):
        self.store = store
        self.memory_slots = memory_slots
        self.stats = CacheStats()
        self._memory: OrderedDict[str, CacheEntry] = OrderedDict()
        self._lock = threading.RLock()

    def get(
        self, key: str, count_miss: bool = True
    ) -> tuple[Optional[CacheEntry], Optional[str]]:
        """Look ``key`` up in memory, then on disk (promoting to memory).

        Returns ``(entry, tier)`` where tier is ``"memory"``, ``"disk"``
        or ``None`` on a miss.  ``count_miss=False`` suppresses miss
        accounting — used by the singleflight re-check so one logical
        compile never counts two misses.
        """
        with self._lock:
            entry = self._memory.get(key)
            if entry is not None:
                self._memory.move_to_end(key)
                self.stats.memory_hits += 1
                count("engine.cache.hit")
                count("engine.cache.hit_memory")
                inc("engine.cache.hits", tier="memory")
                return entry, "memory"
        if self.store is not None:
            with span("engine.cache.disk-load", key=key):
                entry = self.store.load(key)
            if entry is not None:
                with self._lock:
                    self._remember(key, entry)
                    self.stats.disk_hits += 1
                count("engine.cache.hit")
                count("engine.cache.hit_disk")
                inc("engine.cache.hits", tier="disk")
                return entry, "disk"
        if count_miss:
            with self._lock:
                self.stats.misses += 1
            count("engine.cache.miss")
            inc("engine.cache.misses")
        return None, None

    def put(self, entry: CacheEntry) -> None:
        """Insert a freshly compiled entry into both tiers."""
        with self._lock:
            self._remember(entry.key, entry)
            self.stats.stores += 1
        inc("engine.cache.stores")
        if self.store is not None:
            with span("engine.cache.disk-store", key=entry.key):
                entry.meta = self.store.save(entry)

    def _remember(self, key: str, entry: CacheEntry) -> None:
        # caller holds self._lock
        self._memory[key] = entry
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_slots:
            evicted_key, evicted = self._memory.popitem(last=False)
            library = evicted.library
            if library is not None and hasattr(library, "close"):
                library.close()
            count("engine.cache.evictions")
            inc("engine.cache.evictions", tier="memory")
            emit("engine.cache.evict", key=evicted_key, tier="memory")
        set_gauge("engine.cache.memory_entries", len(self._memory))

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def to_dict(self) -> dict:
        """JSON-ready stats (plus tier configuration) for the run report."""
        out = self.stats.to_dict()
        out["memory_entries"] = len(self)
        out["memory_slots"] = self.memory_slots
        out["disk_store"] = str(self.store.root) if self.store else None
        return out
