"""The execution engine: compile cache + parallel batch execution.

The production-facing layer of the reproduction.  Where the rest of the
package treats compilation as a transient side effect, the engine makes
it a *reusable, inspectable artifact* (the stance of the RISE & Shine
compiler-design line of work): every compile is content-addressed by the
structural hash of the RISE expression, the strategy identity, the
backend and the symbolic-size signature, then served from an in-memory
LRU backed by an on-disk artifact store — pickled imperative programs,
and reusable ``.so`` files for the ctypes bridge.

Public surface (re-exported as ``repro.compile`` etc.):

* :func:`repro.engine.compile` — the unified front door;
* :class:`CompileRequest` — the typed, validated compile-request value
  the serving layer queues and coalesces;
* :class:`CompiledPipeline` — ``.run()``, ``.run_batch()``, ``.source``,
  ``.report()``;
* :class:`BatchRunner` / :class:`BatchResult` — parallel fan-out over
  input batches (process pool for the Python backend, thread pool for
  the C backend);
* :class:`Engine`, :func:`default_engine`, :func:`reset_default_engine`
  — cache ownership and test/CLI control;
* :func:`structural_hash` and friends — the content-addressing scheme.

Everything the engine does is observable: cache hits/misses, artifact
sizes and batch throughput surface as ``engine.*`` spans/counters in
:mod:`repro.observe` and as the ``engine`` section of the run report.
"""

from repro.engine.batch import BatchResult, BatchRunner
from repro.engine.cache import ArtifactStore, CacheEntry, CacheStats, EngineCache
from repro.engine.hashing import (
    ENGINE_VERSION,
    cache_key,
    program_fingerprint,
    size_signature,
    strategy_identity,
    structural_hash,
    type_env_signature,
)
from repro.engine.memo import Memo
from repro.engine.pipeline import (
    BUILDER_REGISTRY,
    CompiledPipeline,
    Engine,
    compile,
    default_engine,
    register_builder,
    reset_default_engine,
)
from repro.engine.request import BACKENDS, CompileRequest

#: Schema identifier of the run report's ``engine`` section.
ENGINE_REPORT_SCHEMA = "repro.engine.report/v1"

__all__ = [
    "ENGINE_VERSION",
    "ENGINE_REPORT_SCHEMA",
    "compile",
    "CompileRequest",
    "BACKENDS",
    "CompiledPipeline",
    "Engine",
    "default_engine",
    "reset_default_engine",
    "register_builder",
    "BUILDER_REGISTRY",
    "BatchRunner",
    "BatchResult",
    "EngineCache",
    "Memo",
    "ArtifactStore",
    "CacheEntry",
    "CacheStats",
    "structural_hash",
    "program_fingerprint",
    "strategy_identity",
    "size_signature",
    "type_env_signature",
    "cache_key",
]
