"""Symbolic arithmetic over natural numbers.

RISE types contain sizes such as ``[n + 4][m + 4]`` where ``n`` and ``m`` are
natural-number variables.  Rewrite rules and type inference need to construct,
simplify, compare and solve such size expressions.  This module implements a
small computer-algebra layer for them:

* A :class:`Nat` is kept in a *normal form*: an integer-linear combination of
  monomials, where a monomial is a product of atoms raised to positive integer
  powers.
* Atoms are either variables (:class:`NatVar`) or opaque non-polynomial
  operations (:class:`NatFloorDiv`, :class:`NatCeilDiv`, :class:`NatMod`)
  whose operands are themselves :class:`Nat` values.
* Equality of normal forms decides equality of expressions, which is what the
  type checker relies on.

Subtraction may produce intermediate values with negative coefficients (for
example ``n - 1``); this is deliberate, since sizes like ``n + m - 1`` appear
throughout the paper and only need to be non-negative once evaluated.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping, Union

NatLike = Union["Nat", "NatAtom", int, str]

__all__ = [
    "Nat",
    "NatAtom",
    "NatVar",
    "NatFloorDiv",
    "NatCeilDiv",
    "NatMod",
    "NatEvalError",
    "nat",
    "ceil_div",
]


class NatEvalError(Exception):
    """Raised when a symbolic Nat cannot be evaluated to a concrete integer."""


class NatAtom:
    """Base class of the indivisible building blocks of Nat normal forms."""

    def sort_key(self) -> tuple:
        raise NotImplementedError

    def free_vars(self) -> frozenset[str]:
        raise NotImplementedError

    def substitute(self, mapping: Mapping[str, "Nat"]) -> "Nat":
        raise NotImplementedError

    def evaluate(self, env: Mapping[str, int]) -> int:
        raise NotImplementedError


@dataclass(frozen=True)
class NatVar(NatAtom):
    """A named natural-number variable, e.g. the ``n`` in ``[n]f32``."""

    name: str

    def sort_key(self) -> tuple:
        return ("var", self.name)

    def free_vars(self) -> frozenset[str]:
        return frozenset({self.name})

    def substitute(self, mapping: Mapping[str, "Nat"]) -> "Nat":
        if self.name in mapping:
            return Nat.of(mapping[self.name])
        return Nat.of(self)

    def evaluate(self, env: Mapping[str, int]) -> int:
        try:
            return env[self.name]
        except KeyError:
            raise NatEvalError(f"unbound nat variable {self.name!r}") from None

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class _BinAtom(NatAtom):
    """Shared implementation of opaque binary atoms (div / mod variants)."""

    num: "Nat"
    den: "Nat"

    _tag = "bin"
    _symbol = "?"

    def sort_key(self) -> tuple:
        return (self._tag, self.num.sort_key(), self.den.sort_key())

    def free_vars(self) -> frozenset[str]:
        return self.num.free_vars() | self.den.free_vars()

    def substitute(self, mapping: Mapping[str, "Nat"]) -> "Nat":
        return self._rebuild(self.num.substitute(mapping), self.den.substitute(mapping))

    @classmethod
    def _rebuild(cls, num: "Nat", den: "Nat") -> "Nat":
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"({self.num!r} {self._symbol} {self.den!r})"


class NatFloorDiv(_BinAtom):
    """Opaque floor division: used when exact division does not simplify."""

    _tag = "floordiv"
    _symbol = "/"

    @classmethod
    def _rebuild(cls, num: "Nat", den: "Nat") -> "Nat":
        return num // den

    def evaluate(self, env: Mapping[str, int]) -> int:
        den = self.den.evaluate(env)
        if den == 0:
            raise NatEvalError(f"division by zero in {self!r}")
        return self.num.evaluate(env) // den


class NatCeilDiv(_BinAtom):
    """Opaque ceiling division, e.g. the number of vectors covering n scalars."""

    _tag = "ceildiv"
    _symbol = "/^"

    @classmethod
    def _rebuild(cls, num: "Nat", den: "Nat") -> "Nat":
        return ceil_div(num, den)

    def evaluate(self, env: Mapping[str, int]) -> int:
        den = self.den.evaluate(env)
        if den == 0:
            raise NatEvalError(f"division by zero in {self!r}")
        return -((-self.num.evaluate(env)) // den)


class NatMod(_BinAtom):
    """Opaque modulo, used by circular-buffer indexing."""

    _tag = "mod"
    _symbol = "%"

    @classmethod
    def _rebuild(cls, num: "Nat", den: "Nat") -> "Nat":
        return num % den

    def evaluate(self, env: Mapping[str, int]) -> int:
        den = self.den.evaluate(env)
        if den == 0:
            raise NatEvalError(f"modulo by zero in {self!r}")
        return self.num.evaluate(env) % den


# A monomial maps each atom to its (positive) integer power.  Normal form:
# a tuple of (atom, power) pairs sorted by the atom's sort key.
Monomial = tuple[tuple[NatAtom, int], ...]

_ONE_MONOMIAL: Monomial = ()


def _monomial_sort_key(m: Monomial) -> tuple:
    return tuple((atom.sort_key(), power) for atom, power in m)


def _monomial_mul(a: Monomial, b: Monomial) -> Monomial:
    powers: dict[NatAtom, int] = {}
    for atom, power in a + b:
        powers[atom] = powers.get(atom, 0) + power
    items = [(atom, power) for atom, power in powers.items() if power != 0]
    items.sort(key=lambda item: item[0].sort_key())
    return tuple(items)


class Nat:
    """A natural-number expression in polynomial normal form.

    Use :func:`nat` (or arithmetic on existing Nat values) to construct
    instances; the constructor is internal.
    """

    __slots__ = ("_terms", "_hash")

    def __init__(self, terms: Iterable[tuple[Monomial, int]]):
        cleaned = [(m, c) for m, c in terms if c != 0]
        cleaned.sort(key=lambda item: _monomial_sort_key(item[0]))
        self._terms: tuple[tuple[Monomial, int], ...] = tuple(cleaned)
        self._hash = hash(self._terms)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @staticmethod
    def of(value: NatLike) -> "Nat":
        if isinstance(value, Nat):
            return value
        if isinstance(value, bool):
            raise TypeError("bool is not a Nat")
        if isinstance(value, int):
            if value == 0:
                return Nat(())
            return Nat(((_ONE_MONOMIAL, value),))
        if isinstance(value, str):
            return Nat((((((NatVar(value), 1),)), 1),))
        if isinstance(value, NatAtom):
            return Nat(((((value, 1),), 1),))
        raise TypeError(f"cannot build a Nat from {value!r}")

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def terms(self) -> tuple[tuple[Monomial, int], ...]:
        return self._terms

    def is_constant(self) -> bool:
        return all(m == _ONE_MONOMIAL for m, _ in self._terms)

    def constant_value(self) -> int:
        if not self.is_constant():
            raise NatEvalError(f"{self!r} is not constant")
        return sum(c for _, c in self._terms)

    def is_zero(self) -> bool:
        return not self._terms

    def free_vars(self) -> frozenset[str]:
        names: frozenset[str] = frozenset()
        for monomial, _ in self._terms:
            for atom, _power in monomial:
                names |= atom.free_vars()
        return names

    def sort_key(self) -> tuple:
        return tuple((_monomial_sort_key(m), c) for m, c in self._terms)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------

    def __add__(self, other: NatLike) -> "Nat":
        other = Nat.of(other)
        coeffs: dict[Monomial, int] = dict(self._terms)
        for monomial, coeff in other._terms:
            coeffs[monomial] = coeffs.get(monomial, 0) + coeff
        return Nat(coeffs.items())

    __radd__ = __add__

    def __sub__(self, other: NatLike) -> "Nat":
        return self + (Nat.of(other) * -1)

    def __rsub__(self, other: NatLike) -> "Nat":
        return Nat.of(other) - self

    def __mul__(self, other: NatLike) -> "Nat":
        if isinstance(other, int):
            return Nat((m, c * other) for m, c in self._terms)
        other = Nat.of(other)
        coeffs: dict[Monomial, int] = {}
        for m1, c1 in self._terms:
            for m2, c2 in other._terms:
                product = _monomial_mul(m1, m2)
                coeffs[product] = coeffs.get(product, 0) + c1 * c2
        return Nat(coeffs.items())

    __rmul__ = __mul__

    def __floordiv__(self, other: NatLike) -> "Nat":
        other = Nat.of(other)
        exact = self.divide_exact(other)
        if exact is not None:
            return exact
        if self.is_constant() and other.is_constant():
            return Nat.of(self.constant_value() // other.constant_value())
        return Nat.of(NatFloorDiv(self, other))

    def __mod__(self, other: NatLike) -> "Nat":
        other = Nat.of(other)
        if self.divide_exact(other) is not None:
            return Nat.of(0)
        if self.is_constant() and other.is_constant():
            return Nat.of(self.constant_value() % other.constant_value())
        return Nat.of(NatMod(self, other))

    def divide_exact(self, other: "Nat") -> "Nat | None":
        """Return self / other when the division is exact, else None.

        Handles the cases that matter in practice: division by a constant
        that divides every coefficient, and division by a single monomial
        that divides every term.
        """
        other = Nat.of(other)
        if other.is_zero():
            raise ZeroDivisionError("Nat division by zero")
        if self.is_zero():
            return Nat.of(0)
        if len(other._terms) != 1:
            if self == other:
                return Nat.of(1)
            return None
        (den_monomial, den_coeff), = other._terms
        den_powers = dict(den_monomial)
        out_terms: list[tuple[Monomial, int]] = []
        for monomial, coeff in self._terms:
            if coeff % den_coeff != 0:
                return None
            powers = dict(monomial)
            for atom, power in den_powers.items():
                have = powers.get(atom, 0)
                if have < power:
                    return None
                powers[atom] = have - power
            items = [(a, p) for a, p in powers.items() if p != 0]
            items.sort(key=lambda item: item[0].sort_key())
            out_terms.append((tuple(items), coeff // den_coeff))
        return Nat(out_terms)

    # ------------------------------------------------------------------
    # Substitution and evaluation
    # ------------------------------------------------------------------

    def substitute(self, mapping: Mapping[str, NatLike]) -> "Nat":
        nat_mapping = {name: Nat.of(value) for name, value in mapping.items()}
        result = Nat.of(0)
        for monomial, coeff in self._terms:
            term = Nat.of(coeff)
            for atom, power in monomial:
                base = atom.substitute(nat_mapping)
                for _ in range(power):
                    term = term * base
            result = result + term
        return result

    def evaluate(self, env: Mapping[str, int] | None = None) -> int:
        env = env or {}
        total = 0
        for monomial, coeff in self._terms:
            value = coeff
            for atom, power in monomial:
                value *= atom.evaluate(env) ** power
            total += value
        if total < 0:
            raise NatEvalError(f"{self!r} evaluated to negative value {total}")
        return total

    # ------------------------------------------------------------------
    # Solving (used by nat unification in the type checker)
    # ------------------------------------------------------------------

    def linear_coefficient(self, name: str) -> "Nat | None":
        """If self == coeff * name + rest with name absent from coeff and
        rest, return coeff; otherwise None."""
        var = NatVar(name)
        coeff = Nat.of(0)
        for monomial, c in self._terms:
            powers = dict(monomial)
            power = powers.pop(var, 0)
            if power == 0:
                for atom, _p in monomial:
                    if name in atom.free_vars():
                        return None
                continue
            if power > 1:
                return None
            items = sorted(powers.items(), key=lambda item: item[0].sort_key())
            for atom, _p in items:
                if name in atom.free_vars():
                    return None
            coeff = coeff + Nat(((tuple(items), c),))
        return coeff if not coeff.is_zero() else None

    def without_var_terms(self, name: str) -> "Nat":
        """Drop every term that mentions ``name``."""
        kept = [
            (m, c)
            for m, c in self._terms
            if all(name not in atom.free_vars() for atom, _ in m)
        ]
        return Nat(kept)

    def solve_for(self, name: str, rhs: "Nat") -> "Nat | None":
        """Solve ``self == rhs`` for the variable ``name``.

        Only linear occurrences are handled: ``a * name + b == rhs`` gives
        ``name = (rhs - b) / a`` when the division is exact.
        """
        if name in rhs.free_vars():
            return None
        coeff = self.linear_coefficient(name)
        if coeff is None:
            return None
        rest = self.without_var_terms(name)
        return (rhs - rest).divide_exact(coeff)

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (int, str, NatAtom)):
            other = Nat.of(other)
        if not isinstance(other, Nat):
            return NotImplemented
        return self._terms == other._terms

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        if not self._terms:
            return "0"
        parts: list[str] = []
        for monomial, coeff in self._terms:
            factors = []
            for atom, power in monomial:
                text = repr(atom)
                if power != 1:
                    text = f"{text}^{power}"
                factors.append(text)
            if not factors:
                parts.append(str(coeff))
            elif coeff == 1:
                parts.append("*".join(factors))
            elif coeff == -1:
                parts.append("-" + "*".join(factors))
            else:
                parts.append(f"{coeff}*" + "*".join(factors))
        text = " + ".join(parts)
        return text.replace("+ -", "- ")


def nat(value: NatLike) -> Nat:
    """Public constructor: build a Nat from an int, a variable name or a Nat."""
    return Nat.of(value)


def ceil_div(num: NatLike, den: NatLike) -> Nat:
    """Ceiling division on Nats, simplifying exact and constant cases."""
    num = Nat.of(num)
    den = Nat.of(den)
    exact = num.divide_exact(den)
    if exact is not None:
        return exact
    if num.is_constant() and den.is_constant():
        n, d = num.constant_value(), den.constant_value()
        return Nat.of(-((-n) // d))
    return Nat.of(NatCeilDiv(num, den))


def _roundup_const(n: int, multiple: int) -> int:
    return math.ceil(n / multiple) * multiple


def round_up(value: NatLike, multiple: NatLike) -> Nat:
    """Round ``value`` up to the next multiple of ``multiple``.

    Used when vectorizing: the paper rounds inputs, outputs and temporaries
    up to a multiple of the vector width.
    """
    value = Nat.of(value)
    multiple = Nat.of(multiple)
    if value.divide_exact(multiple) is not None:
        return value
    if value.is_constant() and multiple.is_constant():
        return Nat.of(_roundup_const(value.constant_value(), multiple.constant_value()))
    return ceil_div(value, multiple) * multiple
