"""Symbolic natural-number arithmetic used for RISE array sizes."""

from repro.nat.core import (
    Nat,
    NatAtom,
    NatCeilDiv,
    NatEvalError,
    NatFloorDiv,
    NatMod,
    NatVar,
    ceil_div,
    nat,
    round_up,
)

__all__ = [
    "Nat",
    "NatAtom",
    "NatCeilDiv",
    "NatEvalError",
    "NatFloorDiv",
    "NatMod",
    "NatVar",
    "ceil_div",
    "nat",
    "round_up",
]
