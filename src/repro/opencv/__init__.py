"""The OpenCV library baseline (paper section V: 'highly optimized library')."""

from repro.opencv.pipeline import compile_harris_opencv

__all__ = ["compile_harris_opencv"]
