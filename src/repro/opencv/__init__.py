"""The OpenCV library baseline (paper section V: 'highly optimized library')."""

from repro.opencv.pipeline import build_harris_opencv_program, compile_harris_opencv

__all__ = ["build_harris_opencv_program", "compile_harris_opencv"]
