"""The OpenCV library baseline: the Harris pipeline as a sequence of
whole-image library calls.

Why a highly-optimized library loses to whole-program compilers (paper
section V-B): no fusion across calls — every call reads and writes a
full-size image through memory — plus the structural costs of a *generic*
library that the modeled calls reproduce:

* interleaved (AoS) channel layouts for multi-channel data (the input
  image and the 3-channel structure-tensor buffer), which defeat
  vectorization of channel-generic loops;
* generic scalar inner loops for the channel-generic operations
  (``cvtColor`` over interleaved RGB, the per-pixel Harris response),
  NEON-vectorized loops for the regular single-channel filters;
* single-threaded execution — the default OpenCV build on the paper's
  boards (no TBB/pthreads parallel backend), which the magnitude of the
  paper's reported gaps (up to 16x) corroborates;
* a dispatch overhead per library call.

Each call is built directly as an imperative kernel, so it runs and is
costed by exactly the same machinery as the compiled pipelines.
"""

from __future__ import annotations


from repro.nat import Nat, nat
from repro.codegen.ir import (
    Block,
    Buffer,
    BinOp,
    FConst,
    For,
    IConst,
    IExpr,
    ImpFunction,
    ImpProgram,
    Load,
    LoopKind,
    Store,
    Var,
    VLoad,
    VStore,
    Broadcast,
)
from repro.codegen.opt import cse_program, fold_program
from repro.codegen.views import idx_add, idx_mul, nat_expr
from repro.image.reference import GRAY_WEIGHTS, HARRIS_KAPPA, SOBEL_X, SOBEL_Y

__all__ = ["build_harris_opencv_program", "compile_harris_opencv"]

_PAD = 8


def _for(var: str, extent, body, kind=LoopKind.SEQ) -> For:
    return For(var, nat_expr(extent) if isinstance(extent, Nat) else extent, body, kind)


def _fn(name: str, inputs, output, body) -> ImpFunction:
    size_vars = sorted(
        {v for b in inputs + [output] for v in b.alloc_size().free_vars()}
    )
    return ImpFunction(name, inputs, output, size_vars, Block(body))


def _idx2(y: IExpr, x: IExpr, width: Nat) -> IExpr:
    return idx_add(idx_mul(y, nat_expr(width)), x)


def build_harris_opencv_program(vec: int = 4) -> ImpProgram:
    """cvtColor -> Sobel x2 -> cov (AoS) -> boxFilter(3ch) -> response.

    Registered with the engine as the ``"harris-opencv"`` builder.
    """
    n, m = nat("n"), nat("m")
    rows, cols = n + 4, m + 4  # gray size
    srows, scols = n + 2, m + 2  # sobel output size

    functions: list[ImpFunction] = []

    # 1. cvtColor: interleaved RGB (HWC) -> gray.  Channel-interleaved
    # loads defeat vectorization: generic scalar loop.
    y, x = Var("y"), Var("x")
    base = idx_mul(_idx2(y, x, cols), IConst(3))
    gray_val = FConst(0.0)
    for c, w in enumerate(GRAY_WEIGHTS):
        gray_val = BinOp(
            "add",
            gray_val,
            BinOp("mul", FConst(float(w)), Load("rgb_hwc", idx_add(base, IConst(c)))),
        )
    body = _for(
        "y",
        rows,
        Block([_for("x", cols, Block([Store("gray", _idx2(y, x, cols), gray_val)]))]),
    )
    functions.append(
        _fn(
            "cv_cvtColor",
            [Buffer("rgb_hwc", nat(3) * rows * cols, _PAD)],
            Buffer("gray", rows * cols, _PAD),
            [body],
        )
    )

    # 1b. copyMakeBorder(gray): OpenCV filters pad their input explicitly;
    # a full-image copy pass (interior only — the border writes are O(rows)).
    yv, xv = Var("y"), Var("x")
    body = _for(
        "y",
        rows,
        Block(
            [
                _for(
                    "x",
                    cols,
                    Block(
                        [
                            Store(
                                "gray_b",
                                _idx2(yv, xv, cols),
                                Load("gray", _idx2(yv, xv, cols)),
                            )
                        ]
                    ),
                )
            ]
        ),
    )
    functions.append(
        _fn(
            "cv_makeBorder_gray",
            [Buffer("gray", rows * cols, _PAD)],
            Buffer("gray_b", rows * cols, _PAD),
            [body],
        )
    )

    # 2+3. Sobel dx / dy: single-channel 3x3 filters, NEON-vectorized.
    def sobel_kernel(name: str, weights) -> ImpFunction:
        yv, sv = Var("y"), Var("s")
        xbase = idx_mul(sv, IConst(vec))
        acc: IExpr = Broadcast(FConst(0.0), vec)
        for dy in range(3):
            for dx in range(3):
                w = float(weights[dy][dx])
                if w == 0.0:
                    continue
                load = VLoad(
                    "gray_b",
                    idx_add(_idx2(idx_add(yv, IConst(dy)), xbase, cols), IConst(dx)),
                    vec,
                    aligned=False,
                )
                acc = BinOp("add", acc, BinOp("mul", Broadcast(FConst(w), vec), load))
        strips = scols // nat(vec)
        inner = Block([VStore(name + "_out", _idx2(yv, xbase, scols), acc, vec)])
        # scalar tail
        tv = Var("t")
        tail_x = idx_add(idx_mul(nat_expr(strips), IConst(vec)), tv)
        tacc: IExpr = FConst(0.0)
        for dy in range(3):
            for dx in range(3):
                w = float(weights[dy][dx])
                if w == 0.0:
                    continue
                tacc = BinOp(
                    "add",
                    tacc,
                    BinOp(
                        "mul",
                        FConst(w),
                        Load("gray_b", idx_add(_idx2(idx_add(yv, IConst(dy)), tail_x, cols), IConst(dx))),
                    ),
                )
        body = _for(
            "y",
            srows,
            Block(
                [
                    For("s", nat_expr(strips), inner, LoopKind.VEC),
                    For("t", nat_expr(scols % nat(vec)), Block([Store(name + "_out", _idx2(yv, tail_x, scols), tacc)]), LoopKind.SEQ),
                ]
            ),
        )
        return _fn(
            name,
            [Buffer("gray_b", rows * cols, _PAD)],
            Buffer(name + "_out", srows * scols, _PAD),
            [body],
        )

    ix_fn = sobel_kernel("cv_sobel_dx", SOBEL_X)
    iy_fn = sobel_kernel("cv_sobel_dy", SOBEL_Y)
    functions += [ix_fn, iy_fn]

    # 4. cov: per-pixel 3-channel structure tensor, interleaved (AoS) —
    # the layout cornerEigenValsVecs uses; scalar stores at stride 3.
    yv, xv = Var("y"), Var("x")
    ix = Load("cv_sobel_dx_out", _idx2(yv, xv, scols))
    iyl = Load("cv_sobel_dy_out", _idx2(yv, xv, scols))
    cov_base = idx_mul(_idx2(yv, xv, scols), IConst(3))
    body = _for(
        "y",
        srows,
        Block(
            [
                _for(
                    "x",
                    scols,
                    Block(
                        [
                            Store("cov", cov_base, BinOp("mul", ix, ix)),
                            Store("cov", idx_add(cov_base, IConst(1)), BinOp("mul", ix, iyl)),
                            Store("cov", idx_add(cov_base, IConst(2)), BinOp("mul", iyl, iyl)),
                        ]
                    ),
                )
            ]
        ),
    )
    functions.append(
        _fn(
            "cv_cov",
            [
                Buffer("cv_sobel_dx_out", srows * scols, _PAD),
                Buffer("cv_sobel_dy_out", srows * scols, _PAD),
            ],
            Buffer("cov", nat(3) * srows * scols, _PAD),
            [body],
        )
    )

    # 4b. copyMakeBorder(cov): 3-channel padded copy before boxFilter.
    yv, xv = Var("y"), Var("x")
    cbase = idx_mul(_idx2(yv, xv, scols), IConst(3))
    body = _for(
        "y",
        srows,
        Block(
            [
                _for(
                    "x",
                    scols,
                    Block(
                        [
                            Store("cov_b", cbase, Load("cov", cbase)),
                            Store("cov_b", idx_add(cbase, IConst(1)), Load("cov", idx_add(cbase, IConst(1)))),
                            Store("cov_b", idx_add(cbase, IConst(2)), Load("cov", idx_add(cbase, IConst(2)))),
                        ]
                    ),
                )
            ]
        ),
    )
    functions.append(
        _fn(
            "cv_makeBorder_cov",
            [Buffer("cov", nat(3) * srows * scols, _PAD)],
            Buffer("cov_b", nat(3) * srows * scols, _PAD),
            [body],
        )
    )

    # 5. boxFilter on the 3-channel interleaved cov: stride-3 accesses,
    # generic scalar loop over channels.
    yv, xv, cv = Var("y"), Var("x"), Var("c")
    acc: IExpr = FConst(0.0)
    for dy in range(3):
        for dx in range(3):
            acc = BinOp(
                "add",
                acc,
                Load(
                    "cov_b",
                    idx_add(
                        idx_mul(
                            _idx2(idx_add(yv, IConst(dy)), idx_add(xv, IConst(dx)), scols),
                            IConst(3),
                        ),
                        cv,
                    ),
                ),
            )
    body = _for(
        "y",
        n,
        Block(
            [
                _for(
                    "x",
                    m,
                    Block(
                        [
                            _for(
                                "c",
                                nat(3),
                                Block(
                                    [
                                        Store(
                                            "scov",
                                            idx_add(idx_mul(_idx2(yv, xv, m), IConst(3)), cv),
                                            acc,
                                        )
                                    ]
                                ),
                                LoopKind.UNROLLED,
                            )
                        ]
                    ),
                )
            ]
        ),
    )
    functions.append(
        _fn(
            "cv_boxFilter",
            [Buffer("cov_b", nat(3) * srows * scols, _PAD)],
            Buffer("scov", nat(3) * n * m, _PAD),
            [body],
        )
    )

    # 6. Harris response: det - k trace^2 from interleaved sums (scalar).
    yv, xv = Var("y"), Var("x")
    sbase = idx_mul(_idx2(yv, xv, m), IConst(3))
    sxx = Load("scov", sbase)
    sxy = Load("scov", idx_add(sbase, IConst(1)))
    syy = Load("scov", idx_add(sbase, IConst(2)))
    det = BinOp("sub", BinOp("mul", sxx, syy), BinOp("mul", sxy, sxy))
    trace = BinOp("add", sxx, syy)
    response = BinOp(
        "sub", det, BinOp("mul", BinOp("mul", FConst(float(HARRIS_KAPPA)), trace), trace)
    )
    body = _for(
        "y",
        n,
        Block([_for("x", m, Block([Store("out", _idx2(yv, xv, m), response)]))]),
    )
    functions.append(
        _fn(
            "cv_cornerResponse",
            [Buffer("scov", nat(3) * n * m, _PAD)],
            Buffer("out", n * m, _PAD),
            [body],
        )
    )

    prog = ImpProgram(
        name="opencv_harris",
        functions=functions,
        size_vars=["m", "n"],
        launch_overheads=len(functions),
    )
    prog.size_constraints = []
    prog.vector_fallbacks = []
    from repro.observe.profile import compile_profile

    with compile_profile(prog.name):
        return cse_program(fold_program(prog))


def compile_harris_opencv(vec: int = 4) -> ImpProgram:
    """Removed: compile through the engine front door instead.

    This pre-engine entry point spent two releases as a
    ``DeprecationWarning`` shim and is now retired; calling it raises
    with the migration below.
    """
    raise RuntimeError(
        "compile_harris_opencv was removed; migrate to the engine front door:\n"
        "    repro.compile('harris-opencv', options={'vec': vec}).program"
    )
