"""Ablation study: the contribution of each optimization strategy.

DESIGN.md E6: section IV motivates each strategy; this bench toggles them
individually, costing each variant on one machine so the benefit of
multi-threading, vectorization, circular buffering, convolution separation
and register rotation can be read off directly.  (The paper shows the
endpoints of this spectrum in figs. 1 and 8; the ablation is our index of
the design choices in between.)
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.codegen import compile_program
from repro.elevate.core import apply_once, normalize, try_
from repro.image import PAPER_IMAGE_SMALL
from repro.perf.cost import estimate_runtime_ms
from repro.perf.machines import CORTEX_A53, Machine
from repro.pipelines import harris, harris_input_type
from repro.rise.expr import Identifier
from repro.rules.conv import rotate_values_consume, separate_conv_line, separate_conv_line_zip
from repro.strategies import Schedule
from repro.strategies.harris import (
    circular_buffer_stages,
    fuse_operators,
    harris_ix_with_iy,
    parallel,
    sequential,
    simplify,
    split_pipeline,
    unroll_reductions,
    use_private_memory,
    vectorize_reductions,
)

__all__ = ["ablation_variants", "run_ablation", "AblationRow"]


def _sequential_chunk():
    """Implement the chunk map with a sequential loop instead of mapGlobal."""
    from repro.rules.lowering import use_map_seq

    strategy = apply_once(use_map_seq)
    strategy.name = "sequentialChunk"
    return strategy


@dataclass
class AblationRow:
    variant: str
    runtime_ms: float
    slowdown_vs_full: float


def ablation_variants(type_env, chunk: int = 32, vec: int = 4) -> dict[str, Schedule]:
    """Schedule variants with one optimization removed (or the full set)."""
    sep = try_(normalize(separate_conv_line | separate_conv_line_zip))
    rot = try_(normalize(rotate_values_consume))

    def schedule(name, steps):
        return Schedule(name=name, steps=steps)

    base_prefix = [fuse_operators, harris_ix_with_iy, split_pipeline(chunk), parallel, simplify, harris_ix_with_iy]
    tail = [sequential, use_private_memory(), unroll_reductions]

    return {
        "full (cbuf+rot)": schedule(
            "full",
            base_prefix
            + [sep, vectorize_reductions(vec, type_env), harris_ix_with_iy,
               circular_buffer_stages, rot]
            + tail,
        ),
        "no rotation (cbuf)": schedule(
            "no-rotation",
            base_prefix
            + [vectorize_reductions(vec, type_env), harris_ix_with_iy,
               circular_buffer_stages]
            + tail,
        ),
        "no circular buffering": schedule(
            "no-cbuf",
            base_prefix + [sep, vectorize_reductions(vec, type_env), harris_ix_with_iy, rot] + tail,
        ),
        "no vectorization": schedule(
            "no-vec",
            base_prefix + [sep, circular_buffer_stages, rot] + tail,
        ),
        "no multi-threading": schedule(
            "no-parallel",
            [fuse_operators, harris_ix_with_iy, split_pipeline(chunk),
             _sequential_chunk(), simplify, harris_ix_with_iy,
             sep, vectorize_reductions(vec, type_env), harris_ix_with_iy,
             circular_buffer_stages, rot]
            + tail,
        ),
        "no unrolling": schedule(
            "no-unroll",
            base_prefix
            + [sep, vectorize_reductions(vec, type_env), harris_ix_with_iy,
               circular_buffer_stages, rot, sequential, use_private_memory()],
        ),
    }


@lru_cache(maxsize=2)
def _compiled_variants(chunk: int = 32, vec: int = 4):
    rgb = Identifier("rgb")
    senv = {"rgb": harris_input_type()}
    out = {}
    for name, sched in ablation_variants(senv, chunk, vec).items():
        low = sched.apply(harris(rgb))
        out[name] = compile_program(low, senv, sched.name.replace("-", "_"))
    return out


def run_ablation(
    machine: Machine = CORTEX_A53, chunk: int = 32, vec: int = 4
) -> list[AblationRow]:
    """Cost every variant on one machine (paper image, small)."""
    from repro.bench.harness import padded_sizes

    programs = _compiled_variants(chunk, vec)
    sizes = padded_sizes(PAPER_IMAGE_SMALL, chunk, vec)
    times = {
        name: estimate_runtime_ms(prog, sizes, machine, "opencl").runtime_ms
        for name, prog in programs.items()
    }
    full = times["full (cbuf+rot)"]
    return [
        AblationRow(name, t, t / full)
        for name, t in sorted(times.items(), key=lambda kv: kv[1])
    ]
