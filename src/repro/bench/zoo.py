"""Zoo benchmark cells: every registered pipeline, costed and validated.

Where :mod:`repro.bench.harness` reproduces the paper's Harris figures,
this module covers the whole :mod:`pipeline registry
<repro.pipelines.registry>`: each registered pipeline is lowered under
every *applicable* named schedule (applicability detected structurally,
see :func:`repro.pipelines.registry.applicable_schedules`) and costed on
every modeled ARM CPU.  The result is one trajectory cell per
``(pipeline, schedule, machine)``::

    zoo|<pipeline>|<schedule>|<machine>

plus ``zoo|<pipeline>|<baseline>|<machine>`` cells for pipelines with
registered external baselines (Harris: Halide, OpenCV, Lift).  Zoo
cells ride into ``BENCH_trajectory.json`` through the same sample
mechanism as the fig. 8 grid, and — being deterministic cost-model
outputs — are gated by the regression comparison by default.

The module also hosts the CI ``zoo-smoke``: compile every registered
pipeline on every available backend under one schedule and validate
each output against the registry's NumPy reference by PSNR
(``python -m repro.bench.zoo smoke``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.engine import Engine, default_engine
from repro.perf.cost import CostReport, estimate_runtime_ms
from repro.perf.machines import ALL_MACHINES, Machine
from repro.pipelines import registry

__all__ = [
    "ZOO_CELL_PREFIX",
    "BASELINE_KINDS",
    "DEFAULT_ZOO_CHUNK",
    "DEFAULT_ZOO_VEC",
    "DEFAULT_ZOO_STRIP",
    "DEFAULT_ZOO_SIZES",
    "DEFAULT_PSNR_FLOOR_DB",
    "ZooCell",
    "SmokeRow",
    "zoo_grid",
    "zoo_cells",
    "zoo_smoke",
    "format_zoo",
    "format_smoke",
]

#: Prefix of zoo trajectory cells.  Unlike ``wall|``/``tuned|``/``serve|``
#: these are deterministic cost-model outputs, so the regression gate
#: treats them like the fig. 8 cells (gated by default).
ZOO_CELL_PREFIX = "zoo|"

#: Zoo scheduling granularity.  Smaller than the paper's chunk=32 so the
#: registry's minimal legal sizes stay small and the probe stays fast;
#: the cost model sees the same structure either way.
DEFAULT_ZOO_CHUNK = 4
DEFAULT_ZOO_VEC = 4
DEFAULT_ZOO_STRIP = 2

#: Nominal output extent used for costing — one common size keeps cells
#: comparable across pipelines, and 64 is divisible by chunk*strip and
#: vec for the default granularity.
DEFAULT_ZOO_SIZES = {"n": 64, "m": 64}

#: Smoke validation bar.  Compiled pipelines agree with the float64
#: NumPy references to float32 rounding (well above 80 dB); a genuine
#: miscompile lands far below.
DEFAULT_PSNR_FLOOR_DB = 80.0

#: Runtime kind charged per external baseline (mirrors
#: :data:`repro.bench.harness.IMPLEMENTATIONS`); RISE schedules are
#: charged as ``"opencl"`` kernels like the harness's RISE rows.
BASELINE_KINDS = {"halide": "native", "opencv": "library", "lift": "opencl"}

_RISE_KIND = "opencl"


@dataclass
class ZooCell:
    """Modeled runtime of one (pipeline, schedule, machine) cell."""

    pipeline: str
    schedule: str
    machine: str
    runtime_ms: float
    report: CostReport

    @property
    def key(self) -> str:
        """Trajectory cell name: ``zoo|<pipeline>|<schedule>|<machine>``."""
        return f"zoo|{self.pipeline}|{self.schedule}|{self.machine}"


def _baseline_request(baseline: str, chunk: int, vec: int) -> tuple[str, dict, str]:
    """(short name, engine options, runtime kind) of one baseline builder."""
    short = baseline.rsplit("-", 1)[-1]
    kind = BASELINE_KINDS.get(short, _RISE_KIND)
    options = {"vec": vec, "split": chunk} if short == "halide" else {"vec": vec}
    return short, options, kind


def zoo_grid(
    pipelines: list[str] | None = None,
    machines: list[Machine] | None = None,
    chunk: int = DEFAULT_ZOO_CHUNK,
    vec: int = DEFAULT_ZOO_VEC,
    strip: int = DEFAULT_ZOO_STRIP,
    sizes: Mapping[str, int] | None = None,
    engine: Engine | None = None,
) -> list[ZooCell]:
    """Cost every registered pipeline under every applicable schedule.

    Schedules that do not structurally apply to a pipeline (per the
    registry's probe) are skipped rather than costed as silent no-ops —
    a ``zoo|pyramid|cbuf-rot|...`` cell would model the *naive* program
    and misread as rotation speedup.  Baseline builders registered on a
    spec (Harris: Halide/OpenCV/Lift) are costed alongside under their
    own runtime kinds.
    """
    eng = engine if engine is not None else default_engine()
    machines = machines or ALL_MACHINES
    sizes = dict(sizes or DEFAULT_ZOO_SIZES)
    cells: list[ZooCell] = []
    for name in pipelines or registry.names():
        spec = registry.get(name)
        reports = registry.applicable_schedules(spec, chunk=chunk, vec=vec, strip=strip)
        programs: dict[tuple[str, str], object] = {}
        for sched_name, report in reports.items():
            if not report.applies:
                continue
            prog = eng.compile(
                "zoo",
                options={
                    "pipeline": name,
                    "schedule": sched_name,
                    "chunk": chunk,
                    "vec": vec,
                    "strip": strip,
                },
            ).program
            programs[(sched_name, _RISE_KIND)] = prog
        for baseline in spec.baselines:
            short, options, kind = _baseline_request(baseline, chunk, vec)
            programs[(short, kind)] = eng.compile(baseline, options=options).program
        for machine in machines:
            for (label, kind), prog in programs.items():
                report = estimate_runtime_ms(prog, sizes, machine, kind)
                cells.append(
                    ZooCell(name, label, machine.name, report.runtime_ms, report)
                )
    return cells


def zoo_cells(
    pipelines: list[str] | None = None,
    chunk: int = DEFAULT_ZOO_CHUNK,
    vec: int = DEFAULT_ZOO_VEC,
    strip: int = DEFAULT_ZOO_STRIP,
    engine: Engine | None = None,
) -> dict[str, float]:
    """The zoo grid as a flat ``{cell key: runtime_ms}`` map, ready to
    merge into a trajectory sample."""
    return {
        c.key: float(c.runtime_ms)
        for c in zoo_grid(
            pipelines=pipelines, chunk=chunk, vec=vec, strip=strip, engine=engine
        )
    }


@dataclass
class SmokeRow:
    """One compiled-and-validated (pipeline, backend) smoke result."""

    pipeline: str
    schedule: str
    backend: str
    sizes: dict[str, int]
    psnr_db: float
    max_abs_err: float
    psnr_floor_db: float = DEFAULT_PSNR_FLOOR_DB

    @property
    def ok(self) -> bool:
        """Whether the output clears the PSNR validation bar."""
        return self.psnr_db >= self.psnr_floor_db


def zoo_smoke(
    pipelines: list[str] | None = None,
    backends: list[str] | None = None,
    schedule: str = registry.DEFAULT_SCHEDULE,
    chunk: int = DEFAULT_ZOO_CHUNK,
    vec: int = DEFAULT_ZOO_VEC,
    strip: int = DEFAULT_ZOO_STRIP,
    seed: int = 0,
    psnr_floor_db: float = DEFAULT_PSNR_FLOOR_DB,
    engine: Engine | None = None,
) -> list[SmokeRow]:
    """Compile and numerically validate every registered pipeline.

    Each pipeline is compiled through the engine's ``"zoo"`` builder
    under ``schedule`` on every backend in ``backends`` (default: the
    Python backend, plus C when a host compiler exists), run on a seeded
    random input at the registry's smallest legal sizes, and scored by
    PSNR against the registry's NumPy reference.
    """
    import numpy as np

    from repro.exec.cbridge import have_c_compiler
    from repro.image import psnr

    eng = engine if engine is not None else default_engine()
    if backends is None:
        backends = ["python"] + (["c"] if have_c_compiler() else [])
    rows: list[SmokeRow] = []
    for name in pipelines or registry.names():
        spec = registry.get(name)
        sizes = spec.concrete_sizes(chunk, vec, strip)
        inputs = spec.make_inputs(sizes, seed=seed)
        expected = spec.reference_output(inputs)
        for backend in backends:
            pipeline = eng.compile(
                "zoo",
                options={
                    "pipeline": name,
                    "schedule": schedule,
                    "chunk": chunk,
                    "vec": vec,
                    "strip": strip,
                },
                backend=backend,
                sizes=sizes,
            )
            out = pipeline.run(**inputs).reshape(expected.shape)
            db = psnr(expected, out)
            err = float(np.max(np.abs(out - expected)))
            rows.append(
                SmokeRow(
                    pipeline=name,
                    schedule=schedule,
                    backend=backend,
                    sizes=dict(sizes),
                    psnr_db=float(db),
                    max_abs_err=err,
                    psnr_floor_db=psnr_floor_db,
                )
            )
    return rows


def format_zoo(cells: list[ZooCell]) -> str:
    """Render the zoo grid as one table per machine (ms, lower=better)."""
    by_machine: dict[str, list[ZooCell]] = {}
    for c in cells:
        by_machine.setdefault(c.machine, []).append(c)
    lines: list[str] = []
    for machine, group in by_machine.items():
        lines.append(f"{machine}:")
        header = f"  {'pipeline':<18} {'schedule':<14} {'runtime_ms':>12}"
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        for c in group:
            lines.append(f"  {c.pipeline:<18} {c.schedule:<14} {c.runtime_ms:>12.3f}")
    return "\n".join(lines)


def format_smoke(rows: list[SmokeRow]) -> str:
    """Render smoke rows as a pass/fail validation table."""
    header = (
        f"{'pipeline':<18} {'schedule':<10} {'backend':<8} "
        f"{'psnr_db':>9} {'max_err':>10}  verdict"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        db = "inf" if math.isinf(r.psnr_db) else f"{r.psnr_db:.1f}"
        lines.append(
            f"{r.pipeline:<18} {r.schedule:<10} {r.backend:<8} "
            f"{db:>9} {r.max_abs_err:>10.2e}  {'ok' if r.ok else 'FAIL'}"
        )
    return "\n".join(lines)


def _main() -> None:
    """CLI entry: zoo grid, smoke validation, and trajectory appends.

    * ``grid`` (default) — print the modeled zoo cost table;
    * ``smoke`` — compile every registered pipeline on every available
      backend under one schedule and PSNR-validate against the NumPy
      references (exit 1 on any failure; the CI ``zoo-smoke`` job);
    * ``append`` — collect one trajectory sample with the zoo cells
      merged in and append it to the ledger.
    """
    import argparse
    import sys

    parser = argparse.ArgumentParser(description=_main.__doc__.splitlines()[0])
    parser.add_argument(
        "command",
        nargs="?",
        default="grid",
        choices=("grid", "smoke", "append"),
        help="what to run (default: %(default)s)",
    )
    parser.add_argument("--chunk", type=int, default=DEFAULT_ZOO_CHUNK)
    parser.add_argument("--vec", type=int, default=DEFAULT_ZOO_VEC)
    parser.add_argument("--strip", type=int, default=DEFAULT_ZOO_STRIP)
    parser.add_argument(
        "--pipelines",
        nargs="*",
        default=None,
        help="restrict to these registered pipelines (default: all)",
    )
    parser.add_argument(
        "--schedule",
        default=registry.DEFAULT_SCHEDULE,
        choices=registry.SCHEDULE_NAMES,
        help="schedule for the smoke command (default: %(default)s)",
    )
    parser.add_argument(
        "--backend",
        default="auto",
        choices=("auto", "python", "c", "both"),
        help="backend(s) for the smoke command (default: every available)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--psnr-floor", type=float, default=DEFAULT_PSNR_FLOOR_DB,
        help="smoke validation bar in dB (default: %(default)s)",
    )
    parser.add_argument(
        "--k", type=int, default=3, help="min-of-k repeats for the append sample"
    )
    parser.add_argument(
        "--trajectory",
        default=None,
        help="trajectory ledger for the append command "
        "(default: repro.bench.regress.DEFAULT_TRAJECTORY)",
    )
    args = parser.parse_args()

    if args.command == "smoke":
        backends = None if args.backend == "auto" else (
            ["python", "c"] if args.backend == "both" else [args.backend]
        )
        rows = zoo_smoke(
            pipelines=args.pipelines,
            backends=backends,
            schedule=args.schedule,
            chunk=args.chunk,
            vec=args.vec,
            strip=args.strip,
            seed=args.seed,
            psnr_floor_db=args.psnr_floor,
        )
        print(format_smoke(rows))
        failures = [r for r in rows if not r.ok]
        if failures:
            print(f"\n{len(failures)} validation failure(s)", file=sys.stderr)
            raise SystemExit(1)
        print(f"\nall {len(rows)} (pipeline, backend) cells validated")
        return

    if args.command == "append":
        from repro.bench.regress import (
            DEFAULT_TRAJECTORY,
            append_sample,
            collect_sample,
        )

        cells = zoo_cells(
            pipelines=args.pipelines, chunk=args.chunk, vec=args.vec, strip=args.strip
        )
        sample = collect_sample(
            k=args.k,
            wall=cells,
            extra={"zoo": {"chunk": args.chunk, "vec": args.vec, "strip": args.strip}},
        )
        path = args.trajectory or DEFAULT_TRAJECTORY
        doc = append_sample(path, sample)
        print(
            f"appended sample {sample['git_sha']} with {len(cells)} zoo cell(s) "
            f"to {path} ({len(doc['samples'])} sample(s))"
        )
        return

    print(
        format_zoo(
            zoo_grid(
                pipelines=args.pipelines,
                chunk=args.chunk,
                vec=args.vec,
                strip=args.strip,
            )
        )
    )


if __name__ == "__main__":
    _main()
