"""Output-consistency validation (paper section V-A).

The paper verifies that all Harris implementations agree by computing MSE
and PSNR against the Halide reference output and reports PSNR always above
170 dB.  This module executes every compiled implementation on the same
synthetic image through the Python backend and computes the same metrics
(against both the Halide baseline, as the paper does, and the numpy
reference).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.bench.harness import compile_all, IMPLEMENTATIONS
from repro.exec import execute_program
from repro.image import psnr, mse, synthetic_rgb
from repro.image import reference

__all__ = ["ValidationRow", "validate_outputs"]


@dataclass
class ValidationRow:
    implementation: str
    mse_vs_halide: float
    psnr_vs_halide_db: float
    psnr_vs_numpy_db: float

    def passes(self, threshold_db: float = 170.0) -> bool:
        return self.psnr_vs_halide_db > threshold_db


def validate_outputs(
    height: int = 36,
    width: int = 36,
    chunk: int = 32,
    vec: int = 4,
    seed: int = 7,
    rng: np.random.Generator | None = None,
) -> list[ValidationRow]:
    """Run every implementation on one image; PSNR against the Halide
    output (the paper's reference) and the numpy reference.

    Sizes must satisfy the split/vector granularity: output (h-4) must be a
    multiple of ``chunk`` and (w-4) of ``vec``.  The input image is seeded
    explicitly (``seed``, or a caller-owned ``rng`` Generator) per the
    repo-wide seeding convention — results are reproducible per call.
    """
    n, m = height - 4, width - 4
    if n % chunk or m % vec:
        raise ValueError("pick sizes aligned to the chunk/vector granularity")
    programs = compile_all(chunk, vec)
    img = synthetic_rgb(height, width, seed=seed, rng=rng)
    sizes = {"n": n, "m": m}

    outputs: dict[str, np.ndarray] = {}
    for name, prog in programs.items():
        if name == "OpenCV":
            inputs = {"rgb_hwc": np.ascontiguousarray(img.transpose(1, 2, 0))}
        else:
            inputs = {"rgb": img}
        outputs[name] = execute_program(prog, sizes, inputs).reshape(n, m)

    ref_halide = outputs["Halide"]
    ref_numpy = reference.harris(img)
    rows = []
    for name, out in outputs.items():
        rows.append(
            ValidationRow(
                implementation=name,
                mse_vs_halide=mse(ref_halide, out),
                psnr_vs_halide_db=psnr(ref_halide, out),
                psnr_vs_numpy_db=psnr(ref_numpy, out),
            )
        )
    return rows
