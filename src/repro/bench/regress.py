"""Benchmark regression tracking: the ``BENCH_trajectory.json`` ledger.

Every observed bench run can append one schema-versioned *sample* to a
trajectory file: the min-of-k runtime of every fig. 8 cell (machine x
image x implementation, from the analytic cost model), the measured
batch-execution summary, a metrics-registry snapshot and the producing
git SHA.  ``tools/bench_compare.py`` then replays the trajectory and
flags any cell of the newest sample that is more than a configurable
relative threshold slower than the best previously recorded value —
min-of-k against a min-over-history baseline, the robust-statistics
recipe the paper's own evaluation uses (median-of-min runtimes), so
one noisy run cannot mask or fabricate a regression.

    sample = collect_sample(k=3)
    append_sample("BENCH_trajectory.json", sample)
    regressions = compare_trajectory(load_trajectory("BENCH_trajectory.json"))

Produced by ``python -m repro.bench.harness run_report`` and consumed in
CI by the ``bench-regress`` job.
"""

from __future__ import annotations

import json
import subprocess
import time
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "TRAJECTORY_SCHEMA",
    "SAMPLE_SCHEMA",
    "DEFAULT_TRAJECTORY",
    "DEFAULT_THRESHOLD",
    "WALL_CELL_PREFIX",
    "TUNED_CELL_PREFIX",
    "SERVE_CELL_PREFIX",
    "ZOO_CELL_PREFIX",
    "Regression",
    "git_sha",
    "collect_sample",
    "new_trajectory",
    "load_trajectory",
    "append_sample",
    "compare_cells",
    "compare_trajectory",
    "format_regressions",
]

#: Schema identifier of the trajectory file; bump when its shape changes.
TRAJECTORY_SCHEMA = "repro.bench.trajectory/v1"

#: Schema identifier of one sample inside the trajectory.
SAMPLE_SCHEMA = "repro.bench.sample/v1"

#: Default ledger location at the repository root.
DEFAULT_TRAJECTORY = "BENCH_trajectory.json"

#: Default relative slowdown (10%) before a cell counts as a regression.
DEFAULT_THRESHOLD = 0.10


def git_sha(short: bool = True) -> str:
    """The current git commit SHA, or ``"unknown"`` outside a checkout."""
    cmd = ["git", "rev-parse"] + (["--short"] if short else []) + ["HEAD"]
    try:
        out = subprocess.run(cmd, capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 and out.stdout.strip() else "unknown"


def collect_sample(
    chunk: int | None = None,
    vec: int | None = None,
    k: int = 3,
    metrics: dict | None = None,
    extra: dict | None = None,
    wall: dict | None = None,
) -> dict:
    """One schema-versioned trajectory sample for the current tree.

    ``cells`` maps ``"machine|image|implementation"`` to the min-of-``k``
    modeled runtime in ms (the cost model is deterministic, so k > 1
    guards only against future measured backends); ``metrics`` embeds a
    metrics-registry snapshot and ``extra`` free-form run context (batch
    throughput, report paths, ...).

    ``wall`` merges extra prefixed cells into the same cell map: measured
    wall-clock cells (``"wall|<schedule>@<t>t|<image>" -> min-of-k ms``,
    see :func:`repro.bench.harness.wallclock_grid`) and pipeline-zoo
    cost cells (``"zoo|..."``, see :func:`repro.bench.zoo.zoo_cells`).
    The prefixes keep them distinguishable so the comparison gate can
    treat measured cells as informational while still gating the
    deterministic modeled ones (fig. 8 and ``zoo|`` alike).
    """
    from repro.bench.harness import DEFAULT_CHUNK, DEFAULT_VEC, fig8_grid

    chunk = chunk if chunk is not None else DEFAULT_CHUNK
    vec = vec if vec is not None else DEFAULT_VEC
    k = max(1, int(k))
    runs: list[dict[str, float]] = []
    for _ in range(k):
        cells: dict[str, float] = {}
        for cell in fig8_grid(chunk=chunk, vec=vec):
            cells[f"{cell.machine}|{cell.image}|{cell.implementation}"] = float(
                cell.runtime_ms
            )
        runs.append(cells)
    min_of_k = {
        key: round(min(run[key] for run in runs), 6) for key in sorted(runs[0])
    }
    if wall:
        min_of_k.update({key: round(float(ms), 6) for key, ms in wall.items()})
    sample = {
        "schema": SAMPLE_SCHEMA,
        "timestamp": round(time.time(), 3),
        "git_sha": git_sha(),
        "k": k,
        "environment": {"chunk": chunk, "vec": vec},
        "cells": min_of_k,
        "metrics": metrics or {},
    }
    if extra:
        sample.update(extra)
    return sample


def new_trajectory() -> dict:
    """An empty trajectory document."""
    return {"schema": TRAJECTORY_SCHEMA, "samples": []}


def load_trajectory(path) -> dict:
    """Read a trajectory file, validating its schema identifier."""
    path = Path(path)
    doc = json.loads(path.read_text(encoding="utf-8"))
    schema = doc.get("schema")
    if schema != TRAJECTORY_SCHEMA:
        raise ValueError(
            f"{path}: unknown trajectory schema {schema!r} "
            f"(expected {TRAJECTORY_SCHEMA!r})"
        )
    if not isinstance(doc.get("samples"), list):
        raise ValueError(f"{path}: trajectory has no sample list")
    return doc


def append_sample(path, sample: dict) -> dict:
    """Append ``sample`` to the trajectory at ``path`` (created if absent);
    returns the updated document."""
    path = Path(path)
    doc = load_trajectory(path) if path.is_file() else new_trajectory()
    doc["samples"].append(sample)
    path.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    return doc


@dataclass
class Regression:
    """One cell of the candidate sample that breached the threshold."""

    cell: str
    baseline_ms: float
    current_ms: float

    @property
    def ratio(self) -> float:
        """Slowdown factor (current / baseline)."""
        if self.baseline_ms <= 0:
            return float("inf")
        return self.current_ms / self.baseline_ms

    def to_dict(self) -> dict:
        """JSON-ready representation for ``--json`` tool output."""
        return {
            "cell": self.cell,
            "baseline_ms": self.baseline_ms,
            "current_ms": self.current_ms,
            "ratio": round(self.ratio, 4),
        }


def compare_cells(
    baseline: dict, current: dict, threshold: float = DEFAULT_THRESHOLD
) -> list[Regression]:
    """Cells of ``current`` more than ``threshold`` slower than ``baseline``.

    Cells present on only one side are ignored — adding a machine or an
    implementation must not fail the comparison.
    """
    regressions: list[Regression] = []
    for cell, base_ms in baseline.items():
        cur_ms = current.get(cell)
        if cur_ms is None:
            continue
        if float(cur_ms) > float(base_ms) * (1.0 + threshold):
            regressions.append(Regression(cell, float(base_ms), float(cur_ms)))
    regressions.sort(key=lambda r: r.ratio, reverse=True)
    return regressions


#: Prefix of measured wall-clock cells (informational unless gated).
WALL_CELL_PREFIX = "wall|"

#: Prefix of autotuner-discovered schedule cells (informational unless
#: gated): ``tuned|<schedule>|<machine>|<image>``, written by
#: ``tools/tune.py``.  Discovered schedules come and go with the search
#: configuration, so by default their history informs but does not gate.
TUNED_CELL_PREFIX = "tuned|"

#: Prefix of serving-latency cells (informational unless gated):
#: ``serve|<quantile>|<family>`` percentiles written by
#: ``tools/loadtest.py``.  Like ``wall|`` they are measured wall clocks
#: on whatever machine ran the loadtest, so by default they inform the
#: trajectory without gating it.
SERVE_CELL_PREFIX = "serve|"

#: Prefix of pipeline-zoo cells: ``zoo|<pipeline>|<schedule>|<machine>``
#: from :func:`repro.bench.zoo.zoo_cells`.  These are deterministic
#: cost-model outputs like the fig. 8 cells, so — unlike the measured
#: prefixes above — they are *gated by default*; no opt-in flag exists
#: or is needed.
ZOO_CELL_PREFIX = "zoo|"


def compare_trajectory(
    trajectory: dict,
    candidate: dict | None = None,
    threshold: float = DEFAULT_THRESHOLD,
    gate_wall: bool = False,
    gate_tuned: bool = False,
    gate_serve: bool = False,
) -> tuple[list[Regression], dict]:
    """Compare a candidate sample against the trajectory's history.

    ``candidate`` defaults to the trajectory's newest sample, compared
    against all *earlier* ones; an explicit candidate is compared against
    the whole trajectory.  The per-cell baseline is the minimum over the
    history — min-of-k samples against a min-over-history baseline keeps
    one slow CI machine from drowning a real regression in noise.

    Measured ``wall|`` cells are excluded from the gate unless
    ``gate_wall`` — wall clocks on shared CI runners are noisy, and a
    noisy measured cell must not fail the deterministic model gate.
    Autotuner ``tuned|`` cells are likewise excluded unless
    ``gate_tuned`` — a re-tuned search may legitimately land on a
    different (named) schedule, and an absent or renamed discovery must
    not read as a kernel regression.  Serving-latency ``serve|`` cells
    (loadtest percentiles) are excluded unless ``gate_serve``, for the
    same measured-on-a-shared-runner reason as ``wall|``.

    Returns ``(regressions, info)`` where ``info`` carries the baseline
    size for reporting; with fewer than one baseline sample there is
    nothing to compare and the result is empty.
    """
    samples = list(trajectory.get("samples", []))
    if candidate is None:
        if len(samples) < 2:
            return [], {"baseline_samples": max(0, len(samples) - 1), "cells": 0}
        candidate, history = samples[-1], samples[:-1]
    else:
        history = samples
        if not history:
            return [], {"baseline_samples": 0, "cells": 0}
    baseline: dict[str, float] = {}
    wall_cells = 0
    for sample in history:
        for cell, ms in sample.get("cells", {}).items():
            if cell.startswith(WALL_CELL_PREFIX):
                wall_cells += 1
                if not gate_wall:
                    continue
            if cell.startswith(TUNED_CELL_PREFIX) and not gate_tuned:
                continue
            if cell.startswith(SERVE_CELL_PREFIX) and not gate_serve:
                continue
            ms = float(ms)
            if cell not in baseline or ms < baseline[cell]:
                baseline[cell] = ms
    regressions = compare_cells(baseline, candidate.get("cells", {}), threshold)
    info = {
        "baseline_samples": len(history),
        "cells": len(baseline),
        "candidate_sha": candidate.get("git_sha", "unknown"),
        "threshold": threshold,
        "gate_wall": gate_wall,
        "gate_tuned": gate_tuned,
        "gate_serve": gate_serve,
    }
    return regressions, info


def format_regressions(regressions: list[Regression], info: dict | None = None) -> str:
    """Human-readable comparison summary (the compare tool's output)."""
    lines: list[str] = []
    if info:
        lines.append(
            f"compared {info.get('cells', 0)} cells against "
            f"{info.get('baseline_samples', 0)} baseline sample(s), "
            f"threshold +{100 * info.get('threshold', DEFAULT_THRESHOLD):.0f}%"
        )
    if not regressions:
        lines.append("no regressions")
        return "\n".join(lines)
    lines.append(f"REGRESSIONS ({len(regressions)}):")
    for r in regressions:
        lines.append(
            f"  {r.cell:<48} {r.baseline_ms:10.3f} -> {r.current_ms:10.3f} ms "
            f"({(r.ratio - 1) * 100:+.1f}%)"
        )
    return "\n".join(lines)
