"""Experiment harness regenerating the paper's figures and claims."""

from repro.bench.harness import (
    IMPLEMENTATIONS, Fig8Cell, claims, compile_all, fig1_normalized,
    fig8_grid, format_fig8, padded_sizes,
)
from repro.bench.regress import (
    DEFAULT_TRAJECTORY, Regression, append_sample, collect_sample,
    compare_trajectory, load_trajectory,
)
from repro.bench.validation import ValidationRow, validate_outputs
from repro.bench.ablation import AblationRow, ablation_variants, run_ablation
from repro.bench.zoo import SmokeRow, ZooCell, zoo_cells, zoo_grid, zoo_smoke
