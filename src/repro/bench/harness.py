"""The evaluation harness: compiles every implementation once and
regenerates the paper's figures and in-text claims (DESIGN.md E1-E7).

All implementations are compiled with symbolic sizes, validated for
correctness elsewhere (tests + PSNR bench), and costed on the modeled ARM
CPUs.  Because the paper's split factor (32) requires divisible sizes,
image sizes are rounded up to the split/vector granularity — the rounding
option the paper itself uses — and reported under the nominal resolution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Mapping

import numpy as np

from repro.codegen.ir import ImpProgram
from repro.engine import Engine, default_engine
from repro.image import ImageSpec, PAPER_IMAGE_LARGE, PAPER_IMAGE_SMALL
from repro.perf.cost import CostReport, estimate_runtime_ms
from repro.perf.machines import ALL_MACHINES, Machine
from repro.pipelines import harris, harris_input_type
from repro.rise.expr import Identifier
from repro.strategies import cbuf_rrot_version, cbuf_version

__all__ = [
    "IMPLEMENTATIONS",
    "compile_all",
    "padded_sizes",
    "fig8_grid",
    "fig1_normalized",
    "claims",
    "Fig8Cell",
    "WallCell",
    "wallclock_grid",
    "run_report",
]

#: Implementation name -> runtime kind charged for kernel launches.
IMPLEMENTATIONS = {
    "OpenCV": "library",
    "Lift": "opencl",
    "Halide": "native",
    "RISE (cbuf)": "opencl",
    "RISE (cbuf+rot)": "opencl",
}

DEFAULT_CHUNK = 32
DEFAULT_VEC = 4


@lru_cache(maxsize=4)
def compile_all(
    chunk: int = DEFAULT_CHUNK,
    vec: int = DEFAULT_VEC,
    engine: Engine | None = None,
):
    """Compile every implementation of the Harris operator through the
    engine (content-addressed compile cache; ``lru_cache`` additionally
    memoizes the assembled dict per parameter set)."""
    eng = engine if engine is not None else default_engine()
    rgb = Identifier("rgb")
    senv = {"rgb": harris_input_type()}
    high = harris(rgb)
    programs: dict[str, ImpProgram] = {}
    programs["OpenCV"] = eng.compile("harris-opencv", options={"vec": vec}).program
    programs["Lift"] = eng.compile("harris-lift", options={"vec": vec}).program
    programs["Halide"] = eng.compile(
        "harris-halide", options={"vec": vec, "split": chunk}
    ).program
    programs["RISE (cbuf)"] = eng.compile(
        high,
        strategy=cbuf_version(senv, chunk=chunk, vec=vec),
        type_env=senv,
        name="rise_cbuf",
    ).program
    programs["RISE (cbuf+rot)"] = eng.compile(
        high,
        strategy=cbuf_rrot_version(senv, chunk=chunk, vec=vec),
        type_env=senv,
        name="rise_cbuf_rrot",
    ).program
    return programs


def padded_sizes(spec: ImageSpec, chunk: int = DEFAULT_CHUNK, vec: int = DEFAULT_VEC) -> dict[str, int]:
    """Output sizes (n, m) for an input image, rounded up to the split and
    vector granularity (the paper's rounding option)."""
    n = spec.height - 4
    m = spec.width - 4
    n = math.ceil(n / chunk) * chunk
    m = math.ceil(m / vec) * vec
    return {"n": n, "m": m}


@dataclass
class Fig8Cell:
    machine: str
    image: str
    implementation: str
    runtime_ms: float
    report: CostReport


def fig8_grid(
    machines: list[Machine] | None = None,
    images: list[ImageSpec] | None = None,
    chunk: int = DEFAULT_CHUNK,
    vec: int = DEFAULT_VEC,
) -> list[Fig8Cell]:
    """Reproduce fig. 8: runtime of all five implementations on every
    (CPU, image) combination."""
    machines = machines or ALL_MACHINES
    images = images or [PAPER_IMAGE_SMALL, PAPER_IMAGE_LARGE]
    programs = compile_all(chunk, vec)
    cells: list[Fig8Cell] = []
    for machine in machines:
        for image in images:
            sizes = padded_sizes(image, chunk, vec)
            for name, prog in programs.items():
                report = estimate_runtime_ms(
                    prog, sizes, machine, IMPLEMENTATIONS[name]
                )
                cells.append(
                    Fig8Cell(machine.name, image.name, name, report.runtime_ms, report)
                )
    return cells


@dataclass
class WallCell:
    """One measured (not modeled) wall-clock benchmark result."""

    schedule: str
    image: str
    backend: str
    threads: int
    wall_ms: float          # min over the k repeats
    runs_ms: list[float]

    @property
    def key(self) -> str:
        """Trajectory cell name: ``wall|<schedule>@<threads>t|<image>``.

        The ``wall|`` prefix marks measured cells — the regression gate
        treats them as informational by default (``--gate-wall`` opts in)
        because CI machines make wall clocks noisy, unlike the
        deterministic cost-model cells."""
        return f"wall|{self.schedule}@{self.threads}t|{self.image}"


def wallclock_grid(
    thread_counts: tuple[int, ...] = (1, 2, 4),
    k: int = 3,
    height: int = 132,
    width: int = 132,
    chunk: int = 4,
    vec: int = DEFAULT_VEC,
    strip: int = 2,
    seed: int = 7,
    backend: str | None = None,
    engine: Engine | None = None,
) -> list[WallCell]:
    """Measured wall-clock (min-of-``k``) of the rotation schedules across
    thread counts — the multicore counterpart of the modeled fig. 8 grid.

    Benchmarks ``cbuf+rot`` and ``cbuf+rot+par`` at every thread count in
    ``thread_counts`` on one synthetic image, via one engine-compiled
    pipeline per schedule (so repeats and thread counts reuse the same
    artifact and only the thread pin varies).  ``backend`` defaults to
    ``"c"`` when a host compiler exists, else the Python backend.  The
    small default ``chunk`` keeps the parallel extent high enough
    (``(height-4)/chunk/strip`` strips) to occupy 4 threads even on
    moderate images.  Each measurement also lands in the metrics registry
    as a ``bench.wall_ms`` observation.
    """
    import time as _time

    from repro.exec.cbridge import have_c_compiler
    from repro.image import synthetic_rgb
    from repro.observe.metrics import observe_value
    from repro.strategies import cbuf_rrot_par_version
    from repro.strategies import cbuf_rrot_version as _rrot

    if backend is None:
        backend = "c" if have_c_compiler() else "python"
    eng = engine if engine is not None else default_engine()
    senv = {"rgb": harris_input_type()}
    high = harris(Identifier("rgb"))
    n, m = height - 4, width - 4
    image_name = f"{height}x{width}"
    img = synthetic_rgb(height, width, seed=seed)
    k = max(1, int(k))
    schedules = {
        "rise-cbuf-rrot": _rrot(senv, chunk=chunk, vec=vec),
        "rise-cbuf-rrot-par": cbuf_rrot_par_version(
            senv, chunk=chunk, vec=vec, strip=strip
        ),
    }
    cells: list[WallCell] = []
    for sched_name, sched in schedules.items():
        pipeline = eng.compile(
            high,
            strategy=sched,
            type_env=senv,
            backend=backend,
            name=sched_name.replace("-", "_"),
            sizes={"n": n, "m": m},
        )
        for threads in thread_counts:
            runs_ms: list[float] = []
            for _ in range(k):
                t0 = _time.perf_counter()
                pipeline.run(threads=threads, rgb=img)
                runs_ms.append((_time.perf_counter() - t0) * 1e3)
            wall = min(runs_ms)
            observe_value(
                "bench.wall_ms",
                wall,
                schedule=sched_name,
                threads=threads,
                backend=backend,
            )
            cells.append(
                WallCell(sched_name, image_name, backend, threads, wall, runs_ms)
            )
    return cells


def format_wall(cells: list[WallCell]) -> str:
    """Render wall-clock cells as a small table (ms, lower=better)."""
    lines = [f"{'schedule':<22} {'image':<10} {'backend':<8} {'threads':>7} {'wall_ms':>10}"]
    lines.append("-" * len(lines[0]))
    for c in cells:
        lines.append(
            f"{c.schedule:<22} {c.image:<10} {c.backend:<8} {c.threads:>7} {c.wall_ms:>10.3f}"
        )
    return "\n".join(lines)


def fig1_normalized(chunk: int = DEFAULT_CHUNK, vec: int = DEFAULT_VEC) -> dict[str, float]:
    """Reproduce fig. 1: Lift / Halide / RISE(cbuf+rot) on the Cortex A53,
    normalized to Halide (lower is better)."""
    from repro.perf.machines import CORTEX_A53

    programs = compile_all(chunk, vec)
    sizes = padded_sizes(PAPER_IMAGE_SMALL, chunk, vec)
    times = {
        name: estimate_runtime_ms(
            programs[name], sizes, CORTEX_A53, IMPLEMENTATIONS[name]
        ).runtime_ms
        for name in ("Lift", "Halide", "RISE (cbuf+rot)")
    }
    halide = times["Halide"]
    return {name: t / halide for name, t in times.items()}


def claims(cells: list[Fig8Cell] | None = None) -> dict[str, float]:
    """The in-text quantitative claims of section V-B (DESIGN.md E4/E5):

    * max speedup of the best RISE version over OpenCV ("up to 16x");
    * mean speedup of cbuf+rot over cbuf ("almost 30% faster on average");
    * max/mean speedup of cbuf+rot over Halide ("more than 30% ... 1.4x").
    """
    cells = cells or fig8_grid()
    table: dict[tuple[str, str], dict[str, float]] = {}
    for cell in cells:
        table.setdefault((cell.machine, cell.image), {})[cell.implementation] = (
            cell.runtime_ms
        )
    ratios_opencv = []
    ratios_rot_cbuf = []
    ratios_rot_halide = []
    for values in table.values():
        best_rise = min(values["RISE (cbuf)"], values["RISE (cbuf+rot)"])
        ratios_opencv.append(values["OpenCV"] / best_rise)
        ratios_rot_cbuf.append(values["RISE (cbuf)"] / values["RISE (cbuf+rot)"])
        ratios_rot_halide.append(values["Halide"] / values["RISE (cbuf+rot)"])
    return {
        "max_speedup_vs_opencv": max(ratios_opencv),
        "mean_speedup_vs_opencv": float(np.mean(ratios_opencv)),
        "mean_rot_over_cbuf": float(np.mean(ratios_rot_cbuf)),
        "max_rot_over_halide": max(ratios_rot_halide),
        "mean_rot_over_halide": float(np.mean(ratios_rot_halide)),
        "halide_wins_cells": sum(1 for r in ratios_rot_halide if r < 1.0),
        "total_cells": len(ratios_rot_halide),
    }


def run_report(
    chunk: int = DEFAULT_CHUNK,
    vec: int = DEFAULT_VEC,
    height: int = 36,
    width: int = 36,
    seed: int = 7,
    batch_items: int = 8,
    batch_workers: int = 2,
    trace_out: str | None = None,
):
    """One observed compile-and-validate run as a structured
    :class:`~repro.observe.report.RunReport`.

    Collects, in one JSON-ready document: the traced derivations of both
    RISE schedules (rule-application counts, repeat/normalize iteration
    counts), per-phase compile profiles for every implementation, the
    engine section (cold/warm compile-cache accounting plus a parallel
    batch run over ``batch_items`` inputs), execution counters/kernel
    timings from the Python backend, the PSNR validation rows of section
    V-A and a snapshot of the process-wide metrics registry (reset at
    the start of the run so the snapshot covers exactly this run).

    With ``trace_out``, the batch-and-validate execution phase is
    additionally exported as Chrome trace-event JSON (Perfetto-loadable;
    batch workers appear as separate thread tracks).
    """
    from repro.bench.validation import validate_outputs
    from repro.engine import ENGINE_REPORT_SCHEMA
    from repro.observe import (
        Observer,
        RunReport,
        TraceCollector,
        derivation_stats,
        metrics_registry,
        observing,
        profiling,
        reset_registry,
        save_trace,
        tracing,
    )
    from repro.strategies.schedules import cbuf_rrot_version as rrot
    from repro.strategies.schedules import cbuf_version as cbuf

    reset_registry()
    report = RunReport(name="harris-bench")
    report.environment = {
        "chunk": chunk,
        "vec": vec,
        "image_height": height,
        "image_width": width,
        "seed": seed,
    }

    rgb = Identifier("rgb")
    senv = {"rgb": harris_input_type()}
    high = harris(rgb)
    for schedule in (cbuf(senv, chunk=chunk, vec=vec), rrot(senv, chunk=chunk, vec=vec)):
        collector = TraceCollector()
        with tracing(collector):
            steps = schedule.apply_traced(high)
        report.derivation[schedule.name] = derivation_stats(steps, collector)

    # A fresh, empty engine so the profile shows a genuinely cold compile.
    eng = Engine()
    with profiling() as profiles:
        compile_all.__wrapped__(chunk, vec, eng)
    report.compile = profiles.to_dict()

    # Warm pass: every implementation must now be served from the cache.
    compile_all.__wrapped__(chunk, vec, eng)
    n, m = height - 4, width - 4
    pipeline = eng.compile(
        high,
        strategy=rrot(senv, chunk=chunk, vec=vec),
        type_env=senv,
        name="rise_cbuf_rrot",
        sizes={"n": n, "m": m},
    )
    from repro.image import synthetic_rgb

    # One observer spans the whole execution phase (batch + validation),
    # so worker counters/spans land in the report and the Chrome trace.
    obs = Observer()
    with observing(obs):
        batch = pipeline.run_batch(
            [{"rgb": synthetic_rgb(height, width, seed=seed + i)} for i in range(batch_items)],
            workers=batch_workers,
        )
    report.engine = {
        "schema": ENGINE_REPORT_SCHEMA,
        "cache": eng.stats(),
        "batch": batch.to_dict(),
    }

    with observing(obs):
        rows = validate_outputs(height=height, width=width, chunk=chunk, vec=vec, seed=seed)
    report.execution = {
        "counters": dict(sorted(obs.counters.items())),
        "kernels": [
            {"name": s.name, "wall_ms": round(s.duration_ms, 3), **s.meta}
            for s in obs.flat_spans()
            if s.name.startswith("run:")
        ],
    }
    if trace_out:
        save_trace(obs, trace_out)
    report.metrics = {
        "psnr_db": {
            row.implementation: {
                "vs_halide": round(float(row.psnr_vs_halide_db), 2),
                "vs_numpy": round(float(row.psnr_vs_numpy_db), 2),
            }
            for row in rows
        },
        # 100 dB = the implementations agree to float32 rounding; cbuf+rot
        # legitimately reorders float arithmetic, so the paper's 170 dB
        # exact-schedule bar does not apply to it.
        "validation_passes": all(row.passes(threshold_db=100.0) for row in rows),
        "registry": metrics_registry().snapshot(),
    }
    return report


def format_fig8(cells: list[Fig8Cell]) -> str:
    """Render the fig. 8 grid as the paper-style table (ms, lower=better)."""
    names = list(IMPLEMENTATIONS)
    lines = []
    header = f"{'CPU':<11} {'image':<6}" + "".join(f"{n:>17}" for n in names)
    lines.append(header)
    lines.append("-" * len(header))
    table: dict[tuple[str, str], dict[str, float]] = {}
    for cell in cells:
        table.setdefault((cell.machine, cell.image), {})[cell.implementation] = (
            cell.runtime_ms
        )
    for (machine, image), values in table.items():
        row = f"{machine:<11} {image:<6}" + "".join(
            f"{values[n]:>15.1f}ms" for n in names
        )
        lines.append(row)
    return "\n".join(lines)


def _main() -> None:
    """CLI entry: observed run reports, figures and regression tracking.

    Commands (``run_report`` is the default, so the historical
    ``python -m repro.bench.harness --report x.json`` form still works):

    * ``run_report`` — one observed compile-and-validate run: writes the
      JSON run report, appends a min-of-k sample to the benchmark
      trajectory (``BENCH_trajectory.json``; disable with
      ``--no-trajectory``), optionally merges a measured wall-clock smoke
      (``--wall-smoke``: k=1, small image, 1 and 4 threads) into the
      sample's cells, and optionally exports the execution phase as
      Chrome trace JSON (``--trace-out``);
    * ``fig8`` — print the paper's fig. 8 runtime grid;
    * ``wall`` — measure the wall-clock grid (``wallclock_grid``) and
      print it.
    """
    import argparse

    from repro.bench.regress import DEFAULT_TRAJECTORY, append_sample, collect_sample

    parser = argparse.ArgumentParser(
        description="Run the harness once and emit a JSON observability report."
    )
    parser.add_argument(
        "command",
        nargs="?",
        default="run_report",
        choices=("run_report", "fig8", "wall"),
        help="what to run (default: %(default)s)",
    )
    parser.add_argument("--report", default="bench_report.json", help="output JSON path")
    parser.add_argument("--chunk", type=int, default=DEFAULT_CHUNK)
    parser.add_argument("--vec", type=int, default=DEFAULT_VEC)
    parser.add_argument("--height", type=int, default=36, help="validation image height")
    parser.add_argument("--width", type=int, default=36, help="validation image width")
    parser.add_argument(
        "--k", type=int, default=3, help="min-of-k repeats per trajectory cell"
    )
    parser.add_argument(
        "--trajectory",
        default=DEFAULT_TRAJECTORY,
        help="benchmark trajectory ledger to append to (default: %(default)s)",
    )
    parser.add_argument(
        "--no-trajectory",
        action="store_true",
        help="do not append a sample to the trajectory ledger",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        help="also export the execution phase as Chrome trace-event JSON",
    )
    parser.add_argument(
        "--wall-smoke",
        action="store_true",
        help="merge a k=1 small-image wall-clock smoke (1 and 4 threads) "
        "into the trajectory sample as wall| cells",
    )
    parser.add_argument(
        "--no-zoo",
        action="store_true",
        help="do not merge the pipeline-zoo cost cells (zoo|...) into "
        "the trajectory sample",
    )
    parser.add_argument(
        "--threads",
        type=int,
        nargs="+",
        default=[1, 2, 4],
        help="thread counts for the wall command (default: %(default)s)",
    )
    args = parser.parse_args()

    if args.command == "fig8":
        print(format_fig8(fig8_grid(chunk=args.chunk, vec=args.vec)))
        return
    if args.command == "wall":
        print(
            format_wall(
                wallclock_grid(
                    thread_counts=tuple(args.threads),
                    k=args.k,
                    height=args.height,
                    width=args.width,
                )
            )
        )
        return

    report = run_report(
        chunk=args.chunk,
        vec=args.vec,
        height=args.height,
        width=args.width,
        trace_out=args.trace_out,
    )
    print(report.render_text())
    report.save(args.report)
    print(f"\nwrote {args.report}")
    if args.trace_out:
        print(f"wrote {args.trace_out}")
    if not args.no_trajectory:
        merged_cells: dict[str, float] = {}
        if args.wall_smoke:
            merged_cells.update(
                {
                    c.key: c.wall_ms
                    for c in wallclock_grid(
                        thread_counts=(1, 4), k=1, height=36, width=36, chunk=4
                    )
                }
            )
        if not args.no_zoo:
            from repro.bench.zoo import zoo_cells

            merged_cells.update(zoo_cells())
        sample = collect_sample(
            chunk=args.chunk,
            vec=args.vec,
            k=args.k,
            metrics=report.metrics.get("registry", {}),
            extra={"batch": report.engine.get("batch", {})},
            wall=merged_cells or None,
        )
        doc = append_sample(args.trajectory, sample)
        print(
            f"appended sample {sample['git_sha']} to {args.trajectory} "
            f"({len(doc['samples'])} sample(s))"
        )


if __name__ == "__main__":
    _main()
