"""Scalar-expression vectorization for the ``mapSeqVec`` pattern.

Given the scalar statements/expression produced by evaluating a line
element function at a symbolic element index ``xi``, this pass rewrites
them to compute ``width`` consecutive elements at once:

* ``Load(buf, a)`` where ``a`` is affine in ``xi`` with coefficient 1
  becomes a (possibly unaligned) ``VLoad`` — the loads of paper fig. 7;
* ``xi``-independent subexpressions are broadcast across lanes;
* arithmetic becomes lane-wise vector arithmetic.

If any construct cannot be vectorized (strided loads, inner loops, index
arithmetic on values) the pass raises :class:`VectorizeError` and the
caller falls back to a scalar loop — a correct, slower implementation,
exactly like a compiler bailing out of SIMD codegen.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nat import Nat
from repro.codegen.ir import (
    Assign,
    BinOp,
    Broadcast,
    DeclScalar,
    DeclVec,
    FConst,
    IConst,
    IExpr,
    Load,
    NatE,
    Stmt,
    UnOp,
    VLoad,
    Var,
)
from repro.codegen.views import idx_add, idx_sub

__all__ = ["VectorizeError", "vectorize_stmts", "affine_coefficient"]


class VectorizeError(Exception):
    """The expression cannot be turned into vector code."""


def affine_coefficient(expr: IExpr, var: str) -> tuple[int, IExpr] | None:
    """Decompose ``expr`` as ``coeff * var + rest`` with ``var`` absent from
    ``rest``; returns None when the expression is not affine in ``var``."""
    if isinstance(expr, Var):
        if expr.name == var:
            return 1, IConst(0)
        return 0, expr
    if isinstance(expr, (IConst, NatE, FConst)):
        return 0, expr
    if isinstance(expr, BinOp):
        left = affine_coefficient(expr.a, var)
        right = affine_coefficient(expr.b, var)
        if left is None or right is None:
            return None
        (ca, ra), (cb, rb) = left, right
        if expr.op == "add":
            return ca + cb, idx_add(ra, rb)
        if expr.op == "sub":
            return ca - cb, idx_sub(ra, rb)
        if expr.op == "mul":
            if ca == 0 and isinstance(ra, IConst):
                return cb * ra.value, _mul_const(rb, ra.value)
            if cb == 0 and isinstance(rb, IConst):
                return ca * rb.value, _mul_const(ra, rb.value)
            if ca == 0 and cb == 0:
                from repro.codegen.views import idx_mul

                return 0, idx_mul(ra, rb)
            return None
        if expr.op in ("mod", "idiv"):
            if ca == 0 and cb == 0:
                return 0, expr
            return None
        return None
    if _mentions(expr, var):
        return None
    return 0, expr


def _mul_const(e: IExpr, c: int) -> IExpr:
    from repro.codegen.views import idx_mul

    return idx_mul(e, IConst(c))


def _mentions(expr: IExpr, var: str) -> bool:
    if isinstance(expr, Var):
        return expr.name == var
    return any(_mentions(c, var) for c in expr.children())


@dataclass
class _VecCtx:
    xi: str                  # the symbolic element-index variable
    base: IExpr              # expression for the first lane's element index
    width: int
    vector_vars: set[str]    # scalar temporaries that became vector temps
    nat_mod: "callable"      # divisibility oracle: Nat -> bool (multiple of width?)


def vectorize_stmts(
    stmts: list[Stmt],
    exprs: list[IExpr],
    xi: str,
    base: IExpr,
    width: int,
    is_width_multiple,
) -> tuple[list[Stmt], list[IExpr]]:
    """Vectorize statements + result expressions over the index ``xi``.

    ``base`` replaces ``xi`` as the first-lane index.  ``is_width_multiple``
    is a predicate on index *rest* expressions used to mark aligned loads.
    Returns vectorized (statements, expressions); raises VectorizeError on
    any unvectorizable construct.
    """
    from repro.observe.profile import phase

    with phase("vectorize"):
        ctx = _VecCtx(xi, base, width, set(), is_width_multiple)
        out_stmts: list[Stmt] = []
        for stmt in stmts:
            out_stmts.append(_vec_stmt(stmt, ctx))
        out_exprs = [_ensure_vector(_vec_expr(e, ctx), ctx) for e in exprs]
        return out_stmts, out_exprs


def _vec_stmt(stmt: Stmt, ctx: _VecCtx) -> Stmt:
    if isinstance(stmt, DeclScalar):
        if stmt.init is None:
            raise VectorizeError("uninitialized scalar in vector context")
        value, is_vec = _vec_expr_tagged(stmt.init, ctx)
        if is_vec:
            ctx.vector_vars.add(stmt.var)
            return DeclVec(stmt.var, ctx.width, value)
        return DeclScalar(stmt.var, value)
    if isinstance(stmt, Assign):
        value, is_vec = _vec_expr_tagged(stmt.value, ctx)
        if stmt.var in ctx.vector_vars and not is_vec:
            value = Broadcast(value, ctx.width)
        elif is_vec and stmt.var not in ctx.vector_vars:
            raise VectorizeError(f"scalar {stmt.var} assigned a vector value")
        return Assign(stmt.var, value)
    raise VectorizeError(f"cannot vectorize statement {type(stmt).__name__}")


def _vec_expr(expr: IExpr, ctx: _VecCtx) -> IExpr:
    value, _ = _vec_expr_tagged(expr, ctx)
    return value


def _ensure_vector(expr: IExpr, ctx: _VecCtx) -> IExpr:
    # Result values must be vectors for the VStore.
    value, is_vec = _vec_expr_tagged(expr, ctx) if not isinstance(expr, (Broadcast, VLoad)) else (expr, True)
    if isinstance(expr, IExpr) and not is_vec:
        return Broadcast(value, ctx.width)
    return value


def _vec_expr_tagged(expr: IExpr, ctx: _VecCtx) -> tuple[IExpr, bool]:
    if isinstance(expr, (IConst, FConst, NatE)):
        return expr, False
    if isinstance(expr, Var):
        if expr.name == ctx.xi:
            raise VectorizeError("element index used as a value")
        return expr, expr.name in ctx.vector_vars
    if isinstance(expr, Load):
        decomposed = affine_coefficient(expr.index, ctx.xi)
        if decomposed is None:
            raise VectorizeError(f"non-affine load index in {expr.buffer}")
        coeff, rest = decomposed
        if coeff == 0:
            return Load(expr.buffer, rest), False
        if coeff == 1:
            index = idx_add(ctx.base, rest)
            aligned = ctx.nat_mod(rest)
            return VLoad(expr.buffer, index, ctx.width, aligned), True
        raise VectorizeError(f"strided ({coeff}) load in {expr.buffer}")
    if isinstance(expr, BinOp):
        if expr.op in ("mod", "idiv"):
            raise VectorizeError("integer division in vector value context")
        a, va = _vec_expr_tagged(expr.a, ctx)
        b, vb = _vec_expr_tagged(expr.b, ctx)
        if va and not vb:
            b = Broadcast(b, ctx.width)
        elif vb and not va:
            a = Broadcast(a, ctx.width)
        return BinOp(expr.op, a, b), va or vb
    if isinstance(expr, UnOp):
        a, va = _vec_expr_tagged(expr.a, ctx)
        return UnOp(expr.op, a), va
    if isinstance(expr, Broadcast):
        return expr, True
    if isinstance(expr, VLoad):
        return expr, True
    raise VectorizeError(f"cannot vectorize {type(expr).__name__}")
