"""Numeric resolution of leftover size constraints.

Non-strict type inference leaves equations such as ``32 * k == n`` (chunk
divisibility) undecided; once concrete image sizes are known they are
solved here, producing bindings for every size variable a compiled
program's loop extents and buffer sizes mention.
"""

from __future__ import annotations

from typing import Mapping

from repro.nat import Nat, nat
from repro.codegen.ir import ImpProgram

__all__ = ["resolve_sizes"]


def resolve_sizes(prog: ImpProgram, sizes: Mapping[str, int]) -> dict[str, int]:
    """Extend ``sizes`` with values for inference variables by solving the
    program's recorded size constraints numerically."""
    env: dict[str, int] = dict(sizes)
    constraints: list[tuple[Nat, Nat]] = list(getattr(prog, "size_constraints", []))
    progress = True
    while progress and constraints:
        progress = False
        remaining = []
        for a, b in constraints:
            solved = False
            for lhs, rhs in ((a, b), (b, a)):
                unknown = [v for v in sorted(lhs.free_vars()) if v not in env]
                rhs_known = all(v in env for v in rhs.free_vars())
                if len(unknown) == 1 and rhs_known and all(
                    v in env for v in lhs.free_vars() if v != unknown[0]
                ):
                    substituted = lhs.substitute(
                        {v: nat(env[v]) for v in lhs.free_vars() if v != unknown[0]}
                    )
                    solution = substituted.solve_for(unknown[0], nat(rhs.evaluate(env)))
                    if solution is not None and solution.is_constant():
                        env[unknown[0]] = solution.constant_value()
                        progress = True
                        solved = True
                        break
            if not solved:
                remaining.append((a, b))
        constraints = remaining
    for a, b in constraints:
        if not (a.free_vars() | b.free_vars()) <= set(env):
            raise ValueError(f"unresolved size constraint {a!r} == {b!r}")
        if a.evaluate(env) != b.evaluate(env):
            raise ValueError(
                f"size constraint violated: {a!r} != {b!r} under {env}"
            )
    return env
