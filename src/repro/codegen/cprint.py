"""C99 pretty-printer for imperative programs.

Emits portable C using GCC vector extensions for the SIMD operations
(the paper's backend emits OpenCL C with vector types; the structure —
strip loops, unaligned vector loads, shuffles, rotating registers — is
identical).  Parallel loops carry an OpenMP pragma.  Symbolic sizes
become ``int`` parameters, so one emitted kernel serves all image sizes.
"""

from __future__ import annotations

from repro.nat import Nat, NatCeilDiv, NatFloorDiv, NatMod, NatVar
from repro.codegen.ir import (
    AllocStmt,
    Assign,
    BinOp,
    Block,
    Broadcast,
    Comment,
    DeclScalar,
    DeclVec,
    FConst,
    For,
    IConst,
    IExpr,
    ImpFunction,
    ImpProgram,
    Load,
    LoopKind,
    NatE,
    ScalarKind,
    Stmt,
    Store,
    UnOp,
    VLane,
    VLoad,
    VPack,
    VShuffle,
    VStore,
    Var,
    walk_exprs,
    walk_stmts,
)

__all__ = ["program_to_c", "function_to_c", "nat_to_c"]

_PRELUDE = """#include <stdint.h>
#include <string.h>
#include <math.h>
#ifdef _OPENMP
#include <omp.h>
#endif

/* Thread control exported to the ctypes bridge: a no-op without OpenMP,
   so the same binary interface works for sequential fallback builds. */
void repro_set_threads(int n) {{
#ifdef _OPENMP
    if (n > 0) omp_set_num_threads(n);
#else
    (void)n;
#endif
}}

int repro_openmp_enabled(void) {{
#ifdef _OPENMP
    return 1;
#else
    return 0;
#endif
}}

int repro_max_threads(void) {{
#ifdef _OPENMP
    return omp_get_max_threads();
#else
    return 1;
#endif
}}

"""

#: Per-width vector typedefs and helpers (GCC vector extensions).  One
#: block is emitted for every lane width the program actually uses, so
#: 4-wide and 8-wide kernels each get correctly-sized vector types —
#: printing an 8-lane value through a 4-lane type silently drops lanes.
_VECTOR_DEFS = """\
typedef float v{w}f __attribute__((vector_size({bytes})));
typedef float v{w}f_u __attribute__((vector_size({bytes}), aligned(4)));
typedef int v{w}i __attribute__((vector_size({bytes})));

static inline v{w}f v{w}f_splat(float x) {{ return (v{w}f){{{splat}}}; }}
static inline v{w}f v{w}f_load(const float *p) {{ return *(const v{w}f_u *)p; }}
static inline void v{w}f_store(float *p, v{w}f v) {{ *(v{w}f_u *)p = v; }}
static inline v{w}f v{w}f_min(v{w}f a, v{w}f b) {{
    v{w}f r;
    for (int _l = 0; _l < {w}; _l++) r[_l] = a[_l] < b[_l] ? a[_l] : b[_l];
    return r;
}}
static inline v{w}f v{w}f_max(v{w}f a, v{w}f b) {{
    v{w}f r;
    for (int _l = 0; _l < {w}; _l++) r[_l] = a[_l] > b[_l] ? a[_l] : b[_l];
    return r;
}}
"""


def _vector_defs(width: int) -> str:
    return _VECTOR_DEFS.format(
        w=width, bytes=4 * width, splat=", ".join(["x"] * width)
    )


def _vector_widths(prog: ImpProgram) -> list[int]:
    """Every vector lane width a program uses, ascending (4 always
    included so hand-inspected output keeps its familiar prelude)."""
    widths = {4}
    for fn in prog.functions:
        for s in walk_stmts(fn.body):
            if isinstance(s, DeclVec):
                widths.add(s.width)
            elif isinstance(s, VStore):
                widths.add(s.width)
        for e in walk_exprs(fn.body):
            if isinstance(e, (VLoad, Broadcast, VShuffle)):
                widths.add(e.width)
            elif isinstance(e, VPack):
                widths.add(len(e.lanes))
    return sorted(widths)


def nat_to_c(n: Nat) -> str:
    """Render a symbolic size as a C integer expression."""
    if n.is_constant():
        return str(n.constant_value())
    parts: list[str] = []
    for monomial, coeff in n.terms:
        factors: list[str] = []
        if coeff != 1 or not monomial:
            factors.append(str(coeff))
        for atom, power in monomial:
            text = _atom_to_c(atom)
            factors.extend([text] * power)
        parts.append(" * ".join(factors))
    return "(" + " + ".join(parts) + ")"


def _atom_to_c(atom) -> str:
    if isinstance(atom, NatVar):
        return _c_ident(atom.name)
    if isinstance(atom, NatFloorDiv):
        return f"({nat_to_c(atom.num)} / {nat_to_c(atom.den)})"
    if isinstance(atom, NatCeilDiv):
        num, den = nat_to_c(atom.num), nat_to_c(atom.den)
        return f"(({num} + {den} - 1) / {den})"
    if isinstance(atom, NatMod):
        return f"({nat_to_c(atom.num)} % {nat_to_c(atom.den)})"
    raise TypeError(f"cannot render {atom!r} in C")


def _c_ident(name: str) -> str:
    return name.replace("_t", "szv_") if name.startswith("_t") else name


class _CPrinter:
    def __init__(self) -> None:
        self.lines: list[str] = []
        self.indent = 1
        self.vector_vars: dict[str, int] = {}

    def line(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    # -- expressions ---------------------------------------------------

    def is_vector(self, e: IExpr) -> bool:
        if isinstance(e, (VLoad, Broadcast, VShuffle, VPack)):
            return True
        if isinstance(e, Var):
            return e.name in self.vector_vars
        if isinstance(e, BinOp):
            return self.is_vector(e.a) or self.is_vector(e.b)
        if isinstance(e, UnOp):
            return self.is_vector(e.a)
        return False

    def width_of(self, e: IExpr) -> int:
        """Lane width of a vector-valued expression."""
        if isinstance(e, (VLoad, Broadcast, VShuffle)):
            return e.width
        if isinstance(e, VPack):
            return len(e.lanes)
        if isinstance(e, Var):
            return self.vector_vars[e.name]
        if isinstance(e, BinOp):
            if self.is_vector(e.a):
                return self.width_of(e.a)
            return self.width_of(e.b)
        if isinstance(e, UnOp):
            return self.width_of(e.a)
        raise TypeError(f"{type(e).__name__} is not vector-valued")

    def expr(self, e: IExpr) -> str:
        if isinstance(e, IConst):
            return str(e.value)
        if isinstance(e, FConst):
            return f"{e.value!r}f"
        if isinstance(e, NatE):
            return nat_to_c(e.value)
        if isinstance(e, Var):
            return _c_ident(e.name)
        if isinstance(e, Load):
            return f"{e.buffer}[{self.expr(e.index)}]"
        if isinstance(e, VLoad):
            return f"v{e.width}f_load(&{e.buffer}[{self.expr(e.index)}])"
        if isinstance(e, Broadcast):
            return f"v{e.width}f_splat({self.expr(e.value)})"
        if isinstance(e, VShuffle):
            lanes = ", ".join(str(e.offset + k) for k in range(e.width))
            return (
                f"__builtin_shuffle({self.expr(e.a)}, {self.expr(e.b)},"
                f" (v{e.width}i){{{lanes}}})"
            )
        if isinstance(e, VPack):
            lanes = ", ".join(self.expr(l) for l in e.lanes)
            return f"((v{len(e.lanes)}f){{{lanes}}})"
        if isinstance(e, VLane):
            return f"({self.expr(e.vec)})[{self.expr(e.lane)}]"
        if isinstance(e, BinOp):
            vec = self.is_vector(e)
            a, b = self.expr(e.a), self.expr(e.b)
            if vec:
                w = self.width_of(e)
                if not self.is_vector(e.a):
                    a = f"v{w}f_splat({a})"
                if not self.is_vector(e.b):
                    b = f"v{w}f_splat({b})"
            symbol = {
                "add": "+",
                "sub": "-",
                "mul": "*",
                "div": "/",
                "mod": "%",
                "idiv": "/",
            }.get(e.op)
            if symbol is not None:
                return f"({a} {symbol} {b})"
            if e.op in ("min", "max"):
                fn = f"v{self.width_of(e)}f_{e.op}" if vec else f"f{e.op}f"
                return f"{fn}({a}, {b})"
            raise TypeError(f"unknown op {e.op}")
        if isinstance(e, UnOp):
            a = self.expr(e.a)
            if e.op == "neg":
                return f"(-{a})"
            if e.op == "abs":
                return f"fabsf({a})"
            if e.op == "sqrt":
                return f"sqrtf({a})"
        raise TypeError(f"cannot print {type(e).__name__}")

    # -- statements ------------------------------------------------------

    def stmt(self, s: Stmt) -> None:
        if isinstance(s, Block):
            for sub in s.stmts:
                self.stmt(sub)
            return
        if isinstance(s, Comment):
            self.line(f"/* {s.text} */")
            return
        if isinstance(s, AllocStmt):
            size = nat_to_c(s.buffer.alloc_size())
            self.line(f"float {s.buffer.name}[{size}];")
            self.line(f"memset({s.buffer.name}, 0, sizeof(float) * {size});")
            return
        if isinstance(s, For):
            if s.kind is LoopKind.PARALLEL:
                # Static chunking matches the strip semantics of the
                # Python backend (contiguous row strips per thread), so
                # both backends partition work identically.
                self.line("#pragma omp parallel for schedule(static)")
            extent = self.expr(s.extent)
            self.line(f"for (int {s.var} = 0; {s.var} < {extent}; {s.var}++) {{")
            self.indent += 1
            self.stmt(s.body)
            self.indent -= 1
            self.line("}")
            return
        if isinstance(s, DeclScalar):
            ctype = "float" if s.kind is ScalarKind.F32 else "int"
            init = f" = {self.expr(s.init)}" if s.init is not None else " = 0"
            self.line(f"{ctype} {_c_ident(s.var)}{init};")
            return
        if isinstance(s, DeclVec):
            self.vector_vars[s.var] = s.width
            init = (
                f" = {self._as_vector(s.init, s.width)}"
                if s.init is not None
                else f" = v{s.width}f_splat(0.0f)"
            )
            self.line(f"v{s.width}f {_c_ident(s.var)}{init};")
            return
        if isinstance(s, Assign):
            value = (
                self._as_vector(s.value, self.vector_vars[s.var])
                if s.var in self.vector_vars
                else self.expr(s.value)
            )
            self.line(f"{_c_ident(s.var)} = {value};")
            return
        if isinstance(s, Store):
            self.line(
                f"{s.buffer}[{self.expr(s.index)}] = {self.expr(s.value)};"
            )
            return
        if isinstance(s, VStore):
            self.line(
                f"v{s.width}f_store(&{s.buffer}[{self.expr(s.index)}],"
                f" {self._as_vector(s.value, s.width)});"
            )
            return
        raise TypeError(f"cannot print statement {type(s).__name__}")

    def _as_vector(self, e: IExpr, width: int) -> str:
        text = self.expr(e)
        if not self.is_vector(e):
            return f"v{width}f_splat({text})"
        return text


def _collect_size_vars(fn: ImpFunction) -> list[str]:
    names: set[str] = set(fn.size_vars)
    for e in walk_exprs(fn.body):
        if isinstance(e, NatE):
            names |= e.value.free_vars()
    for s in walk_stmts(fn.body):
        if isinstance(s, AllocStmt):
            names |= s.buffer.alloc_size().free_vars()
    for b in fn.inputs + [fn.output]:
        names |= b.alloc_size().free_vars()
    return sorted(names)


def function_to_c(fn: ImpFunction) -> str:
    printer = _CPrinter()
    size_params = ", ".join(f"int {_c_ident(v)}" for v in _collect_size_vars(fn))
    buf_params = ", ".join(
        [f"const float *restrict {b.name}" for b in fn.inputs]
        + [f"float *restrict {fn.output.name}"]
    )
    params = ", ".join(p for p in (size_params, buf_params) if p)
    printer.lines.append(f"void {fn.name}({params}) {{")
    printer.stmt(fn.body)
    printer.lines.append("}")
    return "\n".join(printer.lines)


def program_to_c(prog: ImpProgram) -> str:
    """The complete C translation unit for a compiled program.

    Profiled as the ``cprint`` phase of the program's compile profile
    when :func:`repro.observe.profiling` is active.
    """
    from repro.observe.profile import compile_profile, phase, profile_active

    with compile_profile(prog.name):
        with phase("cprint") as meta:
            parts = [_PRELUDE.format()]
            parts.extend(_vector_defs(w) for w in _vector_widths(prog))
            for fn in prog.functions:
                parts.append(function_to_c(fn))
            out = "\n\n".join(parts) + "\n"
            if profile_active() is not None:
                meta["chars"] = len(out)
            return out
