"""The imperative intermediate representation produced by code generation.

Low-level RISE programs are translated into this loop-nest IR, from which
the repository derives three things:

* readable C99 (``repro.codegen.cprint``) — compilable with a host C
  compiler for end-to-end integration tests;
* an executable Python function (``repro.exec``) used as the reference
  runtime for correctness/PSNR validation;
* an analytic cost estimate on a modeled ARM CPU (``repro.perf``).

Sizes stay *symbolic* (:class:`~repro.nat.Nat`): one compiled program is
instantiated for many image sizes by binding its size variables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator, Mapping, Optional, Union

from repro.nat import Nat, nat

__all__ = [
    "ScalarKind",
    "IExpr",
    "IConst",
    "FConst",
    "NatE",
    "Var",
    "Load",
    "VLoad",
    "Broadcast",
    "VShuffle",
    "VPack",
    "VLane",
    "BinOp",
    "UnOp",
    "Stmt",
    "Block",
    "For",
    "LoopKind",
    "DeclScalar",
    "DeclVec",
    "Assign",
    "Store",
    "VStore",
    "AllocStmt",
    "Comment",
    "Buffer",
    "ImpFunction",
    "ImpProgram",
    "walk_stmts",
    "walk_exprs",
    "count_ir_nodes",
    "op_histogram",
]


class ScalarKind(Enum):
    F32 = "float"
    I32 = "int"


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class IExpr:
    """Base class of imperative expressions (scalar, index or vector)."""

    def children(self) -> list["IExpr"]:
        return []


@dataclass(frozen=True)
class IConst(IExpr):
    value: int


@dataclass(frozen=True)
class FConst(IExpr):
    value: float


@dataclass(frozen=True)
class NatE(IExpr):
    """A symbolic size used in index arithmetic; bound at instantiation."""

    value: Nat


@dataclass(frozen=True)
class Var(IExpr):
    """A loop variable, scalar temporary or vector register."""

    name: str


@dataclass(frozen=True)
class Load(IExpr):
    buffer: str
    index: IExpr

    def children(self) -> list[IExpr]:
        return [self.index]


@dataclass(frozen=True)
class VLoad(IExpr):
    """Load ``width`` consecutive floats starting at ``index``.

    ``aligned`` records whether the start is a multiple of the width —
    the distinction of paper fig. 7 that the cost model charges for.
    """

    buffer: str
    index: IExpr
    width: int
    aligned: bool = False

    def children(self) -> list[IExpr]:
        return [self.index]


@dataclass(frozen=True)
class Broadcast(IExpr):
    value: IExpr
    width: int

    def children(self) -> list[IExpr]:
        return [self.value]


@dataclass(frozen=True)
class VShuffle(IExpr):
    """Concatenate two width-lane vectors and take lanes
    [offset, offset+width) — the shuffle of paper fig. 7's optimized
    unaligned-load scheme and of vector register rotation."""

    a: IExpr
    b: IExpr
    offset: int
    width: int

    def children(self) -> list[IExpr]:
        return [self.a, self.b]


@dataclass(frozen=True)
class VPack(IExpr):
    """Build a vector from individual lane expressions (non-contiguous
    gather; more expensive than a VLoad)."""

    lanes: tuple[IExpr, ...]

    def children(self) -> list[IExpr]:
        return list(self.lanes)


@dataclass(frozen=True)
class VLane(IExpr):
    """Extract one lane of a vector value."""

    vec: IExpr
    lane: IExpr

    def children(self) -> list[IExpr]:
        return [self.vec, self.lane]


_BIN_OPS = ("add", "sub", "mul", "div", "min", "max", "mod", "idiv")
_UN_OPS = ("neg", "abs", "sqrt")


@dataclass(frozen=True)
class BinOp(IExpr):
    op: str
    a: IExpr
    b: IExpr

    def __post_init__(self) -> None:
        if self.op not in _BIN_OPS:
            raise ValueError(f"unknown binary op {self.op!r}")

    def children(self) -> list[IExpr]:
        return [self.a, self.b]


@dataclass(frozen=True)
class UnOp(IExpr):
    op: str
    a: IExpr

    def __post_init__(self) -> None:
        if self.op not in _UN_OPS:
            raise ValueError(f"unknown unary op {self.op!r}")

    def children(self) -> list[IExpr]:
        return [self.a]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Stmt:
    """Base class of imperative statements."""


@dataclass
class Block(Stmt):
    stmts: list[Stmt] = field(default_factory=list)


class LoopKind(Enum):
    SEQ = "seq"
    PARALLEL = "parallel"
    VEC = "vec"  # a strip loop whose body computes on vectors
    UNROLLED = "unrolled"


@dataclass
class For(Stmt):
    var: str
    extent: IExpr
    body: Stmt
    kind: LoopKind = LoopKind.SEQ
    step: int = 1


@dataclass
class DeclScalar(Stmt):
    var: str
    init: Optional[IExpr] = None
    kind: ScalarKind = ScalarKind.F32


@dataclass
class DeclVec(Stmt):
    var: str
    width: int = 4
    init: Optional[IExpr] = None


@dataclass
class Assign(Stmt):
    var: str
    value: IExpr


@dataclass
class Store(Stmt):
    buffer: str
    index: IExpr
    value: IExpr


@dataclass
class VStore(Stmt):
    buffer: str
    index: IExpr
    value: IExpr
    width: int = 4
    aligned: bool = False


@dataclass
class Comment(Stmt):
    text: str


@dataclass(frozen=True)
class Buffer:
    """A flat float32 buffer with a (possibly symbolic) element count.

    ``pad`` extra elements are allocated beyond ``size`` so vector loads
    near the end of a line stay in bounds (the paper likewise rounds
    buffers up to vector-width multiples).
    """

    name: str
    size: Nat
    pad: int = 0
    addrspace: str = "global"

    def alloc_size(self) -> Nat:
        return self.size + self.pad


@dataclass
class AllocStmt(Stmt):
    buffer: Buffer


@dataclass
class ImpFunction(Stmt):
    """One generated kernel: parameters, local allocations and the body."""

    name: str
    inputs: list[Buffer]
    output: Buffer
    size_vars: list[str]
    body: Block
    temporaries: list[Buffer] = field(default_factory=list)


@dataclass
class ImpProgram:
    """A compiled pipeline: one or more kernels executed in sequence.

    The multi-kernel form models library baselines (OpenCV) and the LIFT
    per-operator compilation; the optimizing compilers produce a single
    kernel.  ``intermediates`` are the buffers written by one kernel and
    read by a later one.
    """

    name: str
    functions: list[ImpFunction]
    size_vars: list[str]
    launch_overheads: int = 1  # number of kernel launches charged

    def single(self) -> ImpFunction:
        if len(self.functions) != 1:
            raise ValueError(f"{self.name} has {len(self.functions)} kernels")
        return self.functions[0]


# ---------------------------------------------------------------------------
# Traversals
# ---------------------------------------------------------------------------


def walk_stmts(stmt: Stmt) -> Iterator[Stmt]:
    yield stmt
    if isinstance(stmt, Block):
        for s in stmt.stmts:
            yield from walk_stmts(s)
    elif isinstance(stmt, For):
        yield from walk_stmts(stmt.body)
    elif isinstance(stmt, ImpFunction):
        yield from walk_stmts(stmt.body)


def walk_exprs(stmt: Stmt) -> Iterator[IExpr]:
    def from_expr(e: IExpr) -> Iterator[IExpr]:
        yield e
        for c in e.children():
            yield from from_expr(c)

    for s in walk_stmts(stmt):
        if isinstance(s, For):
            yield from from_expr(s.extent)
        elif isinstance(s, (DeclScalar, DeclVec)):
            if s.init is not None:
                yield from from_expr(s.init)
        elif isinstance(s, Assign):
            yield from from_expr(s.value)
        elif isinstance(s, Store):
            yield from from_expr(s.index)
            yield from from_expr(s.value)
        elif isinstance(s, VStore):
            yield from from_expr(s.index)
            yield from from_expr(s.value)


def count_ir_nodes(obj: Union["ImpProgram", Stmt]) -> int:
    """Total number of IR nodes (statements + expressions) in a program or
    statement — the size metric the compile-phase profiler reports."""
    if isinstance(obj, ImpProgram):
        return sum(count_ir_nodes(f) for f in obj.functions)
    stmts = sum(1 for _ in walk_stmts(obj))
    exprs = sum(1 for _ in walk_exprs(obj))
    return stmts + exprs


def op_histogram(obj: Union["ImpProgram", Stmt]) -> dict[str, int]:
    """Static operation counts by node kind (``BinOp:add``, ``Load``,
    ``VStore``, ``For:parallel``, …) — the executor's op-count section."""
    if isinstance(obj, ImpProgram):
        out: dict[str, int] = {}
        for fn in obj.functions:
            for key, value in op_histogram(fn).items():
                out[key] = out.get(key, 0) + value
        return dict(sorted(out.items()))
    counts: dict[str, int] = {}

    def bump(key: str) -> None:
        counts[key] = counts.get(key, 0) + 1

    for s in walk_stmts(obj):
        if isinstance(s, For):
            bump(f"For:{s.kind.value}")
        elif not isinstance(s, (Block, ImpFunction)):
            bump(type(s).__name__)
    for e in walk_exprs(obj):
        if isinstance(e, BinOp):
            bump(f"BinOp:{e.op}")
        elif isinstance(e, UnOp):
            bump(f"UnOp:{e.op}")
        elif isinstance(e, (Load, VLoad, Broadcast, VShuffle, VPack, VLane)):
            bump(type(e).__name__)
    return dict(sorted(counts.items()))
