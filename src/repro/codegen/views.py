"""Views: symbolic array values used during code generation.

High-level RISE patterns such as ``zip``, ``transpose``, ``slide``,
``join`` and projections are *views*: they do not compute anything, they
only transform the index at which underlying data is read.  During code
generation every RISE value is represented as a view tree; only explicit
low-level patterns (``mapSeq*``, ``reduceSeq*``, ``circularBuffer``,
``rotateValues``, ``toMem``) materialize or iterate.

The index expressions fold constants eagerly so that, e.g., accessing a
joined 3x3 window at constant position 7 becomes row 2 / column 1 rather
than a division at run time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Union

from repro.nat import Nat, nat
from repro.codegen.ir import BinOp, IConst, IExpr, NatE, Var

__all__ = [
    "View",
    "ScalarV",
    "PairV",
    "FunV",
    "ArrV",
    "CodegenError",
    "idx_add",
    "idx_sub",
    "idx_mul",
    "idx_mod",
    "idx_div",
    "nat_expr",
]


class CodegenError(Exception):
    """Raised when a RISE program cannot be translated to imperative code."""


# ---------------------------------------------------------------------------
# Index arithmetic with eager constant folding
# ---------------------------------------------------------------------------


def nat_expr(n: Union[Nat, int]) -> IExpr:
    """Lift a (symbolic) size into an index expression."""
    if isinstance(n, int):
        return IConst(n)
    if n.is_constant():
        return IConst(n.constant_value())
    return NatE(n)


def _const_of(e: IExpr) -> int | None:
    if isinstance(e, IConst):
        return e.value
    if isinstance(e, NatE) and e.value.is_constant():
        return e.value.constant_value()
    return None


def idx_add(a: IExpr, b: IExpr) -> IExpr:
    ca, cb = _const_of(a), _const_of(b)
    if ca == 0:
        return b
    if cb == 0:
        return a
    if ca is not None and cb is not None:
        return IConst(ca + cb)
    if isinstance(a, NatE) and isinstance(b, NatE):
        return nat_expr(a.value + b.value)
    return BinOp("add", a, b)


def idx_sub(a: IExpr, b: IExpr) -> IExpr:
    ca, cb = _const_of(a), _const_of(b)
    if cb == 0:
        return a
    if ca is not None and cb is not None:
        return IConst(ca - cb)
    if isinstance(a, NatE) and isinstance(b, NatE):
        return nat_expr(a.value - b.value)
    return BinOp("sub", a, b)


def idx_mul(a: IExpr, b: IExpr) -> IExpr:
    ca, cb = _const_of(a), _const_of(b)
    if ca == 0 or cb == 0:
        return IConst(0)
    if ca == 1:
        return b
    if cb == 1:
        return a
    if ca is not None and cb is not None:
        return IConst(ca * cb)
    if isinstance(a, NatE) and isinstance(b, NatE):
        return nat_expr(a.value * b.value)
    return BinOp("mul", a, b)


def idx_mod(a: IExpr, b: IExpr) -> IExpr:
    ca, cb = _const_of(a), _const_of(b)
    if ca is not None and cb is not None and cb != 0:
        return IConst(ca % cb)
    if cb == 1:
        return IConst(0)
    return BinOp("mod", a, b)


def idx_div(a: IExpr, b: IExpr) -> IExpr:
    ca, cb = _const_of(a), _const_of(b)
    if ca is not None and cb is not None and cb != 0:
        return IConst(ca // cb)
    if cb == 1:
        return a
    return BinOp("idiv", a, b)


# ---------------------------------------------------------------------------
# Views
# ---------------------------------------------------------------------------


class View:
    """Base class of code-generation values."""


@dataclass
class ScalarV(View):
    """A scalar (or SIMD-vector) value: an imperative expression."""

    expr: IExpr


@dataclass
class PairV(View):
    fst: View
    snd: View


@dataclass
class FunV(View):
    """A function value: applying it may emit statements into the current
    block (e.g. for reductions in its body)."""

    fn: Callable[[View], View]

    def __call__(self, arg: View) -> View:
        return self.fn(arg)


@dataclass
class ArrV(View):
    """An array value: a size plus an indexing function.

    ``at`` takes an index *expression*; constant indices fold through the
    view tree down to constant buffer offsets.
    """

    size: Nat
    at_fn: Callable[[IExpr], View]

    def at(self, index: IExpr) -> View:
        return self.at_fn(index)

    def at_const(self, index: int) -> View:
        return self.at_fn(IConst(index))


def project(view: View, path: tuple[int, ...]) -> View:
    """Project a component out of nested pairs (0 = fst, 1 = snd)."""
    for step in path:
        if not isinstance(view, PairV):
            raise CodegenError(f"cannot project component of {type(view).__name__}")
        view = view.fst if step == 0 else view.snd
    return view
