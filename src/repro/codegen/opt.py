"""Constant folding / algebraic simplification on the imperative IR.

Convolution weights contain zeros and ±1 (the sobel kernels), and unrolled
reductions start from a literal 0 — any real backend (the paper's OpenCL
compiler, or gcc on our emitted C) folds these.  Folding them in the IR
keeps the cost model's operation counts honest and the emitted code
readable.

Rules (applied bottom-up until fixpoint):
    0.0 * x -> 0.0        x * 1.0 -> x         x * -1.0 -> -x
    0.0 + x -> x          x - 0.0 -> x         c1 op c2 -> c
    broadcast/shuffle/pack of folded operands fold their children.
"""

from __future__ import annotations

from repro.codegen.ir import (
    AllocStmt,
    Assign,
    BinOp,
    Block,
    Broadcast,
    Comment,
    DeclScalar,
    DeclVec,
    FConst,
    For,
    IConst,
    IExpr,
    ImpFunction,
    ImpProgram,
    Load,
    Stmt,
    Store,
    UnOp,
    VLane,
    VLoad,
    VPack,
    VShuffle,
    VStore,
    Var,
)

__all__ = ["fold_program", "fold_expr", "cse_program"]


def _const(e: IExpr):
    if isinstance(e, FConst):
        return e.value
    return None


def fold_expr(e: IExpr) -> IExpr:
    if isinstance(e, BinOp):
        a = fold_expr(e.a)
        b = fold_expr(e.b)
        ca, cb = _const(a), _const(b)
        if e.op == "mul":
            if ca == 0.0 or cb == 0.0:
                return FConst(0.0)
            if ca == 1.0:
                return b
            if cb == 1.0:
                return a
            if ca == -1.0:
                return fold_expr(UnOp("neg", b))
            if cb == -1.0:
                return fold_expr(UnOp("neg", a))
            if ca is not None and cb is not None:
                import numpy as np

                return FConst(float(np.float32(ca) * np.float32(cb)))
        if e.op == "add":
            if ca == 0.0:
                return b
            if cb == 0.0:
                return a
            if ca is not None and cb is not None:
                import numpy as np

                return FConst(float(np.float32(ca) + np.float32(cb)))
            # x + (-y)  ->  x - y
            if isinstance(b, UnOp) and b.op == "neg":
                return BinOp("sub", a, b.a)
        if e.op == "sub":
            if cb == 0.0:
                return a
            if ca is not None and cb is not None:
                import numpy as np

                return FConst(float(np.float32(ca) - np.float32(cb)))
        return BinOp(e.op, a, b)
    if isinstance(e, UnOp):
        a = fold_expr(e.a)
        ca = _const(a)
        if e.op == "neg":
            if ca is not None:
                return FConst(-ca)
            if isinstance(a, UnOp) and a.op == "neg":
                return a.a
        return UnOp(e.op, a)
    if isinstance(e, Broadcast):
        return Broadcast(fold_expr(e.value), e.width)
    if isinstance(e, VShuffle):
        return VShuffle(fold_expr(e.a), fold_expr(e.b), e.offset, e.width)
    if isinstance(e, VPack):
        return VPack(tuple(fold_expr(l) for l in e.lanes))
    if isinstance(e, VLane):
        return VLane(fold_expr(e.vec), fold_expr(e.lane))
    if isinstance(e, Load):
        return Load(e.buffer, fold_expr(e.index))
    if isinstance(e, VLoad):
        return VLoad(e.buffer, fold_expr(e.index), e.width, e.aligned)
    return e


def _fold_stmt(s: Stmt) -> Stmt:
    if isinstance(s, Block):
        return Block([_fold_stmt(x) for x in s.stmts])
    if isinstance(s, For):
        return For(s.var, fold_expr(s.extent), _fold_stmt(s.body), s.kind, s.step)
    if isinstance(s, DeclScalar):
        return DeclScalar(s.var, fold_expr(s.init) if s.init else None, s.kind)
    if isinstance(s, DeclVec):
        return DeclVec(s.var, s.width, fold_expr(s.init) if s.init else None)
    if isinstance(s, Assign):
        return Assign(s.var, fold_expr(s.value))
    if isinstance(s, Store):
        return Store(s.buffer, fold_expr(s.index), fold_expr(s.value))
    if isinstance(s, VStore):
        return VStore(s.buffer, fold_expr(s.index), fold_expr(s.value), s.width, s.aligned)
    return s


def fold_program(prog: ImpProgram) -> ImpProgram:
    """Return a copy of the program with constant-folded expressions."""
    from repro.observe.profile import phase, profile_active
    from repro.codegen.ir import count_ir_nodes

    with phase("fold") as meta:
        functions = [
            ImpFunction(
                name=fn.name,
                inputs=fn.inputs,
                output=fn.output,
                size_vars=fn.size_vars,
                body=_fold_stmt(fn.body),
                temporaries=fn.temporaries,
            )
            for fn in prog.functions
        ]
        out = ImpProgram(
            name=prog.name,
            functions=functions,
            size_vars=prog.size_vars,
            launch_overheads=prog.launch_overheads,
        )
        out.vector_fallbacks = getattr(prog, "vector_fallbacks", [])
        out.size_constraints = getattr(prog, "size_constraints", [])
        if profile_active() is not None:
            meta["nodes_in"] = count_ir_nodes(prog)
            meta["nodes_out"] = count_ir_nodes(out)
        return out


# ---------------------------------------------------------------------------
# Block-level common-subexpression elimination
# ---------------------------------------------------------------------------


def _expr_size(e: IExpr) -> int:
    return 1 + sum(_expr_size(c) for c in e.children())


def _loads_of(e: IExpr) -> set[str]:
    out: set[str] = set()

    def go(x: IExpr) -> None:
        if isinstance(x, (Load, VLoad)):
            out.add(x.buffer)
        for c in x.children():
            go(c)

    go(e)
    return out


def _is_vector_expr(e: IExpr, vector_vars) -> bool:
    if isinstance(e, (VLoad, Broadcast, VShuffle, VPack)):
        return True
    if isinstance(e, Var):
        return e.name in vector_vars
    if isinstance(e, (BinOp, UnOp)):
        return any(_is_vector_expr(c, vector_vars) for c in e.children())
    return False


def _vector_width(e: IExpr, vector_vars: dict) -> int:
    """Lane width of a vector-valued expression (hoisted temporaries must
    be declared at the width of the value they hold, not a default)."""
    if isinstance(e, (VLoad, Broadcast, VShuffle)):
        return e.width
    if isinstance(e, VPack):
        return len(e.lanes)
    if isinstance(e, Var):
        return vector_vars[e.name]
    if isinstance(e, (BinOp, UnOp)):
        for c in e.children():
            if _is_vector_expr(c, vector_vars):
                return _vector_width(c, vector_vars)
    raise TypeError(f"{type(e).__name__} is not vector-valued")


class _CseState:
    def __init__(self) -> None:
        self.counter = 0
        self.vector_vars: dict[str, int] = {}

    def fresh(self) -> str:
        self.counter += 1
        return f"cse{self.counter}"


def _cse_segment(stmts: list[Stmt], state: _CseState) -> list[Stmt]:
    """CSE over a straight-line run of value statements.

    Subexpressions repeated across the segment are hoisted into
    temporaries — this models what any real backend (LLVM under Halide or
    the OpenCL compiler under RISE) does, and it is essential for fair
    operation counts: e.g. a structure-tensor sum referenced by both the
    determinant and the trace must be computed once.

    Expressions reading a buffer that the segment also writes are left
    untouched (stores act as barriers for them).
    """
    stored: set[str] = set()
    for s in stmts:
        if isinstance(s, (Store, VStore)):
            stored.add(s.buffer)

    counts: dict[IExpr, int] = {}

    def count(e: IExpr) -> None:
        if isinstance(e, (Var, IConst, FConst)):
            return
        counts[e] = counts.get(e, 0) + 1
        if isinstance(e, (Load, VLoad, VLane)):
            return  # index expressions stay opaque (integer context)
        for c in e.children():
            count(c)

    def exprs_of(s: Stmt):
        if isinstance(s, (Store, VStore)):
            yield s.value
        elif isinstance(s, (Assign,)):
            yield s.value
        elif isinstance(s, (DeclScalar, DeclVec)) and s.init is not None:
            yield s.init

    for s in stmts:
        for e in exprs_of(s):
            count(e)

    table: dict[IExpr, str] = {}
    out: list[Stmt] = []

    def rewrite(e: IExpr) -> IExpr:
        if isinstance(e, (Var, IConst, FConst)):
            return e
        if e in table:
            return Var(table[e])
        worth = (
            counts.get(e, 0) >= 2
            and _expr_size(e) >= 2
            and not isinstance(e, Broadcast)
            and not (_loads_of(e) & stored)
        )
        if isinstance(e, (Load, VLoad, VLane)):
            rebuilt: IExpr = e  # never rewrite inside index expressions
        else:
            rebuilt = _rebuild_expr(e, [rewrite(c) for c in e.children()])
        if worth:
            name = state.fresh()
            if _is_vector_expr(rebuilt, state.vector_vars):
                width = _vector_width(rebuilt, state.vector_vars)
                state.vector_vars[name] = width
                out.append(DeclVec(name, width, rebuilt))
            else:
                out.append(DeclScalar(name, rebuilt))
            table[e] = name
            return Var(name)
        return rebuilt

    for s in stmts:
        if isinstance(s, Store):
            out.append(Store(s.buffer, s.index, rewrite(s.value)))
        elif isinstance(s, VStore):
            out.append(VStore(s.buffer, s.index, rewrite(s.value), s.width, s.aligned))
        elif isinstance(s, Assign):
            out.append(Assign(s.var, rewrite(s.value)))
        elif isinstance(s, DeclScalar) and s.init is not None:
            out.append(DeclScalar(s.var, rewrite(s.init), s.kind))
        elif isinstance(s, DeclVec) and s.init is not None:
            state.vector_vars[s.var] = s.width
            out.append(DeclVec(s.var, s.width, rewrite(s.init)))
        else:
            out.append(s)
    return out


def _cse_stmt(s: Stmt, state: _CseState) -> Stmt:
    if isinstance(s, Block):
        new: list[Stmt] = []
        run: list[Stmt] = []

        def flush() -> None:
            if run:
                new.extend(_cse_segment(run, state))
                run.clear()

        for sub in s.stmts:
            if isinstance(sub, (Store, VStore, Assign, DeclScalar, DeclVec)):
                if isinstance(sub, DeclVec):
                    state.vector_vars[sub.var] = sub.width
                run.append(sub)
            else:
                flush()
                new.append(_cse_stmt(sub, state))
        flush()
        return Block(new)
    if isinstance(s, For):
        return For(s.var, s.extent, _cse_stmt(s.body, state), s.kind, s.step)
    return s


def _rebuild_expr(e: IExpr, kids: list[IExpr]) -> IExpr:
    if isinstance(e, BinOp):
        return BinOp(e.op, kids[0], kids[1])
    if isinstance(e, UnOp):
        return UnOp(e.op, kids[0])
    if isinstance(e, Load):
        return Load(e.buffer, kids[0])
    if isinstance(e, VLoad):
        return VLoad(e.buffer, kids[0], e.width, e.aligned)
    if isinstance(e, Broadcast):
        return Broadcast(kids[0], e.width)
    if isinstance(e, VShuffle):
        return VShuffle(kids[0], kids[1], e.offset, e.width)
    if isinstance(e, VPack):
        return VPack(tuple(kids))
    if isinstance(e, VLane):
        return VLane(kids[0], kids[1])
    return e


def cse_program(prog: ImpProgram) -> ImpProgram:
    """Apply block-level CSE to every kernel."""
    from repro.observe.profile import phase, profile_active
    from repro.codegen.ir import count_ir_nodes

    with phase("cse") as meta:
        state = _CseState()
        functions = [
            ImpFunction(
                name=fn.name,
                inputs=fn.inputs,
                output=fn.output,
                size_vars=fn.size_vars,
                body=_cse_stmt(fn.body, state),
                temporaries=fn.temporaries,
            )
            for fn in prog.functions
        ]
        out = ImpProgram(
            name=prog.name,
            functions=functions,
            size_vars=prog.size_vars,
            launch_overheads=prog.launch_overheads,
        )
        out.vector_fallbacks = getattr(prog, "vector_fallbacks", [])
        out.size_constraints = getattr(prog, "size_constraints", [])
        if profile_active() is not None:
            meta["nodes_in"] = count_ir_nodes(prog)
            meta["nodes_out"] = count_ir_nodes(out)
        return out
