"""Code generation: low-level RISE -> imperative IR -> C / Python / cost."""

from repro.codegen.ir import ImpFunction, ImpProgram
from repro.codegen.lower import CodegenError, compile_program
