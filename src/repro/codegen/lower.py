"""Translation of low-level RISE programs to the imperative IR.

The translation follows the acceptor/destination-passing style of the
formal translation the paper's code generator derives from: every
expression is generated *into* a destination.  View patterns (``zip``,
``transpose``, ``slide``, ``join``, projections, high-level ``map`` used
as a view) become index transformations and cost nothing; only the
low-level patterns drive loops, allocation and data movement:

* ``mapSeq`` / ``mapSeqUnroll``  -> sequential (unrolled) loops
* ``mapGlobal``                  -> a parallel loop over threads
* ``mapSeqVec``                  -> a strip-mined SIMD loop (+ scalar tail)
* ``reduceSeq(Unroll)``          -> accumulation loops / folded expressions
* ``toMem``                      -> explicit materialization
* ``circularBuffer``             -> streamed stages with modulo-indexed
                                    line buffers (prologue + steady state)
* ``rotateValues``               -> rotating scalar or vector registers,
                                    with fig.-7 style shuffles when the
                                    consumer is vectorized
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional

from repro.nat import Nat, nat
from repro.rise import expr as E
from repro.rise.typecheck import Typing, infer_types
from repro.rise.types import (
    ArrayType,
    DataType,
    PairType,
    ScalarType,
    Type,
    VectorType,
)
from repro.rise.traverse import app_spine
from repro.codegen.ir import (
    AllocStmt,
    Assign,
    BinOp,
    Block,
    Broadcast,
    Buffer,
    Comment,
    DeclScalar,
    DeclVec,
    FConst,
    For,
    IConst,
    IExpr,
    ImpFunction,
    ImpProgram,
    Load,
    LoopKind,
    NatE,
    Store,
    UnOp,
    VLane,
    VLoad,
    VPack,
    VShuffle,
    VStore,
    Var,
)
from repro.codegen.views import (
    ArrV,
    CodegenError,
    FunV,
    PairV,
    ScalarV,
    View,
    idx_add,
    idx_div,
    idx_mod,
    idx_mul,
    nat_expr,
)
from repro.codegen.vectorize import VectorizeError, vectorize_stmts

__all__ = ["compile_program", "CodegenError"]

BUFFER_PAD = 8  # slack floats so vector loads at line ends stay in bounds

_OP_MAP = {"add": "add", "sub": "sub", "mul": "mul", "div": "div", "min": "min", "max": "max"}


# ---------------------------------------------------------------------------
# Destinations
# ---------------------------------------------------------------------------


class Dest:
    """Where generated values are written."""


@dataclass
class DCell(Dest):
    """A scalar cell in a flat buffer."""

    buffer: str
    index: IExpr


@dataclass
class DPair(Dest):
    fst: Dest
    snd: Dest


@dataclass
class DArr(Dest):
    size: Nat
    at_fn: Callable[[IExpr], Dest]

    def at(self, index: IExpr) -> Dest:
        return self.at_fn(index)


def dest_for_buffer(dtype: DataType, buffers: dict[tuple, str], offsets: dict[tuple, IExpr]) -> Dest:
    """Build a destination tree over per-leaf flat buffers (SoA layout for
    arrays of pairs)."""
    if isinstance(dtype, ScalarType):
        return DCell(buffers[()], offsets[()])
    if isinstance(dtype, VectorType):
        return DCell(buffers[()], offsets[()])  # vectors stored as width scalars
    if isinstance(dtype, PairType):
        return DPair(
            dest_for_buffer(
                dtype.fst,
                {p[1:]: b for p, b in buffers.items() if p and p[0] == 0},
                {p[1:]: o for p, o in offsets.items() if p and p[0] == 0},
            ),
            dest_for_buffer(
                dtype.snd,
                {p[1:]: b for p, b in buffers.items() if p and p[0] == 1},
                {p[1:]: o for p, o in offsets.items() if p and p[0] == 1},
            ),
        )
    if isinstance(dtype, ArrayType):
        elem = dtype.elem

        def at(i: IExpr) -> Dest:
            new_offsets = {
                p: idx_add(off, idx_mul(i, nat_expr(leaf_stride(elem, p))))
                for p, off in offsets.items()
            }
            return dest_for_buffer(elem, buffers, new_offsets)

        return DArr(dtype.size, at)
    raise CodegenError(f"cannot build destination for {dtype!r}")


def scalar_leaf_paths(dtype: DataType) -> list[tuple]:
    """Paths (through pairs) to the scalar leaves of a data type."""
    if isinstance(dtype, (ScalarType, VectorType)):
        return [()]
    if isinstance(dtype, PairType):
        return [(0,) + p for p in scalar_leaf_paths(dtype.fst)] + [
            (1,) + p for p in scalar_leaf_paths(dtype.snd)
        ]
    if isinstance(dtype, ArrayType):
        return scalar_leaf_paths(dtype.elem)
    raise CodegenError(f"no leaves for {dtype!r}")


def leaf_stride(dtype: DataType, path: tuple) -> Nat:
    """Scalars per element of ``dtype`` along the given leaf path."""
    if isinstance(dtype, ScalarType):
        return nat(1)
    if isinstance(dtype, VectorType):
        return dtype.size
    if isinstance(dtype, PairType):
        side = dtype.fst if path[0] == 0 else dtype.snd
        return leaf_stride(side, path[1:])
    if isinstance(dtype, ArrayType):
        return dtype.size * leaf_stride(dtype.elem, path)
    raise CodegenError(f"no stride for {dtype!r}")


def buffer_view(dtype: DataType, buffers: dict[tuple, str], offsets: dict[tuple, IExpr]) -> View:
    """The read view matching :func:`dest_for_buffer`'s layout."""
    if isinstance(dtype, ScalarType):
        return ScalarV(Load(buffers[()], offsets[()]))
    if isinstance(dtype, VectorType):
        width = dtype.size.constant_value()
        return ScalarV(VLoad(buffers[()], offsets[()], width, aligned=False))
    if isinstance(dtype, PairType):
        return PairV(
            buffer_view(
                dtype.fst,
                {p[1:]: b for p, b in buffers.items() if p and p[0] == 0},
                {p[1:]: o for p, o in offsets.items() if p and p[0] == 0},
            ),
            buffer_view(
                dtype.snd,
                {p[1:]: b for p, b in buffers.items() if p and p[0] == 1},
                {p[1:]: o for p, o in offsets.items() if p and p[0] == 1},
            ),
        )
    if isinstance(dtype, ArrayType):
        elem = dtype.elem

        def at(i: IExpr) -> View:
            new_offsets = {
                p: idx_add(off, idx_mul(i, nat_expr(leaf_stride(elem, p))))
                for p, off in offsets.items()
            }
            return buffer_view(elem, buffers, new_offsets)

        return ArrV(dtype.size, at)
    raise CodegenError(f"cannot view {dtype!r}")


# ---------------------------------------------------------------------------
# Codegen context
# ---------------------------------------------------------------------------


class Ctx:
    def __init__(self, typing: Typing):
        self.typing = typing
        self._blocks: list[list] = [[]]
        self._counter = itertools.count()
        self.all_buffers: list[Buffer] = []
        self.vector_fallbacks: list[str] = []
        self.vector_vars: set[str] = set()

    # -- emission --------------------------------------------------------

    def emit(self, stmt) -> None:
        self._blocks[-1].append(stmt)

    def push(self) -> None:
        self._blocks.append([])

    def pop(self) -> Block:
        return Block(self._blocks.pop())

    def fresh(self, prefix: str) -> str:
        return f"{prefix}{next(self._counter)}"

    def alloc(self, prefix: str, size: Nat, addrspace: str = "global") -> str:
        name = self.fresh(prefix)
        buffer = Buffer(name, size, pad=BUFFER_PAD, addrspace=addrspace)
        self.all_buffers.append(buffer)
        self.emit(AllocStmt(buffer))
        return name

    def type_of(self, node: E.Expr) -> Type:
        return self.typing.of(node)

    def data_type_of(self, node: E.Expr) -> DataType:
        t = self.typing.of(node)
        if not isinstance(t, DataType):
            raise CodegenError(f"expected data type, found {t!r}")
        return t


def _nat_is_multiple(n_expr: IExpr, width: int) -> bool:
    """Conservative alignment oracle for index rest-expressions."""
    if isinstance(n_expr, IConst):
        return n_expr.value % width == 0
    if isinstance(n_expr, NatE):
        return n_expr.value.divide_exact(nat(width)) is not None
    if isinstance(n_expr, BinOp) and n_expr.op == "add":
        return _nat_is_multiple(n_expr.a, width) and _nat_is_multiple(n_expr.b, width)
    if isinstance(n_expr, BinOp) and n_expr.op == "mul":
        return _nat_is_multiple(n_expr.a, width) or _nat_is_multiple(n_expr.b, width)
    return False


# ---------------------------------------------------------------------------
# Expression evaluation (to views)
# ---------------------------------------------------------------------------


def ev(node: E.Expr, env: Mapping[str, View], ctx: Ctx) -> View:
    if isinstance(node, E.Identifier):
        try:
            return env[node.name]
        except KeyError:
            raise CodegenError(f"unbound identifier {node.name!r}") from None
    if isinstance(node, E.Literal):
        return ScalarV(FConst(float(node.value)))
    if isinstance(node, E.ArrayLiteral):
        def build(values) -> View:
            if isinstance(values, tuple):
                return ArrV(
                    nat(len(values)),
                    lambda i, vs=values: _const_index(vs, i, build),
                )
            return ScalarV(FConst(float(values)))

        return build(node.values)
    if isinstance(node, E.Lambda):
        captured = dict(env)

        def apply_fn(arg: View, _node=node, _env=captured) -> View:
            inner = dict(_env)
            inner[_node.param.name] = arg
            return ev(_node.body, inner, ctx)

        return FunV(apply_fn)
    if isinstance(node, E.Let):
        bound = _bind_let(node.ident.name, node.value, env, ctx)
        inner = dict(env)
        inner[node.ident.name] = bound
        return ev(node.body, inner, ctx)
    if isinstance(node, E.App):
        head, args = app_spine(node)
        if isinstance(head, E.Primitive):
            from repro.rise.expr import primitive_arity

            arity = primitive_arity(head)
            if len(args) == arity:
                return _apply_prim(head, args, node, env, ctx)
            if len(args) < arity:
                return _partial_prim(head, args, node, env, ctx)
            raise CodegenError(f"over-applied primitive {head.name}")
        fun_view = ev(node.fun, env, ctx)
        arg_view = ev(node.arg, env, ctx)
        if not isinstance(fun_view, FunV):
            raise CodegenError("applying a non-function value")
        return fun_view(arg_view)
    if isinstance(node, E.Primitive):
        return _partial_prim(node, [], node, env, ctx)
    raise CodegenError(f"cannot evaluate {type(node).__name__}")


def _const_index(values: tuple, index: IExpr, build) -> View:
    if isinstance(index, IConst):
        return build(values[index.value])
    raise CodegenError("array literal indexed with non-constant index")


def _expr_is_vector(e: IExpr, vector_vars: set[str]) -> bool:
    if isinstance(e, (VLoad, Broadcast, VShuffle, VPack)):
        return True
    if isinstance(e, Var):
        return e.name in vector_vars
    if isinstance(e, BinOp):
        return _expr_is_vector(e.a, vector_vars) or _expr_is_vector(e.b, vector_vars)
    if isinstance(e, UnOp):
        return _expr_is_vector(e.a, vector_vars)
    return False


def _bind_let(name: str, value_node: E.Expr, env: Mapping[str, View], ctx: Ctx) -> View:
    """Scalars are evaluated once into a temporary; everything else stays a
    (lazy) view.  A scalar-typed RISE value may still hold a *vector*
    expression when it is evaluated inside a vectorized context (rotation
    windows); the temporary's kind follows the expression."""
    vtype = ctx.type_of(value_node)
    value = ev(value_node, env, ctx)
    if isinstance(vtype, (ScalarType, VectorType)) and isinstance(value, ScalarV):
        if _expr_is_vector(value.expr, ctx.vector_vars):
            temp = ctx.fresh(f"{name.split('_')[0]}_v")
            width = (
                vtype.size.constant_value()
                if isinstance(vtype, VectorType)
                else 4
            )
            ctx.emit(DeclVec(temp, width, value.expr))
            ctx.vector_vars.add(temp)
            return ScalarV(Var(temp))
        temp = ctx.fresh(f"{name.split('_')[0]}_t")
        ctx.emit(DeclScalar(temp, value.expr))
        return ScalarV(Var(temp))
    return value


def _partial_prim(head: E.Primitive, args: list[E.Expr], node: E.Expr, env, ctx) -> View:
    from repro.rise.expr import primitive_arity

    arity = primitive_arity(head)
    collected = [ev(a, env, ctx) for a in args]

    def make(views: tuple) -> FunV:
        def apply_fn(arg: View) -> View:
            new = views + (arg,)
            if len(new) == arity:
                return _apply_prim_views(head, list(new), None, ctx)
            return make(new)

        return FunV(apply_fn)

    return make(tuple(collected))


def _apply_prim(head: E.Primitive, args: list[E.Expr], node: E.Expr, env, ctx) -> View:
    views = [ev(a, env, ctx) for a in args]
    return _apply_prim_views(head, views, node, ctx)


def _size_of_view(v: View) -> Nat:
    if isinstance(v, ArrV):
        return v.size
    raise CodegenError(f"expected array view, got {type(v).__name__}")


def _apply_prim_views(
    head: E.Primitive, views: list[View], node: Optional[E.Expr], ctx: Ctx
) -> View:
    # --- map family as lazy views -------------------------------------
    if isinstance(head, E.Map):
        f, xs = views
        assert isinstance(xs, ArrV)
        return ArrV(xs.size, lambda i: f(xs.at(i)))
    if isinstance(head, E.MapVec):
        f, v = views
        return f(v)
    # --- reductions ----------------------------------------------------
    if isinstance(head, (E.ReduceSeqUnroll,)) or (
        type(head) in (E.Reduce, E.ReduceSeq) and _const_size(views[2])
    ):
        op, init, xs = views
        assert isinstance(xs, ArrV)
        n = xs.size.constant_value()
        acc = init
        for k in range(n):
            acc = op(acc)(xs.at_const(k))
        return acc
    if isinstance(head, E.Reduce):  # reduceSeq / reduce with symbolic size
        op, init, xs = views
        assert isinstance(xs, ArrV)
        if not isinstance(init, ScalarV):
            raise CodegenError("loop reduction needs a scalar accumulator")
        acc = ctx.fresh("acc")
        ctx.emit(DeclScalar(acc, init.expr))
        loop_var = ctx.fresh("r")
        ctx.push()
        elem = xs.at(Var(loop_var))
        result = op(ScalarV(Var(acc)))(elem)
        if not isinstance(result, ScalarV):
            raise CodegenError("reduction operator must yield a scalar")
        ctx.emit(Assign(acc, result.expr))
        body = ctx.pop()
        ctx.emit(For(loop_var, nat_expr(xs.size), body, LoopKind.SEQ))
        return ScalarV(Var(acc))
    # --- tuples ---------------------------------------------------------
    if isinstance(head, E.Zip):
        a, b = views
        assert isinstance(a, ArrV) and isinstance(b, ArrV)
        return ArrV(a.size, lambda i: PairV(a.at(i), b.at(i)))
    if isinstance(head, E.Unzip):
        (ps,) = views
        assert isinstance(ps, ArrV)
        return PairV(
            ArrV(ps.size, lambda i: _fst(ps.at(i))),
            ArrV(ps.size, lambda i: _snd(ps.at(i))),
        )
    if isinstance(head, E.Fst):
        return _fst(views[0])
    if isinstance(head, E.Snd):
        return _snd(views[0])
    if isinstance(head, E.MakePair):
        return PairV(views[0], views[1])
    # --- index views ------------------------------------------------------
    if isinstance(head, E.Transpose):
        (xs,) = views
        assert isinstance(xs, ArrV)
        inner_size = _size_of_view(xs.at_const(0))
        return ArrV(
            inner_size, lambda i: ArrV(xs.size, lambda j: _arr(xs.at(j)).at(i))
        )
    if isinstance(head, E.Slide):
        (xs,) = views
        assert isinstance(xs, ArrV)
        sz, sp = head.size, head.step
        out = (xs.size - sz).divide_exact(sp)
        if out is None:
            out = (xs.size - sz) // sp
        out_size = out + 1
        return ArrV(
            out_size,
            lambda i: ArrV(sz, lambda j: xs.at(idx_add(idx_mul(i, nat_expr(sp)), j))),
        )
    if isinstance(head, E.Split):
        (xs,) = views
        assert isinstance(xs, ArrV)
        chunk = head.chunk
        out_size = xs.size.divide_exact(chunk)
        if out_size is None:
            out_size = xs.size // chunk
        return ArrV(
            out_size,
            lambda i: ArrV(
                chunk, lambda j: xs.at(idx_add(idx_mul(i, nat_expr(chunk)), j))
            ),
        )
    if isinstance(head, E.Join):
        (xs,) = views
        assert isinstance(xs, ArrV)
        inner = _size_of_view(xs.at_const(0))
        return ArrV(
            xs.size * inner,
            lambda i: _arr(xs.at(idx_div(i, nat_expr(inner)))).at(
                idx_mod(i, nat_expr(inner))
            ),
        )
    # --- scalar / vector arithmetic -----------------------------------
    if isinstance(head, E.ScalarOp):
        a, b = views
        if not (isinstance(a, ScalarV) and isinstance(b, ScalarV)):
            raise CodegenError(f"arithmetic on non-scalar views ({head.op})")
        return ScalarV(BinOp(_OP_MAP[head.op], a.expr, b.expr))
    if isinstance(head, E.UnaryOp):
        (a,) = views
        assert isinstance(a, ScalarV)
        return ScalarV(UnOp(head.op, a.expr))
    # --- vectors ----------------------------------------------------------
    if isinstance(head, E.AsVector):
        (xs,) = views
        assert isinstance(xs, ArrV)
        width = head.width.constant_value()
        out_size = xs.size.divide_exact(head.width) or (xs.size // head.width)

        def vec_at(i: IExpr) -> View:
            base = idx_mul(i, IConst(width))
            lanes = []
            for lane in range(width):
                v = xs.at(idx_add(base, IConst(lane)))
                if not isinstance(v, ScalarV):
                    raise CodegenError("asVector over non-scalar elements")
                lanes.append(v.expr)
            packed = _pack_lanes(lanes, width)
            return ScalarV(packed)

        return ArrV(out_size, vec_at)
    if isinstance(head, E.AsScalar):
        (vs,) = views
        assert isinstance(vs, ArrV)
        if node is not None:
            out_type = ctx.data_type_of(node)
            assert isinstance(out_type, ArrayType)
            out_size = out_type.size
            width_nat = out_size.divide_exact(vs.size)
            width = width_nat.constant_value() if width_nat else 4
        else:
            width = 4
            out_size = vs.size * 4

        def scalar_at(i: IExpr) -> View:
            v = vs.at(idx_div(i, IConst(width)))
            assert isinstance(v, ScalarV)
            return ScalarV(VLane(v.expr, idx_mod(i, IConst(width))))

        return ArrV(out_size, scalar_at)
    if isinstance(head, E.VectorFromScalar):
        (x,) = views
        assert isinstance(x, ScalarV)
        return ScalarV(Broadcast(x.expr, head.width.constant_value()))
    # --- memory -----------------------------------------------------------
    if isinstance(head, E.ToMem):
        (value,) = views
        if node is None:
            return value
        dtype = ctx.data_type_of(node)
        slot_buffers, slot_dest, slot_view = _alloc_slot(dtype, ctx, "tmem")
        store_view(value, slot_dest, ctx)
        return slot_view
    # --- streaming patterns used as plain values (fallback semantics) ---
    if isinstance(head, E.CircularBuffer):
        load, xs = views
        assert isinstance(xs, ArrV)
        m = head.size
        loaded = ArrV(xs.size, lambda i: load(xs.at(i)))
        out_size = xs.size - m + 1
        return ArrV(out_size, lambda i: ArrV(m, lambda j: loaded.at(idx_add(i, j))))
    if isinstance(head, E.RotateValues):
        (xs,) = views
        assert isinstance(xs, ArrV)
        m = head.size
        out_size = xs.size - m + 1
        return ArrV(out_size, lambda i: ArrV(m, lambda j: xs.at(idx_add(i, j))))
    raise CodegenError(f"no code generation for primitive {head.name}")


def _const_size(v: View) -> bool:
    return isinstance(v, ArrV) and v.size.is_constant() and v.size.constant_value() <= 16


def _fst(v: View) -> View:
    if isinstance(v, PairV):
        return v.fst
    raise CodegenError("fst of non-pair view")


def _snd(v: View) -> View:
    if isinstance(v, PairV):
        return v.snd
    raise CodegenError("snd of non-pair view")


def _arr(v: View) -> ArrV:
    if isinstance(v, ArrV):
        return v
    raise CodegenError("expected an array view")


def _pack_lanes(lanes: list[IExpr], width: int) -> IExpr:
    """Pack lane expressions, recognizing the contiguous-load case."""
    first = lanes[0]
    if isinstance(first, Load):
        contiguous = all(
            isinstance(l, Load)
            and l.buffer == first.buffer
            and l.index == idx_add(first.index, IConst(k))
            for k, l in enumerate(lanes)
        )
        if contiguous:
            return VLoad(first.buffer, first.index, width, aligned=False)
    return VPack(tuple(lanes))


def _alloc_slot(dtype: DataType, ctx: Ctx, prefix: str):
    """Allocate buffers for a value of ``dtype``; return (buffers, dest, view)."""
    paths = scalar_leaf_paths(dtype)
    buffers = {}
    offsets = {}
    for path in paths:
        size = _total_leaf_size(dtype, path)
        buffers[path] = ctx.alloc(prefix, size)
        offsets[path] = IConst(0)
    return buffers, dest_for_buffer(dtype, buffers, offsets), buffer_view(dtype, buffers, offsets)


def _total_leaf_size(dtype: DataType, path: tuple) -> Nat:
    if isinstance(dtype, (ScalarType,)):
        return nat(1)
    if isinstance(dtype, VectorType):
        return dtype.size
    if isinstance(dtype, PairType):
        side = dtype.fst if path[0] == 0 else dtype.snd
        return _total_leaf_size(side, path[1:])
    if isinstance(dtype, ArrayType):
        return dtype.size * _total_leaf_size(dtype.elem, path)
    raise CodegenError(f"no size for {dtype!r}")


# ---------------------------------------------------------------------------
# Statement generation into destinations
# ---------------------------------------------------------------------------


def store_view(view: View, dest: Dest, ctx: Ctx) -> None:
    if isinstance(dest, DCell):
        if not isinstance(view, ScalarV):
            raise CodegenError(f"storing {type(view).__name__} into a scalar cell")
        ctx.emit(Store(dest.buffer, dest.index, view.expr))
        return
    if isinstance(dest, DPair):
        store_view(_fst(view), dest.fst, ctx)
        store_view(_snd(view), dest.snd, ctx)
        return
    if isinstance(dest, DArr):
        arr = _arr(view)
        loop_var = ctx.fresh("c")
        ctx.push()
        store_view(arr.at(Var(loop_var)), dest.at(Var(loop_var)), ctx)
        body = ctx.pop()
        ctx.emit(For(loop_var, nat_expr(dest.size), body, LoopKind.SEQ))
        return
    raise CodegenError(f"unknown destination {type(dest).__name__}")


def gen_into(node: E.Expr, dest: Dest, env: Mapping[str, View], ctx: Ctx) -> None:
    """Generate statements computing ``node`` into ``dest``."""
    if isinstance(node, E.Let):
        bound = _bind_let(node.ident.name, node.value, env, ctx)
        inner = dict(env)
        inner[node.ident.name] = bound
        gen_into(node.body, dest, inner, ctx)
        return
    if isinstance(node, E.App) and isinstance(node.fun, E.Lambda):
        lam = node.fun
        bound = _bind_let(lam.param.name, node.arg, env, ctx)
        inner = dict(env)
        inner[lam.param.name] = bound
        gen_into(lam.body, dest, inner, ctx)
        return

    head, args = app_spine(node)

    if isinstance(head, E.MakePair) and len(args) == 2:
        if not isinstance(dest, DPair):
            raise CodegenError("pair produced into non-pair destination")
        gen_into(args[0], dest.fst, env, ctx)
        gen_into(args[1], dest.snd, env, ctx)
        return
    if isinstance(head, E.Join) and len(args) == 1:
        inner_type = ctx.data_type_of(args[0])
        assert isinstance(inner_type, ArrayType) and isinstance(
            inner_type.elem, ArrayType
        )
        outer_n, inner_n = inner_type.size, inner_type.elem.size
        assert isinstance(dest, DArr)
        regrouped = DArr(
            outer_n,
            lambda i: DArr(
                inner_n,
                lambda j: dest.at(idx_add(idx_mul(i, nat_expr(inner_n)), j)),
            ),
        )
        gen_into(args[0], regrouped, env, ctx)
        return
    if isinstance(head, E.ToMem) and len(args) == 1:
        gen_into(args[0], dest, env, ctx)
        return
    if isinstance(head, E.MapSeqVec) and len(args) == 2:
        _gen_map_vec(head, args[0], args[1], dest, env, ctx)
        return
    if isinstance(head, E.Map) and not isinstance(head, E.MapVec) and len(args) == 2:
        _gen_map(head, args[0], args[1], dest, env, ctx)
        return

    view = ev(node, env, ctx)
    store_view(view, dest, ctx)


def gen_apply_into(fn_node: E.Expr, arg: View, dest: Dest, env: Mapping[str, View], ctx: Ctx) -> None:
    if isinstance(fn_node, E.Lambda):
        inner = dict(env)
        inner[fn_node.param.name] = arg
        gen_into(fn_node.body, dest, inner, ctx)
        return
    # A partially-applied map used point-free (e.g. mapGlobal(mapSeqVec(f)))
    # must still drive a loop, not collapse into a lazy view copy.
    head, args = app_spine(fn_node)
    if isinstance(head, E.MapSeqVec) and len(args) == 1:
        _gen_map_vec_view(head, args[0], _arr(arg), dest, env, ctx)
        return
    if isinstance(head, E.Map) and not isinstance(head, E.MapVec) and len(args) == 1:
        _gen_map_view(head, args[0], _arr(arg), dest, env, ctx)
        return
    fn_view = ev(fn_node, env, ctx)
    if not isinstance(fn_view, FunV):
        raise CodegenError("applying non-function in destination context")
    store_view(fn_view(arg), dest, ctx)


# -- plain map loops ----------------------------------------------------


def _loop_kind(head: E.Map) -> LoopKind:
    if isinstance(head, E.MapGlobal):
        return LoopKind.PARALLEL
    if isinstance(head, E.MapSeqUnroll):
        return LoopKind.UNROLLED
    return LoopKind.SEQ


def _gen_map(head: E.Map, fn_node: E.Expr, src_node: E.Expr, dest: Dest, env, ctx: Ctx) -> None:
    src_head, src_args = app_spine(src_node)
    if isinstance(src_head, E.CircularBuffer) and len(src_args) == 2:
        _gen_stream_consumer(head, fn_node, src_node, dest, env, ctx, vec_width=None)
        return
    if isinstance(src_head, E.RotateValues) and len(src_args) == 1:
        _gen_rotate_consumer(head, fn_node, src_args[0], src_head, dest, env, ctx, vec_width=None)
        return
    src_view = _arr(ev(src_node, env, ctx))
    _gen_map_view(head, fn_node, src_view, dest, env, ctx)


def _gen_map_view(head: E.Map, fn_node: E.Expr, src_view: ArrV, dest: Dest, env, ctx: Ctx) -> None:
    assert isinstance(dest, DArr)
    kind = _loop_kind(head)
    if kind is LoopKind.UNROLLED and src_view.size.is_constant():
        for k in range(src_view.size.constant_value()):
            gen_apply_into(fn_node, src_view.at_const(k), dest.at(IConst(k)), env, ctx)
        return
    loop_var = ctx.fresh("i")
    ctx.push()
    gen_apply_into(fn_node, src_view.at(Var(loop_var)), dest.at(Var(loop_var)), env, ctx)
    body = ctx.pop()
    ctx.emit(For(loop_var, nat_expr(src_view.size), body, kind))


# -- vector strip loops ---------------------------------------------------


def _leaf_cells(dest: Dest) -> list[DCell]:
    if isinstance(dest, DCell):
        return [dest]
    if isinstance(dest, DPair):
        return _leaf_cells(dest.fst) + _leaf_cells(dest.snd)
    raise CodegenError("vector store into array-typed element")


def _leaf_exprs(view: View) -> list[IExpr]:
    if isinstance(view, ScalarV):
        return [view.expr]
    if isinstance(view, PairV):
        return _leaf_exprs(view.fst) + _leaf_exprs(view.snd)
    raise CodegenError("expected scalar/pair element value")


def _gen_map_vec(
    head: E.MapSeqVec, fn_node: E.Expr, src_node: E.Expr, dest: Dest, env, ctx: Ctx
) -> None:
    src_head, src_args = app_spine(src_node)
    width = head.width.constant_value()
    if isinstance(src_head, E.RotateValues) and len(src_args) == 1:
        _gen_rotate_consumer(head, fn_node, src_args[0], src_head, dest, env, ctx, vec_width=width)
        return
    if isinstance(src_head, E.CircularBuffer) and len(src_args) == 2:
        _gen_stream_consumer(head, fn_node, src_node, dest, env, ctx, vec_width=width)
        return

    src_view = _arr(ev(src_node, env, ctx))
    _gen_map_vec_view(head, fn_node, src_view, dest, env, ctx)


def _gen_map_vec_view(head: "E.MapSeqVec", fn_node: E.Expr, src_view: ArrV, dest: Dest, env, ctx: Ctx) -> None:
    width = head.width.constant_value()
    assert isinstance(dest, DArr)
    n = src_view.size
    try:
        _emit_vector_strips(
            fn_node, src_view, dest, n, width, env, ctx
        )
    except (VectorizeError, CodegenError) as err:
        ctx.vector_fallbacks.append(str(err))
        loop_var = ctx.fresh("i")
        ctx.push()
        gen_apply_into(fn_node, src_view.at(Var(loop_var)), dest.at(Var(loop_var)), env, ctx)
        body = ctx.pop()
        ctx.emit(For(loop_var, nat_expr(n), body, LoopKind.SEQ))


def _emit_vector_strips(fn_node, src_view: ArrV, dest: DArr, n: Nat, width: int, env, ctx: Ctx) -> None:
    xi = ctx.fresh("xi")
    # Evaluate the element computation symbolically at index xi, capturing
    # any statements (shared lets, unrolled reductions are pure).
    ctx.push()
    elem_view = src_view.at(Var(xi))
    fn_view = ev(fn_node, env, ctx) if not isinstance(fn_node, E.Lambda) else None
    if isinstance(fn_node, E.Lambda):
        inner = dict(env)
        inner[fn_node.param.name] = elem_view
        result = ev(fn_node.body, inner, ctx)
    else:
        result = fn_view(elem_view)
    scalar_block = ctx.pop()
    result_exprs = _leaf_exprs(result)
    cells = _leaf_cells(dest.at(Var(xi)))

    strip_var = ctx.fresh("vs")
    base = idx_mul(Var(strip_var), IConst(width))
    vec_stmts, vec_exprs = vectorize_stmts(
        scalar_block.stmts,
        result_exprs,
        xi,
        base,
        width,
        lambda rest: _nat_is_multiple(rest, width),
    )
    # vector stores: destination indices must be affine in xi with coeff 1
    from repro.codegen.vectorize import affine_coefficient

    stores = []
    for cell, value in zip(cells, vec_exprs):
        decomposed = affine_coefficient(cell.index, xi)
        if decomposed is None or decomposed[0] != 1:
            raise VectorizeError("non-unit-stride vector store")
        rest = decomposed[1]
        index = idx_add(base, rest)
        stores.append(
            VStore(cell.buffer, index, value, width, aligned=_nat_is_multiple(rest, width))
        )
    strips = n // nat(width)
    ctx.push()
    for s in vec_stmts:
        ctx.emit(s)
    for s in stores:
        ctx.emit(s)
    body = ctx.pop()
    ctx.emit(For(strip_var, nat_expr(strips), body, LoopKind.VEC))
    # scalar tail for n % width leftover elements
    tail = n % nat(width)
    if not (tail.is_constant() and tail.constant_value() == 0):
        tail_var = ctx.fresh("t")
        ctx.push()
        index = idx_add(idx_mul(nat_expr(strips), IConst(width)), Var(tail_var))
        gen_apply_into(fn_node, src_view.at(index), dest.at(index), env, ctx)
        tail_body = ctx.pop()
        ctx.emit(For(tail_var, nat_expr(tail), tail_body, LoopKind.SEQ))


# -- streaming: circular buffers -----------------------------------------


class _Stream:
    """Static streaming protocol: ``step`` emits per-iteration statements
    and returns the element view for a given index expression."""

    def __init__(self, size: Nat, step, prologue=None):
        self.size = size
        self._step = step
        self._prologue = prologue

    def emit_prologue(self, ctx: Ctx) -> None:
        if self._prologue is not None:
            self._prologue(ctx)

    def step(self, ctx: Ctx, index: IExpr) -> View:
        return self._step(ctx, index)


def _stream_of(node: E.Expr, env, ctx: Ctx) -> _Stream:
    head, args = app_spine(node)
    if isinstance(head, E.CircularBuffer) and len(args) == 2:
        return _cbuf_stream(head, args[0], args[1], node, env, ctx)
    view = _arr(ev(node, env, ctx))
    return _Stream(view.size, lambda _ctx, i: view.at(i))


def _cbuf_stream(
    head: E.CircularBuffer, load_node: E.Expr, src_node: E.Expr, node: E.Expr, env, ctx: Ctx
) -> _Stream:
    m = head.size.constant_value()
    out_type = ctx.data_type_of(node)  # [n][m]LineT
    assert isinstance(out_type, ArrayType) and isinstance(out_type.elem, ArrayType)
    out_size = out_type.size

    inner = _stream_of(src_node, env, ctx)
    plan = _CbufStorage(load_node, m, env, ctx)

    def prologue(c: Ctx) -> None:
        inner.emit_prologue(c)
        c.emit(Comment(f"circular buffer prologue: preload {m - 1} line(s)"))
        for r in range(m - 1):
            elem = inner.step(c, IConst(r))
            plan.fill(IConst(r), elem, c)

    def step(c: Ctx, i: IExpr) -> View:
        newest = idx_add(i, IConst(m - 1))
        elem = inner.step(c, newest)
        plan.fill(idx_mod(newest, IConst(m)), elem, c)
        return ArrV(
            nat(m),
            lambda r: plan.view_at(idx_mod(idx_add(i, r), IConst(m))),
        )

    return _Stream(out_size, step, prologue)


class _CbufStorage:
    """Line storage for one circular-buffer stage.

    The load function's result is analyzed structurally: pairs split into
    per-component storage and ``slide(sz, 1)`` wrappers are *stripped* —
    the underlying line is stored once and the windows are rebuilt as
    views at read time.  Without this, pre-windowed stage outputs would be
    materialized (tripling traffic) and read with stride 3, defeating the
    vectorizer.
    """

    def __init__(self, load_node: E.Expr, rows: int, env, ctx: Ctx):
        if not isinstance(load_node, E.Lambda):
            raise CodegenError("circularBuffer load must be a lambda")
        self.load = load_node
        self.env = dict(env)
        self.rows = rows
        self.tree = self._compress(load_node.body, ctx)

    # compress tree nodes:
    #   ("pair", left, right)
    #   ("slide", size Nat, step Nat, inner)
    #   ("let", name, value_expr, value_leaf-or-None, inner)
    #   ("alias", name)   — reads the storage of an enclosing let directly
    #   ("leaf", expr, dtype, buffers: dict[path -> name], stride: dict[path -> Nat])
    def _compress(self, body: E.Expr, ctx: Ctx, let_names: frozenset = frozenset()):
        if isinstance(body, E.Let):
            vtype = ctx.data_type_of(body.value)
            if isinstance(vtype, ArrayType):
                # Materialize the shared value once per buffered line; any
                # component that *is* the shared value aliases its storage
                # (this is what keeps e.g. the gray line computed and
                # stored exactly once even though three consumers view it).
                value_leaf = self._alloc_leaf(body.value, vtype, ctx)
                inner = self._compress(
                    body.body, ctx, let_names | {body.ident.name}
                )
                return ("let", body.ident.name, body.value, value_leaf, inner)
            # Scalar lets are handled by ordinary evaluation at fill time.
        if isinstance(body, E.Identifier) and body.name in let_names:
            return ("alias", body.name)
        head, args = app_spine(body)
        if (
            isinstance(head, E.Map)
            and len(args) == 2
            and isinstance(args[1], E.Identifier)
            and args[1].name in let_names
        ):
            path = _projection_path_of(args[0])
            if path is not None:
                return ("aliasproj", args[1].name, path)
        if isinstance(head, E.MakePair) and len(args) == 2:
            return (
                "pair",
                self._compress(args[0], ctx, let_names),
                self._compress(args[1], ctx, let_names),
            )
        if isinstance(head, E.Slide) and len(args) == 1 and head.step == nat(1):
            return (
                "slide",
                head.size,
                head.step,
                self._compress(args[0], ctx, let_names),
            )
        dtype = ctx.data_type_of(body)
        return ("leaf", body, dtype) + self._alloc_leaf(body, dtype, ctx)[3:]

    def _alloc_leaf(self, expr: E.Expr, dtype, ctx: Ctx):
        buffers = {}
        strides = {}
        for path in scalar_leaf_paths(dtype):
            stride = _total_leaf_size(dtype, path) + nat(BUFFER_PAD)
            strides[path] = stride
            buffers[path] = ctx.alloc("cbuf", stride * self.rows)
        return ("leaf", expr, dtype, buffers, strides)

    def fill(self, row: IExpr, elem: View, ctx: Ctx) -> None:
        inner_env = dict(self.env)
        inner_env[self.load.param.name] = elem
        self._fill_tree(self.tree, row, inner_env, ctx)

    def _fill_tree(self, tree, row: IExpr, env: dict, ctx: Ctx) -> None:
        if tree[0] == "pair":
            self._fill_tree(tree[1], row, env, ctx)
            self._fill_tree(tree[2], row, env, ctx)
        elif tree[0] == "slide":
            self._fill_tree(tree[3], row, env, ctx)
        elif tree[0] == "let":
            _tag, name, value_expr, value_leaf, inner = tree
            _lt, _e, dtype, buffers, strides = value_leaf
            offsets = {p: idx_mul(row, nat_expr(strides[p])) for p in buffers}
            gen_into(value_expr, dest_for_buffer(dtype, buffers, offsets), env, ctx)
            env = dict(env)
            env[name] = buffer_view(dtype, buffers, offsets)
            self._fill_tree(inner, row, env, ctx)
        elif tree[0] in ("alias", "aliasproj"):
            pass  # storage already written by the enclosing let
        else:
            _tag, expr, dtype, buffers, strides = tree
            offsets = {p: idx_mul(row, nat_expr(strides[p])) for p in buffers}
            gen_into(expr, dest_for_buffer(dtype, buffers, offsets), env, ctx)

    def view_at(self, row: IExpr) -> View:
        lets: dict[str, View] = {}

        def go(tree) -> View:
            if tree[0] == "pair":
                return PairV(go(tree[1]), go(tree[2]))
            if tree[0] == "aliasproj":
                _tag, name, path = tree
                base = _arr(lets[name])
                return ArrV(
                    base.size,
                    lambda i: _project_path(base.at(i), path),
                )
            if tree[0] == "slide":
                size = tree[1]
                arr = _arr(go(tree[3]))
                win_count = (arr.size - size) + 1
                return ArrV(
                    win_count,
                    lambda i: ArrV(size, lambda j: arr.at(idx_add(i, j))),
                )
            if tree[0] == "let":
                _tag, name, _value_expr, value_leaf, inner = tree
                _lt, _e, dtype, buffers, strides = value_leaf
                offsets = {
                    p: idx_mul(row, nat_expr(strides[p])) for p in buffers
                }
                lets[name] = buffer_view(dtype, buffers, offsets)
                return go(inner)
            if tree[0] == "alias":
                return lets[tree[1]]
            _tag, expr, dtype, buffers, strides = tree
            offsets = {p: idx_mul(row, nat_expr(strides[p])) for p in buffers}
            return buffer_view(dtype, buffers, offsets)

        return go(self.tree)


def _projection_path_of(f: E.Expr):
    """fst / snd / fun p. fst(snd(...(p))) -> component path, else None."""
    if isinstance(f, E.Fst):
        return (0,)
    if isinstance(f, E.Snd):
        return (1,)
    if isinstance(f, E.Lambda):
        path = []
        body = f.body
        while isinstance(body, E.App):
            if isinstance(body.fun, E.Fst):
                path.append(0)
            elif isinstance(body.fun, E.Snd):
                path.append(1)
            else:
                return None
            body = body.arg
        if isinstance(body, E.Identifier) and body.name == f.param.name:
            return tuple(reversed(path))
    return None


def _project_path(view: View, path) -> View:
    for step in path:
        view = _fst(view) if step == 0 else _snd(view)
    return view


def _gen_stream_consumer(
    head: E.Map, fn_node: E.Expr, src_node: E.Expr, dest: Dest, env, ctx: Ctx, vec_width
) -> None:
    stream = _stream_of(src_node, env, ctx)
    assert isinstance(dest, DArr)
    stream.emit_prologue(ctx)
    loop_var = ctx.fresh("line")
    ctx.push()
    window = stream.step(ctx, Var(loop_var))
    gen_apply_into(fn_node, window, dest.at(Var(loop_var)), env, ctx)
    body = ctx.pop()
    ctx.emit(For(loop_var, nat_expr(stream.size), body, LoopKind.SEQ))


# -- streaming: rotating registers ----------------------------------------


def _gen_rotate_consumer(
    head: E.Map,
    fn_node: E.Expr,
    values_node: E.Expr,
    rotate: E.RotateValues,
    dest: Dest,
    env,
    ctx: Ctx,
    vec_width,
) -> None:
    m = rotate.size.constant_value()
    assert isinstance(dest, DArr)
    n = dest.size

    # Fallback path: treat rotateValues as a plain sliding-window view.
    def fallback(reason: str) -> None:
        ctx.vector_fallbacks.append(f"rotate fallback: {reason}")
        values_view = _arr(ev(values_node, env, ctx))
        window_view = ArrV(
            n, lambda i: ArrV(nat(m), lambda j: values_view.at(idx_add(i, j)))
        )
        loop_var = ctx.fresh("i")
        ctx.push()
        gen_apply_into(fn_node, window_view.at(Var(loop_var)), dest.at(Var(loop_var)), env, ctx)
        body = ctx.pop()
        ctx.emit(For(loop_var, nat_expr(n), body, LoopKind.SEQ))

    values_view = _arr(ev(values_node, env, ctx))
    elem_type_leaves = None
    try:
        probe = values_view.at_const(0)
        leaf_count = len(_leaf_exprs(probe))
    except CodegenError as err:
        fallback(str(err))
        return

    if vec_width is None:
        _rotate_scalar(fn_node, values_view, m, leaf_count, dest, n, env, ctx, fallback)
    else:
        _rotate_vector(
            fn_node, values_view, m, leaf_count, dest, n, vec_width, env, ctx, fallback
        )


def _shape_of_leaves(view: View, exprs: list[IExpr]) -> View:
    """Rebuild a view with the same pair shape but given leaf expressions."""
    it = iter(exprs)

    def go(v: View) -> View:
        if isinstance(v, ScalarV):
            return ScalarV(next(it))
        if isinstance(v, PairV):
            return PairV(go(v.fst), go(v.snd))
        raise CodegenError("unexpected shape")

    return go(view)


def _rotate_scalar(fn_node, values_view: ArrV, m, leaf_count, dest, n, env, ctx, fallback) -> None:
    regs = [[ctx.fresh(f"rot{r}_") for _ in range(leaf_count)] for r in range(m)]
    for r in range(m):
        for name in regs[r]:
            ctx.emit(DeclScalar(name, FConst(0.0)))
    ctx.emit(Comment(f"register rotation: window {m} over computed values"))
    for r in range(m - 1):
        leaves = _leaf_exprs(values_view.at_const(r))
        for name, value in zip(regs[r], leaves):
            ctx.emit(Assign(name, value))
    loop_var = ctx.fresh("i")
    ctx.push()
    newest = _leaf_exprs(values_view.at(idx_add(Var(loop_var), IConst(m - 1))))
    for name, value in zip(regs[m - 1], newest):
        ctx.emit(Assign(name, value))
    shape_probe = values_view.at_const(0)
    window = ArrV(
        nat(m),
        lambda r: _reg_window(shape_probe, regs, r),
    )
    gen_apply_into(fn_node, window, dest.at(Var(loop_var)), env, ctx)
    for r in range(m - 1):
        for dst, src in zip(regs[r], regs[r + 1]):
            ctx.emit(Assign(dst, Var(src)))
    body = ctx.pop()
    ctx.emit(For(loop_var, nat_expr(n), body, LoopKind.SEQ))


def _reg_window(shape_probe: View, regs, r: IExpr | int) -> View:
    if isinstance(r, IConst):
        r = r.value
    if not isinstance(r, int):
        raise CodegenError("rotating registers accessed at non-constant index")
    return _shape_of_leaves(shape_probe, [Var(name) for name in regs[r]])


def _rotate_vector(
    fn_node, values_view: ArrV, m, leaf_count, dest, n, width, env, ctx, fallback
) -> None:
    """Vectorized register rotation: aligned chunks A/B per leaf, window
    elements as shuffles of (A, B) — fig. 6 'cbuf+rot' and fig. 7."""
    xi = ctx.fresh("xi")

    def chunk_exprs(base: IExpr, c: Ctx) -> list[IExpr]:
        c.push()
        leaves = _leaf_exprs(values_view.at(Var(xi)))
        scalar_block = c.pop()
        vec_stmts, vec_exprs = vectorize_stmts(
            scalar_block.stmts,
            leaves,
            xi,
            base,
            width,
            lambda rest: _nat_is_multiple(rest, width),
        )
        for s in vec_stmts:
            c.emit(s)
        return vec_exprs

    try:
        reg_a = [ctx.fresh("rotA_") for _ in range(leaf_count)]
        reg_b = [ctx.fresh("rotB_") for _ in range(leaf_count)]
        for name in reg_a + reg_b:
            ctx.emit(DeclVec(name, width, Broadcast(FConst(0.0), width)))
        init = chunk_exprs(IConst(0), ctx)
        for name, value in zip(reg_a, init):
            ctx.emit(Assign(name, value))

        strips = n // nat(width)
        strip_var = ctx.fresh("vs")
        ctx.push()
        base_next = idx_mul(idx_add(Var(strip_var), IConst(1)), IConst(width))
        nxt = chunk_exprs(base_next, ctx)
        for name, value in zip(reg_b, nxt):
            ctx.emit(Assign(name, value))

        shape_probe = values_view.at_const(0)

        def window_at(r) -> View:
            if isinstance(r, IConst):
                r = r.value
            if not isinstance(r, int):
                raise CodegenError("vector rotation window needs constant offsets")
            leaves = [
                VShuffle(Var(a), Var(b), r, width)
                for a, b in zip(reg_a, reg_b)
            ]
            return _shape_of_leaves(shape_probe, leaves)

        window = ArrV(nat(m), window_at)
        result = _apply_fn_view(fn_node, window, env, ctx)
        cells = _leaf_cells(dest.at(Var(xi)))
        from repro.codegen.vectorize import affine_coefficient

        base = idx_mul(Var(strip_var), IConst(width))
        for cell, value in zip(cells, _leaf_exprs(result)):
            decomposed = affine_coefficient(cell.index, xi)
            if decomposed is None or decomposed[0] != 1:
                raise VectorizeError("non-unit-stride store in rotation")
            rest = decomposed[1]
            ctx.emit(
                VStore(
                    cell.buffer,
                    idx_add(base, rest),
                    value,
                    width,
                    aligned=_nat_is_multiple(rest, width),
                )
            )
        for a, b in zip(reg_a, reg_b):
            ctx.emit(Assign(a, Var(b)))
        body = ctx.pop()
        ctx.emit(For(strip_var, nat_expr(strips), body, LoopKind.VEC))

        # scalar tail
        tail = n % nat(width)
        if not (tail.is_constant() and tail.constant_value() == 0):
            tail_var = ctx.fresh("t")
            ctx.push()
            index = idx_add(idx_mul(nat_expr(strips), IConst(width)), Var(tail_var))
            window_view = ArrV(
                nat(m), lambda j: values_view.at(idx_add(index, j))
            )
            gen_apply_into(fn_node, window_view, dest.at(index), env, ctx)
            tail_body = ctx.pop()
            ctx.emit(For(tail_var, nat_expr(tail), tail_body, LoopKind.SEQ))
    except (VectorizeError, CodegenError) as err:
        fallback(str(err))


def _apply_fn_view(fn_node: E.Expr, arg: View, env, ctx: Ctx) -> View:
    if isinstance(fn_node, E.Lambda):
        inner = dict(env)
        inner[fn_node.param.name] = arg
        return ev(fn_node.body, inner, ctx)
    fn_view = ev(fn_node, env, ctx)
    assert isinstance(fn_view, FunV)
    return fn_view(arg)


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------


def compile_program(
    program: E.Expr,
    type_env: Mapping[str, Type],
    name: str = "kernel",
) -> ImpProgram:
    """Compile a low-level RISE program to an imperative program.

    Free identifiers become input buffers (per scalar leaf); the program's
    result becomes the output buffer.  Sizes stay symbolic.

    When :func:`repro.observe.profiling` is active, each compile records a
    per-phase profile (``typecheck``, ``lower`` with nested ``vectorize``,
    ``fold``, ``cse``) with wall times and node-count deltas under the
    program's name.
    """
    from repro.observe.profile import compile_profile, phase
    from repro.rise.traverse import count_nodes as count_rise_nodes
    from repro.codegen.ir import count_ir_nodes

    with compile_profile(name) as profile:
        if profile is not None:
            profile.meta["rise_nodes"] = count_rise_nodes(program)

        with phase("typecheck"):
            typing = infer_types(program, type_env, strict=False)
        ctx = Ctx(typing)

        with phase("lower") as lower_meta:
            env: dict[str, View] = {}
            inputs: list[Buffer] = []
            for ident, itype in type_env.items():
                if not isinstance(itype, DataType):
                    raise CodegenError(f"input {ident} must have a data type")
                paths = scalar_leaf_paths(itype)
                buffers = {}
                offsets = {}
                for p in paths:
                    suffix = "" if p == () else "_" + "".join(map(str, p))
                    bname = f"{ident}{suffix}"
                    size = _total_leaf_size(itype, p)
                    inputs.append(Buffer(bname, size, pad=BUFFER_PAD))
                    buffers[p] = bname
                    offsets[p] = IConst(0)
                env[ident] = buffer_view(itype, buffers, offsets)

            out_type = typing.root_type
            if not isinstance(out_type, DataType):
                raise CodegenError(f"program result must be data, got {out_type!r}")
            out_paths = scalar_leaf_paths(out_type)
            if out_paths != [()]:
                raise CodegenError("pair-typed outputs are not supported at top level")
            out_buffer = Buffer("out", _total_leaf_size(out_type, ()), pad=BUFFER_PAD)
            out_dest = dest_for_buffer(out_type, {(): "out"}, {(): IConst(0)})

            gen_into(program, out_dest, env, ctx)
            body = Block(ctx._blocks[0])

            size_vars: set[str] = set()
            for t in list(type_env.values()) + [out_type]:
                size_vars |= t.free_nat_vars()

            function = ImpFunction(
                name=name,
                inputs=inputs,
                output=out_buffer,
                size_vars=sorted(size_vars),
                body=body,
                temporaries=list(ctx.all_buffers),
            )
            program_out = ImpProgram(
                name=name, functions=[function], size_vars=sorted(size_vars)
            )
            program_out.vector_fallbacks = ctx.vector_fallbacks  # type: ignore[attr-defined]
            program_out.size_constraints = typing.pending_sizes  # type: ignore[attr-defined]
            if profile is not None:
                lower_meta["ir_nodes"] = count_ir_nodes(program_out)

        from repro.codegen.opt import cse_program, fold_program

        return cse_program(fold_program(program_out))
