"""The ELEVATE strategy language (paper section II-C).

A *strategy* is a function from a RISE expression to a rewrite result: it
either succeeds with a transformed expression or fails.  Strategies compose:

* ``seq(s, t)``      — ``s ; t``   : perform ``t`` on the result of ``s``
* ``lchoice(s, t)``  — ``s <+ t``  : perform ``t`` if ``s`` fails
* ``try_(s)``        — do nothing when ``s`` fails
* ``repeat(s)``      — apply ``s`` until it fails

Operator sugar: ``s >> t`` is ``seq``, ``s | t`` is left choice.

Traversals control *where* a strategy applies:

* ``one(s)``      — first child where ``s`` succeeds
* ``all_(s)``     — every child (fails if any child fails)
* ``some(s)``     — every child where it succeeds (at least one)
* ``top_down(s)`` — depth-first, first location that succeeds (the paper's
  ``applyOnce``)
* ``bottom_up(s)``— innermost location first
* ``normalize(s)``— apply everywhere repeatedly until no location remains
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.rise.expr import Expr
from repro.rise.traverse import children, rebuild

__all__ = [
    "RewriteResult",
    "Success",
    "Failure",
    "Strategy",
    "rule",
    "id_",
    "fail",
    "seq",
    "lchoice",
    "try_",
    "repeat",
    "one",
    "all_",
    "some",
    "top_down",
    "bottom_up",
    "all_top_down",
    "normalize",
    "apply_once",
    "body",
    "function",
    "argument",
    "RewriteTrace",
    "StrategyError",
]

_MAX_REPEAT = 100_000


class StrategyError(Exception):
    """Raised when a strategy that must succeed fails, or on runaway rewriting."""


@dataclass(frozen=True)
class RewriteResult:
    pass


@dataclass(frozen=True)
class Success(RewriteResult):
    expr: Expr


@dataclass(frozen=True)
class Failure(RewriteResult):
    strategy: "Strategy"
    reason: str = ""


class Strategy:
    """A named rewrite strategy: ``Expr -> Success | Failure``."""

    def __init__(self, fn: Callable[[Expr], RewriteResult], name: str):
        self._fn = fn
        self.name = name

    def __call__(self, expr: Expr) -> RewriteResult:
        return self._fn(expr)

    def apply(self, expr: Expr) -> Expr:
        """Apply, raising :class:`StrategyError` on failure."""
        result = self(expr)
        if isinstance(result, Success):
            return result.expr
        assert isinstance(result, Failure)
        raise StrategyError(
            f"strategy {self.name!r} failed"
            + (f" ({result.reason})" if result.reason else "")
        )

    # -- combinator sugar ------------------------------------------------

    def __rshift__(self, other: "Strategy") -> "Strategy":
        return seq(self, other)

    def __or__(self, other: "Strategy") -> "Strategy":
        return lchoice(self, other)

    def __repr__(self) -> str:
        return f"<strategy {self.name}>"


def rule(name: str):
    """Decorator turning ``Expr -> Expr | None`` into a rewrite-rule strategy."""

    def decorator(fn: Callable[[Expr], Optional[Expr]]) -> Strategy:
        def run(expr: Expr) -> RewriteResult:
            out = fn(expr)
            if out is None:
                return Failure(strategy, "pattern did not match")
            return Success(out)

        strategy = Strategy(run, name)
        return strategy

    return decorator


# ---------------------------------------------------------------------------
# Basic combinators
# ---------------------------------------------------------------------------

id_ = Strategy(lambda e: Success(e), "id")
fail = Strategy(lambda e: Failure(fail, "fail"), "fail")


def seq(first: Strategy, second: Strategy) -> Strategy:
    def run(expr: Expr) -> RewriteResult:
        result = first(expr)
        if isinstance(result, Failure):
            return result
        return second(result.expr)

    return Strategy(run, f"({first.name} ; {second.name})")


def lchoice(first: Strategy, second: Strategy) -> Strategy:
    def run(expr: Expr) -> RewriteResult:
        result = first(expr)
        if isinstance(result, Success):
            return result
        return second(expr)

    return Strategy(run, f"({first.name} <+ {second.name})")


def try_(strategy: Strategy) -> Strategy:
    return Strategy(
        lambda e: lchoice(strategy, id_)(e),
        f"try({strategy.name})",
    )


def repeat(strategy: Strategy) -> Strategy:
    def run(expr: Expr) -> RewriteResult:
        for _ in range(_MAX_REPEAT):
            result = strategy(expr)
            if isinstance(result, Failure):
                return Success(expr)
            if result.expr is expr:
                # Strategy succeeded without changing the term; stop rather
                # than loop forever.
                return Success(expr)
            expr = result.expr
        raise StrategyError(f"repeat({strategy.name}) exceeded {_MAX_REPEAT} steps")

    return Strategy(run, f"repeat({strategy.name})")


# ---------------------------------------------------------------------------
# Traversals
# ---------------------------------------------------------------------------


def one(strategy: Strategy) -> Strategy:
    """Apply to exactly one child — the first where the strategy succeeds."""

    def run(expr: Expr) -> RewriteResult:
        kids = children(expr)
        for index, kid in enumerate(kids):
            result = strategy(kid)
            if isinstance(result, Success):
                new_kids = list(kids)
                new_kids[index] = result.expr
                return Success(rebuild(expr, new_kids))
        return Failure(wrapper, "no child matched")

    wrapper = Strategy(run, f"one({strategy.name})")
    return wrapper


def all_(strategy: Strategy) -> Strategy:
    """Apply to all children; fail if it fails on any child."""

    def run(expr: Expr) -> RewriteResult:
        kids = children(expr)
        new_kids: list[Expr] = []
        for kid in kids:
            result = strategy(kid)
            if isinstance(result, Failure):
                return Failure(wrapper, "a child failed")
            new_kids.append(result.expr)
        return Success(rebuild(expr, new_kids))

    wrapper = Strategy(run, f"all({strategy.name})")
    return wrapper


def some(strategy: Strategy) -> Strategy:
    """Apply to every child where it succeeds; fail if none succeeds."""

    def run(expr: Expr) -> RewriteResult:
        kids = children(expr)
        new_kids: list[Expr] = []
        succeeded = False
        for kid in kids:
            result = strategy(kid)
            if isinstance(result, Success):
                succeeded = True
                new_kids.append(result.expr)
            else:
                new_kids.append(kid)
        if not succeeded:
            return Failure(wrapper, "no child matched")
        return Success(rebuild(expr, new_kids))

    wrapper = Strategy(run, f"some({strategy.name})")
    return wrapper


def top_down(strategy: Strategy) -> Strategy:
    """Depth-first top-down; rewrite the first location that matches."""

    def run(expr: Expr) -> RewriteResult:
        result = strategy(expr)
        if isinstance(result, Success):
            return result
        return one(wrapper)(expr)

    wrapper = Strategy(run, f"topDown({strategy.name})")
    return wrapper


def bottom_up(strategy: Strategy) -> Strategy:
    """Innermost-first; rewrite the first location that matches."""

    def run(expr: Expr) -> RewriteResult:
        result = one(wrapper)(expr)
        if isinstance(result, Success):
            return result
        return strategy(expr)

    wrapper = Strategy(run, f"bottomUp({strategy.name})")
    return wrapper


def all_top_down(strategy: Strategy) -> Strategy:
    """Try the strategy at every node in one pass (pre-order), keeping going
    whether or not it succeeds; succeeds always."""

    def run(expr: Expr) -> RewriteResult:
        result = strategy(expr)
        current = result.expr if isinstance(result, Success) else expr
        kids = children(current)
        if kids:
            new_kids = []
            for kid in kids:
                kid_result = run(kid)
                assert isinstance(kid_result, Success)
                new_kids.append(kid_result.expr)
            current = rebuild(current, new_kids)
        return Success(current)

    wrapper = Strategy(run, f"allTopDown({strategy.name})")
    return wrapper


def normalize(strategy: Strategy) -> Strategy:
    """Apply everywhere, repeatedly, until no location matches (paper §II-C:
    after ``normalize(s)`` the strategy ``s`` applies nowhere)."""
    return Strategy(
        lambda e: repeat(top_down(strategy))(e),
        f"normalize({strategy.name})",
    )


def apply_once(strategy: Strategy) -> Strategy:
    """The paper's ``applyOnce``: depth-first top-down, first location."""
    wrapped = top_down(strategy)
    return Strategy(wrapped, f"applyOnce({strategy.name})")


# -- position-restricted traversals ------------------------------------


def body(strategy: Strategy) -> Strategy:
    """Apply inside a lambda body."""
    from repro.rise.expr import Lambda

    def run(expr: Expr) -> RewriteResult:
        if not isinstance(expr, Lambda):
            return Failure(wrapper, "not a lambda")
        result = strategy(expr.body)
        if isinstance(result, Failure):
            return result
        return Success(Lambda(expr.param, result.expr))

    wrapper = Strategy(run, f"body({strategy.name})")
    return wrapper


def function(strategy: Strategy) -> Strategy:
    """Apply to the function position of an application."""
    from repro.rise.expr import App

    def run(expr: Expr) -> RewriteResult:
        if not isinstance(expr, App):
            return Failure(wrapper, "not an application")
        result = strategy(expr.fun)
        if isinstance(result, Failure):
            return result
        return Success(App(result.expr, expr.arg))

    wrapper = Strategy(run, f"function({strategy.name})")
    return wrapper


def argument(strategy: Strategy) -> Strategy:
    """Apply to the argument position of an application."""
    from repro.rise.expr import App

    def run(expr: Expr) -> RewriteResult:
        if not isinstance(expr, App):
            return Failure(wrapper, "not an application")
        result = strategy(expr.arg)
        if isinstance(result, Failure):
            return result
        return Success(App(expr.fun, result.expr))

    wrapper = Strategy(run, f"argument({strategy.name})")
    return wrapper


class RewriteTrace:
    """Records each successful top-level strategy application, for debugging
    and for the examples that show the derivation steps."""

    def __init__(self) -> None:
        self.steps: list[tuple[str, Expr, Expr]] = []

    def wrap(self, strategy: Strategy) -> Strategy:
        def run(expr: Expr) -> RewriteResult:
            result = strategy(expr)
            if isinstance(result, Success) and result.expr is not expr:
                self.steps.append((strategy.name, expr, result.expr))
            return result

        return Strategy(run, strategy.name)
