"""The ELEVATE strategy language (paper section II-C).

A *strategy* is a function from a RISE expression to a rewrite result: it
either succeeds with a transformed expression or fails.  Strategies compose:

* ``seq(s, t)``      — ``s ; t``   : perform ``t`` on the result of ``s``
* ``lchoice(s, t)``  — ``s <+ t``  : perform ``t`` if ``s`` fails
* ``try_(s)``        — do nothing when ``s`` fails
* ``repeat(s)``      — apply ``s`` until it fails

Operator sugar: ``s >> t`` is ``seq``, ``s | t`` is left choice.

Traversals control *where* a strategy applies:

* ``one(s)``      — first child where ``s`` succeeds
* ``all_(s)``     — every child (fails if any child fails)
* ``some(s)``     — every child where it succeeds (at least one)
* ``top_down(s)`` — depth-first, first location that succeeds (the paper's
  ``applyOnce``)
* ``bottom_up(s)``— innermost location first
* ``normalize(s)``— apply everywhere repeatedly until no location remains
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.rise.expr import Expr
from repro.rise.traverse import children, count_nodes, rebuild
from repro.observe.trace import _TRACE

__all__ = [
    "RewriteResult",
    "Success",
    "Failure",
    "Strategy",
    "rule",
    "id_",
    "fail",
    "seq",
    "lchoice",
    "try_",
    "repeat",
    "one",
    "all_",
    "some",
    "top_down",
    "bottom_up",
    "all_top_down",
    "normalize",
    "apply_once",
    "body",
    "function",
    "argument",
    "RewriteTrace",
    "StrategyError",
]

_MAX_REPEAT = 100_000


class StrategyError(Exception):
    """Raised when a strategy that must succeed fails, or on runaway rewriting."""


@dataclass(frozen=True)
class RewriteResult:
    """Base class of rewrite outcomes (:class:`Success` / :class:`Failure`)."""


@dataclass(frozen=True)
class Success(RewriteResult):
    """A successful rewrite carrying the transformed expression."""

    expr: Expr


@dataclass(frozen=True)
class Failure(RewriteResult):
    """A failed rewrite: which strategy failed, why, and — when the
    failure was produced by a combinator — the inner :attr:`cause` it
    wraps, forming a chain down to the rule that did not match."""

    strategy: "Strategy"
    reason: str = ""
    cause: Optional["Failure"] = None

    def chain(self) -> list["Failure"]:
        """The failure and all its transitive causes, outermost first."""
        out: list[Failure] = []
        node: Optional[Failure] = self
        while node is not None:
            out.append(node)
            node = node.cause
        return out

    def deepest(self) -> "Failure":
        """The innermost failure — the actual point where rewriting
        stopped (e.g. the rule whose pattern did not match)."""
        return self.chain()[-1]

    def reason_chain(self) -> str:
        """A readable ``outer <- ... <- inner`` summary of the failure."""
        parts = [
            f"{f.strategy.name}: {f.reason}" for f in self.chain() if f.reason
        ]
        return " <- ".join(parts)


class Strategy:
    """A named rewrite strategy: ``Expr -> Success | Failure``.

    ``kind`` distinguishes leaf rewrite rules (``"rule"``, produced by the
    :func:`rule` decorator) from compositions (``"strategy"``): tracing
    records an event per rule attempt but only aggregate counters for
    combinators.
    """

    def __init__(
        self, fn: Callable[[Expr], RewriteResult], name: str, kind: str = "strategy"
    ):
        self._fn = fn
        self.name = name
        self.kind = kind

    def __call__(self, expr: Expr) -> RewriteResult:
        """Run the strategy; reports into the active trace collector (one
        context-variable read of overhead when tracing is off)."""
        collector = _TRACE.get()
        if collector is None:
            return self._fn(expr)
        start = time.perf_counter()
        result = self._fn(expr)
        wall_ms = (time.perf_counter() - start) * 1e3
        succeeded = isinstance(result, Success)
        before = after = None
        reason = ""
        if self.kind == "rule":
            if succeeded:
                before = count_nodes(expr)
                after = count_nodes(result.expr)
            else:
                assert isinstance(result, Failure)
                reason = result.reason
        collector.record_call(
            self.name, self.kind, succeeded, reason, wall_ms, before, after
        )
        return result

    def apply(self, expr: Expr) -> Expr:
        """Apply, raising :class:`StrategyError` on failure; the error
        message surfaces the deepest failure reason in the cause chain."""
        result = self(expr)
        if isinstance(result, Success):
            return result.expr
        assert isinstance(result, Failure)
        deepest = result.deepest()
        if deepest.reason:
            if deepest is result:
                detail = f" ({deepest.reason})"
            else:
                detail = f" ({deepest.strategy.name}: {deepest.reason})"
        else:
            detail = ""
        raise StrategyError(f"strategy {self.name!r} failed{detail}")

    # -- combinator sugar ------------------------------------------------

    def __rshift__(self, other: "Strategy") -> "Strategy":
        return seq(self, other)

    def __or__(self, other: "Strategy") -> "Strategy":
        return lchoice(self, other)

    def __repr__(self) -> str:
        return f"<strategy {self.name}>"


def rule(name: str):
    """Decorator turning ``Expr -> Expr | None`` into a rewrite-rule strategy."""

    def decorator(fn: Callable[[Expr], Optional[Expr]]) -> Strategy:
        def run(expr: Expr) -> RewriteResult:
            out = fn(expr)
            if out is None:
                return Failure(strategy, "pattern did not match")
            return Success(out)

        strategy = Strategy(run, name, kind="rule")
        return strategy

    return decorator


def _at(strategy: Strategy, child: Expr, step) -> RewriteResult:
    """Apply ``strategy`` to a child expression, pushing the traversal
    ``step`` (child index, or ``"body"``/``"fun"``/``"arg"``) onto the
    active trace collector's path so rule events report *where* in the
    expression they fired.  A plain call when tracing is off."""
    collector = _TRACE.get()
    if collector is None:
        return strategy(child)
    collector.push(step)
    try:
        return strategy(child)
    finally:
        collector.pop()


# ---------------------------------------------------------------------------
# Basic combinators
# ---------------------------------------------------------------------------

id_ = Strategy(lambda e: Success(e), "id")
fail = Strategy(lambda e: Failure(fail, "fail"), "fail")


def seq(first: Strategy, second: Strategy) -> Strategy:
    """``first ; second``: run ``second`` on the result of ``first``; fail
    if either fails, keeping the failing step as the failure's cause."""

    def run(expr: Expr) -> RewriteResult:
        result = first(expr)
        if isinstance(result, Failure):
            return Failure(wrapper, "first step failed", cause=result)
        inner = second(result.expr)
        if isinstance(inner, Failure):
            return Failure(wrapper, "second step failed", cause=inner)
        return inner

    wrapper = Strategy(run, f"({first.name} ; {second.name})")
    return wrapper


def lchoice(first: Strategy, second: Strategy) -> Strategy:
    """``first <+ second``: left-biased choice — try ``first``, fall back
    to ``second`` on the original expression when it fails."""

    def run(expr: Expr) -> RewriteResult:
        result = first(expr)
        if isinstance(result, Success):
            return result
        return second(expr)

    return Strategy(run, f"({first.name} <+ {second.name})")


def try_(strategy: Strategy) -> Strategy:
    """Apply the strategy but succeed unchanged when it fails."""
    return Strategy(
        lambda e: lchoice(strategy, id_)(e),
        f"try({strategy.name})",
    )


def repeat(strategy: Strategy) -> Strategy:
    """Apply the strategy until it fails (or stops changing the term);
    reports the iteration count to the active trace collector and raises
    :class:`StrategyError` after ``_MAX_REPEAT`` runaway steps."""

    def run(expr: Expr) -> RewriteResult:
        iterations = 0
        for iterations in range(_MAX_REPEAT):
            result = strategy(expr)
            if isinstance(result, Failure):
                _note_iterations(wrapper.name, iterations)
                return Success(expr)
            if result.expr is expr:
                # Strategy succeeded without changing the term; stop rather
                # than loop forever.
                _note_iterations(wrapper.name, iterations)
                return Success(expr)
            expr = result.expr
        _note_iterations(wrapper.name, _MAX_REPEAT)
        raise StrategyError(f"repeat({strategy.name}) exceeded {_MAX_REPEAT} steps")

    wrapper = Strategy(run, f"repeat({strategy.name})")
    return wrapper


def _note_iterations(name: str, n: int) -> None:
    """Report a completed ``repeat`` iteration count to the active trace
    collector (no-op when tracing is off)."""
    collector = _TRACE.get()
    if collector is not None:
        collector.note_iterations(name, n)


# ---------------------------------------------------------------------------
# Traversals
# ---------------------------------------------------------------------------


def one(strategy: Strategy) -> Strategy:
    """Apply to exactly one child — the first where the strategy succeeds."""

    def run(expr: Expr) -> RewriteResult:
        kids = children(expr)
        last_failure: Optional[Failure] = None
        for index, kid in enumerate(kids):
            result = _at(strategy, kid, index)
            if isinstance(result, Success):
                new_kids = list(kids)
                new_kids[index] = result.expr
                return Success(rebuild(expr, new_kids))
            last_failure = result
        return Failure(wrapper, "no child matched", cause=last_failure)

    wrapper = Strategy(run, f"one({strategy.name})")
    return wrapper


def all_(strategy: Strategy) -> Strategy:
    """Apply to all children; fail if it fails on any child."""

    def run(expr: Expr) -> RewriteResult:
        kids = children(expr)
        new_kids: list[Expr] = []
        for index, kid in enumerate(kids):
            result = _at(strategy, kid, index)
            if isinstance(result, Failure):
                return Failure(wrapper, f"child {index} failed", cause=result)
            new_kids.append(result.expr)
        return Success(rebuild(expr, new_kids))

    wrapper = Strategy(run, f"all({strategy.name})")
    return wrapper


def some(strategy: Strategy) -> Strategy:
    """Apply to every child where it succeeds; fail if none succeeds."""

    def run(expr: Expr) -> RewriteResult:
        kids = children(expr)
        new_kids: list[Expr] = []
        succeeded = False
        last_failure: Optional[Failure] = None
        for index, kid in enumerate(kids):
            result = _at(strategy, kid, index)
            if isinstance(result, Success):
                succeeded = True
                new_kids.append(result.expr)
            else:
                last_failure = result
                new_kids.append(kid)
        if not succeeded:
            return Failure(wrapper, "no child matched", cause=last_failure)
        return Success(rebuild(expr, new_kids))

    wrapper = Strategy(run, f"some({strategy.name})")
    return wrapper


def top_down(strategy: Strategy) -> Strategy:
    """Depth-first top-down; rewrite the first location that matches."""

    def run(expr: Expr) -> RewriteResult:
        result = strategy(expr)
        if isinstance(result, Success):
            return result
        inner = one(wrapper)(expr)
        if isinstance(inner, Failure):
            # keep the strategy's own failure (e.g. the rule's "pattern did
            # not match") as the cause: it is the informative reason, not
            # the traversal's "no child matched"
            return Failure(wrapper, "no location matched", cause=result)
        return inner

    wrapper = Strategy(run, f"topDown({strategy.name})")
    return wrapper


def bottom_up(strategy: Strategy) -> Strategy:
    """Innermost-first; rewrite the first location that matches."""

    def run(expr: Expr) -> RewriteResult:
        result = one(wrapper)(expr)
        if isinstance(result, Success):
            return result
        return strategy(expr)

    wrapper = Strategy(run, f"bottomUp({strategy.name})")
    return wrapper


def all_top_down(strategy: Strategy) -> Strategy:
    """Try the strategy at every node in one pass (pre-order), keeping going
    whether or not it succeeds; succeeds always."""

    def run(expr: Expr) -> RewriteResult:
        result = strategy(expr)
        current = result.expr if isinstance(result, Success) else expr
        kids = children(current)
        if kids:
            new_kids = []
            for index, kid in enumerate(kids):
                kid_result = _at(run, kid, index)
                assert isinstance(kid_result, Success)
                new_kids.append(kid_result.expr)
            current = rebuild(current, new_kids)
        return Success(current)

    wrapper = Strategy(run, f"allTopDown({strategy.name})")
    return wrapper


def normalize(strategy: Strategy) -> Strategy:
    """Apply everywhere, repeatedly, until no location matches (paper §II-C:
    after ``normalize(s)`` the strategy ``s`` applies nowhere)."""
    inner = repeat(top_down(strategy))
    return Strategy(inner, f"normalize({strategy.name})")


def apply_once(strategy: Strategy) -> Strategy:
    """The paper's ``applyOnce``: depth-first top-down, first location."""
    wrapped = top_down(strategy)
    return Strategy(wrapped, f"applyOnce({strategy.name})")


# -- position-restricted traversals ------------------------------------


def body(strategy: Strategy) -> Strategy:
    """Apply inside a lambda body."""
    from repro.rise.expr import Lambda

    def run(expr: Expr) -> RewriteResult:
        if not isinstance(expr, Lambda):
            return Failure(wrapper, "not a lambda")
        result = _at(strategy, expr.body, "body")
        if isinstance(result, Failure):
            return result
        return Success(Lambda(expr.param, result.expr))

    wrapper = Strategy(run, f"body({strategy.name})")
    return wrapper


def function(strategy: Strategy) -> Strategy:
    """Apply to the function position of an application."""
    from repro.rise.expr import App

    def run(expr: Expr) -> RewriteResult:
        if not isinstance(expr, App):
            return Failure(wrapper, "not an application")
        result = _at(strategy, expr.fun, "fun")
        if isinstance(result, Failure):
            return result
        return Success(App(result.expr, expr.arg))

    wrapper = Strategy(run, f"function({strategy.name})")
    return wrapper


def argument(strategy: Strategy) -> Strategy:
    """Apply to the argument position of an application."""
    from repro.rise.expr import App

    def run(expr: Expr) -> RewriteResult:
        if not isinstance(expr, App):
            return Failure(wrapper, "not an application")
        result = _at(strategy, expr.arg, "arg")
        if isinstance(result, Failure):
            return result
        return Success(App(expr.fun, result.expr))

    wrapper = Strategy(run, f"argument({strategy.name})")
    return wrapper


class RewriteTrace:
    """Compatibility shim over :class:`repro.observe.trace.TraceCollector`.

    Historically this class recorded top-level strategy successes into
    ``steps``; it still does, but wrapped strategies now also run under
    the ``repro.observe`` tracing layer, so the shim additionally exposes
    per-rule events, counters and a top-K summary via :attr:`collector`.
    Prefer ``with repro.observe.tracing() as t:`` in new code.
    """

    def __init__(self) -> None:
        from repro.observe.trace import TraceCollector

        self.steps: list[tuple[str, Expr, Expr]] = []
        self.collector = TraceCollector()

    def wrap(self, strategy: Strategy) -> Strategy:
        """Wrap a strategy so its successful applications append
        ``(name, before, after)`` to :attr:`steps` and its full call tree
        reports into :attr:`collector`."""
        from repro.observe.trace import tracing

        def run(expr: Expr) -> RewriteResult:
            if _TRACE.get() is self.collector:
                result = strategy(expr)
            else:
                with tracing(self.collector):
                    result = strategy(expr)
            if isinstance(result, Success) and result.expr is not expr:
                self.steps.append((strategy.name, expr, result.expr))
            return result

        return Strategy(run, strategy.name)
