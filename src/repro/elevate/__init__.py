"""ELEVATE: the strategy language controlling the rewrite process."""

from repro.elevate.core import (
    Failure, RewriteResult, RewriteTrace, Strategy, StrategyError, Success,
    all_, all_top_down, apply_once, argument, body, bottom_up, fail,
    function, id_, lchoice, normalize, one, repeat, rule, seq, some,
    top_down, try_,
)
