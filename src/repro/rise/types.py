"""The RISE type system.

RISE is a typed functional language.  Data types describe values living in
memory (scalars, SIMD vectors, fixed-size arrays, pairs); function types
describe computations.  Array sizes are symbolic :class:`~repro.nat.Nat`
expressions, which is what lets a primitive such as ``slide`` have the type

    slide(sz, sp) : [sp*n + sz - sp]t -> [n][sz]t

and lets the type checker solve for ``n`` when the input size is known.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator

from repro.nat import Nat, nat

__all__ = [
    "Type",
    "DataType",
    "ScalarType",
    "VectorType",
    "ArrayType",
    "PairType",
    "TypeVar",
    "FunType",
    "AddressSpace",
    "f32",
    "f64",
    "i32",
    "i8",
    "bool_",
    "array",
    "array2d",
    "pair",
    "vec",
    "fun_type",
    "TypeError_",
]


class TypeError_(Exception):
    """Raised for RISE type errors (named to avoid shadowing the builtin)."""


class Type:
    """Base class of all RISE types."""

    def free_type_vars(self) -> frozenset[str]:
        raise NotImplementedError

    def free_nat_vars(self) -> frozenset[str]:
        raise NotImplementedError


class DataType(Type):
    """Base class of first-order data types (things that can be in memory)."""


@dataclass(frozen=True)
class ScalarType(DataType):
    """A machine scalar such as f32."""

    name: str

    def free_type_vars(self) -> frozenset[str]:
        return frozenset()

    def free_nat_vars(self) -> frozenset[str]:
        return frozenset()

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class VectorType(DataType):
    """A SIMD vector ``<size>elem`` of scalar elements."""

    size: Nat
    elem: DataType

    def free_type_vars(self) -> frozenset[str]:
        return self.elem.free_type_vars()

    def free_nat_vars(self) -> frozenset[str]:
        return self.size.free_vars() | self.elem.free_nat_vars()

    def __repr__(self) -> str:
        return f"<{self.size!r}>{self.elem!r}"


@dataclass(frozen=True)
class ArrayType(DataType):
    """A fixed-size array ``[size]elem``."""

    size: Nat
    elem: DataType

    def free_type_vars(self) -> frozenset[str]:
        return self.elem.free_type_vars()

    def free_nat_vars(self) -> frozenset[str]:
        return self.size.free_vars() | self.elem.free_nat_vars()

    def __repr__(self) -> str:
        return f"[{self.size!r}]{self.elem!r}"


@dataclass(frozen=True)
class PairType(DataType):
    """A pair ``(fst x snd)``."""

    fst: DataType
    snd: DataType

    def free_type_vars(self) -> frozenset[str]:
        return self.fst.free_type_vars() | self.snd.free_type_vars()

    def free_nat_vars(self) -> frozenset[str]:
        return self.fst.free_nat_vars() | self.snd.free_nat_vars()

    def __repr__(self) -> str:
        return f"({self.fst!r} x {self.snd!r})"


@dataclass(frozen=True)
class TypeVar(DataType):
    """A data-type variable used during inference (and in type schemes)."""

    name: str

    def free_type_vars(self) -> frozenset[str]:
        return frozenset({self.name})

    def free_nat_vars(self) -> frozenset[str]:
        return frozenset()

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class FunType(Type):
    """A function type ``param -> ret``."""

    param: Type
    ret: Type

    def free_type_vars(self) -> frozenset[str]:
        return self.param.free_type_vars() | self.ret.free_type_vars()

    def free_nat_vars(self) -> frozenset[str]:
        return self.param.free_nat_vars() | self.ret.free_nat_vars()

    def __repr__(self) -> str:
        param = f"({self.param!r})" if isinstance(self.param, FunType) else repr(self.param)
        return f"{param} -> {self.ret!r}"


class AddressSpace(Enum):
    """OpenCL-style address spaces used by low-level patterns."""

    GLOBAL = "global"
    LOCAL = "local"
    PRIVATE = "private"

    def __repr__(self) -> str:
        return self.value


f32 = ScalarType("f32")
f64 = ScalarType("f64")
i32 = ScalarType("i32")
i8 = ScalarType("i8")
bool_ = ScalarType("bool")


def array(size, elem: DataType) -> ArrayType:
    """Build ``[size]elem`` accepting ints/strs/Nats for the size."""
    return ArrayType(nat(size), elem)


def array2d(rows, cols, elem: DataType) -> ArrayType:
    """Build ``[rows][cols]elem``."""
    return array(rows, array(cols, elem))


def pair(fst: DataType, snd: DataType) -> PairType:
    return PairType(fst, snd)


def vec(size, elem: DataType) -> VectorType:
    return VectorType(nat(size), elem)


def fun_type(*types: Type) -> Type:
    """Right-associated function type: fun_type(a, b, c) == a -> (b -> c)."""
    if not types:
        raise TypeError_("fun_type needs at least one type")
    result = types[-1]
    for param in reversed(types[:-1]):
        result = FunType(param, result)
    return result


def array_dims(dtype: DataType) -> Iterator[Nat]:
    """Yield the sizes of the outer array dimensions of a data type."""
    while isinstance(dtype, ArrayType):
        yield dtype.size
        dtype = dtype.elem


def array_elem(dtype: DataType, depth: int) -> DataType:
    """Strip ``depth`` array layers off a data type."""
    for _ in range(depth):
        if not isinstance(dtype, ArrayType):
            raise TypeError_(f"expected array type, got {dtype!r}")
        dtype = dtype.elem
    return dtype
