"""A builder DSL for writing RISE programs in Python.

Mirrors the paper's surface syntax: ``pipe(x, f, g)`` is ``x |> f |> g``,
``fun(lambda x: ...)`` builds lambdas with readable fresh names, and helpers
such as ``map_``, ``reduce_`` and ``zip_`` wrap primitive application.
The macro layer of listing 1/2 (``map2d``, ``slide2d``, ``stencil2d``,
``conv3x3``) lives in :mod:`repro.pipelines.operators` on top of this.
"""

from __future__ import annotations

import inspect
from typing import Callable

from repro.nat import Nat, nat
from repro.rise.expr import (
    App,
    ArrayLiteral,
    AsScalar,
    AsVector,
    CircularBuffer,
    Expr,
    Fresh,
    Fst,
    Identifier,
    Join,
    Lambda,
    Let,
    Literal,
    MakePair,
    Map,
    MapGlobal,
    MapSeq,
    MapSeqUnroll,
    MapVec,
    Reduce,
    ReduceSeq,
    ReduceSeqUnroll,
    RotateValues,
    ScalarOp,
    Slide,
    Snd,
    Split,
    ToMem,
    Transpose,
    UnaryOp,
    Unzip,
    VectorFromScalar,
    Zip,
)
from repro.rise.types import AddressSpace, ScalarType, f32

__all__ = [
    "fun",
    "let",
    "pipe",
    "compose",
    "lit",
    "arr",
    "map_",
    "map_seq",
    "map_seq_unroll",
    "map_global",
    "map_vec",
    "reduce_",
    "reduce_seq",
    "reduce_seq_unroll",
    "zip_",
    "unzip_",
    "fst",
    "snd",
    "make_pair",
    "transpose",
    "slide",
    "split",
    "join",
    "add",
    "sub",
    "mul",
    "div",
    "to_mem",
    "as_vector",
    "as_scalar",
    "vector_from_scalar",
    "circular_buffer",
    "rotate_values",
    "dot",
    "id_fun",
]


def fun(body_fn: Callable[..., Expr]) -> Lambda:
    """Build (nested) lambdas from a Python function.

    ``fun(lambda acc, x: acc + x)`` creates ``fun acc. fun x. acc + x`` with
    fresh-but-readable parameter names derived from the Python argument names.
    """
    signature = inspect.signature(body_fn)
    params = [Identifier(Fresh.name(p + "_")) for p in signature.parameters]
    body = body_fn(*params)
    if not isinstance(body, Expr):
        raise TypeError(f"fun body must be an Expr, got {body!r}")
    for param in reversed(params):
        body = Lambda(param, body)
    return body


def let(value: Expr, body_fn: Callable[[Identifier], Expr], name: str = "v") -> Let:
    """Build a ``def``-style let binding (paper listing 3 uses these)."""
    ident = Identifier(Fresh.name(name + "_"))
    return Let(ident, value, body_fn(ident))


def pipe(x: Expr, *fs: Expr) -> Expr:
    """``pipe(x, f, g)`` is the paper's ``x |> f |> g`` i.e. ``g(f(x))``."""
    for f in fs:
        x = App(f, x)
    return x


def compose(*fs: Expr) -> Lambda:
    """Function composition in pipeline order: compose(f, g) = fun x. g(f(x))."""
    return fun(lambda x: pipe(x, *fs))


def id_fun() -> Lambda:
    return fun(lambda x: x)


def lit(value: float, dtype: ScalarType = f32) -> Literal:
    return Literal(float(value), dtype)


def _to_tuple(values) -> tuple:
    if isinstance(values, (list, tuple)):
        return tuple(_to_tuple(v) for v in values)
    return float(values)


def arr(values, dtype: ScalarType = f32) -> ArrayLiteral:
    """An array literal (used for convolution weights)."""
    return ArrayLiteral(_to_tuple(values), dtype)


def _apply(prim: Expr, args: tuple[Expr, ...]) -> Expr:
    result = prim
    for arg in args:
        result = App(result, arg)
    return result


def map_(*args: Expr) -> Expr:
    return _apply(Map(), args)


def map_seq(*args: Expr) -> Expr:
    return _apply(MapSeq(), args)


def map_seq_unroll(*args: Expr) -> Expr:
    return _apply(MapSeqUnroll(), args)


def map_global(*args: Expr, dim: int = 0) -> Expr:
    return _apply(MapGlobal(dim=dim), args)


def map_vec(*args: Expr) -> Expr:
    return _apply(MapVec(), args)


def reduce_(*args: Expr) -> Expr:
    return _apply(Reduce(), args)


def reduce_seq(*args: Expr) -> Expr:
    return _apply(ReduceSeq(), args)


def reduce_seq_unroll(*args: Expr) -> Expr:
    return _apply(ReduceSeqUnroll(), args)


def zip_(*args: Expr) -> Expr:
    return _apply(Zip(), args)


def unzip_(*args: Expr) -> Expr:
    return _apply(Unzip(), args)


def fst(*args: Expr) -> Expr:
    return _apply(Fst(), args)


def snd(*args: Expr) -> Expr:
    return _apply(Snd(), args)


def make_pair(*args: Expr) -> Expr:
    return _apply(MakePair(), args)


def transpose(*args: Expr) -> Expr:
    return _apply(Transpose(), args)


def slide(size, step, *args: Expr) -> Expr:
    return _apply(Slide(size=nat(size), step=nat(step)), args)


def split(chunk, *args: Expr) -> Expr:
    return _apply(Split(chunk=nat(chunk)), args)


def join(*args: Expr) -> Expr:
    return _apply(Join(), args)


add = ScalarOp(op="add")
sub = ScalarOp(op="sub")
mul = ScalarOp(op="mul")
div = ScalarOp(op="div")


def to_mem(addr: AddressSpace = AddressSpace.GLOBAL, *args: Expr) -> Expr:
    return _apply(ToMem(addr=addr), args)


def as_vector(width, *args: Expr) -> Expr:
    return _apply(AsVector(width=nat(width)), args)


def as_scalar(*args: Expr) -> Expr:
    return _apply(AsScalar(), args)


def vector_from_scalar(width, *args: Expr) -> Expr:
    return _apply(VectorFromScalar(width=nat(width)), args)


def circular_buffer(addr: AddressSpace, size, *args: Expr) -> Expr:
    return _apply(CircularBuffer(addr=addr, size=nat(size)), args)


def rotate_values(addr: AddressSpace, size, *args: Expr) -> Expr:
    return _apply(RotateValues(addr=addr, size=nat(size)), args)


def dot(weights: Expr) -> Lambda:
    """The paper's running example:

        def dot(ws, xs) = zip(ws, xs) |> map(mul) |> reduce(add, 0)

    partially applied to the weights.
    """
    return fun(
        lambda xs: pipe(
            zip_(weights, xs),
            map_(fun(lambda p: fst(p) * snd(p))),
            reduce_(fun(lambda acc, x: acc + x), lit(0.0)),
        )
    )
