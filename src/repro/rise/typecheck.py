"""Type inference for RISE.

Implements unification-based inference over data types *and* symbolic
natural numbers.  Nat unification solves linear equations such as

    1 * _n3 + 2  ==  n + 4        ==>   _n3 = n + 2

which is what makes ``slide`` and ``split`` typeable without annotations.
Only *inference* variables (prefixed ``_``) are bindable; user-chosen size
variables such as ``n`` are rigid.
"""

from __future__ import annotations

from typing import Mapping

from repro.nat import Nat
from repro.rise.expr import (
    App,
    ArrayLiteral,
    Expr,
    Fresh,
    Identifier,
    Lambda,
    Let,
    Literal,
    Primitive,
)
from repro.rise.types import (
    ArrayType,
    DataType,
    FunType,
    PairType,
    ScalarType,
    Type,
    TypeError_,
    TypeVar,
    VectorType,
)

__all__ = ["Typing", "infer_types", "type_of", "well_typed"]


def _is_flexible(name: str) -> bool:
    return name.startswith("_")


class _Subst:
    """A mutable substitution over type variables and nat variables."""

    def __init__(self) -> None:
        self.types: dict[str, DataType] = {}
        self.nats: dict[str, Nat] = {}
        # Nat equations that could not be solved yet (e.g. ``_n * _m == 9``
        # before the factors are known).  They are retried after every new
        # binding and must all be resolved by the end of inference.
        self.pending: list[tuple[Nat, Nat]] = []

    # -- application ---------------------------------------------------

    def apply_nat(self, n: Nat) -> Nat:
        for _ in range(1000):
            relevant = {v: self.nats[v] for v in n.free_vars() if v in self.nats}
            if not relevant:
                return n
            n = n.substitute(relevant)
        raise TypeError_("nat substitution did not terminate (cyclic binding?)")

    def apply(self, t: Type) -> Type:
        if isinstance(t, TypeVar):
            bound = self.types.get(t.name)
            if bound is None:
                return t
            resolved = self.apply(bound)
            # Path compression keeps repeated application cheap.
            if isinstance(resolved, DataType):
                self.types[t.name] = resolved
            return resolved
        if isinstance(t, ScalarType):
            return t
        if isinstance(t, ArrayType):
            return ArrayType(self.apply_nat(t.size), self.apply(t.elem))
        if isinstance(t, VectorType):
            return VectorType(self.apply_nat(t.size), self.apply(t.elem))
        if isinstance(t, PairType):
            return PairType(self.apply(t.fst), self.apply(t.snd))
        if isinstance(t, FunType):
            return FunType(self.apply(t.param), self.apply(t.ret))
        raise TypeError_(f"unknown type {t!r}")

    # -- unification ---------------------------------------------------

    def unify(self, a: Type, b: Type) -> None:
        a = self.apply(a)
        b = self.apply(b)
        if isinstance(a, TypeVar) or isinstance(b, TypeVar):
            if isinstance(b, TypeVar) and not isinstance(a, TypeVar):
                a, b = b, a
            assert isinstance(a, TypeVar)
            if a == b:
                return
            if not isinstance(b, DataType):
                raise TypeError_(f"cannot unify data-type variable {a!r} with {b!r}")
            if a.name in b.free_type_vars():
                raise TypeError_(f"occurs check failed: {a!r} in {b!r}")
            self.types[a.name] = b
            return
        if isinstance(a, ScalarType) and isinstance(b, ScalarType):
            if a.name != b.name:
                raise TypeError_(f"scalar mismatch: {a!r} vs {b!r}")
            return
        if isinstance(a, ArrayType) and isinstance(b, ArrayType):
            self.unify_nat(a.size, b.size)
            self.unify(a.elem, b.elem)
            return
        if isinstance(a, VectorType) and isinstance(b, VectorType):
            self.unify_nat(a.size, b.size)
            self.unify(a.elem, b.elem)
            return
        if isinstance(a, PairType) and isinstance(b, PairType):
            self.unify(a.fst, b.fst)
            self.unify(a.snd, b.snd)
            return
        if isinstance(a, FunType) and isinstance(b, FunType):
            self.unify(a.param, b.param)
            self.unify(a.ret, b.ret)
            return
        raise TypeError_(f"cannot unify {a!r} with {b!r}")

    def unify_nat(self, a: Nat, b: Nat) -> None:
        if self._try_solve_nat(a, b):
            self._drain_pending()
            return
        a = self.apply_nat(a)
        b = self.apply_nat(b)
        if a.is_constant() and b.is_constant():
            raise TypeError_(f"size mismatch: {a!r} != {b!r}")
        if not any(_is_flexible(v) for v in a.free_vars() | b.free_vars()):
            raise TypeError_(f"cannot unify sizes {a!r} and {b!r}")
        self.pending.append((a, b))

    def _try_solve_nat(self, a: Nat, b: Nat) -> bool:
        """Attempt to discharge ``a == b`` now; True when solved/trivial."""
        a = self.apply_nat(a)
        b = self.apply_nat(b)
        if a == b:
            return True
        for lhs, rhs in ((a, b), (b, a)):
            for var in sorted(lhs.free_vars()):
                if not _is_flexible(var) or var in self.nats:
                    continue
                solution = lhs.solve_for(var, rhs)
                if solution is not None:
                    if solution.is_constant() and solution.constant_value() < 0:
                        # sizes are natural numbers: a negative solution
                        # means the constraint is unsatisfiable (e.g. a
                        # sliding window larger than its array)
                        raise TypeError_(
                            f"size constraint {a!r} == {b!r} requires "
                            f"{var} = {solution!r} < 0"
                        )
                    self.nats[var] = solution
                    return True
        return False

    def _drain_pending(self) -> None:
        """Retry postponed equations until no further progress is made."""
        progress = True
        while progress and self.pending:
            progress = False
            remaining: list[tuple[Nat, Nat]] = []
            for a, b in self.pending:
                if self._try_solve_nat(a, b):
                    progress = True
                else:
                    remaining.append((a, b))
            self.pending = remaining

    def assert_resolved(self) -> None:
        self._drain_pending()
        unresolved = [
            (self.apply_nat(a), self.apply_nat(b))
            for a, b in self.pending
            if self.apply_nat(a) != self.apply_nat(b)
        ]
        if unresolved:
            a, b = unresolved[0]
            raise TypeError_(
                f"unresolved size constraint: {a!r} == {b!r}"
                + (f" (+{len(unresolved) - 1} more)" if len(unresolved) > 1 else "")
            )


class Typing:
    """The result of type inference: the root type plus per-node types.

    Node types are addressed by object identity, which is stable because
    expressions are immutable.  The typing holds references to all typed
    nodes so the ids stay valid.
    """

    def __init__(self, root: Expr, root_type: Type, by_node: dict[int, Type], nodes: list[Expr]):
        self.root = root
        self.root_type = root_type
        self._by_node = by_node
        self._nodes = nodes  # keeps ids alive
        # Size equations left undecided by non-strict inference (e.g.
        # chunk-divisibility); solved numerically at instantiation time.
        self.pending_sizes: list = []

    def of(self, node: Expr) -> Type:
        try:
            return self._by_node[id(node)]
        except KeyError:
            raise TypeError_("node was not part of the typed expression") from None


class _Inferencer:
    def __init__(self, env: Mapping[str, Type]):
        self.subst = _Subst()
        self.fresh = Fresh()
        self.env0 = dict(env)
        self.by_node: dict[int, Type] = {}
        self.nodes: list[Expr] = []

    def infer(self, expr: Expr, env: Mapping[str, Type]) -> Type:
        t = self._infer(expr, env)
        self.by_node[id(expr)] = t
        self.nodes.append(expr)
        return t

    def _infer(self, expr: Expr, env: Mapping[str, Type]) -> Type:
        if isinstance(expr, Identifier):
            try:
                return env[expr.name]
            except KeyError:
                raise TypeError_(f"unbound identifier {expr.name!r}") from None
        if isinstance(expr, Literal):
            return expr.dtype
        if isinstance(expr, ArrayLiteral):
            return expr.data_type()
        if isinstance(expr, Lambda):
            param_type = self.fresh.dt()
            inner = {**env, expr.param.name: param_type}
            self.by_node[id(expr.param)] = param_type
            self.nodes.append(expr.param)
            body_type = self.infer(expr.body, inner)
            return FunType(param_type, body_type)
        if isinstance(expr, Let):
            value_type = self.infer(expr.value, env)
            self.by_node[id(expr.ident)] = value_type
            self.nodes.append(expr.ident)
            inner = {**env, expr.ident.name: value_type}
            return self.infer(expr.body, inner)
        if isinstance(expr, App):
            fun_type = self.subst.apply(self.infer(expr.fun, env))
            arg_type = self.infer(expr.arg, env)
            if not isinstance(fun_type, FunType):
                raise TypeError_(
                    f"applying non-function of type {fun_type!r} in {expr!r}"
                )
            self.subst.unify(fun_type.param, arg_type)
            return fun_type.ret
        if isinstance(expr, Primitive):
            return expr.type_scheme(self.fresh)
        raise TypeError_(f"cannot infer type of {expr!r}")

    def finish(self, root: Expr, root_type: Type, strict: bool = True) -> Typing:
        if strict:
            self.subst.assert_resolved()
        else:
            self.subst._drain_pending()
        resolved = {key: self.subst.apply(t) for key, t in self.by_node.items()}
        typing = Typing(root, self.subst.apply(root_type), resolved, self.nodes)
        typing.pending_sizes = [
            (self.subst.apply_nat(a), self.subst.apply_nat(b))
            for a, b in self.subst.pending
        ]
        return typing


def infer_types(
    expr: Expr, env: Mapping[str, Type] | None = None, strict: bool = True
) -> Typing:
    """Infer the type of ``expr`` (with free identifiers typed by ``env``).

    Raises :class:`~repro.rise.types.TypeError_` on ill-typed programs.
    With ``strict=False``, size constraints that cannot be decided
    symbolically (e.g. divisibility of a free size by a chunk width) are
    tolerated instead of rejected — used by typed strategies that run on
    programs whose sizes are bound only at code-generation time.
    """
    inferencer = _Inferencer(env or {})
    root_type = inferencer.infer(expr, inferencer.env0)
    return inferencer.finish(expr, root_type, strict=strict)


def type_of(expr: Expr, env: Mapping[str, Type] | None = None) -> Type:
    """Shorthand: infer and return just the root type."""
    return infer_types(expr, env).root_type


def well_typed(expr: Expr, env: Mapping[str, Type] | None = None) -> bool:
    """True when the expression type checks."""
    try:
        infer_types(expr, env)
        return True
    except TypeError_:
        return False
