"""RISE: a typed functional IR of data-parallel patterns (paper section II/III)."""

from repro.rise.types import (
    AddressSpace, ArrayType, DataType, FunType, PairType, ScalarType, Type,
    TypeError_, TypeVar, VectorType, array, array2d, f32, f64, fun_type, i32,
    pair, vec,
)
from repro.rise.expr import (
    App, ArrayLiteral, AsScalar, AsVector, CircularBuffer, Expr, Fresh, Fst,
    Identifier, Join, Lambda, Let, Literal, MakePair, Map, MapGlobal, MapSeq,
    MapSeqUnroll, MapVec, Primitive, PRIMITIVE_REGISTRY, Reduce, ReduceSeq,
    ReduceSeqUnroll, RotateValues, ScalarOp, Slide, Snd, Split, ToMem,
    Transpose, UnaryOp, Unzip, VectorFromScalar, Zip, register_primitive,
)
from repro.rise.typecheck import Typing, infer_types, type_of, well_typed
from repro.rise.traverse import (
    alpha_equal, app_spine, children, count_nodes, free_identifiers,
    from_spine, rebuild, substitute, subterms,
)
from repro.rise.interpreter import EvalError, evaluate, from_numpy, to_numpy
from repro.rise.pprint import pretty
