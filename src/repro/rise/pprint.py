"""Pretty printing of RISE expressions in a paper-like surface syntax."""

from __future__ import annotations

from repro.rise import expr as E

__all__ = ["pretty"]

_OP_SYMBOLS = {"add": "+", "sub": "-", "mul": "*", "div": "/", "min": "min", "max": "max"}


def _prim_label(p: E.Primitive) -> str:
    if isinstance(p, E.Slide):
        return f"slide({p.size!r},{p.step!r})"
    if isinstance(p, E.Split):
        return f"split({p.chunk!r})"
    if isinstance(p, E.AsVector):
        return f"asVector({p.width!r})"
    if isinstance(p, E.VectorFromScalar):
        return f"vectorFromScalar({p.width!r})"
    if isinstance(p, E.ToMem):
        return f"toMem({p.addr.value})"
    if isinstance(p, E.CircularBuffer):
        return f"circularBuffer({p.addr.value},{p.size!r})"
    if isinstance(p, E.RotateValues):
        return f"rotateValues({p.addr.value},{p.size!r})"
    if isinstance(p, E.ScalarOp):
        return f"({_OP_SYMBOLS[p.op]})"
    if isinstance(p, E.UnaryOp):
        return p.op
    return p.name


def pretty(e: E.Expr, indent: int = 0) -> str:
    """Render an expression compactly; lambdas/lets introduce no line breaks
    so the output stays grep-friendly in tests and examples."""
    if isinstance(e, E.Identifier):
        return e.name
    if isinstance(e, E.Literal):
        value = e.value
        text = f"{value:g}" if isinstance(value, float) else str(value)
        return text
    if isinstance(e, E.ArrayLiteral):
        def rec(v) -> str:
            if isinstance(v, tuple):
                return "[" + ", ".join(rec(x) for x in v) + "]"
            return f"{v:g}"

        return rec(e.values)
    if isinstance(e, E.Lambda):
        return f"(fun {e.param.name}. {pretty(e.body)})"
    if isinstance(e, E.Let):
        return f"(def {e.ident.name} = {pretty(e.value)} in {pretty(e.body)})"
    if isinstance(e, E.App):
        head, args = _spine(e)
        if isinstance(head, E.ScalarOp) and len(args) == 2:
            symbol = _OP_SYMBOLS[head.op]
            if symbol in "+-*/":
                return f"({pretty(args[0])} {symbol} {pretty(args[1])})"
        head_text = pretty(head)
        return f"{head_text}({', '.join(pretty(a) for a in args)})"
    if isinstance(e, E.Primitive):
        return _prim_label(e)
    return f"<{type(e).__name__}>"


def _spine(e: E.Expr) -> tuple[E.Expr, list[E.Expr]]:
    args: list[E.Expr] = []
    while isinstance(e, E.App):
        args.append(e.arg)
        e = e.fun
    args.reverse()
    return e, args
