"""The RISE expression AST.

RISE is a small lambda calculus over an *extensible* set of computational
patterns (primitives).  Expressions are immutable; rewriting builds new
trees.  Every primitive declares its polymorphic type scheme; adding a new
pattern (as section II of the paper describes for ``circularBuffer`` and
``rotateValues``) means defining a new :class:`Primitive` subclass and
registering interpreter semantics and code-generation support for it —
without modifying this module's core classes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, fields
from typing import Callable, ClassVar, Iterable

from repro.nat import Nat, nat
from repro.rise.types import (
    AddressSpace,
    ArrayType,
    DataType,
    FunType,
    PairType,
    ScalarType,
    Type,
    TypeVar,
    VectorType,
    f32,
    fun_type,
)

__all__ = [
    "Expr",
    "Identifier",
    "Lambda",
    "App",
    "Let",
    "Literal",
    "ArrayLiteral",
    "Primitive",
    "Fresh",
    "PRIMITIVE_REGISTRY",
    "register_primitive",
    # primitives
    "Map",
    "MapSeq",
    "MapSeqUnroll",
    "MapSeqVec",
    "MapGlobal",
    "MapVec",
    "Reduce",
    "ReduceSeq",
    "ReduceSeqUnroll",
    "Zip",
    "Unzip",
    "Fst",
    "Snd",
    "MakePair",
    "Transpose",
    "Slide",
    "Split",
    "Join",
    "ScalarOp",
    "UnaryOp",
    "ToMem",
    "AsVector",
    "AsScalar",
    "VectorFromScalar",
    "CircularBuffer",
    "RotateValues",
]


class Fresh:
    """Generates fresh type and nat variables during type-scheme instantiation."""

    _counter = itertools.count()

    def __init__(self, prefix: str = "_t"):
        self._prefix = prefix

    def dt(self) -> TypeVar:
        return TypeVar(f"{self._prefix}{next(Fresh._counter)}")

    def nat(self) -> Nat:
        return nat(f"{self._prefix}n{next(Fresh._counter)}")

    @staticmethod
    def name(prefix: str = "x") -> str:
        return f"{prefix}{next(Fresh._counter)}"


class Expr:
    """Base class of RISE expressions."""

    def __rshift__(self, f: "Expr") -> "Expr":
        """``x >> f`` builds ``f(x)`` — the paper's pipe operator ``x |> f``."""
        return App(f, self)

    # Scalar-arithmetic sugar used when writing pipelines such as coarsity.
    def __add__(self, other: "Expr") -> "Expr":
        return _binop("add", self, other)

    def __sub__(self, other: "Expr") -> "Expr":
        return _binop("sub", self, other)

    def __mul__(self, other: "Expr") -> "Expr":
        return _binop("mul", self, other)

    def __truediv__(self, other: "Expr") -> "Expr":
        return _binop("div", self, other)

    def __call__(self, *args: "Expr") -> "Expr":
        result: Expr = self
        for arg in args:
            result = App(result, arg)
        return result

    def __repr__(self) -> str:
        from repro.rise.pprint import pretty

        return pretty(self)


@dataclass(frozen=True, repr=False)
class Identifier(Expr):
    """A variable reference (also used as the binder of Lambda/Let)."""

    name: str


@dataclass(frozen=True, repr=False)
class Lambda(Expr):
    """``fun param. body``"""

    param: Identifier
    body: Expr


@dataclass(frozen=True, repr=False)
class App(Expr):
    """Function application ``fun(arg)``."""

    fun: Expr
    arg: Expr


@dataclass(frozen=True, repr=False)
class Let(Expr):
    """``def ident = value; body`` — a let binding visible to strategies."""

    ident: Identifier
    value: Expr
    body: Expr


@dataclass(frozen=True, repr=False)
class Literal(Expr):
    """A scalar literal."""

    value: float
    dtype: ScalarType = f32


@dataclass(frozen=True, repr=False)
class ArrayLiteral(Expr):
    """A (possibly nested) array literal, used for convolution weights."""

    values: tuple
    dtype: ScalarType = f32

    def shape(self) -> tuple[int, ...]:
        shape: list[int] = []
        v = self.values
        while isinstance(v, tuple):
            shape.append(len(v))
            v = v[0]
        return tuple(shape)

    def data_type(self) -> DataType:
        result: DataType = self.dtype
        for size in reversed(self.shape()):
            result = ArrayType(nat(size), result)
        return result


# ---------------------------------------------------------------------------
# Primitives
# ---------------------------------------------------------------------------

PRIMITIVE_REGISTRY: dict[str, type] = {}


def register_primitive(cls: type) -> type:
    """Class decorator registering a primitive so tooling can enumerate them."""
    PRIMITIVE_REGISTRY[cls.__name__] = cls
    return cls


@dataclass(frozen=True, repr=False)
class Primitive(Expr):
    """Base class of computational patterns.

    ``type_scheme`` returns the primitive's type with fresh variables; the
    type checker instantiates it at every use site.
    """

    name: ClassVar[str] = "?"

    def type_scheme(self, fresh: Fresh) -> Type:
        raise NotImplementedError

    def nat_params(self) -> tuple[Nat, ...]:
        """Nat parameters carried by this primitive instance (for printing)."""
        return tuple(
            getattr(self, f.name)
            for f in fields(self)
            if f.type in ("Nat",) or isinstance(getattr(self, f.name), Nat)
        )


@register_primitive
@dataclass(frozen=True, repr=False)
class Map(Primitive):
    """map : (s -> t) -> [n]s -> [n]t"""

    name: ClassVar[str] = "map"

    def type_scheme(self, fresh: Fresh) -> Type:
        s, t, n = fresh.dt(), fresh.dt(), fresh.nat()
        return fun_type(FunType(s, t), ArrayType(n, s), ArrayType(n, t))


@register_primitive
@dataclass(frozen=True, repr=False)
class MapSeq(Map):
    """Low-level map: a sequential loop."""

    name: ClassVar[str] = "mapSeq"


@register_primitive
@dataclass(frozen=True, repr=False)
class MapSeqUnroll(Map):
    """Low-level map: a fully unrolled sequential loop."""

    name: ClassVar[str] = "mapSeqUnroll"


@register_primitive
@dataclass(frozen=True, repr=False)
class MapGlobal(Map):
    """Low-level map: parallel across global threads (OpenCL) / cores (C)."""

    name: ClassVar[str] = "mapGlobal"
    dim: int = 0


@register_primitive
@dataclass(frozen=True, repr=False)
class MapSeqVec(Map):
    """Low-level map: a strip-mined SIMD loop of the given vector width.

    Semantically identical to ``map``; the code generator emits a loop over
    groups of ``width`` elements whose body computes on vector values
    (loads of stencil windows become the unaligned vector loads of paper
    fig. 7).  This pattern is the packaged result of the asVector /
    mapVec rewrite chain of listing 7, introduced as one low-level pattern
    so the full-pipeline schedules stay compact.
    """

    name: ClassVar[str] = "mapSeqVec"
    width: Nat = nat(4)


@register_primitive
@dataclass(frozen=True, repr=False)
class MapVec(Primitive):
    """mapVec : (s -> t) -> <v>s -> <v>t — vectorizes a scalar function."""

    name: ClassVar[str] = "mapVec"

    def type_scheme(self, fresh: Fresh) -> Type:
        s, t, v = fresh.dt(), fresh.dt(), fresh.nat()
        return fun_type(FunType(s, t), VectorType(v, s), VectorType(v, t))


@register_primitive
@dataclass(frozen=True, repr=False)
class Reduce(Primitive):
    """reduce : (t -> s -> t) -> t -> [n]s -> t"""

    name: ClassVar[str] = "reduce"

    def type_scheme(self, fresh: Fresh) -> Type:
        s, t, n = fresh.dt(), fresh.dt(), fresh.nat()
        return fun_type(fun_type(t, s, t), t, ArrayType(n, s), t)


@register_primitive
@dataclass(frozen=True, repr=False)
class ReduceSeq(Reduce):
    """Low-level reduce: a sequential accumulation loop."""

    name: ClassVar[str] = "reduceSeq"


@register_primitive
@dataclass(frozen=True, repr=False)
class ReduceSeqUnroll(Reduce):
    """Low-level reduce: fully unrolled accumulation."""

    name: ClassVar[str] = "reduceSeqUnroll"


@register_primitive
@dataclass(frozen=True, repr=False)
class Zip(Primitive):
    """zip : [n]s -> [n]t -> [n](s x t)"""

    name: ClassVar[str] = "zip"

    def type_scheme(self, fresh: Fresh) -> Type:
        s, t, n = fresh.dt(), fresh.dt(), fresh.nat()
        return fun_type(ArrayType(n, s), ArrayType(n, t), ArrayType(n, PairType(s, t)))


@register_primitive
@dataclass(frozen=True, repr=False)
class Unzip(Primitive):
    """unzip : [n](s x t) -> ([n]s x [n]t)"""

    name: ClassVar[str] = "unzip"

    def type_scheme(self, fresh: Fresh) -> Type:
        s, t, n = fresh.dt(), fresh.dt(), fresh.nat()
        return FunType(
            ArrayType(n, PairType(s, t)), PairType(ArrayType(n, s), ArrayType(n, t))
        )


@register_primitive
@dataclass(frozen=True, repr=False)
class Fst(Primitive):
    """fst : (s x t) -> s"""

    name: ClassVar[str] = "fst"

    def type_scheme(self, fresh: Fresh) -> Type:
        s, t = fresh.dt(), fresh.dt()
        return FunType(PairType(s, t), s)


@register_primitive
@dataclass(frozen=True, repr=False)
class Snd(Primitive):
    """snd : (s x t) -> t"""

    name: ClassVar[str] = "snd"

    def type_scheme(self, fresh: Fresh) -> Type:
        s, t = fresh.dt(), fresh.dt()
        return FunType(PairType(s, t), t)


@register_primitive
@dataclass(frozen=True, repr=False)
class MakePair(Primitive):
    """pair : s -> t -> (s x t)"""

    name: ClassVar[str] = "pair"

    def type_scheme(self, fresh: Fresh) -> Type:
        s, t = fresh.dt(), fresh.dt()
        return fun_type(s, t, PairType(s, t))


@register_primitive
@dataclass(frozen=True, repr=False)
class Transpose(Primitive):
    """transpose : [n][m]t -> [m][n]t"""

    name: ClassVar[str] = "transpose"

    def type_scheme(self, fresh: Fresh) -> Type:
        t, n, m = fresh.dt(), fresh.nat(), fresh.nat()
        return FunType(
            ArrayType(n, ArrayType(m, t)), ArrayType(m, ArrayType(n, t))
        )


@register_primitive
@dataclass(frozen=True, repr=False)
class Slide(Primitive):
    """slide(sz, sp) : [sp*n + sz - sp]t -> [n][sz]t — a sliding window."""

    name: ClassVar[str] = "slide"
    size: Nat = nat(3)
    step: Nat = nat(1)

    def type_scheme(self, fresh: Fresh) -> Type:
        t, n = fresh.dt(), fresh.nat()
        in_size = self.step * n + self.size - self.step
        return FunType(ArrayType(in_size, t), ArrayType(n, ArrayType(self.size, t)))


@register_primitive
@dataclass(frozen=True, repr=False)
class Split(Primitive):
    """split(n) : [n*m]t -> [m][n]t"""

    name: ClassVar[str] = "split"
    chunk: Nat = nat(2)

    def type_scheme(self, fresh: Fresh) -> Type:
        t, m = fresh.dt(), fresh.nat()
        return FunType(
            ArrayType(self.chunk * m, t), ArrayType(m, ArrayType(self.chunk, t))
        )


@register_primitive
@dataclass(frozen=True, repr=False)
class Join(Primitive):
    """join : [n][m]t -> [n*m]t"""

    name: ClassVar[str] = "join"

    def type_scheme(self, fresh: Fresh) -> Type:
        t, n, m = fresh.dt(), fresh.nat(), fresh.nat()
        return FunType(ArrayType(n, ArrayType(m, t)), ArrayType(n * m, t))


_SCALAR_OPS = ("add", "sub", "mul", "div", "min", "max")
_UNARY_OPS = ("neg", "abs", "sqrt")


@register_primitive
@dataclass(frozen=True, repr=False)
class ScalarOp(Primitive):
    """A binary arithmetic operation, polymorphic so it also applies to vectors
    once ``mapVec`` has wrapped it (the interpreter/codegen handle both)."""

    name: ClassVar[str] = "scalarOp"
    op: str = "add"

    def __post_init__(self) -> None:
        if self.op not in _SCALAR_OPS:
            raise ValueError(f"unknown scalar op {self.op!r}")

    def type_scheme(self, fresh: Fresh) -> Type:
        a = fresh.dt()
        return fun_type(a, a, a)


@register_primitive
@dataclass(frozen=True, repr=False)
class UnaryOp(Primitive):
    """A unary arithmetic operation."""

    name: ClassVar[str] = "unaryOp"
    op: str = "neg"

    def __post_init__(self) -> None:
        if self.op not in _UNARY_OPS:
            raise ValueError(f"unknown unary op {self.op!r}")

    def type_scheme(self, fresh: Fresh) -> Type:
        a = fresh.dt()
        return FunType(a, a)


def _binop(op: str, a: Expr, b: Expr) -> Expr:
    return App(App(ScalarOp(op=op), a), b)


@register_primitive
@dataclass(frozen=True, repr=False)
class ToMem(Primitive):
    """toMem(addr) : t -> t — materialize a value in the given address space."""

    name: ClassVar[str] = "toMem"
    addr: AddressSpace = AddressSpace.GLOBAL

    def type_scheme(self, fresh: Fresh) -> Type:
        t = fresh.dt()
        return FunType(t, t)


@register_primitive
@dataclass(frozen=True, repr=False)
class AsVector(Primitive):
    """asVector(v) : [v*n]s -> [n]<v>s"""

    name: ClassVar[str] = "asVector"
    width: Nat = nat(4)

    def type_scheme(self, fresh: Fresh) -> Type:
        s, n = fresh.dt(), fresh.nat()
        return FunType(
            ArrayType(self.width * n, s), ArrayType(n, VectorType(self.width, s))
        )


@register_primitive
@dataclass(frozen=True, repr=False)
class AsScalar(Primitive):
    """asScalar : [n]<v>s -> [v*n]s"""

    name: ClassVar[str] = "asScalar"

    def type_scheme(self, fresh: Fresh) -> Type:
        s, n, v = fresh.dt(), fresh.nat(), fresh.nat()
        return FunType(ArrayType(n, VectorType(v, s)), ArrayType(v * n, s))


@register_primitive
@dataclass(frozen=True, repr=False)
class VectorFromScalar(Primitive):
    """vectorFromScalar : s -> <v>s — broadcast a scalar across vector lanes."""

    name: ClassVar[str] = "vectorFromScalar"
    width: Nat = nat(4)

    def type_scheme(self, fresh: Fresh) -> Type:
        s = fresh.dt()
        return FunType(s, VectorType(self.width, s))


@register_primitive
@dataclass(frozen=True, repr=False)
class CircularBuffer(Primitive):
    """circularBuffer(addr, m) : (s -> t) -> [n + m - 1]s -> [n][m]t

    The new low-level pattern introduced by the paper: like ``slide(m, 1)``
    but the last ``m`` loaded values live in a circular buffer in ``addr``
    memory; the function argument loads values into the buffer.
    """

    name: ClassVar[str] = "circularBuffer"
    addr: AddressSpace = AddressSpace.GLOBAL
    size: Nat = nat(3)

    def type_scheme(self, fresh: Fresh) -> Type:
        s, t, n = fresh.dt(), fresh.dt(), fresh.nat()
        return fun_type(
            FunType(s, t),
            ArrayType(n + self.size - 1, s),
            ArrayType(n, ArrayType(self.size, t)),
        )


@register_primitive
@dataclass(frozen=True, repr=False)
class RotateValues(Primitive):
    """rotateValues(addr, m) : [n + m - 1]t -> [n][m]t

    The paper's register-rotation pattern: like ``slide(m, 1)`` but the last
    ``m`` values are kept in registers that rotate as the array is read
    sequentially.
    """

    name: ClassVar[str] = "rotateValues"
    addr: AddressSpace = AddressSpace.PRIVATE
    size: Nat = nat(3)

    def type_scheme(self, fresh: Fresh) -> Type:
        t, n = fresh.dt(), fresh.nat()
        return FunType(
            ArrayType(n + self.size - 1, t),
            ArrayType(n, ArrayType(self.size, t)),
        )


_PRIMITIVE_ARITY: dict[type, int] = {}


def _init_arities() -> None:
    _PRIMITIVE_ARITY.update(
        {
            Map: 2,
            MapVec: 2,
            Reduce: 3,
            Zip: 2,
            Unzip: 1,
            Fst: 1,
            Snd: 1,
            MakePair: 2,
            Transpose: 1,
            Slide: 1,
            Split: 1,
            Join: 1,
            ScalarOp: 2,
            UnaryOp: 1,
            ToMem: 1,
            AsVector: 1,
            AsScalar: 1,
            VectorFromScalar: 1,
            CircularBuffer: 2,
            RotateValues: 1,
        }
    )


_init_arities()


def primitive_arity(prim: Primitive) -> int:
    """Number of expression arguments a primitive takes when fully applied."""
    for klass in type(prim).__mro__:
        if klass in _PRIMITIVE_ARITY:
            return _PRIMITIVE_ARITY[klass]
    raise KeyError(f"unknown primitive {type(prim).__name__}")
