"""A denotational interpreter for RISE expressions.

This is the semantic oracle of the reproduction: every rewrite rule and
every optimization strategy is validated by interpreting programs before
and after rewriting and comparing the results numerically (the in-process
analogue of the paper's PSNR check).

Value representation:

* scalars      -> ``np.float32`` (or ``np.int32`` / ``bool``)
* arrays       -> Python lists (nested)
* pairs        -> 2-tuples
* SIMD vectors -> 1-d ``np.ndarray``
* functions    -> Python callables

Primitive semantics live in a registry keyed by primitive class, so new
patterns (the paper's ``circularBuffer`` / ``rotateValues``) plug in their
meaning without modifying the evaluator — the domain-extensibility story.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from repro.rise import expr as E
from repro.rise.types import TypeError_

__all__ = ["evaluate", "register_semantics", "EvalError", "from_numpy", "to_numpy"]


class EvalError(Exception):
    """Raised when an expression cannot be evaluated."""


# registry: primitive class -> (number of curried arguments, implementation)
_SEMANTICS: dict[type, tuple[int, Callable]] = {}


def register_semantics(prim_class: type, arity: int):
    """Register interpreter semantics for a primitive class."""

    def decorator(fn: Callable):
        _SEMANTICS[prim_class] = (arity, fn)
        return fn

    return decorator


def _lookup(prim: E.Primitive) -> tuple[int, Callable]:
    for klass in type(prim).__mro__:
        if klass in _SEMANTICS:
            return _SEMANTICS[klass]
    raise EvalError(f"no semantics registered for {type(prim).__name__}")


def _curry(prim: E.Primitive, arity: int, fn: Callable):
    # Partial applications must be persistent values: `map(f)` is applied
    # once per row by an enclosing map, so each application extends its own
    # copy of the collected arguments.
    def make(collected: tuple):
        def apply(arg):
            new = collected + (arg,)
            if len(new) == arity:
                return fn(prim, *new)
            return make(new)

        return apply

    return make(()) if arity > 0 else fn(prim)


from repro.observe.core import active as _observe_active


def evaluate(expr: E.Expr, env: Mapping[str, object] | None = None):
    """Evaluate a RISE expression under an environment of free identifiers.

    When :func:`repro.observe.observing` is active, every primitive
    evaluation increments an ``interp.<Primitive>`` counter — the
    interpreter op counts reported in run reports.
    """
    env = dict(env or {})
    return _eval(expr, env)


def _eval(expr: E.Expr, env: dict):
    if isinstance(expr, E.Identifier):
        try:
            return env[expr.name]
        except KeyError:
            raise EvalError(f"unbound identifier {expr.name!r}") from None
    if isinstance(expr, E.Literal):
        return np.float32(expr.value)
    if isinstance(expr, E.ArrayLiteral):
        def build(values):
            if isinstance(values, tuple):
                return [build(v) for v in values]
            return np.float32(values)

        return build(expr.values)
    if isinstance(expr, E.Lambda):
        captured = dict(env)

        def closure(arg, _body=expr.body, _param=expr.param.name, _env=captured):
            inner = dict(_env)
            inner[_param] = arg
            return _eval(_body, inner)

        return closure
    if isinstance(expr, E.Let):
        value = _eval(expr.value, env)
        inner = dict(env)
        inner[expr.ident.name] = value
        return _eval(expr.body, inner)
    if isinstance(expr, E.App):
        fun = _eval(expr.fun, env)
        arg = _eval(expr.arg, env)
        if not callable(fun):
            raise EvalError(f"applying non-function value {fun!r}")
        return fun(arg)
    if isinstance(expr, E.Primitive):
        # Report primitive-evaluation counts to the observability layer
        # (one context-variable read when observation is off).
        obs = _observe_active()
        if obs is not None:
            obs.count(f"interp.{type(expr).__name__}")
        arity, fn = _lookup(expr)
        return _curry(expr, arity, fn)
    raise EvalError(f"cannot evaluate {expr!r}")


def _nat_int(n) -> int:
    value = n.evaluate({})
    return int(value)


def _windows(xs: list, size: int, step: int) -> list:
    if (len(xs) - size) % step != 0:
        raise EvalError(
            f"slide mismatch: array of {len(xs)} with window {size} step {step}"
        )
    count = (len(xs) - size) // step + 1
    return [xs[i * step : i * step + size] for i in range(count)]


# ---------------------------------------------------------------------------
# Semantics of the built-in patterns
# ---------------------------------------------------------------------------


@register_semantics(E.Map, 2)
def _map(prim, f, xs):
    return [f(x) for x in xs]


@register_semantics(E.MapVec, 2)
def _map_vec(prim, f, v):
    # Scalar functions built from basic ops are numpy-elementwise, so they
    # apply to the whole lane array directly (matching the paper's remark
    # that mapVec supports functions made of basic operations).
    result = f(v)
    if not isinstance(result, np.ndarray):
        result = np.full_like(v, result)
    return result.astype(v.dtype, copy=False)


@register_semantics(E.Reduce, 3)
def _reduce(prim, op, init, xs):
    acc = init
    for x in xs:
        acc = op(acc)(x)
    return acc


@register_semantics(E.Zip, 2)
def _zip(prim, a, b):
    if len(a) != len(b):
        raise EvalError(f"zip length mismatch: {len(a)} vs {len(b)}")
    return [(x, y) for x, y in zip(a, b)]


@register_semantics(E.Unzip, 1)
def _unzip(prim, ps):
    return ([p[0] for p in ps], [p[1] for p in ps])


@register_semantics(E.Fst, 1)
def _fst(prim, p):
    return p[0]


@register_semantics(E.Snd, 1)
def _snd(prim, p):
    return p[1]


@register_semantics(E.MakePair, 2)
def _make_pair(prim, a, b):
    return (a, b)


@register_semantics(E.Transpose, 1)
def _transpose(prim, rows):
    if not rows:
        return []
    return [list(col) for col in zip(*rows)]


@register_semantics(E.Slide, 1)
def _slide(prim, xs):
    return _windows(xs, _nat_int(prim.size), _nat_int(prim.step))


@register_semantics(E.Split, 1)
def _split(prim, xs):
    chunk = _nat_int(prim.chunk)
    if len(xs) % chunk != 0:
        raise EvalError(f"split({chunk}) of array with {len(xs)} elements")
    return [xs[i : i + chunk] for i in range(0, len(xs), chunk)]


@register_semantics(E.Join, 1)
def _join(prim, xss):
    out: list = []
    for xs in xss:
        out.extend(xs)
    return out


_BINOPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": lambda a, b: a / b,
    "min": np.minimum,
    "max": np.maximum,
}

_UNOPS = {
    "neg": lambda a: -a,
    "abs": np.abs,
    "sqrt": np.sqrt,
}


@register_semantics(E.ScalarOp, 2)
def _scalar_op(prim, a, b):
    result = _BINOPS[prim.op](a, b)
    if isinstance(result, np.ndarray):
        return result.astype(np.float32, copy=False)
    return np.float32(result)


@register_semantics(E.UnaryOp, 1)
def _unary_op(prim, a):
    result = _UNOPS[prim.op](a)
    if isinstance(result, np.ndarray):
        return result.astype(np.float32, copy=False)
    return np.float32(result)


@register_semantics(E.ToMem, 1)
def _to_mem(prim, x):
    return x


@register_semantics(E.AsVector, 1)
def _as_vector(prim, xs):
    width = _nat_int(prim.width)
    if len(xs) % width != 0:
        raise EvalError(f"asVector({width}) of array with {len(xs)} elements")
    return [
        np.asarray(xs[i : i + width], dtype=np.float32)
        for i in range(0, len(xs), width)
    ]


@register_semantics(E.AsScalar, 1)
def _as_scalar(prim, vs):
    out: list = []
    for v in vs:
        out.extend(np.float32(x) for x in v)
    return out


@register_semantics(E.VectorFromScalar, 1)
def _vector_from_scalar(prim, x):
    return np.full(_nat_int(prim.width), x, dtype=np.float32)


@register_semantics(E.CircularBuffer, 2)
def _circular_buffer(prim, load, xs):
    loaded = [load(x) for x in xs]
    return _windows(loaded, _nat_int(prim.size), 1)


@register_semantics(E.RotateValues, 1)
def _rotate_values(prim, xs):
    return _windows(xs, _nat_int(prim.size), 1)


# ---------------------------------------------------------------------------
# numpy bridge
# ---------------------------------------------------------------------------


def from_numpy(a: np.ndarray):
    """Convert a numpy array into the interpreter's nested-list representation."""
    a = np.asarray(a, dtype=np.float32)
    if a.ndim == 0:
        return np.float32(a)
    return [from_numpy(sub) for sub in a]


def to_numpy(value) -> np.ndarray:
    """Convert a nested-list interpreter value back into a numpy array."""

    def build(v):
        if isinstance(v, list):
            return [build(x) for x in v]
        if isinstance(v, tuple):
            raise EvalError("cannot convert pair values to a numpy array")
        return np.float32(v)

    return np.asarray(build(value), dtype=np.float32)
