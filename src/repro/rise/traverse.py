"""Generic traversal, substitution and comparison utilities for RISE ASTs.

These are the mechanics that the ELEVATE traversals (``topDown``,
``bottomUp``, ``one``, ``all``) are built from.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.rise.expr import App, Expr, Fresh, Identifier, Lambda, Let

__all__ = [
    "children",
    "rebuild",
    "subterms",
    "free_identifiers",
    "substitute",
    "alpha_equal",
    "app_spine",
    "from_spine",
    "count_nodes",
]


def children(expr: Expr) -> list[Expr]:
    """The rewritable sub-expressions of a node (binders are not children)."""
    if isinstance(expr, Lambda):
        return [expr.body]
    if isinstance(expr, App):
        return [expr.fun, expr.arg]
    if isinstance(expr, Let):
        return [expr.value, expr.body]
    return []


def rebuild(expr: Expr, new_children: list[Expr]) -> Expr:
    """Rebuild a node with replaced children (same order as :func:`children`)."""
    if isinstance(expr, Lambda):
        (body,) = new_children
        if body is expr.body:
            return expr
        return Lambda(expr.param, body)
    if isinstance(expr, App):
        fun, arg = new_children
        if fun is expr.fun and arg is expr.arg:
            return expr
        return App(fun, arg)
    if isinstance(expr, Let):
        value, body = new_children
        if value is expr.value and body is expr.body:
            return expr
        return Let(expr.ident, value, body)
    if new_children:
        raise ValueError(f"{type(expr).__name__} has no children")
    return expr


def subterms(expr: Expr) -> Iterator[Expr]:
    """Depth-first pre-order iteration over all sub-expressions."""
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(children(node)))


def count_nodes(expr: Expr) -> int:
    return sum(1 for _ in subterms(expr))


def free_identifiers(expr: Expr) -> frozenset[str]:
    """Names of identifiers that occur free in ``expr``."""
    if isinstance(expr, Identifier):
        return frozenset({expr.name})
    if isinstance(expr, Lambda):
        return free_identifiers(expr.body) - {expr.param.name}
    if isinstance(expr, Let):
        return free_identifiers(expr.value) | (
            free_identifiers(expr.body) - {expr.ident.name}
        )
    result: frozenset[str] = frozenset()
    for child in children(expr):
        result |= free_identifiers(child)
    return result


def substitute(expr: Expr, name: str, value: Expr) -> Expr:
    """Capture-avoiding substitution of ``value`` for free ``name`` in ``expr``."""
    value_free = free_identifiers(value)

    def go(e: Expr) -> Expr:
        if isinstance(e, Identifier):
            return value if e.name == name else e
        if isinstance(e, Lambda):
            if e.param.name == name:
                return e
            if e.param.name in value_free:
                renamed = Identifier(Fresh.name(e.param.name + "_"))
                body = substitute(e.body, e.param.name, renamed)
                return Lambda(renamed, go(body))
            return Lambda(e.param, go(e.body))
        if isinstance(e, Let):
            new_value = go(e.value)
            if e.ident.name == name:
                return Let(e.ident, new_value, e.body)
            if e.ident.name in value_free:
                renamed = Identifier(Fresh.name(e.ident.name + "_"))
                body = substitute(e.body, e.ident.name, renamed)
                return Let(renamed, new_value, go(body))
            return Let(e.ident, new_value, go(e.body))
        kids = children(e)
        if not kids:
            return e
        return rebuild(e, [go(c) for c in kids])

    return go(expr)


def alpha_equal(a: Expr, b: Expr) -> bool:
    """Structural equality modulo renaming of bound variables."""

    def go(x: Expr, y: Expr, env_x: dict[str, int], env_y: dict[str, int], depth: int) -> bool:
        if isinstance(x, Identifier) and isinstance(y, Identifier):
            bx = env_x.get(x.name)
            by = env_y.get(y.name)
            if bx is None and by is None:
                return x.name == y.name
            return bx is not None and bx == by
        if isinstance(x, Lambda) and isinstance(y, Lambda):
            env_x2 = {**env_x, x.param.name: depth}
            env_y2 = {**env_y, y.param.name: depth}
            return go(x.body, y.body, env_x2, env_y2, depth + 1)
        if isinstance(x, Let) and isinstance(y, Let):
            if not go(x.value, y.value, env_x, env_y, depth):
                return False
            env_x2 = {**env_x, x.ident.name: depth}
            env_y2 = {**env_y, y.ident.name: depth}
            return go(x.body, y.body, env_x2, env_y2, depth + 1)
        if isinstance(x, App) and isinstance(y, App):
            return go(x.fun, y.fun, env_x, env_y, depth) and go(
                x.arg, y.arg, env_x, env_y, depth
            )
        if type(x) is not type(y):
            return False
        # Leaves: primitives, literals — rely on structural equality.
        return x == y

    return go(a, b, {}, {}, 0)


def app_spine(expr: Expr) -> tuple[Expr, list[Expr]]:
    """Decompose nested applications: ``f(a)(b)(c)`` -> (f, [a, b, c])."""
    args: list[Expr] = []
    while isinstance(expr, App):
        args.append(expr.arg)
        expr = expr.fun
    args.reverse()
    return expr, args


def from_spine(head: Expr, args: list[Expr]) -> Expr:
    """Inverse of :func:`app_spine`."""
    result = head
    for arg in args:
        result = App(result, arg)
    return result
