"""The Harris pipeline in mini-Halide with the paper's reference schedule.

The algorithm follows the variant in the Halide repository that the paper
uses (fig. 5: no border padding, the output shrinks by 4 in each
dimension); the schedule is listing 4:

    output.split(y, y, yi, 32).parallel(y).vectorize(x, vec);
    gray.store_at(output, y).compute_at(output, yi).vectorize(x, vec);
    Iy.store_at(output, y).compute_at(output, yi).vectorize(x, vec);
    Ix.store_at(output, y).compute_at(output, yi).vectorize(x, vec);
    Ix.compute_with(Iy, x);

Products, sums and coarsity stay inline (Halide's default), exactly as in
the reference.
"""

from __future__ import annotations


from repro.nat import Nat, nat
from repro.codegen.ir import ImpProgram
from repro.halide.hir import Func, HVar, ImageParam
from repro.halide.lower import compile_halide
from repro.image.reference import GRAY_WEIGHTS, HARRIS_KAPPA, SOBEL_X, SOBEL_Y

__all__ = ["build_harris_funcs", "build_harris_halide_program", "compile_harris_halide"]


def build_harris_funcs(vec: int = 4, split: int = 32):
    """Construct the algorithm + reference schedule; returns (output, input)."""
    x, y = HVar("x"), HVar("y")
    rgb = ImageParam("rgb", channels=3)

    gray = Func("gray")
    gray[x, y] = (
        float(GRAY_WEIGHTS[0]) * rgb[0](x, y)
        + float(GRAY_WEIGHTS[1]) * rgb[1](x, y)
        + float(GRAY_WEIGHTS[2]) * rgb[2](x, y)
    )

    def conv3x3(name: str, weights) -> Func:
        f = Func(name)
        expr = None
        for dy in range(3):
            for dx in range(3):
                w = float(weights[dy][dx])
                if w == 0.0:
                    continue
                term = w * gray(x + dx, y + dy)
                expr = term if expr is None else expr + term
        f[x, y] = expr
        return f

    ix = conv3x3("Ix", SOBEL_X)
    iy = conv3x3("Iy", SOBEL_Y)

    ixx = Func("Ixx")
    ixx[x, y] = ix(x, y) * ix(x, y)
    ixy = Func("Ixy")
    ixy[x, y] = ix(x, y) * iy(x, y)
    iyy = Func("Iyy")
    iyy[x, y] = iy(x, y) * iy(x, y)

    def sum3x3(name: str, f: Func) -> Func:
        s = Func(name)
        expr = None
        for dy in range(3):
            for dx in range(3):
                term = f(x + dx, y + dy)
                expr = term if expr is None else expr + term
        s[x, y] = expr
        return s

    sxx = sum3x3("Sxx", ixx)
    sxy = sum3x3("Sxy", ixy)
    syy = sum3x3("Syy", iyy)

    output = Func("harris")
    det = sxx(x, y) * syy(x, y) - sxy(x, y) * sxy(x, y)
    trace = sxx(x, y) + syy(x, y)
    output[x, y] = det - float(HARRIS_KAPPA) * trace * trace

    # ---- the reference schedule (listing 4) -----------------------------
    yo, yi = HVar("y"), HVar("yi")
    output.split(y, yo, yi, split).parallel(yo).vectorize(x, vec)
    gray.store_at(output, yo).compute_at(output, yi).vectorize(x, vec)
    iy.store_at(output, yo).compute_at(output, yi).vectorize(x, vec)
    ix.store_at(output, yo).compute_at(output, yi).vectorize(x, vec)
    ix.compute_with(iy, x)

    return output, rgb


def build_harris_halide_program(vec: int = 4, split: int = 32) -> ImpProgram:
    """The Halide baseline compiled to an imperative program with symbolic
    output sizes n x m (input [3][n+4][m+4]).

    Registered with the engine as the ``"harris-halide"`` builder:
    ``repro.compile("harris-halide", options={"vec": 4, "split": 32})``.
    """
    output, rgb = build_harris_funcs(vec=vec, split=split)
    n, m = nat("n"), nat("m")
    return compile_halide(
        output,
        {"rgb": (rgb, n + 4, m + 4)},
        n,
        m,
        name="halide_harris",
    )


def compile_harris_halide(vec: int = 4, split: int = 32) -> ImpProgram:
    """Removed: compile through the engine front door instead.

    This pre-engine entry point spent two releases as a
    ``DeprecationWarning`` shim and is now retired; calling it raises
    with the migration below.
    """
    raise RuntimeError(
        "compile_harris_halide was removed; migrate to the engine front door:\n"
        "    repro.compile('harris-halide',"
        " options={'vec': vec, 'split': split}).program"
    )
