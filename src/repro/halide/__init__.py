"""A mini-Halide: the paper's reference baseline compiler."""

from repro.halide.hir import Func, HVar, ImageParam
from repro.halide.lower import compile_halide, HalideLowerError
from repro.halide.harris import (
    build_harris_funcs,
    build_harris_halide_program,
    compile_harris_halide,
)
