"""A miniature Halide: functional image definitions plus a schedule API.

Implements the subset of Halide needed to express the paper's reference
Harris algorithm and its optimized schedule (listing 4):

* pure function definitions over 2-d (x, y) domains with constant-offset
  accesses (stencils) and references to multi-channel input images;
* schedule directives ``split``, ``parallel``, ``vectorize``,
  ``compute_at``, ``store_at`` (with storage folding along y, i.e.
  circular line buffers), ``compute_with`` and (default) inlining.

The lowering in :mod:`repro.halide.lower` targets the same imperative IR
as the RISE compiler, so the Halide baseline is executed and costed by
exactly the same machinery.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Union

__all__ = ["HVar", "HExpr", "HConst", "HBin", "ImageRef", "FuncRef", "Func", "ImageParam"]

_counter = itertools.count()


class HExpr:
    """Base class of mini-Halide expressions."""

    def __add__(self, other):
        return HBin("add", self, _wrap(other))

    def __radd__(self, other):
        return HBin("add", _wrap(other), self)

    def __sub__(self, other):
        return HBin("sub", self, _wrap(other))

    def __rsub__(self, other):
        return HBin("sub", _wrap(other), self)

    def __mul__(self, other):
        return HBin("mul", self, _wrap(other))

    def __rmul__(self, other):
        return HBin("mul", _wrap(other), self)

    def __truediv__(self, other):
        return HBin("div", self, _wrap(other))


def _wrap(v) -> "HExpr":
    if isinstance(v, HExpr):
        return v
    if isinstance(v, (int, float)):
        return HConst(float(v))
    raise TypeError(f"cannot use {v!r} in a Halide expression")


@dataclass(frozen=True)
class HConst(HExpr):
    value: float


@dataclass(frozen=True)
class HVar(HExpr):
    """A dimension variable (x, y) or a scheduled loop variable (yo, yi)."""

    name: str


@dataclass(frozen=True)
class HBin(HExpr):
    op: str
    a: HExpr
    b: HExpr


@dataclass(frozen=True)
class ImageRef(HExpr):
    """A read of an input image: image[channel][y + dy][x + dx]."""

    image: "ImageParam"
    channel: int
    dx: int
    dy: int


@dataclass(frozen=True)
class FuncRef(HExpr):
    """A call to another Func at (x + dx, y + dy)."""

    func: "Func"
    dx: int
    dy: int


@dataclass
class ImageParam:
    """A planar float32 input image with ``channels`` planes."""

    name: str
    channels: int = 1

    def __getitem__(self, key) -> "_ImageChannel":
        return _ImageChannel(self, key)


class _ImageChannel:
    def __init__(self, image: ImageParam, channel: int):
        self.image = image
        self.channel = channel

    def __call__(self, x_expr, y_expr) -> ImageRef:
        dx = _offset_of(x_expr, "x")
        dy = _offset_of(y_expr, "y")
        return ImageRef(self.image, self.channel, dx, dy)


def _offset_of(expr, dim_name: str) -> int:
    """Parse ``x``, ``x + c`` or ``x - c`` into the constant offset c."""
    if isinstance(expr, HVar):
        if expr.name != dim_name:
            raise ValueError(f"expected {dim_name}, got {expr.name}")
        return 0
    if isinstance(expr, HBin) and isinstance(expr.a, HVar) and isinstance(expr.b, HConst):
        if expr.a.name != dim_name:
            raise ValueError(f"expected {dim_name}, got {expr.a.name}")
        if expr.op == "add":
            return int(expr.b.value)
        if expr.op == "sub":
            return -int(expr.b.value)
    if isinstance(expr, HBin) and isinstance(expr.b, HVar) and isinstance(expr.a, HConst):
        if expr.op == "add" and expr.b.name == dim_name:
            return int(expr.a.value)
    raise ValueError(f"unsupported index expression for {dim_name}: {expr!r}")


@dataclass
class _Schedule:
    split_factor: Optional[int] = None  # split y into (yo, yi)
    parallel_outer: bool = False
    vectorize_width: Optional[int] = None
    compute_at: Optional[tuple["Func", str]] = None  # (consumer, "yi")
    store_at: Optional[tuple["Func", str]] = None  # (consumer, "yo")
    compute_with: Optional["Func"] = None  # fused sibling (this computes inside sibling's loop)


class Func(HExpr):
    """A pure 2-d image function with an optional schedule."""

    def __init__(self, name: str | None = None):
        self.name = name or f"f{next(_counter)}"
        self.expr: Optional[HExpr] = None
        self.schedule = _Schedule()

    # -- definition ------------------------------------------------------

    def __call__(self, x_expr, y_expr) -> FuncRef:
        return FuncRef(self, _offset_of(x_expr, "x"), _offset_of(y_expr, "y"))

    def define(self, expr: HExpr) -> "Func":
        if self.expr is not None:
            raise ValueError(f"{self.name} already defined")
        self.expr = _wrap(expr)
        return self

    def __setitem__(self, key, value) -> None:
        # func[x, y] = expr
        self.define(value)

    # -- schedule (chainable, mirroring Halide's API) ---------------------

    def split(self, _y, _yo, _yi, factor: int) -> "Func":
        self.schedule.split_factor = factor
        return self

    def parallel(self, _yo) -> "Func":
        self.schedule.parallel_outer = True
        return self

    def vectorize(self, _x, width: int) -> "Func":
        self.schedule.vectorize_width = width
        return self

    def compute_at(self, consumer: "Func", _level) -> "Func":
        self.schedule.compute_at = (consumer, "yi")
        return self

    def store_at(self, consumer: "Func", _level) -> "Func":
        self.schedule.store_at = (consumer, "yo")
        return self

    def compute_with(self, sibling: "Func", _dim) -> "Func":
        self.schedule.compute_with = sibling
        return self

    def compute_root(self) -> "Func":
        self.schedule.compute_at = None
        return self

    @property
    def is_scheduled(self) -> bool:
        return self.schedule.compute_at is not None

    def __repr__(self) -> str:
        return f"<Func {self.name}>"
