"""Lowering mini-Halide pipelines to the imperative IR.

Implements the Halide lowering pipeline for the schedule class of paper
listing 4: bounds inference by interval propagation over constant-offset
accesses, loop nest construction (split + parallel outer loop), storage
folding for ``store_at`` producers (circular line buffers along y),
sliding-window computation inside the chunk (prologue + one new row per
producer per output row), ``compute_with`` loop fusion, inlining of
unscheduled functions, and x-vectorization via the shared expression
vectorizer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.nat import Nat, nat
from repro.codegen.ir import (
    AllocStmt,
    Block,
    Buffer,
    BinOp,
    Comment,
    FConst,
    For,
    IConst,
    IExpr,
    ImpFunction,
    ImpProgram,
    Load,
    LoopKind,
    Store,
    Var,
    VStore,
)
from repro.codegen.opt import cse_program, fold_program
from repro.codegen.views import idx_add, idx_mod, idx_mul, nat_expr
from repro.codegen.vectorize import VectorizeError, vectorize_stmts
from repro.halide.hir import Func, FuncRef, HBin, HConst, HExpr, HVar, ImageParam, ImageRef

__all__ = ["compile_halide", "HalideLowerError"]

_PAD = 8


class HalideLowerError(Exception):
    pass


@dataclass
class _Range:
    dx_min: int = 0
    dx_max: int = 0
    dy_min: int = 0
    dy_max: int = 0

    def union(self, other: "_Range") -> "_Range":
        return _Range(
            min(self.dx_min, other.dx_min),
            max(self.dx_max, other.dx_max),
            min(self.dy_min, other.dy_min),
            max(self.dy_max, other.dy_max),
        )

    def shifted(self, dx: int, dy: int) -> "_Range":
        return _Range(
            self.dx_min + dx, self.dx_max + dx, self.dy_min + dy, self.dy_max + dy
        )

    @property
    def fold(self) -> int:
        return self.dy_max - self.dy_min + 1

    def width(self, m: Nat) -> Nat:
        return m + (self.dx_max - self.dx_min)


def _func_refs(expr: HExpr):
    if isinstance(expr, FuncRef):
        yield expr
    elif isinstance(expr, HBin):
        yield from _func_refs(expr.a)
        yield from _func_refs(expr.b)


def _image_refs(expr: HExpr):
    if isinstance(expr, ImageRef):
        yield expr
    elif isinstance(expr, HBin):
        yield from _image_refs(expr.a)
        yield from _image_refs(expr.b)


def _infer_bounds(output: Func) -> dict[Func, _Range]:
    """Transitive access ranges of every scheduled func relative to one
    output pixel, flowing through inline functions."""
    ranges: dict[Func, _Range] = {output: _Range()}

    def walk(expr: HExpr, base: _Range) -> None:
        for ref in _func_refs(expr):
            shifted = base.shifted(ref.dx, ref.dy)
            target = ref.func
            if target.is_scheduled:
                previous = ranges.get(target)
                merged = shifted if previous is None else previous.union(shifted)
                if previous is None or merged != previous:
                    ranges[target] = merged
            else:
                if target.expr is None:
                    raise HalideLowerError(f"{target.name} used but not defined")
                walk(target.expr, shifted)

    # Fixpoint: ranges only grow; iterate until stable.
    for _ in range(64):
        before = {f: (r.dx_min, r.dx_max, r.dy_min, r.dy_max) for f, r in ranges.items()}
        for func in list(ranges):
            if func.expr is None:
                raise HalideLowerError(f"{func.name} is scheduled but not defined")
            walk(func.expr, ranges[func])
        after = {f: (r.dx_min, r.dx_max, r.dy_min, r.dy_max) for f, r in ranges.items()}
        if before == after:
            break
    else:
        raise HalideLowerError("bounds inference did not converge")
    return ranges


def _topo_producers(output: Func, ranges: dict[Func, _Range]) -> list[Func]:
    """Scheduled producers in computation order (dependencies first)."""
    order: list[Func] = []
    seen: set[Func] = set()

    def deps_of(func: Func) -> list[Func]:
        found: list[Func] = []

        def walk(expr: HExpr) -> None:
            for ref in _func_refs(expr):
                if ref.func.is_scheduled:
                    if ref.func not in found:
                        found.append(ref.func)
                elif ref.func.expr is not None:
                    walk(ref.func.expr)

        if func.expr is not None:
            walk(func.expr)
        return found

    def visit(func: Func) -> None:
        if func in seen:
            return
        seen.add(func)
        for dep in deps_of(func):
            visit(dep)
        if func is not output:
            order.append(func)

    visit(output)
    return order


class _Gen:
    def __init__(self, inputs: dict[str, tuple[ImageParam, Nat, Nat]], m: Nat):
        self.inputs = inputs
        self.m = m
        self.stmts_stack: list[list] = [[]]
        self.counter = 0
        self.storages: dict[Func, tuple[str, Nat, _Range]] = {}
        self.buffers: list[Buffer] = []

    def emit(self, s) -> None:
        self.stmts_stack[-1].append(s)

    def push(self) -> None:
        self.stmts_stack.append([])

    def pop(self) -> Block:
        return Block(self.stmts_stack.pop())

    def fresh(self, prefix: str) -> str:
        self.counter += 1
        return f"{prefix}{self.counter}"

    # -- expression evaluation -------------------------------------------

    def eval_expr(self, expr: HExpr, x: IExpr, y: IExpr, ranges) -> IExpr:
        if isinstance(expr, HConst):
            return FConst(expr.value)
        if isinstance(expr, HBin):
            return BinOp(
                expr.op,
                self.eval_expr(expr.a, x, y, ranges),
                self.eval_expr(expr.b, x, y, ranges),
            )
        if isinstance(expr, ImageRef):
            image, rows, cols = self.inputs[expr.image.name]
            index = idx_add(
                idx_add(
                    idx_mul(IConst(expr.image.channels and expr.channel), nat_expr(rows * cols)),
                    idx_mul(idx_add(y, IConst(expr.dy)), nat_expr(cols)),
                ),
                idx_add(x, IConst(expr.dx)),
            )
            return Load(expr.image.name, index)
        if isinstance(expr, FuncRef):
            func = expr.func
            if func.is_scheduled:
                buf, width, rng = self.storages[func]
                row = idx_mod(idx_add(y, IConst(expr.dy)), IConst(rng.fold))
                col = idx_add(x, IConst(expr.dx - rng.dx_min))
                index = idx_add(idx_mul(row, nat_expr(width + _PAD)), col)
                return Load(buf, index)
            if func.expr is None:
                raise HalideLowerError(f"{func.name} used but not defined")
            return self.eval_expr(
                func.expr,
                idx_add(x, IConst(expr.dx)),
                idx_add(y, IConst(expr.dy)),
                ranges,
            )
        raise HalideLowerError(f"cannot evaluate {expr!r}")

    # -- row computation ----------------------------------------------------

    def compute_row(
        self, group: list[Func], row_expr: IExpr, ranges, vec_width
    ) -> None:
        """Emit the x-loop computing one row of each func in the group
        (compute_with fusion computes several funcs in one loop)."""
        leader = group[0]
        rng = ranges[leader]
        width = rng.width(self.m)
        xi = self.fresh("hx")

        def store_of(func: Func, x_index: IExpr, value: IExpr):
            buf, w, r = self.storages[func]
            row = idx_mod(row_expr, IConst(r.fold))
            return Store(buf, idx_add(idx_mul(row, nat_expr(w + _PAD)), x_index), value)

        # scalar element expressions at symbolic xi (storage x' = xi; the
        # evaluation coordinate is x = xi + dx_min)
        values = []
        for func in group:
            x_eval = idx_add(Var(xi), IConst(rng.dx_min))
            values.append(self.eval_expr(func.expr, x_eval, row_expr, ranges))

        if vec_width:
            try:
                strip = self.fresh("hv")
                base = idx_mul(Var(strip), IConst(vec_width))
                _, vec_values = vectorize_stmts(
                    [], values, xi, base, vec_width, lambda rest: False
                )
                self.push()
                for func, value in zip(group, vec_values):
                    buf, w, r = self.storages[func]
                    row = idx_mod(row_expr, IConst(r.fold))
                    index = idx_add(idx_mul(row, nat_expr(w + _PAD)), base)
                    self.emit(VStore(buf, index, value, vec_width, aligned=False))
                body = self.pop()
                strips = width // nat(vec_width)
                self.emit(For(strip, nat_expr(strips), body, LoopKind.VEC))
                tail = width % nat(vec_width)
                tvar = self.fresh("ht")
                self.push()
                tail_x = idx_add(idx_mul(nat_expr(strips), IConst(vec_width)), Var(tvar))
                for func in group:
                    x_eval = idx_add(tail_x, IConst(rng.dx_min))
                    self.emit(
                        store_of(func, tail_x, self.eval_expr(func.expr, x_eval, row_expr, ranges))
                    )
                tail_body = self.pop()
                self.emit(For(tvar, nat_expr(tail), tail_body, LoopKind.SEQ))
                return
            except VectorizeError:
                pass
        loop = self.fresh("hxl")
        self.push()
        for func in group:
            x_eval = idx_add(Var(loop), IConst(rng.dx_min))
            self.emit(
                store_of(func, Var(loop), self.eval_expr(func.expr, x_eval, row_expr, ranges))
            )
        body = self.pop()
        self.emit(For(loop, nat_expr(width), body, LoopKind.SEQ))


def compile_halide(
    output: Func,
    inputs: Mapping[str, tuple[ImageParam, Nat, Nat]],
    n: Nat,
    m: Nat,
    name: str = "halide",
) -> ImpProgram:
    """Lower a scheduled pipeline to a single-kernel imperative program.

    ``inputs`` maps image names to (param, rows, cols).  ``n``/``m`` are
    the (symbolic) output sizes.  Records a compile profile (``lower`` /
    ``vectorize`` / ``fold`` / ``cse`` phases) under ``name`` when
    :func:`repro.observe.profiling` is active.
    """
    from repro.observe.profile import compile_profile, phase

    with compile_profile(name):
        with phase("lower"):
            prog = _lower_halide(output, inputs, n, m, name)
        return cse_program(fold_program(prog))


def _lower_halide(
    output: Func,
    inputs: Mapping[str, tuple[ImageParam, Nat, Nat]],
    n: Nat,
    m: Nat,
    name: str,
) -> ImpProgram:
    ranges = _infer_bounds(output)
    producers = _topo_producers(output, ranges)
    gen = _Gen(dict(inputs), m)

    split = output.schedule.split_factor or 1
    vec = output.schedule.vectorize_width

    # Group compute_with followers under their leaders.
    groups: list[list[Func]] = []
    followers: dict[Func, list[Func]] = {}
    for func in producers:
        sibling = func.schedule.compute_with
        if sibling is not None:
            followers.setdefault(sibling, []).append(func)
    for func in producers:
        if func.schedule.compute_with is not None:
            continue
        groups.append([func] + followers.get(func, []))

    # Chunked loop nest: yo parallel over n/split, yi sequential.
    chunk_count = n // nat(split)
    yo = "yo"
    gen.push()

    # Per-chunk storage allocation (each thread owns its line buffers).
    for func in producers:
        rng = ranges[func]
        width = rng.width(m)
        buf = gen.fresh(f"{func.name}_buf")
        size = (width + _PAD) * rng.fold
        buffer = Buffer(buf, size, pad=_PAD)
        gen.buffers.append(buffer)
        gen.emit(AllocStmt(buffer))
        gen.storages[func] = (buf, width, rng)

    y_base = idx_mul(Var(yo), IConst(split))

    # Prologue: rows [dy_min, dy_max) of each producer for the first output
    # row of the chunk.
    gen.emit(Comment("sliding-window prologue"))
    for group in groups:
        rng = ranges[group[0]]
        for r in range(rng.dy_min, rng.dy_max):
            gen.compute_row(
                group,
                idx_add(y_base, IConst(r)),
                ranges,
                group[0].schedule.vectorize_width,
            )

    # Steady state: one new row per producer per output row.
    yi = "yi"
    gen.push()
    y = idx_add(y_base, Var(yi))
    for group in groups:
        rng = ranges[group[0]]
        gen.compute_row(
            group,
            idx_add(y, IConst(rng.dy_max)),
            ranges,
            group[0].schedule.vectorize_width,
        )
    # Output row.
    xi = gen.fresh("ox")
    out_value = gen.eval_expr(output.expr, Var(xi), y, ranges)
    emitted = False
    if vec:
        try:
            strip = gen.fresh("ov")
            base = idx_mul(Var(strip), IConst(vec))
            _, [vec_value] = vectorize_stmts([], [out_value], xi, base, vec, lambda rest: False)
            gen.push()
            out_index = idx_add(idx_mul(y, nat_expr(m)), base)
            gen.emit(VStore("out", out_index, vec_value, vec, aligned=False))
            body = gen.pop()
            gen.emit(For(strip, nat_expr(m // nat(vec)), body, LoopKind.VEC))
            tail = m % nat(vec)
            tvar = gen.fresh("ot")
            gen.push()
            tail_x = idx_add(idx_mul(nat_expr(m // nat(vec)), IConst(vec)), Var(tvar))
            tail_value = gen.eval_expr(output.expr, tail_x, y, ranges)
            gen.emit(Store("out", idx_add(idx_mul(y, nat_expr(m)), tail_x), tail_value))
            tail_body = gen.pop()
            gen.emit(For(tvar, nat_expr(tail), tail_body, LoopKind.SEQ))
            emitted = True
        except VectorizeError:
            emitted = False
    if not emitted:
        xl = gen.fresh("oxl")
        gen.push()
        value = gen.eval_expr(output.expr, Var(xl), y, ranges)
        gen.emit(Store("out", idx_add(idx_mul(y, nat_expr(m)), Var(xl)), value))
        body = gen.pop()
        gen.emit(For(xl, nat_expr(m), body, LoopKind.SEQ))

    yi_body = gen.pop()
    gen.emit(For(yi, IConst(split), yi_body, LoopKind.SEQ))
    chunk_body = gen.pop()
    kind = LoopKind.PARALLEL if output.schedule.parallel_outer else LoopKind.SEQ
    top = For(yo, nat_expr(chunk_count), chunk_body, kind)

    input_buffers = [
        Buffer(iname, nat(param.channels) * rows * cols, pad=_PAD)
        for iname, (param, rows, cols) in inputs.items()
    ]
    out_buffer = Buffer("out", n * m, pad=_PAD)
    fn = ImpFunction(
        name=name,
        inputs=input_buffers,
        output=out_buffer,
        size_vars=sorted((n * m).free_vars()),
        body=Block([top]),
        temporaries=gen.buffers,
    )
    prog = ImpProgram(name=name, functions=[fn], size_vars=sorted((n * m).free_vars()))
    prog.size_constraints = []
    prog.vector_fallbacks = []
    return prog
