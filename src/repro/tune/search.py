"""Cost-guided beam search over ELEVATE rewrite sequences.

The search explores sequences of :class:`~repro.tune.space.Action` moves
from a seed expression.  Each step expands every beam state with every
pool action, then keeps the ``beam`` cheapest states seen so far:

* **applicability** — an action whose probe rule matches nowhere, or
  whose strategy returns ``Failure``, is skipped (``tune.pruned.
  inapplicable``);
* **progress** — a rewrite that produces an alpha-equivalent state
  (identical :func:`~repro.engine.hashing.structural_hash`) is a no-op
  and discarded (``tune.pruned.noop``); a state whose hash was already
  visited anywhere in the search is a duplicate (``tune.pruned.
  duplicate``);
* **well-typedness** — candidates are re-type-checked after every move;
  a :class:`~repro.rise.types.TypeError_` prunes the candidate before it
  ever reaches scoring (``tune.pruned.ill_typed``), and runaway
  normalization (:class:`~repro.elevate.core.StrategyError`) prunes it
  as non-normalizing;
* **scoring** — survivors are completed with the fixed lowering suffix
  (:func:`~repro.tune.space.completion_steps`), lowered to imperative
  code, and scored by a :class:`~repro.perf.objective.CostObjective`.

Expansion and scoring are memoized through :class:`~repro.engine.memo.
Memo` tables keyed by structural hashes, so revisited states (different
action orders frequently commute) cost a dict lookup.  The search is
deterministic: ties sort by candidate hash, and no randomness is drawn —
``seed`` names the verification-input seed recorded in logs so a search
and its oracle check replay together.

Search state serializes to a JSON log after every step; an interrupted
search resumes by replaying the logged action sequences (cheap, because
every transition is memoized and the rewrites are deterministic).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Sequence

from repro.codegen.views import CodegenError
from repro.elevate.core import Failure, StrategyError, Success
from repro.engine.hashing import structural_hash
from repro.engine.memo import Memo
from repro.observe.core import span
from repro.observe.metrics import inc, set_gauge
from repro.perf.objective import CostObjective
from repro.rise.expr import Expr
from repro.rise.typecheck import infer_types
from repro.rise.types import Type, TypeError_
from repro.rules.match import rewrite_sites
from repro.tune.space import (
    Action,
    completion_steps,
    default_action_pool,
    resolve_actions,
)

__all__ = ["SEARCH_LOG_SCHEMA", "TuneConfig", "Candidate", "TuneResult", "beam_search"]

#: Schema identifier of the resumable search log.
SEARCH_LOG_SCHEMA = "repro.tune.log/v1"

#: Sentinel stored in memo tables for states that were pruned, keyed to
#: the prune counter it incremented (so replays re-count consistently).
_PRUNED = "pruned"


@dataclass(frozen=True)
class TuneConfig:
    """Search knobs: beam width, step budget, seed and the action grids."""

    beam: int = 4
    steps: int = 6
    seed: int = 0
    chunks: tuple = (16, 32, 64)
    vecs: tuple = (4, 8)
    strips: tuple = (2,)

    def to_dict(self) -> dict:
        """JSON-ready form for search logs."""
        return {
            "beam": self.beam,
            "steps": self.steps,
            "seed": self.seed,
            "chunks": list(self.chunks),
            "vecs": list(self.vecs),
            "strips": list(self.strips),
        }


@dataclass
class Candidate:
    """One search state: an action sequence and the expression it reaches.

    ``cost_ms`` is the modeled runtime of the *completed* (lowered)
    candidate under the search objective; ``n_multiple``/``m_multiple``
    accumulate the divisibility constraints of the applied actions, so
    verification and wall-clock ranking can pick legal concrete sizes.
    """

    expr: Expr
    actions: tuple[str, ...]
    hash: str
    cost_ms: float
    n_multiple: int = 1
    m_multiple: int = 1

    def to_dict(self) -> dict:
        """JSON-ready summary (the expression is recoverable by replay)."""
        return {
            "actions": list(self.actions),
            "hash": self.hash,
            "cost_ms": round(self.cost_ms, 6),
            "n_multiple": self.n_multiple,
            "m_multiple": self.m_multiple,
        }


@dataclass
class TuneResult:
    """Outcome of a search: the best candidate, the final frontier and
    the accounting needed to audit or resume the run."""

    best: Candidate
    frontier: list[Candidate]
    history: list[dict]
    stats: dict
    objective: str
    config: TuneConfig
    seed_hash: str

    def log_document(self) -> dict:
        """The JSON search log (see :data:`SEARCH_LOG_SCHEMA`)."""
        return {
            "schema": SEARCH_LOG_SCHEMA,
            "config": self.config.to_dict(),
            "objective": self.objective,
            "seed_hash": self.seed_hash,
            "steps": self.history,
            "frontier": [c.to_dict() for c in self.frontier],
            "best": self.best.to_dict(),
            "stats": self.stats,
            "completed_steps": len(self.history),
        }


class _Session:
    """Mutable search state shared by expansion and scoring."""

    def __init__(self, type_env, pool, objective):
        self.type_env = dict(type_env)
        self.pool = pool
        self.objective = objective
        self.completion = completion_steps(self.type_env)
        self.transitions = Memo("tune.memo.transition", maxsize=8192)
        self.scores = Memo("tune.memo.score", maxsize=8192)
        self.seen: set[str] = set()
        self.stats = {
            "expanded": 0,
            "scored": 0,
            "pruned_inapplicable": 0,
            "pruned_noop": 0,
            "pruned_duplicate": 0,
            "pruned_ill_typed": 0,
            "pruned_non_normalizing": 0,
            "pruned_unlowerable": 0,
            "pruned_unsizeable": 0,
        }

    def _prune(self, kind: str) -> None:
        self.stats[f"pruned_{kind}"] += 1
        inc(f"tune.pruned.{kind}")

    def score(self, expr: Expr, expr_hash: str) -> float | None:
        """Modeled cost of the completed+lowered candidate, memoized by
        ``(hash, objective identity)``; ``None`` when completion or
        lowering prunes it."""
        key = (expr_hash, self.objective.identity)
        if key in self.scores:
            return self.scores.get(key)

        def produce():
            completed = expr
            try:
                for step in self.completion:
                    completed = step.apply(completed)
            except StrategyError:
                self._prune("non_normalizing")
                return None
            from repro.codegen.lower import compile_program

            try:
                program = compile_program(
                    completed, dict(self.type_env), f"tuned_{expr_hash[:10]}"
                )
            except (CodegenError, TypeError_, StrategyError):
                self._prune("unlowerable")
                return None
            try:
                cost = self.objective.score(program)
            except ValueError:
                # the candidate's size constraints (e.g. a split applied
                # to a stage whose extent is n+4) have no solution at the
                # objective's concrete sizes — not a runnable schedule
                self._prune("unsizeable")
                return None
            self.stats["scored"] += 1
            inc("tune.scored")
            return cost

        return self.scores.get_or(key, produce)

    def expand(self, cand: Candidate, action: Action) -> Candidate | None:
        """Apply one action to one beam state; ``None`` when pruned."""
        self.stats["expanded"] += 1
        inc("tune.expanded")
        key = (cand.hash, action.name)
        cached = self.transitions.get(key, default=_PRUNED)
        if cached is not _PRUNED and cached is None:
            return None  # memoized prune
        if cached is not _PRUNED:
            child_expr, child_hash = cached
        else:
            if action.probe is not None and not rewrite_sites(
                cand.expr, action.probe, limit=1
            ):
                self._prune("inapplicable")
                self.transitions.put(key, None)
                return None
            try:
                result = action.strategy(cand.expr)
            except StrategyError:
                self._prune("non_normalizing")
                self.transitions.put(key, None)
                return None
            except TypeError_:
                self._prune("ill_typed")
                self.transitions.put(key, None)
                return None
            if isinstance(result, Failure):
                self._prune("inapplicable")
                self.transitions.put(key, None)
                return None
            assert isinstance(result, Success)
            child_expr = result.expr
            child_hash = structural_hash(child_expr)
            if child_hash == cand.hash:
                self._prune("noop")
                self.transitions.put(key, None)
                return None
            try:
                infer_types(child_expr, self.type_env, strict=False)
            except TypeError_:
                self._prune("ill_typed")
                self.transitions.put(key, None)
                return None
            self.transitions.put(key, (child_expr, child_hash))
        if child_hash in self.seen:
            self._prune("duplicate")
            return None
        cost = self.score(child_expr, child_hash)
        if cost is None:
            return None
        self.seen.add(child_hash)
        return Candidate(
            expr=child_expr,
            actions=cand.actions + (action.name,),
            hash=child_hash,
            cost_ms=cost,
            n_multiple=math.lcm(cand.n_multiple, action.n_multiple),
            m_multiple=math.lcm(cand.m_multiple, action.m_multiple),
        )


def _rank(cands: Sequence[Candidate]) -> list[Candidate]:
    return sorted(cands, key=lambda c: (c.cost_ms, c.hash, c.actions))


def _write_log(path, doc: dict) -> None:
    Path(path).write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")


def _load_resume(path, seed_hash: str, objective_id: str) -> dict | None:
    p = Path(path)
    if not p.is_file():
        return None
    doc = json.loads(p.read_text(encoding="utf-8"))
    if doc.get("schema") != SEARCH_LOG_SCHEMA:
        raise ValueError(f"{p}: not a search log (schema {doc.get('schema')!r})")
    if doc.get("seed_hash") != seed_hash or doc.get("objective") != objective_id:
        raise ValueError(
            f"{p}: log was produced for a different seed expression or "
            f"objective; refusing to resume"
        )
    return doc


def beam_search(
    seed_expr: Expr,
    type_env: Mapping[str, Type],
    config: TuneConfig | None = None,
    objective: CostObjective | None = None,
    pool: Sequence[Action] | None = None,
    log_path: str | Path | None = None,
    resume: bool = False,
) -> TuneResult:
    """Run the beam search; returns the best candidate and its audit trail.

    ``pool`` defaults to :func:`~repro.tune.space.default_action_pool`
    built from ``config``'s grids; ``objective`` to the default
    :class:`~repro.perf.objective.CostObjective`.  With ``log_path`` the
    search serializes its state to a JSON log after every step; with
    ``resume`` an existing log at that path (same seed expression and
    objective, checked by hash) is replayed — memoized transitions make
    the replay cheap — and the search continues from its recorded step.

    The search itself draws no randomness; ``config.seed`` is recorded
    so downstream verification uses matching inputs.  Search-session
    counters land in the metrics registry under ``tune.*``.
    """
    config = config or TuneConfig()
    objective = objective or CostObjective()
    if pool is None:
        pool = default_action_pool(
            type_env, chunks=config.chunks, vecs=config.vecs, strips=config.strips
        )
    session = _Session(type_env, pool, objective)
    seed_hash = structural_hash(seed_expr)
    root_cost = session.score(seed_expr, seed_hash)
    if root_cost is None:
        raise StrategyError("the seed expression itself fails completion/lowering")
    root = Candidate(expr=seed_expr, actions=(), hash=seed_hash, cost_ms=root_cost)
    session.seen.add(seed_hash)

    beam: list[Candidate] = [root]
    history: list[dict] = []
    start_step = 0

    resume_doc = (
        _load_resume(log_path, seed_hash, objective.identity)
        if (resume and log_path)
        else None
    )
    if resume_doc:
        replayed: list[Candidate] = []
        for entry in resume_doc.get("frontier", []):
            cand = root
            for act in resolve_actions(
                entry["actions"], type_env, config.chunks, config.vecs, config.strips
            ):
                nxt = session.expand(cand, act)
                if nxt is None:  # seen-set dedup during replay: rebuild by hash
                    cached = session.transitions.get((cand.hash, act.name))
                    if cached is None:
                        raise ValueError(
                            f"cannot replay logged actions {entry['actions']!r}"
                        )
                    child_expr, child_hash = cached
                    nxt = Candidate(
                        expr=child_expr,
                        actions=cand.actions + (act.name,),
                        hash=child_hash,
                        cost_ms=session.score(child_expr, child_hash),
                        n_multiple=math.lcm(cand.n_multiple, act.n_multiple),
                        m_multiple=math.lcm(cand.m_multiple, act.m_multiple),
                    )
                cand = nxt
            replayed.append(cand)
        if replayed:
            beam = _rank(replayed)[: config.beam]
        history = list(resume_doc.get("steps", []))
        start_step = int(resume_doc.get("completed_steps", len(history)))
        inc("tune.resumed")

    with span("tune.search", objective=objective.identity, beam=config.beam):
        for step in range(start_step, config.steps):
            expansions: list[Candidate] = []
            for cand in beam:
                for action in pool:
                    child = session.expand(cand, action)
                    if child is not None:
                        expansions.append(child)
            beam = _rank(list(beam) + expansions)[: config.beam]
            best = beam[0]
            set_gauge("tune.best_cost_ms", best.cost_ms)
            history.append(
                {
                    "step": step + 1,
                    "expansions": len(expansions),
                    "best_cost_ms": round(best.cost_ms, 6),
                    "beam": [c.to_dict() for c in beam],
                }
            )
            if log_path:
                partial = TuneResult(
                    best=best,
                    frontier=beam,
                    history=history,
                    stats=dict(session.stats),
                    objective=objective.identity,
                    config=config,
                    seed_hash=seed_hash,
                )
                _write_log(log_path, partial.log_document())

    stats = dict(session.stats)
    stats["transition_memo"] = session.transitions.stats()
    stats["score_memo"] = session.scores.stats()
    result = TuneResult(
        best=beam[0],
        frontier=beam,
        history=history,
        stats=stats,
        objective=objective.identity,
        config=config,
        seed_hash=seed_hash,
    )
    if log_path:
        _write_log(log_path, result.log_document())
    return result
