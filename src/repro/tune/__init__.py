"""Automated schedule discovery: beam search over ELEVATE rewrites.

The autotuner closes the loop the paper series points at — strategies
were designed to be *searched*, not only authored.  It composes the
repo's existing subsystems rather than growing new machinery:

* the search space is named macro-actions over :mod:`repro.rules`
  rewrites (:mod:`repro.tune.space`), probed for applicability through
  :func:`repro.rules.match.rewrite_sites`;
* candidates are scored by the analytic cost model via a frozen
  :class:`repro.perf.objective.CostObjective`;
* states are deduplicated and memoized through the engine's
  alpha-invariant :func:`~repro.engine.hashing.structural_hash` and
  :class:`~repro.engine.memo.Memo` tables;
* survivors are validated against the differential oracle
  (:mod:`repro.tune.verify`) before export;
* winners become ordinary :class:`~repro.strategies.schedules.Schedule`
  objects (:mod:`repro.tune.export`) and ``tuned|*`` cells in the
  benchmark trajectory.

Run it via ``tools/tune.py`` (resumable search logs, trajectory
recording) or programmatically::

    from repro.tune import TuneConfig, beam_search
    result = beam_search(harris(rgb), env, TuneConfig(beam=4, steps=6))
    sched = schedule_from_actions(result.best.actions, env)
"""

from repro.tune.export import (
    TUNED_CELL_PREFIX,
    discovered_name,
    handwritten_costs,
    schedule_from_actions,
    size_multiples,
    tuned_cells,
    wall_rank,
)
from repro.tune.search import (
    SEARCH_LOG_SCHEMA,
    Candidate,
    TuneConfig,
    TuneResult,
    beam_search,
)
from repro.tune.space import (
    Action,
    completion_steps,
    default_action_pool,
    resolve_actions,
)
from repro.tune.verify import make_inputs, verification_sizes, verify_schedule

__all__ = [
    "SEARCH_LOG_SCHEMA",
    "TUNED_CELL_PREFIX",
    "TuneConfig",
    "Candidate",
    "TuneResult",
    "beam_search",
    "Action",
    "default_action_pool",
    "completion_steps",
    "resolve_actions",
    "discovered_name",
    "schedule_from_actions",
    "size_multiples",
    "tuned_cells",
    "handwritten_costs",
    "wall_rank",
    "verify_schedule",
    "verification_sizes",
    "make_inputs",
]
