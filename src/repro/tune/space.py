"""The autotuner's search space: named macro-actions over ELEVATE rewrites.

A search step is not a single rule application.  Raw rules compose into
astronomically many mostly-equivalent sequences, and the paper's own
schedules show the useful granularity: *macro* moves ("split the
pipeline and parallelize it", "separate the convolutions") that bundle
one optimization decision with the cleanup normalization it needs.  Each
:class:`Action` wraps such a move as an ELEVATE strategy, optionally
paired with a cheap *probe* rule the search uses (via
:func:`repro.rules.match.rewrite_sites`) to count applicable sites
before paying for the full rewrite.

The :func:`default_action_pool` enumerates the paper's optimization
vocabulary with small parameter grids (chunk sizes, vector widths, strip
factors); :func:`completion_steps` is the fixed lowering suffix applied
to every candidate before scoring — the search explores *optimization*
decisions, and completion makes any prefix of them executable (or fails,
pruning candidates that cannot be lowered).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.elevate.core import Strategy, normalize, seq, try_
from repro.rise.types import AddressSpace, Type
from repro.rules.algorithmic import let_inline
from repro.rules.conv import (
    rotate_values_consume,
    separate_conv_line,
    separate_conv_line_zip,
)
from repro.rules.lowering import slide_to_circular_buffer
from repro.strategies.harris import (
    circular_buffer_stages,
    fuse_operators,
    parallel,
    sequential,
    share_stages,
    simplify,
    split_pipeline,
    strip_parallel,
    unroll_reductions,
    use_private_memory,
    vectorize_reductions,
)

__all__ = [
    "Action",
    "DEFAULT_CHUNK_GRID",
    "DEFAULT_VEC_GRID",
    "DEFAULT_STRIP_GRID",
    "default_action_pool",
    "completion_steps",
    "resolve_actions",
]

#: Chunk-size grid for the split actions (lines per parallel chunk).
DEFAULT_CHUNK_GRID = (16, 32, 64)

#: Vector-width grid (f32 lanes) for the vectorization actions.
DEFAULT_VEC_GRID = (4, 8)

#: Strip-factor grid (chunks per thread strip) for strip parallelization.
DEFAULT_STRIP_GRID = (2,)


@dataclass
class Action:
    """One named move in the search space.

    ``strategy`` performs the move (a full-program ELEVATE strategy); a
    ``Failure`` from it marks the action inapplicable in the current
    state, which the search prunes without error.  ``probe``, when set,
    is a cheap leaf rule whose :func:`~repro.rules.match.rewrite_sites`
    count predicts applicability — zero sites lets the search skip the
    strategy entirely.  ``n_multiple`` / ``m_multiple`` record the
    divisibility this action imposes on the output sizes (a chunked
    split needs ``chunk | n``; a vectorized line needs ``vec | m``), so
    verification can pick the smallest legal concrete sizes for any
    action sequence.
    """

    name: str
    strategy: Strategy
    probe: Strategy | None = None
    n_multiple: int = 1
    m_multiple: int = 1


def completion_steps(type_env: Mapping[str, Type]) -> list[Strategy]:
    """The fixed lowering suffix appended to every candidate.

    Inline the dataflow lets (a no-op after ``fuse``), clean up, lower
    the remaining high-level patterns to sequential loops, pin rotation
    windows to private memory and unroll the small reductions — the
    steps every hand schedule ends with.  Scoring and export both use
    this suffix, so the cost the search minimizes is the cost of the
    schedule it ultimately exports.
    """
    del type_env  # completion is untyped today; keep the typed signature
    inline = normalize(let_inline)
    return [
        inline,
        simplify,
        sequential,
        use_private_memory(),
        unroll_reductions,
    ]


def default_action_pool(
    type_env: Mapping[str, Type],
    chunks: Sequence[int] = DEFAULT_CHUNK_GRID,
    vecs: Sequence[int] = DEFAULT_VEC_GRID,
    strips: Sequence[int] = DEFAULT_STRIP_GRID,
) -> list[Action]:
    """The paper-vocabulary action pool for a program typed by ``type_env``.

    Each action bundles one optimization decision with its natural
    cleanup (the generic sharing pass — the paper's ``harrisIxWithIy`` —
    after moves that duplicate producers), mirroring how listings 5 and
    9 compose.  Nothing in the pool is specific to Harris: split, strip
    and vector factors are grid parameters, the separation rules match
    any constant-size stencil, and the registry's
    :func:`~repro.pipelines.registry.strategy_coverage` reports which
    moves fire on which registered pipeline.  The vocabulary:

    * ``fuse`` — inline and fuse the dataflow graph into a line pipeline;
    * ``split(c)+parallel`` — chunk the output into ``c``-line chunks and
      run chunks across global threads;
    * ``separateConvolutions`` — factor the 2D stencils into vertical x
      horizontal passes;
    * ``vectorize(w)`` — SIMD-vectorize the per-line loops at width ``w``;
    * ``circularBufferStages`` — buffer lines between stages;
    * ``rotateValues`` — consume separated convolutions through rotating
      register windows;
    * ``stripParallel(k)`` — regroup the global chunk map into per-thread
      strips of ``k`` chunks.

    The grids keep the space small but genuinely multi-choice: the
    search must discover both the *order* of moves and the *parameters*
    the hand schedules hard-code.
    """
    pool: list[Action] = [
        Action("fuse", seq(fuse_operators, share_stages)),
    ]
    for c in chunks:
        pool.append(
            Action(
                f"split({c})+parallel",
                seq(seq(split_pipeline(c), parallel), seq(simplify, share_stages)),
                n_multiple=int(c),
            )
        )
    sepconv = separate_conv_line | separate_conv_line_zip
    pool.append(
        Action(
            "separateConvolutions",
            normalize(sepconv),
            probe=sepconv,
        )
    )
    for w in vecs:
        pool.append(
            Action(
                f"vectorize({w})",
                seq(vectorize_reductions(w, type_env), share_stages),
                m_multiple=int(w),
            )
        )
    pool.append(
        Action(
            "circularBufferStages",
            circular_buffer_stages,
            probe=slide_to_circular_buffer(AddressSpace.GLOBAL),
        )
    )
    pool.append(
        Action(
            "rotateValues",
            normalize(rotate_values_consume),
            probe=rotate_values_consume,
        )
    )
    for k in strips:
        pool.append(
            Action(
                f"stripParallel({k})",
                strip_parallel(k),
                n_multiple=int(k),
            )
        )
    # Name each strategy after its action so search logs, schedule step
    # names and strategy identities all agree.  Safe because every
    # strategy here is either freshly composed or (circularBufferStages)
    # a shared object whose name already equals the action name.
    for action in pool:
        action.strategy.name = action.name
    return pool


def resolve_actions(
    names: Sequence[str],
    type_env: Mapping[str, Type],
    chunks: Sequence[int] = DEFAULT_CHUNK_GRID,
    vecs: Sequence[int] = DEFAULT_VEC_GRID,
    strips: Sequence[int] = DEFAULT_STRIP_GRID,
) -> list[Action]:
    """Resolve recorded action names back to live :class:`Action` objects.

    The inverse of a search log / exported schedule: given the names a
    search recorded, rebuild the actions against a (possibly different)
    ``type_env``.  Unknown names raise ``KeyError`` listing the pool, so
    a log replayed against a mismatched grid fails loudly instead of
    silently skipping moves.
    """
    pool = {
        a.name: a for a in default_action_pool(type_env, chunks, vecs, strips)
    }
    missing = [n for n in names if n not in pool]
    if missing:
        known = ", ".join(sorted(pool))
        raise KeyError(f"unknown action(s) {missing!r} (known: {known})")
    return [pool[n] for n in names]
