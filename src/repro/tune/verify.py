"""Differential validation of discovered schedules.

The cost model ranks candidates; it must never be the only thing
standing between a search and a wrong program.  Before a discovered
schedule is exported or recorded, this module compiles the *same* seed
expression twice — once under the deliberately unoptimized
``naive`` schedule (the reference), once under the discovered schedule —
runs both on seeded random inputs, and compares the outputs through
:func:`repro.verify.oracle.equivalence_report`, the same hardened
comparison (shape, non-finite and value checks) the fuzzing oracle uses.
When a host C compiler is available the discovered schedule is checked
through the C backend too, so the verdict covers the backend that
wall-clock ranking would run.

Sizes are chosen per candidate: every action records the divisibility it
imposes (``chunk | n``, ``vec | m``), and :func:`verification_sizes`
picks the smallest legal sizes above a floor — small enough that the
Python backend verifies in well under a second, large enough that every
chunk/strip boundary is exercised at least once.
"""

from __future__ import annotations

import math
from typing import Mapping

import numpy as np

from repro.engine.pipeline import Engine
from repro.rise.types import ArrayType, Type
from repro.strategies.schedules import Schedule, naive_version
from repro.verify.oracle import equivalence_report

__all__ = ["verification_sizes", "make_inputs", "verify_schedule"]


def verification_sizes(
    n_multiple: int = 1, m_multiple: int = 1, floor: int = 8
) -> dict[str, int]:
    """The smallest output sizes >= ``floor`` satisfying both divisibility
    constraints — two chunk rows when a split is present, so the chunk
    *boundary* (where recomputation bugs live) is inside the image."""
    n_mult = max(1, int(n_multiple))
    m_mult = max(1, int(m_multiple))
    n = n_mult * max(1, math.ceil(floor / n_mult))
    if n == n_mult and n_mult > 1:
        n = 2 * n_mult  # at least two chunks, so borders are exercised
    m = m_mult * max(1, math.ceil(floor / m_mult))
    return {"n": n, "m": m}


def make_inputs(
    type_env: Mapping[str, Type], sizes: Mapping[str, int], seed: int = 0
) -> dict[str, np.ndarray]:
    """Seeded random float32 inputs for every free identifier.

    Shapes come from evaluating each identifier's (possibly symbolic)
    array type under ``sizes`` — the verification twin of
    :func:`repro.image.synthetic_rgb`, but for arbitrary type
    environments.
    """
    rng = np.random.default_rng(seed)
    inputs: dict[str, np.ndarray] = {}
    for name, ty in type_env.items():
        dims: list[int] = []
        t = ty
        while isinstance(t, ArrayType):
            dims.append(int(t.size.evaluate(dict(sizes))))
            t = t.elem
        inputs[name] = rng.random(tuple(dims), dtype=np.float32)
    return inputs


def verify_schedule(
    seed_expr,
    schedule: Schedule,
    type_env: Mapping[str, Type],
    sizes: Mapping[str, int] | None = None,
    seed: int = 0,
    rtol: float = 1e-3,
    atol: float = 1e-4,
    engine: Engine | None = None,
    check_c: bool | None = None,
) -> dict:
    """Differentially validate ``schedule`` against the naive reference.

    Returns a JSON-ready verdict::

        {"ok": bool, "sizes": {...}, "seed": 0,
         "checks": [{"backend": "python", "report": None}, ...]}

    ``report`` is ``None`` on agreement, else the mismatch description
    from :func:`~repro.verify.oracle.equivalence_report`.  A compile or
    run crash is itself a failing check (``kind: "crash"``), matching
    the metamorphic oracle's convention.  Tolerances default looser than
    the oracle's float64 interpreter checks: schedules legitimately
    reorder float32 arithmetic (the paper's own PSNR argument for
    ``cbuf+rot``).  ``check_c`` defaults to host-compiler availability.
    """
    from repro.exec.cbridge import have_c_compiler

    eng = engine if engine is not None else Engine()
    sizes = dict(sizes or verification_sizes())
    inputs = make_inputs(type_env, sizes, seed=seed)
    if check_c is None:
        check_c = have_c_compiler()

    def run_once(strategy, backend: str):
        pipeline = eng.compile(
            seed_expr,
            strategy=strategy,
            type_env=dict(type_env),
            backend=backend,
            sizes=sizes,
            name=f"verify_{strategy.name.replace('-', '_')}",
        )
        return pipeline.run(**{k: v.copy() for k, v in inputs.items()})

    checks: list[dict] = []
    try:
        reference = run_once(naive_version(dict(type_env)), "python")
    except Exception as exc:  # reference must run; anything else is fatal
        return {
            "ok": False,
            "sizes": sizes,
            "seed": seed,
            "checks": [
                {
                    "backend": "python",
                    "report": {"kind": "crash", "error": f"reference: {exc}"},
                }
            ],
        }
    backends = ["python"] + (["c"] if check_c else [])
    for backend in backends:
        try:
            out = run_once(schedule, backend)
            report = equivalence_report(reference, out, rtol=rtol, atol=atol)
        except Exception as exc:
            report = {"kind": "crash", "error": f"{type(exc).__name__}: {exc}"}
        checks.append({"backend": backend, "report": report})
    return {
        "ok": all(c["report"] is None for c in checks),
        "sizes": sizes,
        "seed": seed,
        "checks": checks,
    }
