"""Turning search results into replayable schedules and benchmark cells.

A search result is an action-name sequence.  This module makes it a
first-class artifact:

* :func:`schedule_from_actions` — rebuild the exact
  :class:`~repro.strategies.schedules.Schedule` (actions + the fixed
  completion suffix) from recorded names, under a deterministic
  ``tuned-<digest>`` name, so a discovered schedule replays anywhere the
  hand-written ones do (``repro.compile(expr, strategy=sched, ...)``);
* :func:`tuned_cells` — cost the discovered schedule on the fig. 8
  machine x image grid as ``tuned|<name>|<machine>|<image>`` trajectory
  cells (informational by default in the regression gate, like measured
  ``wall|`` cells);
* :func:`handwritten_costs` — the hand-written schedules' scores under
  the same objective, the bar a discovery must clear;
* :func:`wall_rank` — optional measured ranking of finalists through
  the engine's :class:`~repro.engine.batch.BatchRunner`.
"""

from __future__ import annotations

import hashlib
import math
from typing import Mapping, Sequence

from repro.bench.regress import TUNED_CELL_PREFIX
from repro.engine.pipeline import Engine
from repro.image import PAPER_IMAGE_LARGE, PAPER_IMAGE_SMALL, ImageSpec
from repro.perf.machines import ALL_MACHINES, Machine
from repro.perf.objective import CostObjective
from repro.rise.types import Type
from repro.strategies.schedules import (
    Schedule,
    cbuf_rrot_version,
    cbuf_version,
    naive_version,
)
from repro.tune.space import (
    DEFAULT_CHUNK_GRID,
    DEFAULT_STRIP_GRID,
    DEFAULT_VEC_GRID,
    completion_steps,
    resolve_actions,
)

__all__ = [
    "TUNED_CELL_PREFIX",
    "discovered_name",
    "schedule_from_actions",
    "size_multiples",
    "tuned_cells",
    "handwritten_costs",
    "wall_rank",
]

def discovered_name(action_names: Sequence[str]) -> str:
    """Deterministic schedule name for an action sequence:
    ``tuned-<8 hex chars of blake2b over the names>``."""
    digest = hashlib.blake2b(
        "|".join(action_names).encode("utf-8"), digest_size=4
    ).hexdigest()
    return f"tuned-{digest}"


def schedule_from_actions(
    action_names: Sequence[str],
    type_env: Mapping[str, Type],
    name: str | None = None,
    chunks: Sequence[int] = DEFAULT_CHUNK_GRID,
    vecs: Sequence[int] = DEFAULT_VEC_GRID,
    strips: Sequence[int] = DEFAULT_STRIP_GRID,
) -> Schedule:
    """Rebuild the runnable schedule a search discovered.

    The schedule's steps are the resolved action strategies followed by
    the same :func:`~repro.tune.space.completion_steps` the search
    scored with, so the exported schedule is exactly the program the
    search ranked — not a re-derivation that might diverge.
    """
    actions = resolve_actions(action_names, type_env, chunks, vecs, strips)
    steps = [a.strategy for a in actions] + completion_steps(type_env)
    return Schedule(name=name or discovered_name(action_names), steps=steps)


def size_multiples(
    action_names: Sequence[str],
    type_env: Mapping[str, Type],
    chunks: Sequence[int] = DEFAULT_CHUNK_GRID,
    vecs: Sequence[int] = DEFAULT_VEC_GRID,
    strips: Sequence[int] = DEFAULT_STRIP_GRID,
) -> tuple[int, int]:
    """The ``(n, m)`` divisibility an action sequence imposes on sizes."""
    n_mult = m_mult = 1
    for a in resolve_actions(action_names, type_env, chunks, vecs, strips):
        n_mult = math.lcm(n_mult, a.n_multiple)
        m_mult = math.lcm(m_mult, a.m_multiple)
    return n_mult, m_mult


def _padded(spec: ImageSpec, n_mult: int, m_mult: int) -> dict[str, int]:
    n = max(n_mult, math.ceil((spec.height - 4) / n_mult) * n_mult)
    m = max(m_mult, math.ceil((spec.width - 4) / m_mult) * m_mult)
    return {"n": n, "m": m}


def tuned_cells(
    action_names: Sequence[str],
    seed_expr,
    type_env: Mapping[str, Type],
    label: str | None = None,
    machines: Sequence[Machine] | None = None,
    images: Sequence[ImageSpec] | None = None,
    engine: Engine | None = None,
    runtime_kind: str = "opencl",
) -> dict[str, float]:
    """Cost a discovered schedule on the benchmark grid.

    Returns ``"tuned|<label>|<machine>|<image>" -> modeled ms`` cells for
    the trajectory ledger, one per (machine, paper image) pair, with
    sizes padded to the schedule's own divisibility (the same rounding
    option the fig. 8 grid applies for the hand schedules).
    """
    from repro.perf.cost import estimate_runtime_ms

    machines = list(machines or ALL_MACHINES)
    images = list(images or [PAPER_IMAGE_SMALL, PAPER_IMAGE_LARGE])
    schedule = schedule_from_actions(action_names, type_env)
    label = label or schedule.name
    n_mult, m_mult = size_multiples(action_names, type_env)
    eng = engine if engine is not None else Engine()
    program = eng.compile(
        seed_expr,
        strategy=schedule,
        type_env=dict(type_env),
        name=label.replace("-", "_"),
    ).program
    cells: dict[str, float] = {}
    for machine in machines:
        for image in images:
            sizes = _padded(image, n_mult, m_mult)
            report = estimate_runtime_ms(program, sizes, machine, runtime_kind)
            cells[f"{TUNED_CELL_PREFIX}{label}|{machine.name}|{image.name}"] = round(
                report.runtime_ms, 6
            )
    return cells


def handwritten_costs(
    seed_expr,
    type_env: Mapping[str, Type],
    objective: CostObjective | None = None,
    engine: Engine | None = None,
) -> dict[str, float]:
    """Objective scores of the hand-written schedules — the bar to clear.

    Returns ``schedule name -> modeled ms`` for ``naive``, ``cbuf`` and
    ``cbuf+rot`` under exactly the search objective, so "matches or
    beats ``cbuf+rot``" is a comparison of like with like.
    """
    objective = objective or CostObjective()
    eng = engine if engine is not None else Engine()
    out: dict[str, float] = {}
    for sched in (
        naive_version(dict(type_env)),
        cbuf_version(dict(type_env)),
        cbuf_rrot_version(dict(type_env)),
    ):
        program = eng.compile(
            seed_expr,
            strategy=sched,
            type_env=dict(type_env),
            name=sched.name.replace("-", "_"),
        ).program
        out[sched.name] = objective.score(program)
    return out


def wall_rank(
    schedules: Mapping[str, Schedule],
    seed_expr,
    type_env: Mapping[str, Type],
    sizes: Mapping[str, int],
    inputs: Mapping[str, "object"],
    repeats: int = 3,
    backend: str | None = None,
    engine: Engine | None = None,
) -> dict[str, float]:
    """Measured wall-clock ranking of finalist schedules.

    Compiles each schedule once (C backend when a host compiler exists,
    Python otherwise) and batches ``repeats`` identical runs through
    :meth:`~repro.engine.pipeline.CompiledPipeline.run_batch`, taking the
    min item latency — the same min-of-k convention as the wall-clock
    bench grid.  Returns ``schedule name -> ms``, cheapest first.
    """
    from repro.exec.cbridge import have_c_compiler

    if backend is None:
        backend = "c" if have_c_compiler() else "python"
    eng = engine if engine is not None else Engine()
    ranked: dict[str, float] = {}
    for name, sched in schedules.items():
        pipeline = eng.compile(
            seed_expr,
            strategy=sched,
            type_env=dict(type_env),
            backend=backend,
            sizes=dict(sizes),
            name=name.replace("-", "_"),
        )
        batch = pipeline.run_batch([dict(inputs) for _ in range(max(1, repeats))])
        ranked[name] = min(batch.item_wall_ms)
    return dict(sorted(ranked.items(), key=lambda kv: kv[1]))
