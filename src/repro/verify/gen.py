"""Seeded, type-directed random generation of well-typed RISE programs.

The generator builds programs as *stage pipelines*: starting from one or
two free input arrays, it repeatedly picks a transformation stage from
the menu of stages applicable to the current (inferred) type — map over
scalars, ``slide``/``split``/``join``/``transpose`` for structure,
``zip``/``unzip``/projections for tuples, ``asVector``/``mapVec``/
``asScalar`` for SIMD vectors, and ``reduce`` for contraction.  Because
every stage is chosen from a type-directed menu, candidates are
well-typed by construction; the final :func:`infer_types` call is a
belt-and-braces validation whose (rare) rejections are counted as
*discards* so the discard rate can be asserted to stay near zero.

Determinism contract: one ``random.Random(seed)`` drives every decision,
so the same seed always yields the same program — and because
:func:`repro.engine.hashing.structural_hash` is alpha-invariant, the
program *hash* is identical across processes even though fresh binder
names differ (they depend on process-global counter state).

The same machinery also produces *ill-typed mutants*
(:func:`mutate_ill_typed`) used to fuzz the type checker's rejection
paths: every mutant must raise :class:`~repro.rise.types.TypeError_`,
never crash or silently typecheck.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.nat import nat
from repro.rise.dsl import (
    as_scalar,
    as_vector,
    fst,
    fun,
    join,
    lit,
    map_,
    map_vec,
    reduce_,
    slide,
    snd,
    split,
    transpose,
    unzip_,
    zip_,
)
from repro.rise.expr import (
    App,
    ArrayLiteral,
    Expr,
    Fst,
    Identifier,
    Literal,
    ScalarOp,
    Snd,
    Split,
    UnaryOp,
)
from repro.rise.traverse import children, count_nodes, rebuild, subterms
from repro.rise.typecheck import infer_types
from repro.rise.types import (
    ArrayType,
    DataType,
    PairType,
    ScalarType,
    TypeError_,
    VectorType,
    array,
    f32,
)

__all__ = [
    "GenConfig",
    "Stage",
    "GeneratedProgram",
    "IllTypedMutant",
    "GenError",
    "generate_program",
    "zoo_seed_program",
    "gen_scalar_fun",
    "mutate_ill_typed",
]


class GenError(Exception):
    """Raised when generation cannot make progress (a generator bug)."""


@dataclass(frozen=True)
class GenConfig:
    """Tuning knobs of the program generator.

    The defaults keep programs small enough to interpret in milliseconds
    while still composing every pattern family the paper uses.
    """

    min_stages: int = 1
    max_stages: int = 5
    #: Probability that input sizes are symbolic Nat variables (bound to
    #: concrete values through the ``sizes`` environment) rather than
    #: constants baked into the type.
    p_symbolic: float = 0.3
    #: Allow asVector/mapVec/asScalar stages.
    allow_vectors: bool = True
    #: Allow a second input array consumed through ``zip``.
    allow_second_input: bool = True
    #: Allow full reduction to a scalar output.
    allow_scalar_output: bool = True
    #: Node-count ceiling; stages that would exceed it (e.g. ``zip(e, e)``
    #: duplication) are not offered.
    max_nodes: int = 120
    #: Concrete 1-D sizes (composite values keep split/asVector applicable).
    sizes_1d: tuple[int, ...] = (6, 8, 9, 10, 12, 16)
    #: Concrete 2-D sizes.
    sizes_2d: tuple[int, ...] = (3, 4, 5, 6, 8)


@dataclass(frozen=True)
class Stage:
    """One pipeline stage: a named ``Expr -> Expr`` transformation."""

    name: str
    build: Callable[[Expr], Expr]


@dataclass
class GeneratedProgram:
    """A generated well-typed program plus everything needed to run it."""

    seed: int
    base: Expr
    stages: tuple[Stage, ...]
    expr: Expr
    type_env: dict[str, DataType]
    sizes: dict[str, int]
    input_specs: dict[str, dict]
    out_type: DataType
    discards: int = 0
    candidates: int = 0

    @property
    def stage_names(self) -> tuple[str, ...]:
        """The names of the applied stages, in pipeline order."""
        return tuple(s.name for s in self.stages)

    def structural_hash(self) -> str:
        """Alpha-invariant content hash of the program (engine hashing)."""
        from repro.engine.hashing import structural_hash

        return structural_hash(self.expr)

    def make_inputs(self) -> dict[str, np.ndarray]:
        """Materialize the random input arrays from their stored specs."""
        return make_inputs(self.input_specs)

    def rebuild(self, keep: tuple[int, ...]) -> Optional[Expr]:
        """Reapply only the stages at indices ``keep`` (used by the
        shrinker); returns None when the reduced pipeline is ill-typed."""
        expr = self.base
        for i in keep:
            expr = self.stages[i].build(expr)
        try:
            infer_types(expr, self.type_env, strict=True)
        except TypeError_:
            return None
        return expr


def make_inputs(input_specs: dict) -> dict[str, np.ndarray]:
    """Build the f32 input arrays described by ``{name: {shape, seed}}``.

    Each array gets its own ``numpy.random.Generator`` seeded from the
    spec (the repo-wide seeding convention: no module touches numpy's
    global RNG state), with values in ``[0, 1)`` so generated arithmetic
    stays finite.
    """
    out: dict[str, np.ndarray] = {}
    for name, spec in input_specs.items():
        rng = np.random.default_rng(int(spec["seed"]))
        out[name] = rng.random(tuple(spec["shape"]), dtype=np.float32)
    return out


# ----------------------------------------------------------------------
# Random scalar functions.
# ----------------------------------------------------------------------

_LITERAL_POOL = (-2.0, -1.0, -0.5, 0.25, 0.5, 1.0, 1.5, 2.0)
_BINARY_OPS = ("add", "sub", "mul", "min", "max")
_UNARY_OPS = ("neg", "abs")
_DIV_CONSTS = (2.0, 4.0, 8.0)


def _binop(op: str, a: Expr, b: Expr) -> Expr:
    return App(App(ScalarOp(op=op), a), b)


def _scalar_tree(rng: random.Random, x: Identifier, depth: int) -> Expr:
    if depth <= 0 or rng.random() < 0.25:
        return x if rng.random() < 0.75 else lit(rng.choice(_LITERAL_POOL))
    kind = rng.choices(("bin", "un", "divc"), weights=(6, 2, 1))[0]
    if kind == "bin":
        op = rng.choice(_BINARY_OPS)
        return _binop(op, _scalar_tree(rng, x, depth - 1), _scalar_tree(rng, x, depth - 1))
    if kind == "un":
        return App(UnaryOp(op=rng.choice(_UNARY_OPS)), _scalar_tree(rng, x, depth - 1))
    # Division only by exact powers of two, so backends agree bit-for-bit.
    return _binop("div", _scalar_tree(rng, x, depth - 1), lit(rng.choice(_DIV_CONSTS)))


def gen_scalar_fun(rng: random.Random):
    """A random ``f32 -> f32`` lambda over add/sub/mul/min/max/neg/abs
    and division by power-of-two constants (finite on any finite input)."""
    depth = rng.choice((1, 1, 2, 2, 3))
    return fun(lambda x: _scalar_tree(rng, x, depth))


def _add_fun():
    return fun(lambda acc, x: acc + x)


# ----------------------------------------------------------------------
# Type-directed stage menus.
# ----------------------------------------------------------------------


def _proper_divisors(n: int) -> list[int]:
    return [d for d in range(2, n) if n % d == 0]


def _stage_options(
    t: DataType, sizes: dict[str, int], rng: random.Random, nodes: int, cfg: GenConfig
) -> list[tuple[float, Stage]]:
    """Weighted stages applicable to a program of root type ``t``."""
    options: list[tuple[float, Stage]] = []
    if not isinstance(t, ArrayType):
        return options
    n_sym = t.size
    n = n_sym.evaluate(sizes)
    concrete = n_sym.is_constant()
    elem = t.elem

    if isinstance(elem, ScalarType):
        f = gen_scalar_fun(rng)
        options.append((5.0, Stage("map", lambda e, f=f: map_(f, e))))
        if n >= 3:
            sz = rng.choice((2, 3))
            options.append((2.0, Stage(f"slide{sz}", lambda e, sz=sz: slide(sz, 1, e))))
        if concrete:
            divisors = _proper_divisors(n)
            if divisors:
                c = rng.choice(divisors)
                options.append((2.0, Stage(f"split{c}", lambda e, c=c: split(c, e))))
            if cfg.allow_vectors:
                widths = [w for w in (2, 4) if n % w == 0 and n > w]
                if widths:
                    w = rng.choice(widths)
                    options.append(
                        (1.0, Stage(f"asVector{w}", lambda e, w=w: as_vector(w, e)))
                    )
        if nodes * 2 + 1 <= cfg.max_nodes:
            options.append((1.0, Stage("zipSelf", lambda e: zip_(e, e))))
        if cfg.allow_scalar_output:
            options.append(
                (0.5, Stage("reduceAll", lambda e: reduce_(_add_fun(), lit(0.0), e)))
            )
    elif isinstance(elem, ArrayType):
        options.append((2.0, Stage("transpose", lambda e: transpose(e))))
        options.append((2.0, Stage("join", lambda e: join(e))))
        if isinstance(elem.elem, ScalarType):
            f = gen_scalar_fun(rng)
            options.append((3.0, Stage("map2d", lambda e, f=f: map_(map_(f), e))))
            options.append(
                (
                    2.0,
                    Stage(
                        "rowsReduce",
                        lambda e: map_(
                            fun(lambda row: reduce_(_add_fun(), lit(0.0), row)), e
                        ),
                    ),
                )
            )
    elif isinstance(elem, PairType):
        options.append((2.0, Stage("mapFst", lambda e: map_(Fst(), e))))
        options.append((2.0, Stage("mapSnd", lambda e: map_(Snd(), e))))
        if isinstance(elem.fst, ScalarType) and isinstance(elem.snd, ScalarType):
            options.append(
                (
                    3.0,
                    Stage(
                        "mapPairAdd",
                        lambda e: map_(fun(lambda p: fst(p) + snd(p)), e),
                    ),
                )
            )
        options.append((1.0, Stage("unzipFst", lambda e: fst(unzip_(e)))))
        options.append((1.0, Stage("unzipSnd", lambda e: snd(unzip_(e)))))
    elif isinstance(elem, VectorType):
        f = gen_scalar_fun(rng)
        options.append(
            (
                2.0,
                Stage(
                    "mapMapVec",
                    lambda e, f=f: map_(fun(lambda v: map_vec(f, v)), e),
                ),
            )
        )
        options.append((2.0, Stage("asScalar", lambda e: as_scalar(e))))
    return options


def _finalize_stage(t: DataType, rng: random.Random) -> Optional[Stage]:
    """A stage removing pair/vector elements so the output is lowerable
    (nested arrays of scalars, or a scalar)."""
    if isinstance(t, ArrayType):
        elem = t.elem
        if isinstance(elem, PairType):
            if isinstance(elem.fst, ScalarType) and isinstance(elem.snd, ScalarType):
                return rng.choice(
                    (
                        Stage("mapFst", lambda e: map_(Fst(), e)),
                        Stage("mapSnd", lambda e: map_(Snd(), e)),
                        Stage(
                            "mapPairAdd",
                            lambda e: map_(fun(lambda p: fst(p) + snd(p)), e),
                        ),
                    )
                )
            return Stage("mapFst", lambda e: map_(Fst(), e))
        if isinstance(elem, VectorType):
            return Stage("asScalar", lambda e: as_scalar(e))
    return None


# ----------------------------------------------------------------------
# Top-level generation.
# ----------------------------------------------------------------------


def _choose_inputs(rng: random.Random, cfg: GenConfig):
    """Pick the input form: 1-D, 2-D, or two zipped 1-D arrays."""
    symbolic = rng.random() < cfg.p_symbolic
    modes = ["1d", "1d", "2d", "2d"]
    if cfg.allow_second_input:
        modes.append("zip2")
    mode = rng.choice(modes)
    xs = Identifier("xs")
    if mode == "2d":
        h = rng.choice(cfg.sizes_2d)
        w = rng.choice(cfg.sizes_2d)
        if symbolic:
            dtype = array(nat("n"), array(nat("m"), f32))
            sizes = {"n": h, "m": w}
        else:
            dtype = array(h, array(w, f32))
            sizes = {}
        return xs, {"xs": dtype}, sizes, {"xs": {"shape": (h, w), "seed": 0}}
    n = rng.choice(cfg.sizes_1d)
    if symbolic:
        dtype = array(nat("n"), f32)
        sizes = {"n": n}
    else:
        dtype = array(n, f32)
        sizes = {}
    if mode == "zip2":
        ys = Identifier("ys")
        base = zip_(xs, ys)
        return (
            base,
            {"xs": dtype, "ys": dtype},
            sizes,
            {"xs": {"shape": (n,), "seed": 0}, "ys": {"shape": (n,), "seed": 0}},
        )
    return xs, {"xs": dtype}, sizes, {"xs": {"shape": (n,), "seed": 0}}


def generate_program(seed: int, config: GenConfig | None = None) -> GeneratedProgram:
    """Generate one well-typed random RISE program from ``seed``.

    Deterministic: the same seed and config always produce the same
    program, input specs and (alpha-invariant) structural hash.
    """
    cfg = config or GenConfig()
    rng = random.Random(seed)
    base, type_env, sizes, input_specs = _choose_inputs(rng, cfg)
    for spec in input_specs.values():
        spec["seed"] = rng.randrange(2**31)

    expr = base
    typing = infer_types(expr, type_env, strict=True)
    root = typing.root_type
    stages: list[Stage] = []
    discards = 0
    candidates = 0
    target = rng.randint(cfg.min_stages, cfg.max_stages)

    while len(stages) < target:
        options = _stage_options(root, sizes, rng, count_nodes(expr), cfg)
        if not options:
            break
        weights = [w for w, _ in options]
        stage = rng.choices([s for _, s in options], weights=weights)[0]
        candidate = stage.build(expr)
        candidates += 1
        try:
            typing = infer_types(candidate, type_env, strict=True)
        except TypeError_:
            # By construction this should not happen; count it so the
            # fuzz loop can assert the discard rate stays near zero.
            discards += 1
            if discards > 10 * (len(stages) + 1):
                raise GenError(
                    f"seed {seed}: generator discarded {discards} candidates"
                ) from None
            continue
        expr = candidate
        root = typing.root_type
        stages.append(stage)

    # Make the output lowerable: no pair or vector elements at top level.
    while True:
        fin = _finalize_stage(root, rng)
        if fin is None:
            break
        candidate = fin.build(expr)
        candidates += 1
        typing = infer_types(candidate, type_env, strict=True)
        expr = candidate
        root = typing.root_type
        stages.append(fin)

    try:
        from repro.observe.metrics import inc

        inc("verify.gen.candidates", float(candidates))
        if discards:
            inc("verify.gen.discards", float(discards))
    except Exception:  # pragma: no cover - metrics must never break generation
        pass

    return GeneratedProgram(
        seed=seed,
        base=base,
        stages=tuple(stages),
        expr=expr,
        type_env=type_env,
        sizes=sizes,
        input_specs=input_specs,
        out_type=root,
        discards=discards,
        candidates=candidates,
    )


def zoo_seed_program(
    seed: int, pipelines: tuple[str, ...] | None = None
) -> GeneratedProgram:
    """One registry pipeline as a fuzz seed program.

    Where :func:`generate_program` builds a random stage pipeline, this
    samples a *real* one from :mod:`repro.pipelines.registry` — the
    pipeline choice and input contents are derived deterministically
    from ``seed``.  The resulting program goes through exactly the same
    oracles as a generated one: the differential check catches
    interpreter/backend disagreement on production pipelines, and the
    metamorphic check exercises random rewrite sequences against program
    shapes the generator's stage menu never composes (let-bound
    dataflow, stencil towers, strided slides).  Output-vs-NumPy-gold
    validation is the zoo smoke's job, not this one.

    ``stages`` is empty — the pipeline is the base expression — so a
    shrunk failure keeps the whole pipeline and shrinks only the rule
    sequence.
    """
    from repro.pipelines import registry

    rng = random.Random(seed)
    names = tuple(pipelines) if pipelines else registry.names()
    spec = registry.get(rng.choice(list(names)))
    expr = spec.expr()
    type_env = spec.type_env()
    sizes = spec.concrete_sizes()
    shape = spec.input_shape(sizes)
    input_specs = {
        spec.input_name: {"shape": tuple(shape), "seed": rng.randrange(2**31)}
    }
    out_type = infer_types(expr, type_env, strict=True).root_type
    return GeneratedProgram(
        seed=seed,
        base=expr,
        stages=(),
        expr=expr,
        type_env=type_env,
        sizes=sizes,
        input_specs=input_specs,
        out_type=out_type,
    )


# ----------------------------------------------------------------------
# Ill-typed mutation mode (type-checker rejection fuzzing).
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class IllTypedMutant:
    """An expression that must make ``infer_types`` raise ``TypeError_``."""

    kind: str
    expr: Expr
    type_env: dict


def _replace_node(expr: Expr, target: Expr, replacement: Expr) -> Expr:
    """Replace one subterm (identified by object identity) of ``expr``."""
    if expr is target:
        return replacement
    kids = children(expr)
    if not kids:
        return expr
    return rebuild(expr, [_replace_node(k, target, replacement) for k in kids])


def mutate_ill_typed(rng: random.Random, gp: GeneratedProgram) -> IllTypedMutant:
    """Derive an ill-typed variant of a generated program.

    Mutation operators: dropping an input binding (unbound identifier),
    applying a non-function, substituting a scalar literal where an
    array flows, breaking a split/zip size equation.  Every mutant must
    be *rejected* by the type checker with ``TypeError_`` — any other
    exception (or silent acceptance) is a type-checker bug.
    """
    mutations: list[tuple[str, Callable[[], IllTypedMutant]]] = []

    def unbound() -> IllTypedMutant:
        env = {name: t for name, t in gp.type_env.items() if name != "xs"}
        return IllTypedMutant("unbound-identifier", gp.expr, env)

    def apply_nonfunction() -> IllTypedMutant:
        return IllTypedMutant(
            "apply-non-function", App(lit(1.0), gp.expr), dict(gp.type_env)
        )

    mutations.append(("unbound-identifier", unbound))
    mutations.append(("apply-non-function", apply_nonfunction))

    typing = infer_types(gp.expr, gp.type_env, strict=True)
    array_nodes = [
        node
        for node in subterms(gp.expr)
        if node is not gp.expr
        and not isinstance(node, (Literal, ArrayLiteral))
        and isinstance(typing.of(node), ArrayType)
    ]
    if array_nodes:
        node = rng.choice(array_nodes)

        def scalar_for_array() -> IllTypedMutant:
            return IllTypedMutant(
                "scalar-for-array",
                _replace_node(gp.expr, node, lit(0.0)),
                dict(gp.type_env),
            )

        mutations.append(("scalar-for-array", scalar_for_array))

    splits = [
        node
        for node in subterms(gp.expr)
        if isinstance(node, Split) and node.chunk.is_constant()
    ]
    if splits:
        target = rng.choice(splits)
        bad = Split(chunk=nat(target.chunk.constant_value() * 7 + 1))

        def break_split() -> IllTypedMutant:
            return IllTypedMutant(
                "break-size-equation",
                _replace_node(gp.expr, target, bad),
                dict(gp.type_env),
            )

        mutations.append(("break-size-equation", break_split))

    root = typing.root_type
    if isinstance(root, ArrayType) and root.size.is_constant():
        n = root.size.constant_value()

        def zip_mismatch() -> IllTypedMutant:
            other = ArrayLiteral(tuple(0.0 for _ in range(n + 1)), f32)
            return IllTypedMutant(
                "zip-length-mismatch", zip_(gp.expr, other), dict(gp.type_env)
            )

        mutations.append(("zip-length-mismatch", zip_mismatch))

    _, build = rng.choice(mutations)
    return build()
