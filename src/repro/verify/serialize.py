"""JSON (de)serialization of RISE expressions, types and corpus cases.

Shrunk fuzzing failures must outlive the process that found them, so the
shrinker writes each one as a schema-versioned JSON document under
``tests/corpus/`` and ``tests/verify/test_corpus.py`` replays them all.
The codec here is intentionally closed-world: it covers exactly the
dataclass surface of :mod:`repro.rise.expr` / :mod:`repro.rise.types`
(plus :class:`~repro.nat.Nat` fields that are either constants or a
single named variable, the only shapes the generator emits), and raises
:class:`SerializeError` on anything else rather than guessing.
"""

from __future__ import annotations

import json
from dataclasses import fields
from pathlib import Path

from repro.nat import Nat, nat
from repro.rise.expr import (
    App,
    ArrayLiteral,
    Expr,
    Identifier,
    Lambda,
    Let,
    Literal,
    Primitive,
    PRIMITIVE_REGISTRY,
)
from repro.rise.types import (
    AddressSpace,
    ArrayType,
    DataType,
    PairType,
    ScalarType,
    Type,
    VectorType,
)

__all__ = [
    "CASE_SCHEMA",
    "SerializeError",
    "nat_to_json",
    "nat_from_json",
    "type_to_dict",
    "type_from_dict",
    "expr_to_dict",
    "expr_from_dict",
    "case_to_dict",
    "case_from_dict",
    "save_case",
    "load_case",
]

#: Schema identifier of one serialized corpus case; bump when its shape changes.
CASE_SCHEMA = "repro.verify.case/v1"


class SerializeError(Exception):
    """Raised when a value falls outside the closed-world codec."""


# ----------------------------------------------------------------------
# Nat codec: constant int, or the name of a single variable.
# ----------------------------------------------------------------------


def nat_to_json(value: Nat):
    """Encode a Nat as an int (constant) or a variable-name string."""
    value = nat(value)
    if value.is_constant():
        return value.constant_value()
    free = sorted(value.free_vars())
    if len(free) == 1 and value == nat(free[0]):
        return free[0]
    raise SerializeError(f"cannot serialize compound Nat {value!r}")


def nat_from_json(doc) -> Nat:
    """Decode the output of :func:`nat_to_json`."""
    if isinstance(doc, bool) or not isinstance(doc, (int, str)):
        raise SerializeError(f"bad Nat encoding {doc!r}")
    return nat(doc)


# ----------------------------------------------------------------------
# Type codec (data types only -- corpus type environments never contain
# function types).
# ----------------------------------------------------------------------


def type_to_dict(t: Type) -> dict:
    """Encode a data type as a JSON-ready dict."""
    if isinstance(t, ScalarType):
        return {"k": "scalar", "name": t.name}
    if isinstance(t, VectorType):
        return {"k": "vec", "size": nat_to_json(t.size), "elem": type_to_dict(t.elem)}
    if isinstance(t, ArrayType):
        return {"k": "array", "size": nat_to_json(t.size), "elem": type_to_dict(t.elem)}
    if isinstance(t, PairType):
        return {"k": "pair", "fst": type_to_dict(t.fst), "snd": type_to_dict(t.snd)}
    raise SerializeError(f"cannot serialize type {t!r}")


def type_from_dict(doc: dict) -> DataType:
    """Decode the output of :func:`type_to_dict`."""
    kind = doc.get("k")
    if kind == "scalar":
        return ScalarType(doc["name"])
    if kind == "vec":
        return VectorType(nat_from_json(doc["size"]), type_from_dict(doc["elem"]))
    if kind == "array":
        return ArrayType(nat_from_json(doc["size"]), type_from_dict(doc["elem"]))
    if kind == "pair":
        return PairType(type_from_dict(doc["fst"]), type_from_dict(doc["snd"]))
    raise SerializeError(f"bad type encoding {doc!r}")


# ----------------------------------------------------------------------
# Expression codec.  Primitives are encoded generically over their
# dataclass fields so newly registered primitives round-trip for free.
# ----------------------------------------------------------------------


def _field_to_json(value):
    if isinstance(value, Nat):
        return {"nat": nat_to_json(value)}
    if isinstance(value, AddressSpace):
        return {"addr": value.value}
    if isinstance(value, ScalarType):
        return {"scalar": value.name}
    if isinstance(value, (int, float, str)):
        return value
    raise SerializeError(f"cannot serialize primitive field {value!r}")


def _field_from_json(doc):
    if isinstance(doc, dict):
        if "nat" in doc:
            return nat_from_json(doc["nat"])
        if "addr" in doc:
            return AddressSpace(doc["addr"])
        if "scalar" in doc:
            return ScalarType(doc["scalar"])
        raise SerializeError(f"bad primitive field encoding {doc!r}")
    return doc


def expr_to_dict(expr: Expr) -> dict:
    """Encode a RISE expression as a JSON-ready dict."""
    if isinstance(expr, Identifier):
        return {"k": "id", "name": expr.name}
    if isinstance(expr, Lambda):
        return {
            "k": "lam",
            "param": expr.param.name,
            "body": expr_to_dict(expr.body),
        }
    if isinstance(expr, App):
        return {"k": "app", "fun": expr_to_dict(expr.fun), "arg": expr_to_dict(expr.arg)}
    if isinstance(expr, Let):
        return {
            "k": "let",
            "ident": expr.ident.name,
            "value": expr_to_dict(expr.value),
            "body": expr_to_dict(expr.body),
        }
    if isinstance(expr, Literal):
        return {"k": "lit", "value": expr.value, "dtype": expr.dtype.name}
    if isinstance(expr, ArrayLiteral):
        return {"k": "arrlit", "values": _nested_list(expr.values), "dtype": expr.dtype.name}
    if isinstance(expr, Primitive):
        cls = type(expr)
        if PRIMITIVE_REGISTRY.get(cls.__name__) is not cls:
            raise SerializeError(f"unregistered primitive {cls.__name__}")
        encoded_fields = {
            f.name: _field_to_json(getattr(expr, f.name)) for f in fields(expr)
        }
        return {"k": "prim", "cls": cls.__name__, "fields": encoded_fields}
    raise SerializeError(f"cannot serialize expression {expr!r}")


def _nested_list(values):
    if isinstance(values, tuple):
        return [_nested_list(v) for v in values]
    return values


def _nested_tuple(values):
    if isinstance(values, list):
        return tuple(_nested_tuple(v) for v in values)
    return float(values)


def expr_from_dict(doc: dict) -> Expr:
    """Decode the output of :func:`expr_to_dict`."""
    kind = doc.get("k")
    if kind == "id":
        return Identifier(doc["name"])
    if kind == "lam":
        return Lambda(Identifier(doc["param"]), expr_from_dict(doc["body"]))
    if kind == "app":
        return App(expr_from_dict(doc["fun"]), expr_from_dict(doc["arg"]))
    if kind == "let":
        return Let(
            Identifier(doc["ident"]),
            expr_from_dict(doc["value"]),
            expr_from_dict(doc["body"]),
        )
    if kind == "lit":
        return Literal(float(doc["value"]), ScalarType(doc["dtype"]))
    if kind == "arrlit":
        return ArrayLiteral(_nested_tuple(doc["values"]), ScalarType(doc["dtype"]))
    if kind == "prim":
        cls = PRIMITIVE_REGISTRY.get(doc["cls"])
        if cls is None:
            raise SerializeError(f"unknown primitive {doc['cls']!r}")
        kwargs = {name: _field_from_json(v) for name, v in doc.get("fields", {}).items()}
        return cls(**kwargs)
    raise SerializeError(f"bad expression encoding {doc!r}")


# ----------------------------------------------------------------------
# Corpus cases.
# ----------------------------------------------------------------------


def case_to_dict(
    *,
    kind: str,
    seed: int,
    expr: Expr,
    type_env: dict,
    sizes: dict,
    input_specs: dict,
    program_hash: str,
    rules: list[str] | None = None,
    expect: str = "pass",
    reason: str = "",
    extra: dict | None = None,
) -> dict:
    """Build one schema-versioned corpus-case document.

    ``kind`` selects the replayed check (``metamorphic`` /
    ``differential`` / ``typecheck-reject``); ``expect`` is ``"pass"``
    for regression cases or ``"xfail"`` for known-broken cases whose
    ``reason`` explains the linked bug.
    """
    if expect not in ("pass", "xfail"):
        raise SerializeError(f"bad expect value {expect!r}")
    doc = {
        "schema": CASE_SCHEMA,
        "kind": kind,
        "seed": int(seed),
        "expr": expr_to_dict(expr),
        "type_env": {name: type_to_dict(t) for name, t in type_env.items()},
        "sizes": {name: int(v) for name, v in sizes.items()},
        "inputs": {
            name: {"shape": list(spec["shape"]), "seed": int(spec["seed"])}
            for name, spec in input_specs.items()
        },
        "program_hash": program_hash,
        "rules": list(rules or []),
        "expect": expect,
        "reason": reason,
    }
    if extra:
        doc["extra"] = extra
    return doc


def case_from_dict(doc: dict) -> dict:
    """Validate and decode a corpus-case document into live objects.

    Returns a dict with ``expr`` / ``type_env`` decoded plus the raw
    metadata fields (kind, seed, sizes, inputs, rules, expect, reason,
    program_hash).
    """
    if doc.get("schema") != CASE_SCHEMA:
        raise SerializeError(
            f"unknown corpus-case schema {doc.get('schema')!r} "
            f"(expected {CASE_SCHEMA!r})"
        )
    return {
        "kind": doc["kind"],
        "seed": int(doc["seed"]),
        "expr": expr_from_dict(doc["expr"]),
        "type_env": {
            name: type_from_dict(t) for name, t in doc.get("type_env", {}).items()
        },
        "sizes": {name: int(v) for name, v in doc.get("sizes", {}).items()},
        "inputs": {
            name: {"shape": tuple(spec["shape"]), "seed": int(spec["seed"])}
            for name, spec in doc.get("inputs", {}).items()
        },
        "rules": list(doc.get("rules", [])),
        "expect": doc.get("expect", "pass"),
        "reason": doc.get("reason", ""),
        "program_hash": doc.get("program_hash", ""),
        "extra": doc.get("extra", {}),
    }


def save_case(path, doc: dict) -> Path:
    """Write a corpus-case document to ``path`` (parents created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path


def load_case(path) -> dict:
    """Read and decode one corpus case from disk."""
    return case_from_dict(json.loads(Path(path).read_text(encoding="utf-8")))
