"""Differential fuzzing and metamorphic rewrite testing (``repro.verify``).

The paper validates correctness by PSNR-comparing one hand-written
pipeline (Harris) under a handful of hand-written schedules.  This
package generalizes that check into a systematic safety net:

* :mod:`repro.verify.gen` — a seeded, type-directed random generator of
  well-typed RISE programs plus matching random inputs.
* :mod:`repro.verify.oracle` — a metamorphic oracle: randomly sampled
  ELEVATE rule sequences must preserve interpreter semantics.
* :mod:`repro.verify.diff` — a cross-layer differential check:
  interpreter vs. the Python executor vs. the C backend, routed through
  :func:`repro.compile` so the engine cache and hashing are fuzzed too.
* :mod:`repro.verify.shrink` — minimizes failing (program, rules, input)
  triples and serializes them as replayable corpus cases.
* :mod:`repro.verify.fuzz` — the fuzzing loop behind ``tools/fuzz.py``.

Every failure the fuzzer ever finds becomes a deterministic JSON case in
``tests/corpus/`` replayed by ``tests/verify/test_corpus.py``.  See
``docs/verify.md`` for the full design.
"""

from repro.verify.diff import DiffFailure, differential_check
from repro.verify.fuzz import FuzzConfig, FuzzReport, run_fuzz
from repro.verify.gen import (
    GenConfig, GeneratedProgram, generate_program, zoo_seed_program,
)
from repro.verify.oracle import (
    RULE_POOL,
    apply_rule_sequence,
    equivalence_report,
    flatten_value,
    sample_rule_names,
    values_close,
)
from repro.verify.shrink import shrink_failure
from repro.verify.serialize import (
    CASE_SCHEMA,
    case_from_dict,
    case_to_dict,
    expr_from_dict,
    expr_to_dict,
    load_case,
    save_case,
)

__all__ = [
    "DiffFailure",
    "differential_check",
    "FuzzConfig",
    "FuzzReport",
    "run_fuzz",
    "GenConfig",
    "GeneratedProgram",
    "generate_program",
    "zoo_seed_program",
    "RULE_POOL",
    "apply_rule_sequence",
    "equivalence_report",
    "flatten_value",
    "sample_rule_names",
    "values_close",
    "shrink_failure",
    "CASE_SCHEMA",
    "case_from_dict",
    "case_to_dict",
    "expr_from_dict",
    "expr_to_dict",
    "load_case",
    "save_case",
]
