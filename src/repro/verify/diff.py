"""Cross-layer differential checking: interpreter vs. compiled backends.

For a generated program the denotational interpreter is the semantic
ground truth.  :func:`differential_check` compares it against the
compiled execution layers, routed through :func:`repro.compile` so the
engine front door — structural hashing, the compile cache, destination-
passing lowering, and the Python or C executor — is fuzzed along the
way:

* ``python`` backend: always compared.
* ``c`` backend: compared when a C compiler is available (the same
  gate the test-suite's ``requires_gcc`` marker uses).
* cache determinism: compiling the identical program twice through one
  engine must report a cache hit and return **bit-identical** output.

Programs the lowering layer legitimately cannot compile (reported via
``CodegenError``) are recorded as *skips*, never as failures — but any
other exception from a backend is a genuine finding.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.verify.gen import GeneratedProgram
from repro.verify.oracle import equivalence_report, flatten_value

__all__ = ["DiffFailure", "DiffResult", "differential_check"]


@dataclass
class DiffFailure:
    """One backend disagreement (or crash) found by the differential check."""

    backend: str
    kind: str
    detail: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-ready representation for corpus cases and CLI output."""
        return {"backend": self.backend, "kind": self.kind, "detail": self.detail}


@dataclass
class DiffResult:
    """Outcome of one differential trial."""

    failures: list[DiffFailure] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)
    compared: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no backend disagreed or crashed."""
        return not self.failures


def _interpret(gp: GeneratedProgram, inputs: dict[str, np.ndarray]) -> np.ndarray:
    from repro.rise.interpreter import evaluate, from_numpy

    env = {name: from_numpy(arr) for name, arr in inputs.items()}
    return np.asarray(flatten_value(evaluate(gp.expr, env)), dtype=np.float32)


def differential_check(
    gp: GeneratedProgram,
    inputs: dict[str, np.ndarray] | None = None,
    engine=None,
    rtol: float = 1e-5,
    atol: float = 1e-6,
    use_c: bool | None = None,
) -> DiffResult:
    """Compare the interpreter against the compiled backends.

    ``engine`` defaults to a fresh in-memory :class:`repro.engine.Engine`
    so fuzzing never pollutes (or is polluted by) the user's on-disk
    artifact store; pass a shared engine to also exercise cache reuse
    across programs.  ``use_c`` defaults to C-compiler availability.
    """
    from repro.codegen.views import CodegenError
    from repro.engine.pipeline import Engine
    from repro.engine.pipeline import compile as engine_compile
    from repro.exec.cbridge import have_c_compiler

    result = DiffResult()
    inputs = inputs if inputs is not None else gp.make_inputs()
    engine = engine if engine is not None else Engine(cache_dir=None)
    if use_c is None:
        use_c = have_c_compiler()

    try:
        reference = _interpret(gp, inputs)
    except Exception as exc:  # noqa: BLE001 - any interpreter crash is a finding
        result.failures.append(
            DiffFailure("interpreter", "crash", {"error": f"{type(exc).__name__}: {exc}"})
        )
        return result

    backends = ["python"] + (["c"] if use_c else [])
    outputs: dict[str, np.ndarray] = {}
    for backend in backends:
        try:
            pipeline = engine_compile(
                gp.expr,
                backend=backend,
                sizes=gp.sizes,
                type_env=gp.type_env,
                name=f"fuzz_{gp.seed}",
                engine=engine,
            )
            out = pipeline.run(**inputs)
        except CodegenError as exc:
            result.skipped.append(f"{backend}: {exc}")
            continue
        except Exception as exc:  # noqa: BLE001 - backend crash is a finding
            result.failures.append(
                DiffFailure(backend, "crash", {"error": f"{type(exc).__name__}: {exc}"})
            )
            continue
        outputs[backend] = np.asarray(out, dtype=np.float32).reshape(-1)
        report = equivalence_report(reference, outputs[backend], rtol=rtol, atol=atol)
        if report is not None:
            result.failures.append(DiffFailure(backend, "mismatch", report))
            continue
        result.compared.append(backend)

        # Same program, same engine: the second compile must hit the
        # cache and reproduce the output bit-for-bit.
        try:
            again = engine_compile(
                gp.expr,
                backend=backend,
                sizes=gp.sizes,
                type_env=gp.type_env,
                name=f"fuzz_{gp.seed}",
                engine=engine,
            )
            out2 = np.asarray(again.run(**inputs), dtype=np.float32).reshape(-1)
        except Exception as exc:  # noqa: BLE001
            result.failures.append(
                DiffFailure(
                    backend, "cache-crash", {"error": f"{type(exc).__name__}: {exc}"}
                )
            )
            continue
        if not again.cache_status.startswith("hit"):
            result.failures.append(
                DiffFailure(backend, "cache-miss", {"status": again.cache_status})
            )
        elif not np.array_equal(outputs[backend], out2):
            result.failures.append(
                DiffFailure(
                    backend,
                    "cache-nondeterminism",
                    {"max_abs_diff": float(np.abs(outputs[backend] - out2).max())},
                )
            )

    return result
