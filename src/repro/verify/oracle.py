"""The metamorphic rewrite oracle.

A rewrite rule claims to preserve semantics.  The oracle turns that
claim into an executable property: sample a random sequence of rules
from :data:`RULE_POOL`, apply each through an ELEVATE ``top_down``
traversal, and require the interpreter to produce (numerically) the
same output before and after.

Two refinements make this sound in the presence of *side conditions*:

* Rules such as ``splitJoin(p)`` or ``startVectorization(w)`` are only
  valid when a divisibility condition holds.  The repo encodes this the
  same way the paper does — the rewrite is locally unconditioned and an
  outer strategy re-type-checks the result.  The oracle therefore
  treats an application whose result fails ``infer_types`` as
  *inadmissible*: the step is reverted and counted
  (``verify.oracle.inadmissible``), not reported as a bug.
* Equivalence checking is hardened: shape mismatches and non-finite
  values are failures in their own right, not silent ``allclose``
  passes.

``tests/helpers.assert_semantics_preserved`` delegates its flattening
and comparison to this module, so the test-suite helper and the fuzzer
share one definition of "semantically equal".
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from repro.elevate.core import Strategy, Success, top_down
from repro.rise.expr import Expr
from repro.rise.interpreter import EvalError, evaluate, from_numpy
from repro.rise.typecheck import infer_types
from repro.rise.types import AddressSpace, TypeError_
from repro.rules import (
    beta_reduction,
    eta_reduction,
    fst_pair,
    let_inline,
    map_fusion,
    map_of_identity,
    map_outside_zip,
    reduce_map_fusion,
    slide_after_split,
    slide_before_map,
    slide_before_slide,
    slide_outside_zip,
    slide_to_circular_buffer,
    slide_to_rotate_values,
    snd_pair,
    split_join,
    start_vectorization,
    store_to_memory,
    transpose_around_map_map,
    unroll_map_seq,
    unroll_reduce_seq,
    use_map_global,
    use_map_seq,
    use_map_seq_unroll,
    use_reduce_seq,
    use_reduce_seq_unroll,
    vectorize_before_map,
    vectorize_before_map_reduce,
    zip_same,
)
from repro.rules.algorithmic import fst_unzip, map_proj_fusion, snd_unzip

__all__ = [
    "RULE_POOL",
    "AppliedSequence",
    "sample_rule_names",
    "apply_rule_sequence",
    "flatten_value",
    "values_close",
    "equivalence_report",
    "metamorphic_check",
]


def _build_rule_pool() -> dict[str, Strategy]:
    """The named, ordered pool of candidate rewrite rules.

    Order matters for determinism: ``sample_rule_names`` indexes into
    this dict's (insertion-ordered) keys with a seeded RNG.
    """
    pool: dict[str, Strategy] = {}
    for strat in (
        beta_reduction,
        eta_reduction,
        let_inline,
        fst_pair,
        snd_pair,
        map_fusion,
        map_of_identity,
        reduce_map_fusion,
        slide_after_split,
        slide_before_map,
        slide_before_slide,
        map_outside_zip,
        zip_same,
        slide_outside_zip,
        transpose_around_map_map,
        fst_unzip,
        snd_unzip,
        map_proj_fusion,
        use_map_seq,
        use_map_global,
        use_map_seq_unroll,
        use_reduce_seq,
        use_reduce_seq_unroll,
        unroll_map_seq,
        unroll_reduce_seq,
    ):
        pool[strat.name] = strat
    pool["splitJoin(2)"] = split_join(2)
    pool["splitJoin(4)"] = split_join(4)
    pool["slideToCircularBuffer"] = slide_to_circular_buffer(AddressSpace.GLOBAL)
    pool["slideToRotateValues"] = slide_to_rotate_values(AddressSpace.PRIVATE)
    pool["storeToMemory"] = store_to_memory(AddressSpace.GLOBAL)
    pool["startVectorization(4)"] = start_vectorization(4)
    pool[vectorize_before_map.name] = vectorize_before_map
    pool[vectorize_before_map_reduce.name] = vectorize_before_map_reduce
    return pool


#: name -> rule strategy; the sampling universe of the metamorphic oracle.
RULE_POOL: dict[str, Strategy] = _build_rule_pool()


def sample_rule_names(rng: random.Random, k: int) -> list[str]:
    """Sample ``k`` rule names (with replacement) from the pool."""
    names = list(RULE_POOL)
    return [rng.choice(names) for _ in range(k)]


@dataclass
class AppliedSequence:
    """Result of applying a rule sequence with admissibility filtering."""

    expr: Expr
    applied: list[str] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)
    inadmissible: list[str] = field(default_factory=list)


def apply_rule_sequence(
    expr: Expr, names: list[str], type_env: dict
) -> AppliedSequence:
    """Apply each named rule once (``top_down``), keeping only admissible steps.

    A step is *applied* when the rule matches somewhere and the rewritten
    program still type-checks; *skipped* when it matches nowhere; and
    *inadmissible* (reverted) when the rewrite fired but violated a side
    condition, detected as a type error — mirroring how the paper's
    strategies guard locally unconditioned rules.
    """
    out = AppliedSequence(expr=expr)
    for name in names:
        strat = top_down(RULE_POOL[name])
        result = strat(out.expr)
        if not isinstance(result, Success):
            out.skipped.append(name)
            continue
        try:
            infer_types(result.expr, type_env, strict=True)
        except TypeError_:
            out.inadmissible.append(name)
            continue
        out.expr = result.expr
        out.applied.append(name)
    try:
        from repro.observe.metrics import inc

        if out.inadmissible:
            inc("verify.oracle.inadmissible", float(len(out.inadmissible)))
    except Exception:  # pragma: no cover - metrics must never break the oracle
        pass
    return out


# ----------------------------------------------------------------------
# Hardened semantic equivalence.
# ----------------------------------------------------------------------


def flatten_value(value) -> list[float]:
    """Flatten an interpreter value (nested lists/tuples/vectors) to floats."""
    out: list[float] = []

    def go(v) -> None:
        if isinstance(v, (list, np.ndarray)):
            for x in v:
                go(x)
        elif isinstance(v, tuple):
            for x in v:
                go(x)
        else:
            out.append(float(v))

    go(value)
    return out


def values_close(a, b, rtol: float = 1e-5, atol: float = 1e-6) -> bool:
    """True when two interpreter values are shape- and value-equivalent."""
    return equivalence_report(a, b, rtol=rtol, atol=atol) is None


def equivalence_report(
    a, b, rtol: float = 1e-5, atol: float = 1e-6
) -> dict | None:
    """None when equivalent, else a JSON-ready description of the mismatch.

    Hardened beyond a bare ``allclose``: element-count mismatches and
    non-finite values on either side are explicit failure modes.
    """
    fa, fb = flatten_value(a), flatten_value(b)
    if len(fa) != len(fb):
        return {"kind": "shape", "len_a": len(fa), "len_b": len(fb)}
    if not fa:
        return None
    na, nb = np.asarray(fa, dtype=np.float64), np.asarray(fb, dtype=np.float64)
    bad_a, bad_b = ~np.isfinite(na), ~np.isfinite(nb)
    if bad_a.any() or bad_b.any():
        idx = int(np.argmax(bad_a | bad_b))
        return {
            "kind": "non-finite",
            "index": idx,
            "a": repr(na[idx]),
            "b": repr(nb[idx]),
        }
    close = np.isclose(na, nb, rtol=rtol, atol=atol)
    if close.all():
        return None
    diff = np.abs(na - nb)
    idx = int(np.argmax(np.where(close, 0.0, diff)))
    return {
        "kind": "value",
        "index": idx,
        "a": float(na[idx]),
        "b": float(nb[idx]),
        "max_abs_diff": float(diff[~close].max()),
        "mismatched": int((~close).sum()),
        "total": len(fa),
    }


def metamorphic_check(
    expr: Expr,
    rule_names: list[str],
    type_env: dict,
    inputs: dict[str, np.ndarray],
    rtol: float = 1e-5,
    atol: float = 1e-6,
) -> dict | None:
    """Run one metamorphic trial; None on success, a failure dict otherwise.

    Failure kinds: ``shape`` / ``value`` / ``non-finite`` mismatches
    between the original and rewritten interpretation, or ``crash`` when
    either interpretation raises.
    """
    value_env = {name: from_numpy(arr) for name, arr in inputs.items()}
    applied = apply_rule_sequence(expr, rule_names, type_env)
    try:
        before = evaluate(expr, dict(value_env))
        after = evaluate(applied.expr, dict(value_env))
    except (EvalError, ArithmeticError) as exc:
        return {
            "kind": "crash",
            "error": f"{type(exc).__name__}: {exc}",
            "applied": applied.applied,
        }
    report = equivalence_report(before, after, rtol=rtol, atol=atol)
    if report is None:
        return None
    report["applied"] = applied.applied
    report["inadmissible"] = applied.inadmissible
    return report
