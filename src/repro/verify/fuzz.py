"""The fuzzing loop behind ``tools/fuzz.py``.

Each iteration derives a per-case seed from the campaign seed, generates
one well-typed program with matching random inputs, and subjects it to
two oracles:

1. the **differential check** (interpreter vs. compiled backends plus
   cache determinism, :mod:`repro.verify.diff`), and
2. the **metamorphic check** (random rewrite sequences must preserve
   interpreter semantics, :mod:`repro.verify.oracle`).

Failures are shrunk (:mod:`repro.verify.shrink`) and serialized into a
corpus directory; ``tests/verify/test_corpus.py`` replays every corpus
case forever after.  Progress is reported through
:mod:`repro.observe.metrics` (``verify.cases``, ``verify.failures``,
``verify.shrink_steps``) and throughput can be appended to the
``BENCH_trajectory.json`` ledger so verifier slowdowns are caught like
any other performance regression.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.verify.gen import (
    GenConfig,
    GeneratedProgram,
    generate_program,
    zoo_seed_program,
)
from repro.verify.oracle import metamorphic_check, sample_rule_names
from repro.verify.serialize import save_case

__all__ = [
    "FuzzConfig",
    "FuzzReport",
    "case_seed",
    "run_fuzz",
    "replay_case",
    "record_throughput",
]


@dataclass(frozen=True)
class FuzzConfig:
    """One fuzzing campaign: seed, budget and oracle settings."""

    seed: int = 0
    iterations: int = 100
    #: Wall-clock budget in seconds; the loop stops early when exceeded.
    time_budget: float | None = None
    #: Directory where shrunk failures are serialized (None = don't write).
    corpus_dir: str | None = None
    rtol: float = 1e-5
    atol: float = 1e-6
    #: Rules sampled per metamorphic trial.
    rules_per_case: int = 4
    #: Use the C backend when a compiler is available.
    use_c: bool | None = None
    #: Maximum shrink-candidate evaluations per failure.
    max_shrink_steps: int = 200
    #: Every ``zoo_every``-th case seeds the oracles with a *registry
    #: pipeline* (:func:`repro.verify.gen.zoo_seed_program`) instead of a
    #: generated program; 0 disables zoo sampling.
    zoo_every: int = 0
    #: Restrict zoo sampling to these registered pipelines (None = all).
    zoo_pipelines: tuple[str, ...] | None = None
    gen: GenConfig = field(default_factory=GenConfig)


@dataclass
class FuzzReport:
    """Aggregated campaign outcome (JSON-ready via :meth:`to_dict`)."""

    seed: int
    cases: int = 0
    #: Cases seeded from the pipeline registry rather than the generator.
    zoo_cases: int = 0
    failures: list[dict] = field(default_factory=list)
    skipped_compiles: int = 0
    discards: int = 0
    candidates: int = 0
    shrink_steps: int = 0
    elapsed_s: float = 0.0

    @property
    def discard_rate(self) -> float:
        """Fraction of generated stage candidates the validator rejected."""
        if not self.candidates:
            return 0.0
        return self.discards / self.candidates

    @property
    def cases_per_sec(self) -> float:
        """Fuzzing throughput over the whole campaign."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.cases / self.elapsed_s

    def to_dict(self) -> dict:
        """JSON-ready summary for the CLI and CI logs."""
        return {
            "seed": self.seed,
            "cases": self.cases,
            "zoo_cases": self.zoo_cases,
            "failures": self.failures,
            "failure_count": len(self.failures),
            "skipped_compiles": self.skipped_compiles,
            "discard_rate": round(self.discard_rate, 6),
            "shrink_steps": self.shrink_steps,
            "elapsed_s": round(self.elapsed_s, 3),
            "cases_per_sec": round(self.cases_per_sec, 3),
        }


def case_seed(campaign_seed: int, index: int) -> int:
    """Derive the deterministic per-case seed for iteration ``index``."""
    return (campaign_seed * 1_000_003 + index) & 0x7FFFFFFF


def _metrics_inc(name: str, n: float = 1.0) -> None:
    try:
        from repro.observe.metrics import inc

        inc(name, n)
    except Exception:  # pragma: no cover - metrics must never break fuzzing
        pass


def _handle_failure(
    cfg: FuzzConfig,
    report: FuzzReport,
    gp: GeneratedProgram,
    kind: str,
    rules: list[str],
    detail: dict,
    still_fails,
) -> None:
    from repro.verify.shrink import build_corpus_case, shrink_failure

    shrunk = shrink_failure(gp, rules, still_fails, max_steps=cfg.max_shrink_steps)
    report.shrink_steps += shrunk.steps
    case = build_corpus_case(gp, shrunk, kind, report=detail)
    entry = {
        "kind": kind,
        "seed": gp.seed,
        "detail": detail,
        "rules": shrunk.rules,
        "stages": case["extra"]["stages"],
        "program_hash": case["program_hash"],
        "shrink_steps": shrunk.steps,
    }
    if cfg.corpus_dir:
        path = Path(cfg.corpus_dir) / f"case_{kind}_{gp.seed}.json"
        save_case(path, case)
        entry["case_path"] = str(path)
    report.failures.append(entry)
    _metrics_inc("verify.failures")


def run_fuzz(cfg: FuzzConfig) -> FuzzReport:
    """Run one fuzzing campaign; deterministic for a given config."""
    from repro.engine.pipeline import Engine
    from repro.verify.diff import differential_check

    report = FuzzReport(seed=cfg.seed)
    engine = Engine(cache_dir=None)
    start = time.perf_counter()

    for index in range(cfg.iterations):
        if (
            cfg.time_budget is not None
            and time.perf_counter() - start > cfg.time_budget
        ):
            break
        seed = case_seed(cfg.seed, index)
        if cfg.zoo_every and index % cfg.zoo_every == cfg.zoo_every - 1:
            gp = zoo_seed_program(seed, cfg.zoo_pipelines)
            report.zoo_cases += 1
            _metrics_inc("verify.zoo_cases")
        else:
            gp = generate_program(seed, cfg.gen)
        report.discards += gp.discards
        report.candidates += gp.candidates
        inputs = gp.make_inputs()
        report.cases += 1
        _metrics_inc("verify.cases")

        diff = differential_check(
            gp, inputs, engine=engine, rtol=cfg.rtol, atol=cfg.atol, use_c=cfg.use_c
        )
        report.skipped_compiles += len(diff.skipped)
        if not diff.ok:

            def diff_still_fails(expr, _rules, _gp=gp, _inputs=inputs):
                import dataclasses

                candidate = dataclasses.replace(_gp, expr=expr)
                res = differential_check(
                    candidate,
                    _inputs,
                    engine=Engine(cache_dir=None),
                    rtol=cfg.rtol,
                    atol=cfg.atol,
                    use_c=cfg.use_c,
                )
                return not res.ok

            _handle_failure(
                cfg,
                report,
                gp,
                "differential",
                [],
                {"failures": [f.to_dict() for f in diff.failures]},
                diff_still_fails,
            )

        rng = random.Random(seed ^ 0x5EED)
        rules = sample_rule_names(rng, cfg.rules_per_case)
        meta = metamorphic_check(
            gp.expr, rules, gp.type_env, inputs, rtol=cfg.rtol, atol=cfg.atol
        )
        if meta is not None:

            def meta_still_fails(expr, cand_rules, _gp=gp, _inputs=inputs):
                return (
                    metamorphic_check(
                        expr,
                        cand_rules,
                        _gp.type_env,
                        _inputs,
                        rtol=cfg.rtol,
                        atol=cfg.atol,
                    )
                    is not None
                )

            _handle_failure(
                cfg, report, gp, "metamorphic", rules, meta, meta_still_fails
            )

    report.elapsed_s = time.perf_counter() - start
    try:
        from repro.observe.metrics import set_gauge

        set_gauge("verify.cases_per_sec", report.cases_per_sec)
        set_gauge("verify.discard_rate", report.discard_rate)
    except Exception:  # pragma: no cover
        pass
    return report


# ----------------------------------------------------------------------
# Corpus replay.
# ----------------------------------------------------------------------


def replay_case(case: dict) -> dict | None:
    """Re-run the check a decoded corpus case describes.

    Returns None when the case passes, or a failure dict.  Callers are
    responsible for honoring ``case["expect"] == "xfail"`` (a known bug
    whose *reproduction* is the expected outcome).
    """
    import dataclasses

    from repro.engine.hashing import structural_hash
    from repro.rise.typecheck import infer_types
    from repro.rise.types import TypeError_
    from repro.verify.gen import GeneratedProgram, make_inputs

    if case["program_hash"]:
        got = structural_hash(case["expr"])
        if got != case["program_hash"]:
            return {
                "kind": "hash-drift",
                "expected": case["program_hash"],
                "got": got,
            }

    if case["kind"] == "typecheck-reject":
        try:
            infer_types(case["expr"], case["type_env"], strict=True)
        except TypeError_:
            return None
        return {"kind": "accepted-ill-typed"}

    inputs = make_inputs(case["inputs"])
    if case["kind"] == "metamorphic":
        return metamorphic_check(
            case["expr"], case["rules"], case["type_env"], inputs
        )
    if case["kind"] == "differential":
        from repro.verify.diff import differential_check

        gp = GeneratedProgram(
            seed=case["seed"],
            base=case["expr"],
            stages=(),
            expr=case["expr"],
            type_env=case["type_env"],
            sizes=case["sizes"],
            input_specs=case["inputs"],
            out_type=infer_types(case["expr"], case["type_env"], strict=True).root_type,
        )
        res = differential_check(gp, inputs)
        if res.ok:
            return None
        return {"kind": "differential", "failures": [f.to_dict() for f in res.failures]}
    return {"kind": "unknown-case-kind", "value": case["kind"]}


def record_throughput(trajectory_path, report: FuzzReport) -> None:
    """Append the campaign's throughput to the bench regression ledger.

    The cell value is **ms per fuzz case** (not cases/sec) so that
    "bigger means slower" matches the ledger's regression semantics.
    """
    from repro.bench.regress import SAMPLE_SCHEMA, append_sample, git_sha

    if report.cases == 0 or report.elapsed_s <= 0:
        return
    ms_per_case = 1e3 * report.elapsed_s / report.cases
    sample = {
        "schema": SAMPLE_SCHEMA,
        "timestamp": round(time.time(), 3),
        "git_sha": git_sha(),
        "k": 1,
        "environment": {"seed": report.seed, "iterations": report.cases},
        "cells": {"verify|fuzz|ms_per_case": round(ms_per_case, 6)},
        "metrics": {},
        "fuzz": report.to_dict(),
    }
    append_sample(trajectory_path, sample)
