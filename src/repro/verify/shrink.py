"""Minimization of failing (program, rule-sequence, input) triples.

A raw fuzzing failure is rarely a good bug report: the program has
irrelevant stages and the rule sequence irrelevant rewrites.  The
shrinker reduces both while re-checking that the failure persists:

* **stage dropping** — generated programs are stage pipelines, so
  subterm replacement reduces to re-building the pipeline from a subset
  of stages (skipping subsets that no longer type-check);
* **rule-sequence bisection** — a delta-debugging pass over the applied
  rule names, removing chunks of halving size.

Every candidate evaluation counts as one shrink step
(``verify.shrink_steps``), and the minimized triple is serialized as a
schema-versioned corpus case for ``tests/corpus/``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable

from repro.rise.expr import Expr
from repro.verify.gen import GeneratedProgram
from repro.verify.serialize import case_to_dict

__all__ = ["ShrinkResult", "shrink_failure", "reduced_program", "build_corpus_case"]

#: ``still_fails(expr, rules) -> bool`` — True while the candidate still
#: reproduces the original failure.
StillFails = Callable[[Expr, list[str]], bool]


@dataclass
class ShrinkResult:
    """A minimized failing triple plus shrink accounting."""

    expr: Expr
    kept_stages: tuple[int, ...]
    rules: list[str]
    steps: int


def _shrink_stages(
    gp: GeneratedProgram, rules: list[str], still_fails: StillFails, budget: int
) -> tuple[tuple[int, ...], Expr, int]:
    kept = list(range(len(gp.stages)))
    expr = gp.expr
    steps = 0
    changed = True
    while changed and steps < budget:
        changed = False
        for i in range(len(kept)):
            candidate = kept[:i] + kept[i + 1 :]
            reduced = gp.rebuild(tuple(candidate))
            if reduced is None:
                continue
            steps += 1
            if still_fails(reduced, rules):
                kept, expr, changed = candidate, reduced, True
                break
    return tuple(kept), expr, steps


def _shrink_rules(
    expr: Expr, rules: list[str], still_fails: StillFails, budget: int
) -> tuple[list[str], int]:
    rules = list(rules)
    steps = 0
    chunk = max(1, len(rules) // 2)
    while rules and steps < budget:
        i = 0
        while i < len(rules) and steps < budget:
            candidate = rules[:i] + rules[i + chunk :]
            steps += 1
            if still_fails(expr, candidate):
                rules = candidate
            else:
                i += chunk
        if chunk == 1:
            break
        chunk = max(1, chunk // 2)
    return rules, steps


def shrink_failure(
    gp: GeneratedProgram,
    rules: list[str],
    still_fails: StillFails,
    max_steps: int = 200,
) -> ShrinkResult:
    """Minimize a failing triple; deterministic given a deterministic check.

    ``still_fails`` receives a candidate (expr, rules) pair and must
    return True while the original failure reproduces.  The search is
    greedy and bounded by ``max_steps`` candidate evaluations.
    """
    kept, expr, stage_steps = _shrink_stages(gp, rules, still_fails, max_steps)
    rules, rule_steps = _shrink_rules(
        expr, rules, still_fails, max(0, max_steps - stage_steps)
    )
    steps = stage_steps + rule_steps
    try:
        from repro.observe.metrics import inc

        if steps:
            inc("verify.shrink_steps", float(steps))
    except Exception:  # pragma: no cover - metrics must never break shrinking
        pass
    return ShrinkResult(expr=expr, kept_stages=kept, rules=rules, steps=steps)


def reduced_program(gp: GeneratedProgram, shrink: ShrinkResult) -> GeneratedProgram:
    """The generated program with the shrunk expression and stage subset."""
    return dataclasses.replace(
        gp,
        expr=shrink.expr,
        stages=tuple(gp.stages[i] for i in shrink.kept_stages),
    )


def build_corpus_case(
    gp: GeneratedProgram,
    shrink: ShrinkResult,
    kind: str,
    report: dict | None = None,
    expect: str = "pass",
    reason: str = "",
) -> dict:
    """Serialize a shrunk failure as a replayable corpus-case document."""
    from repro.engine.hashing import structural_hash

    extra: dict = {"stages": [gp.stages[i].name for i in shrink.kept_stages]}
    if report:
        extra["report"] = report
    return case_to_dict(
        kind=kind,
        seed=gp.seed,
        expr=shrink.expr,
        type_env=gp.type_env,
        sizes=gp.sizes,
        input_specs=gp.input_specs,
        program_hash=structural_hash(shrink.expr),
        rules=shrink.rules,
        expect=expect,
        reason=reason,
        extra=extra,
    )
