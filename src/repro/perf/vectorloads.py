"""The vector-load strategies of paper fig. 7.

When a vectorized stencil reads a 3-wide window, the three window
operands per output vector are unaligned.  Two implementations:

* naive: three vector loads, two of which are unaligned;
* optimized (used by RISE, and by our register-rotation codegen): two
  aligned vector loads plus shuffle instructions combining them.

This module costs both schemes per output vector on a machine model —
the micro-benchmark behind fig. 7's illustration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perf.machines import Machine

__all__ = ["VectorLoadCost", "vector_load_costs"]


@dataclass
class VectorLoadCost:
    machine: str
    naive_cycles: float
    optimized_cycles: float

    @property
    def speedup(self) -> float:
        return self.naive_cycles / self.optimized_cycles


def vector_load_costs(machine: Machine, window: int = 3) -> VectorLoadCost:
    """Cycles per output vector spent loading a ``window``-wide stencil
    neighborhood, for the naive and the shuffle-based scheme."""
    load = 1.0 / machine.mem_ops_per_cycle
    shuffle = 1.0 / machine.shuffle_ops_per_cycle

    # naive: `window` loads, all but one unaligned.
    naive = window * load + (window - 1) * machine.unaligned_penalty_cycles
    # optimized: two aligned loads cover window+width-1 elements; the
    # remaining window-1 operands come from shuffles of the two registers.
    optimized = 2 * load + (window - 1) * shuffle
    return VectorLoadCost(machine.name, naive, optimized)
