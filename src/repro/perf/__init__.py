"""Machine models and the analytic performance model."""

from repro.perf.cost import CostReport, count_operations, estimate_runtime_ms
from repro.perf.machines import (
    ALL_MACHINES, CORTEX_A15, CORTEX_A53, CORTEX_A7, CORTEX_A73, Machine,
)
from repro.perf.objective import CostObjective, DEFAULT_TUNE_SIZES, objective_for
from repro.perf.vectorloads import VectorLoadCost, vector_load_costs
from repro.perf.cachesim import LRUCache, simulate_program, trace_accesses
