"""Analytic models of the paper's four mobile ARM CPUs.

The paper measures on an Odroid XU4 (4x Cortex A7 + 4x Cortex A15, run at
1.5 GHz) and an Odroid N2 (2x Cortex A53 + 4x Cortex A73, run at 1.8 GHz).
We cannot run on that silicon, so the evaluation harness costs every
compiled program on these models instead (DESIGN.md documents the
substitution).  Parameters combine published micro-architecture facts
(issue width, NEON datapath width, cache sizes) with effective-bandwidth
and overhead constants calibrated so the *relative* behaviour matches the
class of machine; all comparisons use the same model, so orderings and
ratios between implementations are meaningful.

Key micro-architectural distinctions the model captures:

* A7 and A53 are in-order, narrow, with 64-bit NEON datapaths (a 128-bit
  vector op issues over 2 cycles); memory stalls add to compute time.
* A15 and A73 are out-of-order with full 128-bit NEON; memory access
  overlaps with compute (roofline-style max).
* Unaligned vector loads cost extra on all of them (paper fig. 7).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Machine", "CORTEX_A7", "CORTEX_A15", "CORTEX_A53", "CORTEX_A73", "ALL_MACHINES"]


@dataclass(frozen=True)
class Machine:
    name: str
    cores: int
    freq_ghz: float
    #: sustained scalar float ops per cycle per core (issue width x util)
    scalar_flops_per_cycle: float
    #: sustained 128-bit (4 x f32) vector ops per cycle per core
    vector_ops_per_cycle: float
    #: loads/stores the LSU retires per cycle per core
    mem_ops_per_cycle: float
    #: extra cycles for a vector load that is not 16-byte aligned
    unaligned_penalty_cycles: float
    #: integer ALU ops per cycle (index arithmetic, modulo)
    int_ops_per_cycle: float
    #: vector permute/shuffle ops per cycle (NEON permutes run on a
    #: dedicated unit at ~1/cycle, independent of the FP datapath width)
    shuffle_ops_per_cycle: float
    l1_kb: int
    l2_kb: int
    #: effective DRAM bandwidth, GB/s (shared by all cores)
    dram_gbps: float
    #: effective L2 bandwidth, GB/s (shared per cluster)
    l2_gbps: float
    #: True for out-of-order cores: memory time overlaps compute
    out_of_order: bool
    #: per-kernel-launch overhead in microseconds, per runtime kind
    launch_overhead_us: float = 60.0

    @property
    def cycles_per_us(self) -> float:
        return self.freq_ghz * 1000.0


# In-order 2-wide; 64-bit NEON datapath (half-rate 128-bit ops); small L2.
CORTEX_A7 = Machine(
    name="Cortex A7",
    cores=4,
    freq_ghz=1.5,
    scalar_flops_per_cycle=0.8,
    vector_ops_per_cycle=0.45,
    mem_ops_per_cycle=0.8,
    unaligned_penalty_cycles=1.2,
    int_ops_per_cycle=1.6,
    shuffle_ops_per_cycle=1.0,
    l1_kb=32,
    l2_kb=512,
    dram_gbps=1.6,
    l2_gbps=10.0,
    out_of_order=False,
    launch_overhead_us=180.0,
)

# Out-of-order 3-wide; full 128-bit NEON; large L2.
CORTEX_A15 = Machine(
    name="Cortex A15",
    cores=4,
    freq_ghz=1.5,
    scalar_flops_per_cycle=1.8,
    vector_ops_per_cycle=1.0,
    mem_ops_per_cycle=1.6,
    unaligned_penalty_cycles=0.6,
    int_ops_per_cycle=2.5,
    shuffle_ops_per_cycle=1.8,
    l1_kb=32,
    l2_kb=2048,
    dram_gbps=3.2,
    l2_gbps=18.0,
    out_of_order=True,
    launch_overhead_us=140.0,
)

# In-order 2-wide; 64-bit NEON; only two cores in the Odroid N2 cluster.
CORTEX_A53 = Machine(
    name="Cortex A53",
    cores=2,
    freq_ghz=1.8,
    scalar_flops_per_cycle=1.0,
    vector_ops_per_cycle=0.5,
    mem_ops_per_cycle=1.0,
    unaligned_penalty_cycles=1.0,
    int_ops_per_cycle=1.8,
    shuffle_ops_per_cycle=1.2,
    l1_kb=32,
    l2_kb=256,
    dram_gbps=2.6,
    l2_gbps=12.0,
    out_of_order=False,
    launch_overhead_us=110.0,
)

# Out-of-order 2-wide but deep; full 128-bit NEON; fast memory system.
CORTEX_A73 = Machine(
    name="Cortex A73",
    cores=4,
    freq_ghz=1.8,
    scalar_flops_per_cycle=1.9,
    vector_ops_per_cycle=1.1,
    mem_ops_per_cycle=1.8,
    unaligned_penalty_cycles=0.5,
    int_ops_per_cycle=2.6,
    shuffle_ops_per_cycle=2.0,
    l1_kb=64,
    l2_kb=1024,
    dram_gbps=4.2,
    l2_gbps=22.0,
    out_of_order=True,
    launch_overhead_us=90.0,
)

ALL_MACHINES = [CORTEX_A7, CORTEX_A15, CORTEX_A53, CORTEX_A73]


#: Per-runtime launch-overhead multipliers: the RISE and LIFT pipelines run
#: through an OpenCL runtime (POCL in the paper) with real enqueue costs;
#: Halide emits a native function; the library baseline pays a small
#: dispatch cost per call.
RUNTIME_LAUNCH_FACTOR = {
    "opencl": 1.0,
    "native": 0.08,
    "library": 0.25,
}
