"""Analytic cost model: estimate a compiled program's runtime on a machine.

The model walks the imperative IR with concrete sizes, counting per
loop-nest execution:

* scalar float ops, 128-bit vector ops (with unaligned-load penalties),
  integer index ops (modulo indexing of circular buffers is charged);
* loads/stores per buffer, from which per-buffer memory traffic is
  derived: the first pass over a buffer is served by its *home* level
  (DRAM for kernel parameters, the smallest cache that fits for
  temporaries); additional passes hit the smallest level the buffer fits.

Wall-clock combines a compute term (serial work + parallel-loop work /
cores — only cycles under a ``PARALLEL`` loop divide) and memory terms
(traffic / shared bandwidth): added for in-order cores, overlapped
(max) for out-of-order cores, plus per-kernel launch overhead.  This is
a roofline-style model — crude in absolute terms, but every compared
implementation is costed identically, which is what the paper's relative
claims need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.codegen.ir import (
    AllocStmt,
    Assign,
    BinOp,
    Block,
    Broadcast,
    Comment,
    DeclScalar,
    DeclVec,
    FConst,
    For,
    IConst,
    IExpr,
    ImpFunction,
    ImpProgram,
    Load,
    LoopKind,
    NatE,
    Stmt,
    Store,
    UnOp,
    Var,
    VLane,
    VLoad,
    VPack,
    VShuffle,
    VStore,
)
from repro.codegen.sizes import resolve_sizes
from repro.perf.machines import Machine, RUNTIME_LAUNCH_FACTOR

__all__ = ["CostReport", "estimate_runtime_ms", "count_operations"]


#: Instruction-issue categories that turn into compute cycles (the bins
#: split between the serial and parallel portions of a kernel).
_CYCLE_FIELDS = (
    "scalar_flops",
    "vector_ops",
    "int_ops",
    "mem_ops",
    "shuffle_ops",
    "unaligned_vloads",
)


@dataclass
class OpCounts:
    scalar_flops: float = 0.0
    vector_ops: float = 0.0
    int_ops: float = 0.0
    mem_ops: float = 0.0          # load/store instructions (any width)
    shuffle_ops: float = 0.0
    unaligned_vloads: float = 0.0
    loads_by_buffer: dict = field(default_factory=dict)
    stores_by_buffer: dict = field(default_factory=dict)
    parallel_work: float = 0.0     # max extent of any PARALLEL loop
    #: Issue counts accumulated *inside* PARALLEL loops only — the portion
    #: of the totals above that multicore execution actually divides.
    parallel: "OpCounts | None" = None

    def add_load(self, buffer: str, count: float) -> None:
        self.loads_by_buffer[buffer] = self.loads_by_buffer.get(buffer, 0.0) + count

    def add_store(self, buffer: str, count: float) -> None:
        self.stores_by_buffer[buffer] = self.stores_by_buffer.get(buffer, 0.0) + count


@dataclass
class CostReport:
    """Cost breakdown for one program on one machine at one size."""

    name: str
    machine: str
    runtime_ms: float
    compute_ms: float
    memory_ms: float
    overhead_ms: float
    scalar_flops: float
    vector_ops: float
    dram_bytes: float
    l2_bytes: float

    def __str__(self) -> str:
        return (
            f"{self.name:<18} on {self.machine:<10}: {self.runtime_ms:8.2f} ms "
            f"(compute {self.compute_ms:7.2f}, memory {self.memory_ms:7.2f}, "
            f"overhead {self.overhead_ms:5.2f})"
        )


class _Counter:
    def __init__(self, sizes: Mapping[str, int]):
        self.sizes = dict(sizes)
        self.counts = OpCounts()
        self.vector_vars: set[str] = set()
        self.parallel_extent = 1  # max extent of enclosing parallel loop
        self.parallel_depth = 0   # nesting depth of PARALLEL loops
        self.par_totals = dict.fromkeys(_CYCLE_FIELDS, 0.0)
        # (loop var, cumulative iteration count up to and including it)
        self.loop_stack: list[tuple[str, float]] = []

    def _cycle_snapshot(self) -> tuple[float, ...]:
        return tuple(getattr(self.counts, f) for f in _CYCLE_FIELDS)

    # -- loop-invariant index arithmetic --------------------------------

    def _mentioned_vars(self, e: IExpr, out: set[str]) -> None:
        if isinstance(e, Var):
            out.add(e.name)
        for c in e.children():
            self._mentioned_vars(c, out)

    def _hoisted_mult(self, e: IExpr, default: float) -> float:
        """Execution count of an index expression after loop-invariant code
        motion: it is evaluated once per iteration of the *deepest* loop
        whose variable it mentions (compilers strength-reduce the rest to
        increments)."""
        mentioned: set[str] = set()
        self._mentioned_vars(e, mentioned)
        for var, cumulative in reversed(self.loop_stack):
            if var in mentioned:
                return min(cumulative, default)
        return 1.0

    def index_cost(self, e: IExpr, mult: float) -> None:
        """Charge an address computation: one increment at the deepest
        varying level plus multi-cycle modulo/division at the level of
        their own operands (circular-buffer row selection is per line,
        not per pixel)."""
        c = self.counts
        c.int_ops += 1.0 * self._hoisted_mult(e, mult)

        def find_divmod(x: IExpr) -> None:
            if isinstance(x, BinOp) and x.op in ("mod", "idiv"):
                c.int_ops += 3.0 * self._hoisted_mult(x, mult)
            for child in x.children():
                find_divmod(child)

        find_divmod(e)

    def nat(self, n) -> int:
        return int(n.evaluate(self.sizes))

    def extent(self, e: IExpr) -> int:
        if isinstance(e, IConst):
            return e.value
        if isinstance(e, NatE):
            return self.nat(e.value)
        raise ValueError(f"loop extent must be constant after sizing: {e!r}")

    # -- expressions ----------------------------------------------------

    def is_vector(self, e: IExpr) -> bool:
        if isinstance(e, (VLoad, Broadcast, VShuffle, VPack)):
            return True
        if isinstance(e, Var):
            return e.name in self.vector_vars
        if isinstance(e, BinOp):
            return self.is_vector(e.a) or self.is_vector(e.b)
        if isinstance(e, UnOp):
            return self.is_vector(e.a)
        return False

    def expr(self, e: IExpr, mult: float, index_ctx: bool = False) -> None:
        c = self.counts
        if isinstance(e, (IConst, FConst, NatE, Var)):
            return
        if isinstance(e, Load):
            c.mem_ops += mult
            c.add_load(e.buffer, mult)
            self.index_cost(e.index, mult)
            return
        if isinstance(e, VLoad):
            c.mem_ops += mult
            c.add_load(e.buffer, mult * e.width)
            if not e.aligned:
                c.unaligned_vloads += mult
            self.index_cost(e.index, mult)
            return
        if isinstance(e, Broadcast):
            c.vector_ops += 0.25 * mult  # dup is cheap and often hoisted
            self.expr(e.value, mult)
            return
        if isinstance(e, VShuffle):
            c.shuffle_ops += mult
            self.expr(e.a, mult)
            self.expr(e.b, mult)
            return
        if isinstance(e, VPack):
            c.vector_ops += mult * len(e.lanes) * 0.5  # lane inserts
            for lane in e.lanes:
                self.expr(lane, mult)
            return
        if isinstance(e, VLane):
            c.vector_ops += 0.5 * mult
            self.expr(e.vec, mult)
            return
        if isinstance(e, BinOp):
            if e.op in ("mod", "idiv") or index_ctx:
                self.index_cost(e, mult)
                return
            if self.is_vector(e):
                c.vector_ops += mult
            else:
                c.scalar_flops += mult
            self.expr(e.a, mult, index_ctx)
            self.expr(e.b, mult, index_ctx)
            return
        if isinstance(e, UnOp):
            if self.is_vector(e):
                c.vector_ops += mult
            else:
                c.scalar_flops += mult
            self.expr(e.a, mult, index_ctx)
            return
        raise TypeError(f"cannot cost {type(e).__name__}")

    # -- statements -------------------------------------------------------

    def stmt(self, s: Stmt, mult: float) -> None:
        c = self.counts
        if isinstance(s, Block):
            for sub in s.stmts:
                self.stmt(sub, mult)
            return
        if isinstance(s, (Comment, AllocStmt)):
            return
        if isinstance(s, For):
            extent = self.extent(s.extent)
            inner_mult = mult * extent
            self.loop_stack.append((s.var, inner_mult))
            # An outermost PARALLEL loop opens a parallel region: the issue
            # counts its body accumulates are binned separately so the cost
            # model divides only them (not prologue/epilogue work) by cores.
            entering = s.kind is LoopKind.PARALLEL and self.parallel_depth == 0
            if s.kind is LoopKind.PARALLEL:
                self.parallel_extent = max(self.parallel_extent, extent)
                self.parallel_depth += 1
            if entering:
                before = self._cycle_snapshot()
            self.stmt(s.body, inner_mult)
            if s.kind is LoopKind.PARALLEL:
                self.parallel_depth -= 1
            if entering:
                after = self._cycle_snapshot()
                for name, b, a in zip(_CYCLE_FIELDS, before, after):
                    self.par_totals[name] += a - b
            self.loop_stack.pop()
            return
        if isinstance(s, DeclScalar):
            if s.init is not None:
                self.expr(s.init, mult)
            return
        if isinstance(s, DeclVec):
            self.vector_vars.add(s.var)
            if s.init is not None:
                self.expr(s.init, mult)
            return
        if isinstance(s, Assign):
            # Bare register moves (rotation shifts) are ~free after renaming.
            if not isinstance(s.value, Var):
                self.expr(s.value, mult)
            return
        if isinstance(s, Store):
            c.mem_ops += mult
            c.add_store(s.buffer, mult)
            self.index_cost(s.index, mult)
            self.expr(s.value, mult)
            return
        if isinstance(s, VStore):
            c.mem_ops += mult
            c.add_store(s.buffer, mult * s.width)
            self.index_cost(s.index, mult)
            self.expr(s.value, mult)
            return
        raise TypeError(f"cannot cost statement {type(s).__name__}")


def count_operations(fn: ImpFunction, sizes: Mapping[str, int]) -> OpCounts:
    """Raw operation counts for one kernel at concrete sizes."""
    counter = _Counter(sizes)
    counter.stmt(fn.body, 1.0)
    counter.counts.parallel_work = counter.parallel_extent
    counter.counts.parallel = OpCounts(**counter.par_totals)
    return counter.counts


def _buffer_sizes(fn: ImpFunction, sizes: Mapping[str, int]) -> dict[str, float]:
    out: dict[str, float] = {}
    for b in fn.inputs + [fn.output] + fn.temporaries:
        out[b.name] = float(b.alloc_size().evaluate(sizes)) * 4.0  # bytes
    return out


def _memory_traffic(
    fn: ImpFunction, counts: OpCounts, sizes: Mapping[str, int], machine: Machine
) -> tuple[float, float]:
    """Estimate (dram_bytes, l2_bytes) for one kernel.

    Parameters (inputs/output) live in DRAM; their cold traffic is
    compulsory, and repeated passes hit the smallest cache the buffer fits
    in.  Temporaries (per-chunk line buffers) are classified *in aggregate*:
    the working set of a streaming pipeline is the sum of all its live line
    buffers, so either they all fit in L1 (their traffic is then covered by
    the load/store issue cost) or they spill together to L2/DRAM.
    """
    byte_sizes = _buffer_sizes(fn, sizes)
    param_names = {b.name for b in fn.inputs} | {fn.output.name}
    l1 = machine.l1_kb * 1024.0
    l2 = machine.l2_kb * 1024.0

    # Aggregate working set of temporaries.  For parallel kernels each
    # thread owns its per-chunk buffers, so the per-core working set is the
    # aggregate of one chunk's buffers (they are allocated inside the
    # parallel loop and counted once here).
    temp_ws = sum(
        size for name, size in byte_sizes.items() if name not in param_names
    )
    if temp_ws <= 1.25 * l1:
        temp_level = "l1"
    elif temp_ws <= l2:
        temp_level = "l2"
    else:
        temp_level = "dram"

    dram = 0.0
    l2_traffic = 0.0
    for buffer, accesses in counts.loads_by_buffer.items():
        bytes_accessed = accesses * 4.0
        size = byte_sizes.get(buffer, 0.0)
        cold = min(bytes_accessed, size)
        repeat = max(0.0, bytes_accessed - cold)
        if buffer in param_names:
            dram += cold
            if size > l2:
                dram += repeat  # no cache holds it across passes
            elif size > l1:
                l2_traffic += repeat
        else:
            if temp_level == "dram":
                dram += bytes_accessed
            elif temp_level == "l2":
                l2_traffic += bytes_accessed
            # else: L1-resident, folded into mem_ops issue cost
    for buffer, accesses in counts.stores_by_buffer.items():
        bytes_accessed = accesses * 4.0
        size = byte_sizes.get(buffer, 0.0)
        if buffer in param_names:
            dram += min(bytes_accessed, size) + max(
                0.0, (bytes_accessed - size) if size > l2 else 0.0
            )
        else:
            if temp_level == "dram":
                dram += bytes_accessed
            elif temp_level == "l2":
                l2_traffic += bytes_accessed
    return dram, l2_traffic


def estimate_runtime_ms(
    prog: ImpProgram,
    sizes: Mapping[str, int],
    machine: Machine,
    runtime_kind: str = "opencl",
) -> CostReport:
    """Estimated wall-clock runtime of the whole program, in milliseconds."""
    sizes = resolve_sizes(prog, sizes)
    total_compute_us = 0.0
    total_memory_us = 0.0
    total_flops = 0.0
    total_vops = 0.0
    total_dram = 0.0
    total_l2 = 0.0

    def issue_cycles(c: OpCounts) -> float:
        return (
            c.scalar_flops / machine.scalar_flops_per_cycle
            + c.vector_ops / machine.vector_ops_per_cycle
            + c.shuffle_ops / machine.shuffle_ops_per_cycle
            + c.unaligned_vloads * machine.unaligned_penalty_cycles
            + c.int_ops / machine.int_ops_per_cycle
            + c.mem_ops / machine.mem_ops_per_cycle
        )

    for fn in prog.functions:
        counts = count_operations(fn, sizes)
        cores = min(machine.cores, max(1, int(counts.parallel_work)))
        cycles = issue_cycles(counts)
        # Only work under a PARALLEL loop divides across cores; prologue /
        # epilogue work outside any parallel region stays serial (Amdahl).
        par_cycles = issue_cycles(counts.parallel) if counts.parallel else 0.0
        serial_cycles = max(0.0, cycles - par_cycles)
        compute_us = (serial_cycles + par_cycles / cores) / machine.cycles_per_us
        dram_bytes, l2_bytes = _memory_traffic(fn, counts, sizes, machine)
        memory_us = (
            dram_bytes / (machine.dram_gbps * 1e3)
            + l2_bytes / (machine.l2_gbps * 1e3)
        )
        if machine.out_of_order:
            kernel_us = max(compute_us, memory_us)
        else:
            kernel_us = compute_us + 0.85 * memory_us
        total_compute_us += compute_us
        total_memory_us += memory_us
        total_flops += counts.scalar_flops
        total_vops += counts.vector_ops
        total_dram += dram_bytes
        total_l2 += l2_bytes
        # accumulate per-kernel wall into compute slot for reporting
        fn_runtime = kernel_us
        total_compute_us += 0.0
        if fn is prog.functions[0]:
            runtime_us = fn_runtime
        else:
            runtime_us += fn_runtime

    launches = max(prog.launch_overheads, len(prog.functions))
    overhead_us = (
        launches
        * machine.launch_overhead_us
        * RUNTIME_LAUNCH_FACTOR.get(runtime_kind, 1.0)
    )
    runtime_us += overhead_us

    return CostReport(
        name=prog.name,
        machine=machine.name,
        runtime_ms=runtime_us / 1e3,
        compute_ms=total_compute_us / 1e3,
        memory_ms=total_memory_us / 1e3,
        overhead_ms=overhead_us / 1e3,
        scalar_flops=total_flops,
        vector_ops=total_vops,
        dram_bytes=total_dram,
        l2_bytes=total_l2,
    )
