"""A trace-driven cache simulator used to validate the analytic memory model.

The analytic model (``repro.perf.cost``) classifies buffer traffic by
working-set arguments.  This module checks those claims directly on small
instances: it *enumerates* every load/store of a compiled program (walking
the imperative IR with concrete loop bounds, evaluating the real index
expressions) and feeds the resulting address trace through an LRU
set-associative cache.

It is only practical for small images (the trace is explicit), which is
exactly its role: a validation oracle for the scalable analytic model,
mirroring how the paper validates outputs rather than re-deriving them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.codegen.ir import (
    AllocStmt,
    Assign,
    BinOp,
    Block,
    Broadcast,
    Comment,
    DeclScalar,
    DeclVec,
    FConst,
    For,
    IConst,
    IExpr,
    ImpFunction,
    ImpProgram,
    Load,
    NatE,
    Stmt,
    Store,
    UnOp,
    Var,
    VLane,
    VLoad,
    VPack,
    VShuffle,
    VStore,
)
from repro.codegen.sizes import resolve_sizes

__all__ = ["LRUCache", "trace_accesses", "simulate_program", "CacheStats"]


@dataclass
class CacheStats:
    accesses: int = 0
    misses: int = 0

    @property
    def hit_rate(self) -> float:
        if self.accesses == 0:
            return 1.0
        return 1.0 - self.misses / self.accesses

    def miss_bytes(self, line_bytes: int = 64) -> int:
        return self.misses * line_bytes


class LRUCache:
    """A set-associative LRU cache over byte addresses."""

    def __init__(self, size_kb: int, line_bytes: int = 64, ways: int = 4):
        self.line_bytes = line_bytes
        self.ways = ways
        self.sets = max(1, (size_kb * 1024) // (line_bytes * ways))
        self._lines: list[list[int]] = [[] for _ in range(self.sets)]
        self.stats = CacheStats()

    def access(self, address: int) -> bool:
        """Touch one byte address; returns True on hit."""
        line = address // self.line_bytes
        index = line % self.sets
        ways = self._lines[index]
        self.stats.accesses += 1
        if line in ways:
            ways.remove(line)
            ways.append(line)
            return True
        self.stats.misses += 1
        ways.append(line)
        if len(ways) > self.ways:
            ways.pop(0)
        return False


def _index_vars(e: IExpr) -> set[str]:
    out: set[str] = set()
    if isinstance(e, Var):
        out.add(e.name)
    for c in e.children():
        out |= _index_vars(c)
    return out


class _Tracer:
    def __init__(self, sizes: Mapping[str, int], base_of: Mapping[str, int]):
        self.sizes = dict(sizes)
        self.base_of = dict(base_of)
        self.env: dict[str, int] = {}

    def index(self, e: IExpr) -> int:
        if isinstance(e, IConst):
            return e.value
        if isinstance(e, NatE):
            return int(e.value.evaluate(self.sizes))
        if isinstance(e, Var):
            return self.env[e.name]
        if isinstance(e, BinOp):
            a, b = self.index(e.a), self.index(e.b)
            if e.op == "add":
                return a + b
            if e.op == "sub":
                return a - b
            if e.op == "mul":
                return a * b
            if e.op == "mod":
                return a % b
            if e.op == "idiv":
                return a // b
        raise ValueError(f"non-integer index expression {e!r}")

    def addresses(self, e: IExpr) -> Iterator[tuple[int, int]]:
        """(byte address, bytes) of every memory access in a value expr."""
        if isinstance(e, Load):
            yield self.base_of[e.buffer] + 4 * self.index(e.index), 4
        elif isinstance(e, VLoad):
            yield self.base_of[e.buffer] + 4 * self.index(e.index), 4 * e.width
        else:
            for c in e.children():
                yield from self.addresses(c)

    def run(self, stmt: Stmt) -> Iterator[tuple[int, int, bool]]:
        """Yield (address, bytes, is_store) in execution order."""
        if isinstance(stmt, Block):
            for s in stmt.stmts:
                yield from self.run(s)
        elif isinstance(stmt, (Comment, AllocStmt)):
            return
        elif isinstance(stmt, For):
            extent = self.index(stmt.extent)
            for i in range(extent):
                self.env[stmt.var] = i
                yield from self.run(stmt.body)
        elif isinstance(stmt, (DeclScalar, DeclVec)):
            if stmt.init is not None:
                for addr, nbytes in self.addresses(stmt.init):
                    yield addr, nbytes, False
        elif isinstance(stmt, Assign):
            for addr, nbytes in self.addresses(stmt.value):
                yield addr, nbytes, False
        elif isinstance(stmt, Store):
            for addr, nbytes in self.addresses(stmt.value):
                yield addr, nbytes, False
            yield self.base_of[stmt.buffer] + 4 * self.index(stmt.index), 4, True
        elif isinstance(stmt, VStore):
            for addr, nbytes in self.addresses(stmt.value):
                yield addr, nbytes, False
            yield (
                self.base_of[stmt.buffer] + 4 * self.index(stmt.index),
                4 * stmt.width,
                True,
            )
        else:
            raise ValueError(f"cannot trace {type(stmt).__name__}")


def trace_accesses(
    fn: ImpFunction, sizes: Mapping[str, int]
) -> Iterator[tuple[int, int, bool]]:
    """The full (address, bytes, is_store) trace of one kernel."""
    base = 0
    base_of: dict[str, int] = {}
    for b in fn.inputs + [fn.output] + fn.temporaries:
        base_of[b.name] = base
        base += 4 * int(b.alloc_size().evaluate(sizes)) + 256  # pad between buffers
    tracer = _Tracer(sizes, base_of)
    yield from tracer.run(fn.body)


@dataclass
class SimResult:
    l1: CacheStats
    l2: CacheStats

    @property
    def dram_bytes(self) -> int:
        return self.l2.miss_bytes()


def simulate_program(
    prog: ImpProgram,
    sizes: Mapping[str, int],
    l1_kb: int = 32,
    l2_kb: int = 256,
    line_bytes: int = 64,
) -> SimResult:
    """Feed every kernel's trace through an L1 -> L2 hierarchy."""
    sizes = resolve_sizes(prog, sizes)
    l1 = LRUCache(l1_kb, line_bytes, ways=4)
    l2 = LRUCache(l2_kb, line_bytes, ways=8)
    for fn in prog.functions:
        for address, nbytes, _is_store in trace_accesses(fn, sizes):
            for line_start in range(
                address // line_bytes, (address + nbytes - 1) // line_bytes + 1
            ):
                if not l1.access(line_start * line_bytes):
                    l2.access(line_start * line_bytes)
    return SimResult(l1.stats, l2.stats)
