"""Cost-model scoring packaged as a search objective.

:func:`repro.perf.cost.estimate_runtime_ms` answers "how fast is this
program on that machine at those sizes" — three arguments a search loop
would have to thread through every call site.  :class:`CostObjective`
freezes one (machine, sizes, runtime kind) configuration into a single
``score(program) -> ms`` callable with a stable :attr:`identity` string,
so the autotuner can rank candidates, memoize scores under
``(candidate hash, objective identity)`` keys, and record which
configuration produced a discovered schedule in its search logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.codegen.ir import ImpProgram
from repro.perf.cost import CostReport, estimate_runtime_ms
from repro.perf.machines import ALL_MACHINES, CORTEX_A73, Machine

__all__ = ["DEFAULT_TUNE_SIZES", "CostObjective", "objective_for"]

#: Default concrete sizes the search objective scores at: large enough
#: that loop bodies dominate launch overhead, and divisible by every
#: chunk (16/32/64), vector width (4/8) and strip factor (2) in the
#: default action pool, so no candidate is unscoreable for size reasons.
DEFAULT_TUNE_SIZES: Mapping[str, int] = {"n": 128, "m": 128}


@dataclass(frozen=True)
class CostObjective:
    """One frozen cost-model configuration: ``score(program)`` in ms.

    ``machine`` defaults to the Cortex A73 — the strongest modeled CPU,
    the paper's headline Odroid N2 big cluster — and ``runtime_kind`` to
    ``"opencl"``, the launch-overhead class every RISE schedule is costed
    under in the fig. 8 grid, so objective scores are directly comparable
    with the hand-written schedules' cells.
    """

    machine: Machine = CORTEX_A73
    sizes: tuple = tuple(sorted(DEFAULT_TUNE_SIZES.items()))
    runtime_kind: str = "opencl"

    @property
    def size_env(self) -> dict[str, int]:
        """The concrete size bindings as a dict."""
        return dict(self.sizes)

    @property
    def identity(self) -> str:
        """A stable string naming this configuration (for memo keys and
        search logs): ``"Cortex A73|m=128,n=128|opencl"``."""
        szs = ",".join(f"{k}={v}" for k, v in self.sizes)
        return f"{self.machine.name}|{szs}|{self.runtime_kind}"

    def score_report(self, program: ImpProgram) -> CostReport:
        """The full cost report for ``program`` under this configuration."""
        return estimate_runtime_ms(
            program, self.size_env, self.machine, self.runtime_kind
        )

    def score(self, program: ImpProgram) -> float:
        """Modeled runtime in ms — the search's minimization target."""
        return self.score_report(program).runtime_ms


def objective_for(
    machine: str | Machine | None = None,
    sizes: Mapping[str, int] | None = None,
    runtime_kind: str = "opencl",
) -> CostObjective:
    """Build a :class:`CostObjective`, resolving ``machine`` by name.

    ``machine`` accepts a :class:`~repro.perf.machines.Machine`, a model
    name from :data:`~repro.perf.machines.ALL_MACHINES` (matched
    case-insensitively, with or without the ``"Cortex "`` prefix), or
    ``None`` for the default.  Unknown names raise with the known list.
    """
    if machine is None:
        resolved = CORTEX_A73
    elif isinstance(machine, Machine):
        resolved = machine
    else:
        wanted = str(machine).lower().replace("cortex", "").strip()
        matches = [
            m
            for m in ALL_MACHINES
            if m.name.lower().replace("cortex", "").strip() == wanted
        ]
        if not matches:
            known = ", ".join(repr(m.name) for m in ALL_MACHINES)
            raise ValueError(f"unknown machine {machine!r} (known: {known})")
        resolved = matches[0]
    size_items = tuple(sorted((sizes or DEFAULT_TUNE_SIZES).items()))
    return CostObjective(machine=resolved, sizes=size_items, runtime_kind=runtime_kind)
