"""Ahead-of-time prebuilding of the named kernel library.

JIT latency is the cold-start tax of a compile service: the first
request for a schedule pays rewriting, typechecking, lowering and (for
the C backend) a real compiler invocation.  This module pays that tax
at *install time* instead — the deployment posture Halide recommends
for mobile targets ("AOT is generally preferred... commonly used for
mobile platforms"): :func:`prebuild` compiles a named set of kernels
(the Harris schedule variants of the paper's evaluation, times the
available backends) into a shared artifact store, then writes an
``aot_manifest.json`` at the store root mapping kernel names to cache
keys.  Any later process pointing an engine at the same store —
including every :class:`~repro.serve.server.Server` worker — warm-starts
each of those kernels from disk without running a single compiler phase.

The manifest is provenance, not a lookup table the engine needs: the
store stays content-addressed, and a serving process reconstructs the
same keys from the same :class:`~repro.engine.request.CompileRequest`
values.  ``tools/aot.py`` is the install-time CLI.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Sequence

from repro.engine.pipeline import Engine
from repro.engine.request import CompileRequest

__all__ = [
    "AOT_MANIFEST",
    "MANIFEST_SCHEMA",
    "harris_kernel_requests",
    "zoo_kernel_requests",
    "prebuild",
    "load_manifest",
]

#: Manifest filename at the artifact-store root.
AOT_MANIFEST = "aot_manifest.json"

#: Schema identifier of the manifest document.
MANIFEST_SCHEMA = "repro.serve.aot/v1"

#: Row-chunk size of the serving kernel grid.  Smaller than the bench
#: default (32) on purpose: every schedule in the ladder then runs on
#: any image whose inner height is a multiple of ``chunk * strip`` = 8,
#: which the serving-path tests and the loadtest image satisfy.
DEFAULT_AOT_CHUNK = 4


def harris_kernel_requests(
    backends: Sequence[str] = ("python",),
    chunk: int | None = None,
    vec: int | None = None,
    sizes: dict | None = None,
) -> list[tuple[str, CompileRequest]]:
    """The named Harris kernel set: schedule variants x ``backends``.

    Returns ``(kernel_name, request)`` pairs covering the paper's
    schedule ladder — naive, cbuf (listing 5), cbuf+rot (listing 9) and
    their strip-parallel forms — one per requested backend.  ``sizes``
    binds default run sizes on the handles (it never affects keys).
    """
    from repro.pipelines import harris, harris_input_type
    from repro.rise import Identifier
    from repro.strategies.schedules import (
        DEFAULT_VEC,
        cbuf_par_version,
        cbuf_rrot_par_version,
        cbuf_rrot_version,
        cbuf_version,
        naive_version,
    )

    chunk = chunk if chunk is not None else DEFAULT_AOT_CHUNK
    vec = vec if vec is not None else DEFAULT_VEC
    env = {"rgb": harris_input_type()}
    expr = harris(Identifier("rgb"))
    schedules = [
        ("harris-naive", naive_version(env)),
        ("harris-cbuf", cbuf_version(env, chunk=chunk, vec=vec)),
        ("harris-cbuf-rot", cbuf_rrot_version(env, chunk=chunk, vec=vec)),
        ("harris-cbuf-par", cbuf_par_version(env, chunk=chunk, vec=vec)),
        ("harris-cbuf-rot-par", cbuf_rrot_par_version(env, chunk=chunk, vec=vec)),
    ]
    requests: list[tuple[str, CompileRequest]] = []
    for backend in backends:
        for label, schedule in schedules:
            requests.append(
                (
                    f"{label}@{backend}",
                    CompileRequest(
                        source=expr,
                        strategy=schedule,
                        type_env=env,
                        backend=backend,
                        sizes=sizes,
                        name=label.replace("-", "_"),
                    ),
                )
            )
    return requests


def zoo_kernel_requests(
    backends: Sequence[str] = ("python",),
    chunk: int | None = None,
    vec: int | None = None,
    strip: int | None = None,
    pipelines: Sequence[str] | None = None,
    schedules: Sequence[str] | None = None,
    sizes: dict | None = None,
    applicable_only: bool = True,
) -> list[tuple[str, CompileRequest]]:
    """The registry-wide kernel set: every zoo pipeline x its schedules.

    Enumerates the :mod:`pipeline registry <repro.pipelines.registry>`
    and emits one ``(kernel_name, request)`` pair per (pipeline,
    schedule, backend), addressed through the engine's registered
    ``"zoo"`` builder so the requests are plain JSON options — exactly
    what a serving process reconstructs.  With ``applicable_only`` (the
    default) only schedules that structurally apply to each pipeline are
    prebuilt; prebuilding a no-op schedule would publish a kernel
    identical to naive under an optimized name.
    """
    from repro.pipelines import registry
    from repro.strategies.schedules import DEFAULT_STRIP, DEFAULT_VEC

    chunk = chunk if chunk is not None else DEFAULT_AOT_CHUNK
    vec = vec if vec is not None else DEFAULT_VEC
    strip = strip if strip is not None else DEFAULT_STRIP
    names = tuple(pipelines) if pipelines is not None else registry.names()
    requests: list[tuple[str, CompileRequest]] = []
    for pipeline in names:
        spec = registry.get(pipeline)
        if schedules is not None:
            wanted = tuple(schedules)
        elif applicable_only:
            reports = registry.applicable_schedules(
                spec, chunk=chunk, vec=vec, strip=strip
            )
            wanted = tuple(s for s in registry.SCHEDULE_NAMES if reports[s].applies)
        else:
            wanted = registry.SCHEDULE_NAMES
        for backend in backends:
            for schedule in wanted:
                requests.append(
                    (
                        f"zoo-{pipeline}-{schedule}@{backend}",
                        CompileRequest(
                            source="zoo",
                            options={
                                "pipeline": pipeline,
                                "schedule": schedule,
                                "chunk": chunk,
                                "vec": vec,
                                "strip": strip,
                            },
                            backend=backend,
                            sizes=sizes,
                        ),
                    )
                )
    return requests


def prebuild(
    cache_dir: Path | str,
    requests: Sequence[tuple[str, CompileRequest]] | None = None,
    backends: Sequence[str] = ("python",),
    engine: Engine | None = None,
) -> dict:
    """Compile every named kernel into ``cache_dir``; returns the manifest.

    ``requests`` defaults to :func:`harris_kernel_requests` over
    ``backends``.  Re-running over a warm store is cheap and idempotent:
    already-published kernels are cache hits, and the manifest records
    per-kernel cache status so an install script can verify that a
    second pass performed zero builds.
    """
    cache_dir = Path(cache_dir)
    if requests is None:
        requests = harris_kernel_requests(backends=backends)
    eng = engine if engine is not None else Engine(cache_dir=cache_dir)
    kernels = []
    for kernel_name, request in requests:
        pipeline = eng.compile_request(request)
        kernels.append(
            {
                "kernel": kernel_name,
                "key": pipeline.key,
                "backend": pipeline.backend,
                "program": pipeline.program.name,
                "cache": pipeline.cache_status,
                "compile_ms": round(pipeline.compile_ms, 3),
            }
        )
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "built_at": round(time.time(), 3),
        "store": str(cache_dir),
        "kernels": kernels,
    }
    cache_dir.mkdir(parents=True, exist_ok=True)
    (cache_dir / AOT_MANIFEST).write_text(json.dumps(manifest, indent=2) + "\n")
    return manifest


def load_manifest(cache_dir: Path | str) -> dict:
    """Read and schema-check the manifest under ``cache_dir``."""
    path = Path(cache_dir) / AOT_MANIFEST
    doc = json.loads(path.read_text())
    if doc.get("schema") != MANIFEST_SCHEMA:
        raise ValueError(
            f"{path}: unknown AOT manifest schema {doc.get('schema')!r} "
            f"(expected {MANIFEST_SCHEMA!r})"
        )
    return doc
