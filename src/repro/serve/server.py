"""The asyncio compile server: admission control + deadlines over the engine.

A :class:`Server` is a front door, not a network endpoint: callers
``await server.submit(request)`` and get back the same
:class:`~repro.engine.pipeline.CompiledPipeline` the library API
returns.  (An HTTP framing would be a thin codec on top; the admission
semantics live here so every transport inherits them.)

Admission model — the load-shedding discipline of a serving system:

* **Bounded queue.** At most ``max_queue`` requests wait; an arrival
  beyond that is rejected *immediately* with :class:`ServerBusy`
  (429-style) instead of growing an unbounded backlog.  Rejecting at
  the door keeps tail latency of admitted requests bounded.
* **Per-request deadlines.** A request carries a deadline (explicit or
  the server default); if it is still queued — or its build is still
  running — when the deadline passes, the *caller* gets
  :class:`DeadlineExceeded` right then.  The underlying build is not
  cancelled: it completes and populates the shared cache, so the retry
  that follows a deadline is a warm hit.
* **Worker pool.** ``workers`` threads drain the queue through
  ``Engine.compile_request``; the engine's singleflight layer coalesces
  duplicates, so a thundering herd on one key occupies one worker.

Everything is measured: ``serve.requests`` / ``serve.rejected`` /
``serve.deadline_exceeded`` / ``serve.deadline.salvaged`` /
``serve.completed`` / ``serve.failed`` counters, a ``serve.queue_depth``
gauge and ``serve.wait_ms`` / ``serve.compile_ms`` histograms in
:mod:`repro.observe.metrics` — plus, per request, a ``serve.request``
span tree and a structured event trail (admission, queueing, deadline,
completion) in :mod:`repro.observe.events`, both keyed by the request's
``request_id``.

Observability propagation: :meth:`Server.submit` captures
``contextvars.copy_context()`` at admission and the worker runs the
compile *inside* that captured context, so an :class:`~repro.observe.
core.Observer` active in the submitting coroutine sees the engine's
spans from the worker thread (``loop.run_in_executor`` alone does not
propagate context variables — that was a silent attribution hole).
"""

from __future__ import annotations

import asyncio
import contextvars
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.engine.pipeline import CompiledPipeline, Engine, default_engine
from repro.engine.request import CompileRequest
from repro.observe.context import request_scope
from repro.observe.core import span
from repro.observe.events import emit
from repro.observe.metrics import inc, observe_value, set_gauge

__all__ = ["Server", "ServerError", "ServerBusy", "DeadlineExceeded"]


class ServerError(RuntimeError):
    """Base class of serve-layer failures; carries an HTTP-style status."""

    status = 500


class ServerBusy(ServerError):
    """Admission rejected: the bounded queue is full (429-style)."""

    status = 429


class DeadlineExceeded(ServerError):
    """The request's deadline passed before its pipeline was ready (504-style)."""

    status = 504


@dataclass
class _Ticket:
    """One admitted request waiting for a worker.

    ``ctx`` is the submitter's context snapshot (observer + request
    scope), taken at admission; the worker runs the compile inside it.
    ``abandoned`` flips when the submitter's deadline fires while the
    build is still running — a later completion is then *salvage*
    (warm-hit-after-504), not a normal completion.
    """

    request: CompileRequest
    future: asyncio.Future
    enqueued_at: float
    deadline_at: float | None
    ctx: contextvars.Context = field(default_factory=contextvars.copy_context)
    abandoned: bool = False


@dataclass
class ServerStats:
    """Aggregate admission counters for one server instance."""

    submitted: int = 0
    rejected: int = 0
    deadline_exceeded: int = 0
    salvaged: int = 0
    completed: int = 0
    failed: int = 0
    queue_high_water: int = 0

    def to_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "submitted": self.submitted,
            "rejected": self.rejected,
            "deadline_exceeded": self.deadline_exceeded,
            "salvaged": self.salvaged,
            "completed": self.completed,
            "failed": self.failed,
            "queue_high_water": self.queue_high_water,
        }


class Server:
    """An asyncio compile service over one :class:`~repro.engine.pipeline.Engine`.

    Usage::

        async with Server(engine, max_queue=64, workers=4) as server:
            pipeline = await server.submit(request, deadline_s=2.0)
            out = pipeline.run(rgb=img)

    ``default_deadline_s`` applies to submissions without an explicit
    deadline (``None`` = no deadline).  The server owns a private thread
    pool; the engine — and therefore the cache — may be shared with
    other servers and with direct library callers.
    """

    def __init__(
        self,
        engine: Engine | None = None,
        max_queue: int = 64,
        workers: int = 4,
        default_deadline_s: float | None = None,
    ):
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.engine = engine if engine is not None else default_engine()
        self.max_queue = max_queue
        self.workers = workers
        self.default_deadline_s = default_deadline_s
        self.stats = ServerStats()
        self._queue: asyncio.Queue[_Ticket | None] | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._worker_tasks: list[asyncio.Task] = []

    # -- lifecycle --------------------------------------------------------

    @property
    def running(self) -> bool:
        """Whether the server is accepting submissions."""
        return self._queue is not None

    async def start(self) -> "Server":
        """Spin up the worker pool; idempotent."""
        if self.running:
            return self
        self._queue = asyncio.Queue(maxsize=self.max_queue)
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve"
        )
        self._worker_tasks = [
            asyncio.create_task(self._worker(), name=f"repro-serve-worker-{i}")
            for i in range(self.workers)
        ]
        return self

    async def stop(self) -> None:
        """Drain and shut down: queued requests finish, new ones are refused."""
        if not self.running:
            return
        queue, self._queue = self._queue, None
        for _ in self._worker_tasks:
            queue.put_nowait(None)
        await asyncio.gather(*self._worker_tasks, return_exceptions=True)
        self._worker_tasks = []
        self._executor.shutdown(wait=True)
        self._executor = None

    async def __aenter__(self) -> "Server":
        """``async with Server(...)`` starts the worker pool."""
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        """Leaving the context drains and stops the server."""
        await self.stop()

    # -- the front door ---------------------------------------------------

    async def submit(
        self, request: CompileRequest, deadline_s: float | None = None
    ) -> CompiledPipeline:
        """Admit one request; resolves to its compiled pipeline.

        Raises :class:`ServerBusy` when the queue is full,
        :class:`DeadlineExceeded` when the (explicit or default)
        deadline passes first, and re-raises any compile error.
        """
        if not isinstance(request, CompileRequest):
            raise TypeError(
                f"Server.submit takes a CompileRequest, got {type(request).__name__}"
            )
        if not self.running:
            raise ServerError("server is not running (use 'async with Server(...)')")
        deadline_s = deadline_s if deadline_s is not None else self.default_deadline_s
        now = time.perf_counter()
        ticket = _Ticket(
            request=request,
            future=asyncio.get_running_loop().create_future(),
            enqueued_at=now,
            deadline_at=(now + deadline_s) if deadline_s is not None else None,
        )
        try:
            self._queue.put_nowait(ticket)
        except asyncio.QueueFull:
            self.stats.rejected += 1
            inc("serve.rejected")
            emit(
                "serve.reject",
                request_id=request.request_id,
                outcome="rejected",
                queue_depth=self.max_queue,
            )
            raise ServerBusy(
                f"queue full ({self.max_queue} waiting); retry with backoff"
            ) from None
        self.stats.submitted += 1
        depth = self._queue.qsize()
        self.stats.queue_high_water = max(self.stats.queue_high_water, depth)
        inc("serve.requests")
        set_gauge("serve.queue_depth", depth)
        emit(
            "serve.admit",
            request_id=request.request_id,
            queue_depth=depth,
            deadline_s=deadline_s,
        )
        try:
            if deadline_s is None:
                return await ticket.future
            # shield: a timeout must not cancel the build — it completes
            # and warms the cache for the caller's retry.
            return await asyncio.wait_for(
                asyncio.shield(ticket.future), timeout=deadline_s
            )
        except asyncio.TimeoutError:
            ticket.abandoned = True
            self.stats.deadline_exceeded += 1
            inc("serve.deadline_exceeded")
            emit(
                "serve.deadline",
                request_id=request.request_id,
                outcome="deadline",
                deadline_s=deadline_s,
            )
            raise DeadlineExceeded(
                f"deadline of {deadline_s:.3f}s exceeded for {request.describe()}"
            ) from None

    # -- workers ----------------------------------------------------------

    def _compile_ticket(self, ticket: _Ticket) -> CompiledPipeline:
        """Run one admitted compile on a worker thread.

        Executed *inside* the ticket's captured context (``ticket.ctx``),
        so the submitter's observer and any outer request scope are
        visible here.  Opens the request scope + the root
        ``serve.request`` span; the engine's ``engine.compile`` span and
        everything below it nest underneath.
        """
        with request_scope(request_id=ticket.request.request_id):
            with span(
                "serve.request",
                request=ticket.request.describe(),
                backend=ticket.request.backend,
            ):
                return self.engine.compile_request(ticket.request)

    async def _worker(self) -> None:
        queue = self._queue
        loop = asyncio.get_running_loop()
        while True:
            ticket = await queue.get()
            if ticket is None:
                return
            wait_ms = (time.perf_counter() - ticket.enqueued_at) * 1e3
            observe_value("serve.wait_ms", wait_ms)
            set_gauge("serve.queue_depth", queue.qsize())
            emit(
                "serve.dequeue",
                request_id=ticket.request.request_id,
                wait_ms=round(wait_ms, 3),
            )
            if (
                ticket.deadline_at is not None
                and time.perf_counter() >= ticket.deadline_at
            ):
                # expired while queued: don't waste a worker on it (the
                # submitter's wait_for has already fired or is about to).
                emit(
                    "serve.expired_queued",
                    request_id=ticket.request.request_id,
                    outcome="deadline",
                    wait_ms=round(wait_ms, 3),
                )
                if not ticket.future.done():
                    ticket.future.set_exception(
                        DeadlineExceeded(
                            f"deadline passed after {wait_ms:.1f}ms in queue"
                        )
                    )
                continue
            start = time.perf_counter()
            try:
                # ctx.run: propagate the submitter's context variables
                # (observer, request scope) into the executor thread —
                # run_in_executor alone does not.
                pipeline = await loop.run_in_executor(
                    self._executor, ticket.ctx.run, self._compile_ticket, ticket
                )
            except Exception as exc:
                self.stats.failed += 1
                inc("serve.failed")
                emit(
                    "serve.error",
                    request_id=ticket.request.request_id,
                    outcome="error",
                    error=f"{type(exc).__name__}: {exc}",
                )
                if not ticket.future.done():
                    ticket.future.set_exception(exc)
                continue
            compile_ms = (time.perf_counter() - start) * 1e3
            self.stats.completed += 1
            inc("serve.completed")
            observe_value(
                "serve.compile_ms", compile_ms, cache=pipeline.cache_status
            )
            if ticket.abandoned:
                # the submitter already got its 504; the finished build
                # warmed the cache for the retry — record the salvage.
                self.stats.salvaged += 1
                inc("serve.deadline.salvaged")
                emit(
                    "serve.deadline.salvaged",
                    request_id=ticket.request.request_id,
                    outcome="salvaged",
                    cache=pipeline.cache_status,
                    compile_ms=round(compile_ms, 3),
                )
            else:
                emit(
                    "serve.complete",
                    request_id=ticket.request.request_id,
                    outcome="ok",
                    cache=pipeline.cache_status,
                    compile_ms=round(compile_ms, 3),
                )
            if not ticket.future.done():
                ticket.future.set_result(pipeline)

    def to_dict(self) -> dict:
        """JSON-ready server configuration + admission statistics."""
        return {
            "max_queue": self.max_queue,
            "workers": self.workers,
            "default_deadline_s": self.default_deadline_s,
            "running": self.running,
            **self.stats.to_dict(),
            "engine": self.engine.stats(),
        }
