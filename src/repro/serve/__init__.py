"""Compile-as-a-service: the async front door over the engine.

``repro.compile()`` is a library call; :mod:`repro.serve` turns it into
a *service* fit for heavy concurrent traffic, completing the serving
spine on top of three engine-level guarantees:

* the disk artifact store is multiprocess-safe (atomic publish,
  advisory locking, bounded eviction — :mod:`repro.engine.cache`);
* identical in-flight compiles coalesce onto one build, in-process and
  across processes (:mod:`repro.engine.pipeline`);
* every request is a typed, validated value
  (:class:`repro.engine.request.CompileRequest`) that can be queued,
  logged and echoed back.

This package adds the traffic-facing pieces:

* :class:`Server` (:mod:`repro.serve.server`) — an asyncio admission
  gate: a bounded queue (overflow rejected immediately with
  :class:`ServerBusy`, the 429 of this API), per-request deadlines
  (:class:`DeadlineExceeded`), and a worker pool draining requests
  through the engine;
* :mod:`repro.serve.aot` — ahead-of-time prebuilding of a named kernel
  library (the Harris schedule variants across backends) into a shared
  artifact store, so serving never pays JIT latency — the Halide
  deployment posture ("AOT is generally preferred... commonly used for
  mobile platforms");
* :mod:`repro.serve.loadtest` — a mixed cold/warm traffic generator
  measuring p50/p99 compile and run latencies and appending ``serve|``
  cells to the benchmark trajectory ledger.

CLIs: ``tools/aot.py`` (prebuild at install time) and
``tools/loadtest.py`` (hammer a server; optionally gate on the ledger).
"""

from repro.serve.aot import (
    AOT_MANIFEST, harris_kernel_requests, load_manifest, prebuild,
    zoo_kernel_requests,
)
from repro.serve.loadtest import LoadtestResult, run_loadtest
from repro.serve.server import DeadlineExceeded, Server, ServerBusy, ServerError

__all__ = [
    "Server",
    "ServerError",
    "ServerBusy",
    "DeadlineExceeded",
    "prebuild",
    "load_manifest",
    "harris_kernel_requests",
    "zoo_kernel_requests",
    "AOT_MANIFEST",
    "run_loadtest",
    "LoadtestResult",
]
