"""Mixed cold/warm load testing of the compile service.

The serving claim worth gating is not "the server responds" but "AOT
warm-path latency beats cold JIT by orders of magnitude, under
concurrency, with admission control on".  :func:`run_loadtest` measures
exactly that:

* **warm traffic** — requests for AOT-prebuilt kernels (see
  :mod:`repro.serve.aot`), submitted concurrently through a
  :class:`~repro.serve.server.Server`; each response's pipeline is then
  executed once on a small image.  The compile path must be all cache
  hits; the measured *run* latency is the steady-state serving cost.
* **cold traffic** — requests whose cache keys cannot exist yet
  (schedule variants parameterized off the prebuilt grid), measuring
  the full JIT tax: queue wait + rewrite + typecheck + lower (+ C
  compile) + first run.

Results condense into trajectory cells ``serve|p50|...`` / ``serve|p99|
...`` (milliseconds) appended to ``BENCH_trajectory.json`` next to the
``fig8``/``wall|``/``tuned|`` families.  Like ``wall|``, the ``serve|``
family is *informational* in ``tools/bench_compare.py`` unless
``--gate-serve`` — measured latencies on shared CI runners are noisy —
but the loadtest itself enforces the structural invariant
``p99(aot_warm_run) < p99(cold_jit)`` whenever both sides were sampled.

``tools/loadtest.py`` is the CLI.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.engine.pipeline import Engine
from repro.engine.request import CompileRequest
from repro.serve.aot import harris_kernel_requests
from repro.serve.server import DeadlineExceeded, Server, ServerBusy

__all__ = ["LoadtestResult", "percentile", "run_loadtest", "serve_cells"]

#: Image height/width used for the measured runs (small on purpose: the
#: cell measures serving overhead + kernel dispatch, not pixel count).
#: The inner extent (height-4 = 24) is a multiple of every chunk/strip
#: combination in the AOT grid and the cold-traffic generator.
RUN_HEIGHT = 28
RUN_WIDTH = 28


def percentile(samples: list[float], q: float) -> float:
    """The ``q``-quantile (0..1) by linear interpolation; ``nan`` if empty."""
    if not samples:
        return float("nan")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


@dataclass
class LoadtestResult:
    """Latency samples and admission outcomes of one loadtest run."""

    cold_jit_ms: list[float] = field(default_factory=list)
    warm_compile_ms: list[float] = field(default_factory=list)
    aot_warm_run_ms: list[float] = field(default_factory=list)
    rejected: int = 0
    deadline_exceeded: int = 0
    warm_cache_statuses: dict = field(default_factory=dict)
    server: dict = field(default_factory=dict)

    def cells(self) -> dict[str, float]:
        """The ``serve|`` trajectory cells (only sampled families)."""
        return serve_cells(self)

    def check(self) -> list[str]:
        """Structural-invariant violations (empty = healthy run).

        * warm compiles must all be cache hits (the AOT store really was
          warm);
        * AOT-warm p99 run latency must beat cold-JIT p99 end-to-end
          latency (the point of prebuilding).
        """
        problems = []
        builds = self.warm_cache_statuses.get("miss", 0)
        if builds:
            problems.append(
                f"warm traffic triggered {builds} build(s); AOT store was cold"
            )
        if self.cold_jit_ms and self.aot_warm_run_ms:
            cold_p99 = percentile(self.cold_jit_ms, 0.99)
            warm_p99 = percentile(self.aot_warm_run_ms, 0.99)
            if not warm_p99 < cold_p99:
                problems.append(
                    f"AOT-warm p99 run latency {warm_p99:.3f}ms is not below "
                    f"cold-JIT p99 {cold_p99:.3f}ms"
                )
        return problems

    def to_dict(self) -> dict:
        """JSON-ready summary (CLI output)."""
        return {
            "cells": self.cells(),
            "samples": {
                "cold_jit": len(self.cold_jit_ms),
                "warm_compile": len(self.warm_compile_ms),
                "aot_warm_run": len(self.aot_warm_run_ms),
            },
            "rejected": self.rejected,
            "deadline_exceeded": self.deadline_exceeded,
            "warm_cache_statuses": dict(self.warm_cache_statuses),
            "server": self.server,
        }


def serve_cells(result: LoadtestResult) -> dict[str, float]:
    """Render a result as ``serve|<quantile>|<family>`` trajectory cells."""
    cells: dict[str, float] = {}
    families = (
        ("cold_jit_ms", result.cold_jit_ms),
        ("warm_compile_ms", result.warm_compile_ms),
        ("aot_warm_run_ms", result.aot_warm_run_ms),
    )
    for family, samples in families:
        if not samples:
            continue
        for quant, qval in (("p50", 0.5), ("p99", 0.99)):
            cells[f"serve|{quant}|{family}"] = round(percentile(samples, qval), 6)
    return cells


def _cold_requests(count: int, backend: str = "python") -> list[CompileRequest]:
    """``count`` requests whose keys the AOT grid cannot contain.

    Cold keys come from cbuf schedules at chunk sizes the prebuilt set
    never uses (the strategy identity is part of the cache key), so a
    loadtest against a warm store still measures true JIT latency.
    """
    from repro.pipelines import harris, harris_input_type
    from repro.rise import Identifier
    from repro.strategies.schedules import cbuf_version

    env = {"rgb": harris_input_type()}
    expr = harris(Identifier("rgb"))
    # chunks divide the loadtest image's inner height (24) but avoid the
    # AOT grid's chunk (4); past the chunk cycle, an explicit thread pin
    # (part of the cache key) keeps minting fresh cold keys.
    chunks = (6, 8, 12, 24)
    requests = []
    for i in range(count):
        chunk = chunks[i % len(chunks)]
        threads = None if i < len(chunks) else 2 + i // len(chunks)
        requests.append(
            CompileRequest(
                source=expr,
                strategy=cbuf_version(env, chunk=chunk),
                type_env=env,
                backend=backend,
                name=f"harris_cold_{chunk}",
                threads=threads,
            )
        )
    return requests


async def _drive(
    server: Server,
    result: LoadtestResult,
    warm_requests: list[CompileRequest],
    cold_requests: list[CompileRequest],
    run_sizes: dict,
    inputs: dict,
    deadline_s: float | None,
) -> None:
    async def one_warm(request: CompileRequest) -> None:
        start = time.perf_counter()
        try:
            pipeline = await server.submit(request, deadline_s=deadline_s)
        except ServerBusy:
            result.rejected += 1
            return
        except DeadlineExceeded:
            result.deadline_exceeded += 1
            return
        result.warm_compile_ms.append((time.perf_counter() - start) * 1e3)
        status = pipeline.cache_status
        result.warm_cache_statuses[status] = (
            result.warm_cache_statuses.get(status, 0) + 1
        )
        run_start = time.perf_counter()
        await asyncio.get_running_loop().run_in_executor(
            None, lambda: pipeline.run(sizes=run_sizes, **inputs)
        )
        result.aot_warm_run_ms.append((time.perf_counter() - run_start) * 1e3)

    async def one_cold(request: CompileRequest) -> None:
        start = time.perf_counter()
        try:
            pipeline = await server.submit(request, deadline_s=deadline_s)
            await asyncio.get_running_loop().run_in_executor(
                None, lambda: pipeline.run(sizes=run_sizes, **inputs)
            )
        except ServerBusy:
            result.rejected += 1
            return
        except DeadlineExceeded:
            result.deadline_exceeded += 1
            return
        result.cold_jit_ms.append((time.perf_counter() - start) * 1e3)

    # interleave cold and warm so they contend for the same queue/workers
    tasks = [one_cold(req) for req in cold_requests]
    tasks += [one_warm(req) for req in warm_requests]
    await asyncio.gather(*tasks)


def run_loadtest(
    cache_dir: Path | str,
    warm: int = 32,
    cold: int = 4,
    workers: int = 4,
    max_queue: int = 256,
    deadline_s: float | None = None,
    backend: str = "python",
    seed: int = 0,
) -> LoadtestResult:
    """Hammer a fresh server over the AOT store at ``cache_dir``.

    ``warm`` requests cycle through the prebuilt Harris kernel set (the
    store must have been populated by :func:`repro.serve.aot.prebuild`
    for the warm path to be hit-only); ``cold`` requests force unique
    JIT builds.  A new engine is created over ``cache_dir`` — the warm
    path therefore exercises the real disk tier, exactly like a serving
    process that just booted.
    """
    from repro.image import synthetic_rgb

    engine = Engine(cache_dir=cache_dir)
    warm_pool = [req for _, req in harris_kernel_requests(backends=(backend,))]
    warm_requests = [warm_pool[i % len(warm_pool)] for i in range(warm)]
    cold_requests = _cold_requests(cold, backend=backend)
    img = synthetic_rgb(RUN_HEIGHT, RUN_WIDTH, seed=seed)
    run_sizes = {"n": RUN_HEIGHT - 4, "m": RUN_WIDTH - 4}
    result = LoadtestResult()

    async def main() -> None:
        async with Server(
            engine, max_queue=max_queue, workers=workers
        ) as server:
            await _drive(
                server,
                result,
                warm_requests,
                cold_requests,
                run_sizes,
                {"rgb": img},
                deadline_s,
            )
            result.server = server.to_dict()

    asyncio.run(main())
    return result
