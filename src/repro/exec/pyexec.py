"""Execute imperative programs by compiling them to Python/numpy source.

This is the reference runtime of the reproduction: every compiled pipeline
(RISE schedules, mini-Halide, OpenCV baseline, LIFT preset) is executed
through it on real images and validated against the numpy reference — the
role the POCL OpenCL runtime plays in the paper's artifact.

Vector operations map onto numpy slices, so the generated code exercises
the same structure (strip loops, unaligned window loads, shuffles,
rotating registers) the C backend emits.
"""

from __future__ import annotations

import time
from typing import Mapping

import numpy as np

from repro.codegen.ir import (
    AllocStmt,
    Assign,
    BinOp,
    Block,
    Broadcast,
    Comment,
    DeclScalar,
    DeclVec,
    FConst,
    For,
    IConst,
    IExpr,
    ImpFunction,
    ImpProgram,
    Load,
    LoopKind,
    NatE,
    ScalarKind,
    Stmt,
    Store,
    UnOp,
    VLane,
    VLoad,
    VPack,
    VShuffle,
    VStore,
    Var,
)

__all__ = [
    "execute_program",
    "run_program",
    "program_to_python",
    "function_to_python_strips",
    "strippable_parallel_loop",
    "count_parallel_loops",
    "strip_bounds",
]


class _Emitter:
    def __init__(self, sizes: Mapping[str, int], strip_loop: For | None = None):
        self.sizes = dict(sizes)
        self.lines: list[str] = []
        self.indent = 1
        #: The one For statement (by identity) whose bounds are replaced by
        #: the ``_lo``/``_hi`` strip parameters of a strip-variant function.
        self.strip_loop = strip_loop

    def line(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def nat(self, n) -> int:
        return int(n.evaluate(self.sizes))

    def expr(self, e: IExpr) -> str:
        if isinstance(e, IConst):
            return str(e.value)
        if isinstance(e, FConst):
            return f"f32({e.value!r})"
        if isinstance(e, NatE):
            return str(self.nat(e.value))
        if isinstance(e, Var):
            return e.name
        if isinstance(e, Load):
            return f"{e.buffer}[{self.expr(e.index)}]"
        if isinstance(e, VLoad):
            i = self.expr(e.index)
            return f"{e.buffer}[{i}:{i}+{e.width}]"
        if isinstance(e, Broadcast):
            return f"np.full({e.width}, {self.expr(e.value)}, dtype=np.float32)"
        if isinstance(e, VShuffle):
            a, b = self.expr(e.a), self.expr(e.b)
            return f"np.concatenate(({a}, {b}))[{e.offset}:{e.offset}+{e.width}]"
        if isinstance(e, VPack):
            lanes = ", ".join(self.expr(l) for l in e.lanes)
            return f"np.array([{lanes}], dtype=np.float32)"
        if isinstance(e, VLane):
            return f"{self.expr(e.vec)}[{self.expr(e.lane)}]"
        if isinstance(e, BinOp):
            a, b = self.expr(e.a), self.expr(e.b)
            ops = {
                "add": f"({a} + {b})",
                "sub": f"({a} - {b})",
                "mul": f"({a} * {b})",
                "div": f"({a} / {b})",
                "min": f"np.minimum({a}, {b})",
                "max": f"np.maximum({a}, {b})",
                "mod": f"({a} % {b})",
                "idiv": f"({a} // {b})",
            }
            return ops[e.op]
        if isinstance(e, UnOp):
            a = self.expr(e.a)
            return {
                "neg": f"(-{a})",
                "abs": f"np.abs({a})",
                "sqrt": f"np.sqrt({a})",
            }[e.op]
        raise TypeError(f"cannot emit {type(e).__name__}")

    def stmt(self, s: Stmt) -> None:
        if isinstance(s, Block):
            if not s.stmts:
                self.line("pass")
            for sub in s.stmts:
                self.stmt(sub)
            return
        if isinstance(s, Comment):
            self.line(f"# {s.text}")
            return
        if isinstance(s, AllocStmt):
            size = self.nat(s.buffer.alloc_size())
            self.line(f"{s.buffer.name} = np.zeros({size}, dtype=np.float32)")
            return
        if isinstance(s, For):
            if s is self.strip_loop:
                self.line(f"for {s.var} in range(_lo, _hi):  # parallel strip")
            else:
                if s.kind is LoopKind.PARALLEL:
                    # Surface the loop kind: this loop is semantically
                    # parallel (mapGlobal); the executor dispatches it as
                    # thread strips or falls back to a sequential run.
                    self.line(f"# LoopKind.PARALLEL over {s.var} (thread strips)")
                extent = self.expr(s.extent)
                self.line(f"for {s.var} in range({extent}):")
            self.indent += 1
            self.stmt(s.body)
            if isinstance(s.body, Block) and not s.body.stmts:
                pass
            self.indent -= 1
            return
        if isinstance(s, DeclScalar):
            init = self.expr(s.init) if s.init is not None else "f32(0.0)"
            if s.kind is ScalarKind.I32:
                self.line(f"{s.var} = int({init})")
            else:
                self.line(f"{s.var} = {init}")
            return
        if isinstance(s, DeclVec):
            init = (
                self.expr(s.init)
                if s.init is not None
                else f"np.zeros({s.width}, dtype=np.float32)"
            )
            self.line(f"{s.var} = _vinit({init}, {s.width})")
            return
        if isinstance(s, Assign):
            self.line(f"{s.var} = {self.expr(s.value)}")
            return
        if isinstance(s, Store):
            self.line(f"{s.buffer}[{self.expr(s.index)}] = {self.expr(s.value)}")
            return
        if isinstance(s, VStore):
            i = self.expr(s.index)
            self.line(
                f"{s.buffer}[{i}:{i}+{s.width}] = {self.expr(s.value)}"
            )
            return
        raise TypeError(f"cannot emit statement {type(s).__name__}")


def function_to_python(fn: ImpFunction, sizes: Mapping[str, int]) -> str:
    emitter = _Emitter(sizes)
    out_name = fn.output.name
    params = ", ".join(b.name for b in fn.inputs) + (", " if fn.inputs else "") + out_name
    emitter.lines.append(f"def {fn.name}({params}):")
    emitter.stmt(fn.body)
    emitter.line(f"return {out_name}")
    return "\n".join(emitter.lines)


def program_to_python(prog: ImpProgram, sizes: Mapping[str, int]) -> str:
    """Full program source (one Python function per kernel)."""
    return "\n\n".join(function_to_python(fn, sizes) for fn in prog.functions)


# -- parallel strip dispatch ------------------------------------------------


def strippable_parallel_loop(fn: ImpFunction) -> For | None:
    """The top-level ``LoopKind.PARALLEL`` loop of ``fn`` that can be
    dispatched as thread strips, or ``None``.

    Eligibility is deliberately conservative: the parallel loop must be a
    direct child of the function body and its last non-comment statement,
    so a strip variant can run any preamble (temporary allocations) per
    strip — safe because ``mapGlobal`` iterations are independent — and
    nothing downstream observes a partial iteration ordering.  Anything
    else (nested parallel loops, statements after the loop) falls back to
    a deterministic sequential run, counted in the metrics registry.
    """
    candidate: For | None = None
    for s in fn.body.stmts:
        if isinstance(s, Comment):
            continue
        candidate = s if isinstance(s, For) and s.kind is LoopKind.PARALLEL else None
    if candidate is None:
        return None
    top_level_parallel = sum(
        1
        for s in fn.body.stmts
        if isinstance(s, For) and s.kind is LoopKind.PARALLEL
    )
    return candidate if top_level_parallel == 1 else None


def count_parallel_loops(fn: ImpFunction) -> int:
    """Number of ``LoopKind.PARALLEL`` loops anywhere in ``fn``."""
    from repro.codegen.ir import walk_stmts

    return sum(
        1
        for s in walk_stmts(fn.body)
        if isinstance(s, For) and s.kind is LoopKind.PARALLEL
    )


def function_to_python_strips(fn: ImpFunction, sizes: Mapping[str, int]) -> str:
    """The strip variant of one kernel: ``<name>__strip(_lo, _hi, ...)``
    runs the top-level parallel loop over ``range(_lo, _hi)`` only.

    The caller partitions the loop's extent into contiguous strips (static
    scheduling, mirroring ``#pragma omp parallel for schedule(static)``)
    and runs one strip per worker thread; all strips share the input and
    output buffers and write disjoint regions, so the result is
    bit-identical to the sequential loop.
    """
    strip_loop = strippable_parallel_loop(fn)
    if strip_loop is None:
        raise ValueError(f"{fn.name} has no strippable parallel loop")
    emitter = _Emitter(sizes, strip_loop=strip_loop)
    out_name = fn.output.name
    params = ", ".join(b.name for b in fn.inputs) + (", " if fn.inputs else "") + out_name
    emitter.lines.append(f"def {fn.name}__strip(_lo, _hi, {params}):")
    emitter.stmt(fn.body)
    emitter.line(f"return {out_name}")
    return "\n".join(emitter.lines)


def strip_bounds(extent: int, threads: int) -> list[tuple[int, int]]:
    """Contiguous ``[lo, hi)`` strips of ``range(extent)`` for ``threads``
    workers — OpenMP static scheduling: sizes differ by at most one, and
    empty strips are dropped."""
    threads = max(1, min(threads, extent)) if extent > 0 else 1
    base, rem = divmod(extent, threads)
    bounds: list[tuple[int, int]] = []
    lo = 0
    for t in range(threads):
        hi = lo + base + (1 if t < rem else 0)
        if hi > lo:
            bounds.append((lo, hi))
        lo = hi
    return bounds


def _loop_extent(loop: For, sizes: Mapping[str, int]) -> int:
    from repro.codegen.ir import IConst, NatE

    if isinstance(loop.extent, IConst):
        return loop.extent.value
    if isinstance(loop.extent, NatE):
        return int(loop.extent.value.evaluate(sizes))
    raise ValueError(f"parallel loop extent must be sized: {loop.extent!r}")


def execute_program(
    prog: ImpProgram,
    sizes: Mapping[str, int],
    inputs: Mapping[str, np.ndarray],
    intermediates: Mapping[str, tuple] | None = None,
    threads: int | None = None,
) -> np.ndarray:
    """Execute a compiled program.

    ``inputs`` maps input buffer names to numpy arrays (any shape; they
    are flattened into padded float32 buffers).  Multi-kernel programs
    execute in order; a kernel whose input name matches an earlier
    kernel's name reads that kernel's output (the convention used by the
    library/LIFT baselines).

    ``threads`` controls ``LoopKind.PARALLEL`` loops: a strippable
    top-level parallel loop (see :func:`strippable_parallel_loop`) is
    partitioned into contiguous strips dispatched on a thread pool
    (numpy slice kernels release the GIL), bit-identical to the
    sequential order because strips write disjoint output regions.
    ``None`` resolves through :func:`repro.exec.parallel.effective_threads`
    (``$REPRO_THREADS``/``$OMP_NUM_THREADS``/CPU count, degraded to 1
    inside a batch worker); any non-strippable parallel loop falls back
    to a deterministic sequential run, counted in the metrics registry
    as ``exec.py.parallel.sequential``.

    Returns the final output buffer (flat, unpadded length).

    When :func:`repro.observe.observing` is active, each kernel records a
    ``run:<name>`` span (with codegen/exec sub-spans and static op counts
    from :func:`repro.codegen.ir.op_histogram`) and execution counters.
    """
    from repro.codegen.lower import BUFFER_PAD
    from repro.codegen.sizes import resolve_sizes
    from repro.exec.parallel import effective_threads
    from repro.observe.core import active, count, span
    from repro.observe.metrics import inc, observe_value

    sizes = resolve_sizes(prog, sizes)
    nthreads = effective_threads(threads)

    def _vinit(value, width):
        arr = np.asarray(value, dtype=np.float32)
        if arr.ndim == 0:
            return np.full(width, arr, dtype=np.float32)
        return arr.copy()

    namespace: dict = {"np": np, "f32": np.float32, "_vinit": _vinit}
    produced: dict[str, np.ndarray] = {}

    def padded(buf_name: str, size: int) -> np.ndarray:
        if buf_name in produced:
            data = produced[buf_name]
        elif buf_name in inputs:
            data = np.asarray(inputs[buf_name], dtype=np.float32).ravel()
        else:
            raise KeyError(f"no input for buffer {buf_name!r}")
        out = np.zeros(size + BUFFER_PAD, dtype=np.float32)
        out[: min(len(data), size)] = data[:size]
        return out

    result: np.ndarray | None = None
    for fn in prog.functions:
        with span(f"run:{fn.name}", program=prog.name) as kernel_span:
            count("exec.kernels")
            par_loops = count_parallel_loops(fn)
            strip_loop = strippable_parallel_loop(fn) if par_loops else None
            extent = _loop_extent(strip_loop, sizes) if strip_loop is not None else 0
            use_strips = nthreads > 1 and strip_loop is not None and extent > 1
            with span("codegen-python"):
                source = function_to_python(fn, sizes)
                code = compile(source, f"<{fn.name}>", "exec")
                if use_strips:
                    strip_source = function_to_python_strips(fn, sizes)
                    strip_code = compile(strip_source, f"<{fn.name}__strip>", "exec")
            exec(code, namespace)
            if use_strips:
                exec(strip_code, namespace)
            args = []
            for b in fn.inputs:
                args.append(padded(b.name, int(b.size.evaluate(sizes))))
            out_size = int(fn.output.size.evaluate(sizes))
            out = np.zeros(out_size + BUFFER_PAD, dtype=np.float32)
            if par_loops:
                inc("exec.py.parallel.loops", par_loops, kernel=fn.name)
            if use_strips:
                bounds = strip_bounds(extent, nthreads)
                with span(
                    "execute",
                    parallel="strips",
                    threads=len(bounds),
                    extent=extent,
                ):
                    from concurrent.futures import ThreadPoolExecutor

                    strip_fn = namespace[f"{fn.name}__strip"]
                    t0 = time.perf_counter()
                    with ThreadPoolExecutor(max_workers=len(bounds)) as pool:
                        futures = [
                            pool.submit(strip_fn, lo, hi, *args, out)
                            for lo, hi in bounds
                        ]
                        for f in futures:
                            f.result()
                    observe_value(
                        "exec.py.parallel.span_ms",
                        (time.perf_counter() - t0) * 1e3,
                        kernel=fn.name,
                    )
                inc("exec.py.parallel.strips", len(bounds), kernel=fn.name)
            else:
                if par_loops:
                    # A parallel loop ran sequentially: either threads=1
                    # (configured or batch-degraded) or the loop shape is
                    # not strippable.  Surfaced so "silent" serialization
                    # is visible in every metrics snapshot.
                    inc(
                        "exec.py.parallel.sequential",
                        par_loops,
                        kernel=fn.name,
                        reason="threads" if strip_loop is not None else "shape",
                    )
                with span("execute"):
                    namespace[fn.name](*args, out)
            if active() is not None:
                from repro.codegen.ir import op_histogram

                kernel_span.meta["source_lines"] = source.count("\n") + 1
                kernel_span.meta["output_elems"] = out_size
                for key, value in op_histogram(fn).items():
                    count(f"ops.{key}", value)
            result = out[:out_size]
            produced[fn.name] = result
            produced[fn.output.name] = result
    assert result is not None
    return result


def run_program(
    prog: ImpProgram,
    sizes: Mapping[str, int],
    inputs: Mapping[str, np.ndarray],
    intermediates: Mapping[str, tuple] | None = None,
) -> np.ndarray:
    """Removed: compile through the engine front door instead.

    This pre-engine entry point spent two releases as a
    ``DeprecationWarning`` shim and is now retired; calling it raises
    with the migration below, because silently keeping a second compile
    path would bypass the cache, coalescing and request validation.
    """
    raise RuntimeError(
        "run_program was removed; migrate to the engine front door:\n"
        "    repro.compile(prog, sizes=sizes).run(**inputs)"
    )
