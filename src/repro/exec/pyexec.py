"""Execute imperative programs by compiling them to Python/numpy source.

This is the reference runtime of the reproduction: every compiled pipeline
(RISE schedules, mini-Halide, OpenCV baseline, LIFT preset) is executed
through it on real images and validated against the numpy reference — the
role the POCL OpenCL runtime plays in the paper's artifact.

Vector operations map onto numpy slices, so the generated code exercises
the same structure (strip loops, unaligned window loads, shuffles,
rotating registers) the C backend emits.
"""

from __future__ import annotations

import warnings
from typing import Mapping

import numpy as np

from repro.codegen.ir import (
    AllocStmt,
    Assign,
    BinOp,
    Block,
    Broadcast,
    Comment,
    DeclScalar,
    DeclVec,
    FConst,
    For,
    IConst,
    IExpr,
    ImpFunction,
    ImpProgram,
    Load,
    NatE,
    ScalarKind,
    Stmt,
    Store,
    UnOp,
    VLane,
    VLoad,
    VPack,
    VShuffle,
    VStore,
    Var,
)

__all__ = ["execute_program", "run_program", "program_to_python"]


class _Emitter:
    def __init__(self, sizes: Mapping[str, int]):
        self.sizes = dict(sizes)
        self.lines: list[str] = []
        self.indent = 1

    def line(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def nat(self, n) -> int:
        return int(n.evaluate(self.sizes))

    def expr(self, e: IExpr) -> str:
        if isinstance(e, IConst):
            return str(e.value)
        if isinstance(e, FConst):
            return f"f32({e.value!r})"
        if isinstance(e, NatE):
            return str(self.nat(e.value))
        if isinstance(e, Var):
            return e.name
        if isinstance(e, Load):
            return f"{e.buffer}[{self.expr(e.index)}]"
        if isinstance(e, VLoad):
            i = self.expr(e.index)
            return f"{e.buffer}[{i}:{i}+{e.width}]"
        if isinstance(e, Broadcast):
            return f"np.full({e.width}, {self.expr(e.value)}, dtype=np.float32)"
        if isinstance(e, VShuffle):
            a, b = self.expr(e.a), self.expr(e.b)
            return f"np.concatenate(({a}, {b}))[{e.offset}:{e.offset}+{e.width}]"
        if isinstance(e, VPack):
            lanes = ", ".join(self.expr(l) for l in e.lanes)
            return f"np.array([{lanes}], dtype=np.float32)"
        if isinstance(e, VLane):
            return f"{self.expr(e.vec)}[{self.expr(e.lane)}]"
        if isinstance(e, BinOp):
            a, b = self.expr(e.a), self.expr(e.b)
            ops = {
                "add": f"({a} + {b})",
                "sub": f"({a} - {b})",
                "mul": f"({a} * {b})",
                "div": f"({a} / {b})",
                "min": f"np.minimum({a}, {b})",
                "max": f"np.maximum({a}, {b})",
                "mod": f"({a} % {b})",
                "idiv": f"({a} // {b})",
            }
            return ops[e.op]
        if isinstance(e, UnOp):
            a = self.expr(e.a)
            return {
                "neg": f"(-{a})",
                "abs": f"np.abs({a})",
                "sqrt": f"np.sqrt({a})",
            }[e.op]
        raise TypeError(f"cannot emit {type(e).__name__}")

    def stmt(self, s: Stmt) -> None:
        if isinstance(s, Block):
            if not s.stmts:
                self.line("pass")
            for sub in s.stmts:
                self.stmt(sub)
            return
        if isinstance(s, Comment):
            self.line(f"# {s.text}")
            return
        if isinstance(s, AllocStmt):
            size = self.nat(s.buffer.alloc_size())
            self.line(f"{s.buffer.name} = np.zeros({size}, dtype=np.float32)")
            return
        if isinstance(s, For):
            extent = self.expr(s.extent)
            self.line(f"for {s.var} in range({extent}):")
            self.indent += 1
            self.stmt(s.body)
            if isinstance(s.body, Block) and not s.body.stmts:
                pass
            self.indent -= 1
            return
        if isinstance(s, DeclScalar):
            init = self.expr(s.init) if s.init is not None else "f32(0.0)"
            if s.kind is ScalarKind.I32:
                self.line(f"{s.var} = int({init})")
            else:
                self.line(f"{s.var} = {init}")
            return
        if isinstance(s, DeclVec):
            init = (
                self.expr(s.init)
                if s.init is not None
                else f"np.zeros({s.width}, dtype=np.float32)"
            )
            self.line(f"{s.var} = _vinit({init}, {s.width})")
            return
        if isinstance(s, Assign):
            self.line(f"{s.var} = {self.expr(s.value)}")
            return
        if isinstance(s, Store):
            self.line(f"{s.buffer}[{self.expr(s.index)}] = {self.expr(s.value)}")
            return
        if isinstance(s, VStore):
            i = self.expr(s.index)
            self.line(
                f"{s.buffer}[{i}:{i}+{s.width}] = {self.expr(s.value)}"
            )
            return
        raise TypeError(f"cannot emit statement {type(s).__name__}")


def function_to_python(fn: ImpFunction, sizes: Mapping[str, int]) -> str:
    emitter = _Emitter(sizes)
    out_name = fn.output.name
    params = ", ".join(b.name for b in fn.inputs) + (", " if fn.inputs else "") + out_name
    emitter.lines.append(f"def {fn.name}({params}):")
    emitter.stmt(fn.body)
    emitter.line(f"return {out_name}")
    return "\n".join(emitter.lines)


def program_to_python(prog: ImpProgram, sizes: Mapping[str, int]) -> str:
    """Full program source (one Python function per kernel)."""
    return "\n\n".join(function_to_python(fn, sizes) for fn in prog.functions)


def execute_program(
    prog: ImpProgram,
    sizes: Mapping[str, int],
    inputs: Mapping[str, np.ndarray],
    intermediates: Mapping[str, tuple] | None = None,
) -> np.ndarray:
    """Execute a compiled program.

    ``inputs`` maps input buffer names to numpy arrays (any shape; they
    are flattened into padded float32 buffers).  Multi-kernel programs
    execute in order; a kernel whose input name matches an earlier
    kernel's name reads that kernel's output (the convention used by the
    library/LIFT baselines).

    Returns the final output buffer (flat, unpadded length).

    When :func:`repro.observe.observing` is active, each kernel records a
    ``run:<name>`` span (with codegen/exec sub-spans and static op counts
    from :func:`repro.codegen.ir.op_histogram`) and execution counters.
    """
    from repro.codegen.lower import BUFFER_PAD
    from repro.codegen.sizes import resolve_sizes
    from repro.observe.core import active, count, span

    sizes = resolve_sizes(prog, sizes)

    def _vinit(value, width):
        arr = np.asarray(value, dtype=np.float32)
        if arr.ndim == 0:
            return np.full(width, arr, dtype=np.float32)
        return arr.copy()

    namespace: dict = {"np": np, "f32": np.float32, "_vinit": _vinit}
    produced: dict[str, np.ndarray] = {}

    def padded(buf_name: str, size: int) -> np.ndarray:
        if buf_name in produced:
            data = produced[buf_name]
        elif buf_name in inputs:
            data = np.asarray(inputs[buf_name], dtype=np.float32).ravel()
        else:
            raise KeyError(f"no input for buffer {buf_name!r}")
        out = np.zeros(size + BUFFER_PAD, dtype=np.float32)
        out[: min(len(data), size)] = data[:size]
        return out

    result: np.ndarray | None = None
    for fn in prog.functions:
        with span(f"run:{fn.name}", program=prog.name) as kernel_span:
            count("exec.kernels")
            with span("codegen-python"):
                source = function_to_python(fn, sizes)
                code = compile(source, f"<{fn.name}>", "exec")
            exec(code, namespace)
            args = []
            for b in fn.inputs:
                args.append(padded(b.name, int(b.size.evaluate(sizes))))
            out_size = int(fn.output.size.evaluate(sizes))
            out = np.zeros(out_size + BUFFER_PAD, dtype=np.float32)
            with span("execute"):
                namespace[fn.name](*args, out)
            if active() is not None:
                from repro.codegen.ir import op_histogram

                kernel_span.meta["source_lines"] = source.count("\n") + 1
                kernel_span.meta["output_elems"] = out_size
                for key, value in op_histogram(fn).items():
                    count(f"ops.{key}", value)
            result = out[:out_size]
            produced[fn.name] = result
            produced[fn.output.name] = result
    assert result is not None
    return result


def run_program(
    prog: ImpProgram,
    sizes: Mapping[str, int],
    inputs: Mapping[str, np.ndarray],
    intermediates: Mapping[str, tuple] | None = None,
) -> np.ndarray:
    """Deprecated: run a compiled program through the engine front door.

    Use ``repro.compile(prog, backend="python").run(...)`` instead; the
    engine wraps :func:`execute_program` with the compile cache and the
    unified :class:`~repro.engine.pipeline.CompiledPipeline` API.
    """
    warnings.warn(
        "run_program is deprecated; use repro.compile(prog).run(...)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.engine import compile as engine_compile

    pipeline = engine_compile(prog, backend="python", sizes=sizes)
    return pipeline.run(**inputs)
