"""Compile emitted C with the host compiler and run it via ctypes.

This is the true end-to-end path: RISE -> rewriting -> imperative IR ->
C source -> machine code -> execution on real buffers.  Used by the
integration tests (skipped automatically when no C compiler is present).
"""

from __future__ import annotations

import ctypes
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Mapping

import numpy as np

from repro.codegen.cprint import _c_ident, _collect_size_vars, program_to_c
from repro.codegen.ir import ImpProgram
from repro.codegen.sizes import resolve_sizes

__all__ = ["have_c_compiler", "run_program_c"]


def have_c_compiler() -> bool:
    return shutil.which("gcc") is not None or shutil.which("cc") is not None


def _compiler() -> str:
    return shutil.which("gcc") or shutil.which("cc") or "gcc"


def run_program_c(
    prog: ImpProgram,
    sizes: Mapping[str, int],
    inputs: Mapping[str, np.ndarray],
    extra_flags: tuple[str, ...] = ("-O2",),
) -> np.ndarray:
    """Compile the program to a shared library, execute every kernel in
    order, and return the final (unpadded) output buffer."""
    from repro.codegen.lower import BUFFER_PAD

    sizes = resolve_sizes(prog, sizes)
    source = program_to_c(prog)
    with tempfile.TemporaryDirectory(prefix="repro_c_") as tmp:
        c_path = Path(tmp) / "kernel.c"
        so_path = Path(tmp) / "kernel.so"
        c_path.write_text(source)
        cmd = [
            _compiler(),
            "-shared",
            "-fPIC",
            "-std=c11",
            *extra_flags,
            "-o",
            str(so_path),
            str(c_path),
            "-lm",
        ]
        subprocess.run(cmd, check=True, capture_output=True)
        lib = ctypes.CDLL(str(so_path))

        produced: dict[str, np.ndarray] = {}
        result: np.ndarray | None = None
        for fn in prog.functions:
            cfn = getattr(lib, fn.name)
            size_vars = _collect_size_vars(fn)
            argtypes = [ctypes.c_int] * len(size_vars)
            call_args: list = [int(sizes[v]) for v in size_vars]
            arrays: list[np.ndarray] = []
            for b in fn.inputs:
                size = int(b.size.evaluate(sizes))
                if b.name in produced:
                    data = produced[b.name]
                elif b.name in inputs:
                    data = np.asarray(inputs[b.name], dtype=np.float32).ravel()
                else:
                    raise KeyError(f"no input for buffer {b.name!r}")
                buf = np.zeros(size + BUFFER_PAD, dtype=np.float32)
                buf[: min(len(data), size)] = data[:size]
                arrays.append(buf)
                argtypes.append(ctypes.POINTER(ctypes.c_float))
                call_args.append(buf.ctypes.data_as(ctypes.POINTER(ctypes.c_float)))
            out_size = int(fn.output.size.evaluate(sizes))
            out = np.zeros(out_size + BUFFER_PAD, dtype=np.float32)
            argtypes.append(ctypes.POINTER(ctypes.c_float))
            call_args.append(out.ctypes.data_as(ctypes.POINTER(ctypes.c_float)))
            cfn.argtypes = argtypes
            cfn.restype = None
            cfn(*call_args)
            result = out[:out_size]
            produced[fn.name] = result
            produced[fn.output.name] = result
        assert result is not None
        return result
