"""Compile emitted C with the host compiler and run it via ctypes.

This is the true end-to-end path: RISE -> rewriting -> imperative IR ->
C source -> machine code -> execution on real buffers.  Used by the
integration tests (skipped automatically when no C compiler is present).

The shared-library lifecycle is explicit: :func:`compile_c_library`
builds a ``.so`` (into a caller-supplied directory — normally the
engine's artifact store — or a tempdir owned by the returned handle) and
:class:`CLibrary` owns both the loaded ``ctypes.CDLL`` and the backing
file, unloading and deleting them in :meth:`CLibrary.close`.  The legacy
:func:`run_program_c` (which recompiled into a fresh tempdir on every
call) is retired: it raises with a pointer at :func:`repro.compile`,
which reuses one cached library per compiled program.
"""

from __future__ import annotations

import ctypes
import functools
import shutil
import subprocess
import tempfile
import time
import weakref
from pathlib import Path
from typing import Mapping

import numpy as np

from repro.codegen.cprint import _collect_size_vars, program_to_c
from repro.codegen.ir import ImpProgram
from repro.codegen.sizes import resolve_sizes
from repro.observe.core import count, span
from repro.observe.metrics import inc, observe_value

__all__ = [
    "have_c_compiler",
    "openmp_available",
    "effective_cflags",
    "OPENMP_FLAG",
    "CLibrary",
    "compile_c_library",
    "load_c_library",
    "execute_with_library",
    "run_program_c",
]

DEFAULT_CFLAGS = ("-O2",)

#: The flag that makes ``#pragma omp parallel for`` real.  Historically
#: absent from every build — the emitted pragma was inert and all
#: "parallel" C executions ran sequentially.
OPENMP_FLAG = "-fopenmp"


def have_c_compiler() -> bool:
    """Whether a host C compiler (gcc or cc) is on PATH."""
    return shutil.which("gcc") is not None or shutil.which("cc") is not None


def _compiler() -> str:
    return shutil.which("gcc") or shutil.which("cc") or "gcc"


@functools.lru_cache(maxsize=1)
def openmp_available() -> bool:
    """Whether the host compiler can build ``-fopenmp`` shared libraries.

    Probed once per process by compiling a one-line OpenMP translation
    unit; a compiler without libgomp (or no compiler at all) yields
    ``False`` and every build falls back to sequential execution.
    """
    if not have_c_compiler():
        return False
    probe = "#include <omp.h>\nint repro_probe(void){return omp_get_max_threads();}\n"
    with tempfile.TemporaryDirectory(prefix="repro_omp_") as tmp:
        c_path = Path(tmp) / "probe.c"
        so_path = Path(tmp) / "probe.so"
        c_path.write_text(probe)
        try:
            result = subprocess.run(
                [_compiler(), "-shared", "-fPIC", OPENMP_FLAG, "-o", str(so_path), str(c_path)],
                capture_output=True,
                timeout=60,
            )
        except (OSError, subprocess.SubprocessError):
            return False
        return result.returncode == 0 and so_path.is_file()


def effective_cflags(flags: tuple[str, ...] = DEFAULT_CFLAGS) -> tuple[str, ...]:
    """``flags`` with :data:`OPENMP_FLAG` appended when the toolchain
    supports it (graceful sequential fallback otherwise).

    This is the configure-time decision every C build goes through: the
    engine resolves flags *before* computing the compile-cache key, so a
    ``.so`` built with OpenMP is never served to (or from) a sequential
    flag set.
    """
    flags = tuple(flags)
    if OPENMP_FLAG in flags or not openmp_available():
        return flags
    return flags + (OPENMP_FLAG,)


class CLibrary:
    """A loaded shared library with an explicitly owned lifecycle.

    Owns the ``ctypes.CDLL`` handle, the ``.so`` path and (when built
    into a tempdir rather than the artifact store) the directory itself.
    :meth:`close` unloads the handle and removes owned files; a
    ``weakref.finalize`` guarantees owned tempdirs are cleaned up even if
    ``close`` is never called.
    """

    def __init__(self, path: Path, lib: ctypes.CDLL, owned_dir: Path | None = None):
        self.path = Path(path)
        self.lib: ctypes.CDLL | None = lib
        self._owned_dir = owned_dir
        self._finalizer = (
            weakref.finalize(self, shutil.rmtree, str(owned_dir), True)
            if owned_dir is not None
            else None
        )

    @property
    def closed(self) -> bool:
        """Whether the library handle has been released."""
        return self.lib is None

    def function(self, name: str):
        """The named exported kernel, raising if the library is closed."""
        if self.lib is None:
            raise RuntimeError(f"C library {self.path.name} is closed")
        return getattr(self.lib, name)

    def close(self) -> None:
        """Release the CDLL handle and delete owned on-disk artifacts.

        Libraries built with OpenMP are dropped but never ``dlclose``d:
        libgomp parks (spin-waiting) worker threads after a parallel
        region, and unmapping the image they may still reference crashes
        the process.  Leaking one handle is harmless — deleting the
        on-disk ``.so`` is still safe while it stays mapped.
        """
        if self.lib is not None:
            handle = self.lib._handle
            uses_openmp = False
            try:
                probe = self.lib.repro_openmp_enabled
                probe.argtypes = []
                probe.restype = ctypes.c_int
                uses_openmp = bool(probe())
            except AttributeError:
                pass
            self.lib = None
            if not uses_openmp:
                try:
                    import _ctypes

                    _ctypes.dlclose(handle)
                except (ImportError, AttributeError, OSError):  # pragma: no cover
                    pass  # unloading is best-effort; dropping the ref suffices
        if self._finalizer is not None:
            self._finalizer()
            self._finalizer = None

    def __enter__(self) -> "CLibrary":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        state = "closed" if self.closed else "loaded"
        return f"<CLibrary {self.path.name} {state}>"


def compile_c_library(
    prog: ImpProgram,
    out_dir: Path | str | None = None,
    extra_flags: tuple[str, ...] = DEFAULT_CFLAGS,
    source: str | None = None,
) -> CLibrary:
    """Emit C for ``prog``, compile it to a shared library and load it.

    With ``out_dir`` the ``.so`` lands there (the artifact store's layout)
    and the caller owns the files; without it a private tempdir is created
    and owned by the returned :class:`CLibrary`.
    """
    source = source if source is not None else program_to_c(prog)
    owned: Path | None = None
    if out_dir is None:
        owned = Path(tempfile.mkdtemp(prefix="repro_c_"))
        out_dir = owned
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    c_path = out_dir / "kernel.c"
    so_path = out_dir / "kernel.so"
    c_path.write_text(source)
    cmd = [
        _compiler(),
        "-shared",
        "-fPIC",
        "-std=c11",
        *extra_flags,
        "-o",
        str(so_path),
        str(c_path),
        "-lm",
    ]
    t0 = time.perf_counter()
    with span("engine.cbuild", program=prog.name):
        subprocess.run(cmd, check=True, capture_output=True)
        count("engine.cbuild")
    inc("engine.cbuild")
    observe_value("engine.cbuild_ms", (time.perf_counter() - t0) * 1e3)
    return CLibrary(so_path, ctypes.CDLL(str(so_path)), owned_dir=owned)


def load_c_library(so_path: Path | str) -> CLibrary:
    """Load an already-compiled shared library (a warm artifact-store hit);
    the caller/store keeps owning the file."""
    so_path = Path(so_path)
    return CLibrary(so_path, ctypes.CDLL(str(so_path)))


def set_library_threads(library: CLibrary, threads: int) -> bool:
    """Pin the OpenMP thread count of a loaded kernel library.

    Uses the ``repro_set_threads`` helper every emitted translation unit
    exports (a no-op in sequential builds); returns whether the library
    reports OpenMP as enabled, so callers can tell a real pin from a
    fallback.  Older cached ``.so`` files without the helper are treated
    as sequential.
    """
    try:
        setter = library.function("repro_set_threads")
    except AttributeError:
        return False
    setter.argtypes = [ctypes.c_int]
    setter.restype = None
    setter(int(threads))
    try:
        enabled = library.function("repro_openmp_enabled")
    except AttributeError:
        return False
    enabled.argtypes = []
    enabled.restype = ctypes.c_int
    return bool(enabled())


def execute_with_library(
    library: CLibrary,
    prog: ImpProgram,
    sizes: Mapping[str, int],
    inputs: Mapping[str, np.ndarray],
    threads: int | None = None,
) -> np.ndarray:
    """Execute every kernel of ``prog`` in order through ``library`` and
    return the final (unpadded) output buffer.

    ``threads`` pins the OpenMP team size for this call (resolved through
    :func:`repro.exec.parallel.effective_threads`, so ``$OMP_NUM_THREADS``
    works and batch workers degrade to 1 thread).  Without OpenMP in the
    build the pin is a no-op and ``PARALLEL`` loops run sequentially.

    Each call allocates its own padded buffers, so one loaded library can
    serve concurrent callers (the batch executor's thread pool): ctypes
    releases the GIL for the duration of each kernel call.
    """
    from repro.codegen.lower import BUFFER_PAD
    from repro.exec.parallel import effective_threads

    sizes = resolve_sizes(prog, sizes)
    nthreads = effective_threads(threads)
    omp_active = set_library_threads(library, nthreads)
    inc("exec.c.threads_pinned" if omp_active else "exec.c.sequential_builds")
    produced: dict[str, np.ndarray] = {}
    result: np.ndarray | None = None
    for fn in prog.functions:
        cfn = library.function(fn.name)
        size_vars = _collect_size_vars(fn)
        argtypes = [ctypes.c_int] * len(size_vars)
        call_args: list = [int(sizes[v]) for v in size_vars]
        for b in fn.inputs:
            size = int(b.size.evaluate(sizes))
            if b.name in produced:
                data = produced[b.name]
            elif b.name in inputs:
                data = np.asarray(inputs[b.name], dtype=np.float32).ravel()
            else:
                raise KeyError(f"no input for buffer {b.name!r}")
            buf = np.zeros(size + BUFFER_PAD, dtype=np.float32)
            buf[: min(len(data), size)] = data[:size]
            argtypes.append(ctypes.POINTER(ctypes.c_float))
            call_args.append(buf.ctypes.data_as(ctypes.POINTER(ctypes.c_float)))
        out_size = int(fn.output.size.evaluate(sizes))
        out = np.zeros(out_size + BUFFER_PAD, dtype=np.float32)
        argtypes.append(ctypes.POINTER(ctypes.c_float))
        call_args.append(out.ctypes.data_as(ctypes.POINTER(ctypes.c_float)))
        cfn.argtypes = argtypes
        cfn.restype = None
        t0 = time.perf_counter()
        with span(
            f"run:{fn.name}",
            program=prog.name,
            backend="c",
            threads=nthreads if omp_active else 1,
        ):
            cfn(*call_args)
        kernel_ms = (time.perf_counter() - t0) * 1e3
        count("exec.c.kernels")
        inc("exec.c.kernels", kernel=fn.name)
        observe_value("exec.c.kernel_ms", kernel_ms, kernel=fn.name)
        result = out[:out_size]
        produced[fn.name] = result
        produced[fn.output.name] = result
    assert result is not None
    return result


def run_program_c(
    prog: ImpProgram,
    sizes: Mapping[str, int],
    inputs: Mapping[str, np.ndarray],
    extra_flags: tuple[str, ...] = DEFAULT_CFLAGS,
) -> np.ndarray:
    """Removed: compile through the engine front door instead.

    This pre-engine entry point spent two releases as a
    ``DeprecationWarning`` shim and is now retired; calling it raises
    with the migration below — the engine caches the compiled library
    per program instead of rebuilding into a fresh tempdir per call.
    """
    raise RuntimeError(
        "run_program_c was removed; migrate to the engine front door:\n"
        "    repro.compile(prog, backend='c', sizes=sizes,"
        " cflags=tuple(extra_flags)).run(**inputs)"
    )
