"""Thread configuration shared by both execution backends.

The paper's reference Halide schedule parallelizes the Harris pipeline
across strips of rows (``parallel(y)``), and the RISE lowering exposes
``mapGlobal`` for exactly that — but a ``LoopKind.PARALLEL`` loop is only
as real as the runtime that executes it.  This module centralizes the
runtime side of that decision so the C bridge, the Python strip executor
and the engine agree on one policy:

* **Resolution order** for the effective thread count: an explicit
  ``threads=`` argument, else ``$REPRO_THREADS``, else ``$OMP_NUM_THREADS``
  (the conventional OpenMP control, honored by both backends so one knob
  steers C and Python alike), else the machine's CPU count.
* **Oversubscription policy**: work items running inside an
  :class:`~repro.engine.batch.BatchRunner` pool execute with
  ``threads=1`` — the batch already owns the machine's parallelism, and
  nesting a strip pool inside a batch pool would oversubscribe cores
  without speeding anything up.  :func:`batch_worker_scope` marks the
  dynamic extent of one batch item; :func:`effective_threads` degrades
  inside it.

Thread counts are clamped to ``[1, MAX_THREADS]``; a resolution that
cannot determine the CPU count falls back to sequential execution, so
parallel loops are never *wrong*, only possibly not faster.
"""

from __future__ import annotations

import contextlib
import contextvars
import os

__all__ = [
    "MAX_THREADS",
    "THREADS_ENV",
    "OMP_THREADS_ENV",
    "resolve_threads",
    "effective_threads",
    "batch_worker_scope",
    "in_batch_worker",
]

#: Hard upper bound on strip-pool sizes (guards absurd env values).
MAX_THREADS = 64

#: Repository-specific thread override; wins over the OpenMP variable.
THREADS_ENV = "REPRO_THREADS"

#: The conventional OpenMP control, honored for both backends.
OMP_THREADS_ENV = "OMP_NUM_THREADS"

#: Set for the dynamic extent of one batch-pool work item.
_IN_BATCH: contextvars.ContextVar[bool] = contextvars.ContextVar(
    "repro_in_batch_worker", default=False
)


def _env_threads() -> int | None:
    for var in (THREADS_ENV, OMP_THREADS_ENV):
        value = os.environ.get(var, "").strip()
        if value:
            try:
                return int(value)
            except ValueError:
                continue
    return None


def resolve_threads(threads: int | None = None) -> int:
    """The configured thread count, before the oversubscription policy.

    ``threads`` wins when given; otherwise ``$REPRO_THREADS`` then
    ``$OMP_NUM_THREADS`` then ``os.cpu_count()``.  Always in
    ``[1, MAX_THREADS]``.
    """
    if threads is None:
        threads = _env_threads()
    if threads is None:
        threads = os.cpu_count() or 1
    return max(1, min(int(threads), MAX_THREADS))


def in_batch_worker() -> bool:
    """Whether the caller runs inside a batch-pool work item."""
    return _IN_BATCH.get()


def effective_threads(threads: int | None = None) -> int:
    """The thread count a parallel loop should actually use *here*.

    Applies :func:`resolve_threads` and then the oversubscription policy:
    inside a batch worker the answer is always 1 (the batch pool owns the
    cores; nested strip pools would oversubscribe).
    """
    if in_batch_worker():
        return 1
    return resolve_threads(threads)


@contextlib.contextmanager
def batch_worker_scope():
    """Mark the dynamic extent of one batch work item.

    :class:`~repro.engine.batch.BatchRunner` wraps every item execution
    in this scope (thread-pool items via the copied context, process-pool
    items inside the worker function), so any ``LoopKind.PARALLEL`` loop
    encountered there degrades to a deterministic sequential run.
    """
    token = _IN_BATCH.set(True)
    try:
        yield
    finally:
        _IN_BATCH.reset(token)
