"""Execution backends for compiled imperative programs."""

from repro.exec.pyexec import execute_program, program_to_python, run_program
