"""Execution backends for compiled imperative programs."""

from repro.exec.pyexec import program_to_python, run_program
