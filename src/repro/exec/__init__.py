"""Execution backends for compiled imperative programs."""

from repro.exec.parallel import (
    batch_worker_scope, effective_threads, in_batch_worker, resolve_threads,
)
from repro.exec.pyexec import execute_program, program_to_python, run_program
