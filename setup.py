"""Legacy setup shim.

The canonical metadata lives in pyproject.toml; this file exists so
``pip install -e .`` also works on offline environments whose pip cannot
build PEP 660 editable wheels (no `wheel` package available).
"""

from setuptools import setup

setup()
