#!/usr/bin/env python
"""Differential + metamorphic fuzzing CLI (the ``repro.verify`` front end).

Examples::

    # CI smoke: 50 cases or 120 seconds, whichever comes first
    PYTHONPATH=src python tools/fuzz.py --seed 0 --iterations 50 --time-budget 120

    # full acceptance run, writing shrunk failures into the test corpus
    PYTHONPATH=src python tools/fuzz.py --seed 0 --iterations 200 --corpus tests/corpus

    # replay every committed corpus case
    PYTHONPATH=src python tools/fuzz.py --replay tests/corpus

Exit status is non-zero when the campaign found failures (each already
shrunk and, with ``--corpus``, serialized as a replayable JSON case) or
when a replayed ``expect: pass`` case fails / an ``expect: xfail`` case
unexpectedly passes.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))


def _parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("--seed", type=int, default=0, help="campaign seed")
    parser.add_argument(
        "--iterations", type=int, default=100, help="number of fuzz cases"
    )
    parser.add_argument(
        "--time-budget",
        type=float,
        default=None,
        help="wall-clock budget in seconds (stop early when exceeded)",
    )
    parser.add_argument(
        "--corpus",
        default=None,
        help="directory to write shrunk failure cases into (e.g. tests/corpus)",
    )
    parser.add_argument(
        "--replay",
        default=None,
        help="replay every *.json corpus case in this directory instead of fuzzing",
    )
    parser.add_argument("--rtol", type=float, default=1e-5, help="relative tolerance")
    parser.add_argument(
        "--rules-per-case",
        type=int,
        default=4,
        help="rewrite rules sampled per metamorphic trial",
    )
    parser.add_argument(
        "--zoo-every",
        type=int,
        default=0,
        help="seed every Nth case from the pipeline registry instead of "
        "the random generator (0 = off)",
    )
    parser.add_argument(
        "--zoo-pipelines",
        nargs="*",
        default=None,
        help="restrict registry-seeded cases to these pipelines",
    )
    parser.add_argument(
        "--no-c",
        action="store_true",
        help="skip the C backend even when a compiler is available",
    )
    parser.add_argument(
        "--trajectory",
        default=None,
        help="append fuzz throughput (ms/case) to this BENCH trajectory ledger",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON on stdout"
    )
    return parser.parse_args(argv)


def _replay(corpus_dir: str, as_json: bool) -> int:
    from repro.verify.fuzz import replay_case
    from repro.verify.serialize import load_case

    paths = sorted(Path(corpus_dir).glob("*.json"))
    results = []
    bad = 0
    for path in paths:
        case = load_case(path)
        failure = replay_case(case)
        if case["expect"] == "xfail":
            ok = failure is not None  # the known bug must still reproduce
            status = "xfail" if ok else "xpass"
        else:
            ok = failure is None
            status = "pass" if ok else "FAIL"
        bad += 0 if ok else 1
        results.append({"case": path.name, "status": status, "failure": failure})
        if not as_json:
            print(f"{status:>6}  {path.name}")
    if as_json:
        print(json.dumps({"replayed": len(paths), "bad": bad, "results": results}, indent=2))
    elif not paths:
        print(f"no corpus cases under {corpus_dir}")
    return 1 if bad else 0


def main(argv=None) -> int:
    """CLI entry point; returns the process exit status."""
    args = _parse_args(argv)
    if args.replay:
        return _replay(args.replay, args.json)

    from repro.verify.fuzz import FuzzConfig, record_throughput, run_fuzz

    cfg = FuzzConfig(
        seed=args.seed,
        iterations=args.iterations,
        time_budget=args.time_budget,
        corpus_dir=args.corpus,
        rtol=args.rtol,
        rules_per_case=args.rules_per_case,
        use_c=False if args.no_c else None,
        zoo_every=args.zoo_every,
        zoo_pipelines=tuple(args.zoo_pipelines) if args.zoo_pipelines else None,
    )
    report = run_fuzz(cfg)
    if args.trajectory:
        record_throughput(args.trajectory, report)
    doc = report.to_dict()
    if args.json:
        print(json.dumps(doc, indent=2))
    else:
        print(
            f"fuzz: seed={doc['seed']} cases={doc['cases']} "
            f"zoo={doc['zoo_cases']} "
            f"failures={doc['failure_count']} "
            f"discard_rate={doc['discard_rate']:.4f} "
            f"throughput={doc['cases_per_sec']:.1f} cases/s"
        )
        for failure in report.failures:
            print(f"  FAIL [{failure['kind']}] seed={failure['seed']} "
                  f"rules={failure['rules']} stages={failure['stages']}")
            if "case_path" in failure:
                print(f"       shrunk case written to {failure['case_path']}")
    if report.discard_rate > 0.10:
        print(
            f"warning: generator discard rate {report.discard_rate:.1%} "
            "exceeds the 10% budget",
            file=sys.stderr,
        )
        return 2
    return 1 if report.failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
