#!/usr/bin/env python3
"""Load-test the compile service and record ``serve|`` trajectory cells.

Prebuilds the AOT kernel set into ``--cache-dir`` (unless ``--no-prebuild``
— e.g. when pointing at an image built by ``tools/aot.py``), then drives
a :class:`repro.serve.Server` with mixed traffic: warm requests for the
prebuilt kernels (compile must be all cache hits; their *run* latency is
the steady-state serving cost) and cold requests whose keys cannot exist
yet (the full JIT tax).  p50/p99 of both families are appended to
``BENCH_trajectory.json`` as ``serve|<quantile>|<family>`` cells —
informational in ``tools/bench_compare.py`` unless ``--gate-serve``.

The run itself enforces the structural serving invariants regardless of
gating: warm traffic performed zero builds, and AOT-warm p99 run latency
is below cold-JIT p99.  Violations exit non-zero.

Exit codes: 0 healthy run, 1 invariant violations, 2 usage errors.

``--metrics-out`` writes the final metrics registry (SLO burn gauges
included) in Prometheus text exposition format, and ``--events-out``
dumps the structured event log (``repro.observe.events/v1`` JSONL) —
both are uploaded as CI artifacts by the serve-smoke job.

Usage:  python tools/loadtest.py [--cache-dir DIR] [--warm 32] [--cold 4]
                                 [--workers 4] [--deadline-s 30]
                                 [--backend python] [--no-prebuild]
                                 [--no-trajectory] [--json]
                                 [--metrics-out metrics.prom]
                                 [--events-out events.jsonl]
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))


def main() -> int:
    """Prebuild, hammer the server, check invariants, record cells."""
    from repro.bench.regress import (
        DEFAULT_TRAJECTORY,
        SAMPLE_SCHEMA,
        append_sample,
        git_sha,
    )
    from repro.observe.metrics import registry as metrics_registry
    from repro.serve.aot import prebuild
    from repro.serve.loadtest import run_loadtest

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="artifact store to serve from (default: a fresh tempdir)",
    )
    parser.add_argument(
        "--warm", type=int, default=32,
        help="warm (AOT-prebuilt) requests (default: %(default)s)",
    )
    parser.add_argument(
        "--cold", type=int, default=4,
        help="cold (unique-key JIT) requests (default: %(default)s)",
    )
    parser.add_argument(
        "--workers", type=int, default=4,
        help="server worker threads (default: %(default)s)",
    )
    parser.add_argument(
        "--max-queue", type=int, default=256,
        help="admission queue bound (default: %(default)s)",
    )
    parser.add_argument(
        "--deadline-s", type=float, default=None,
        help="per-request deadline in seconds (default: none)",
    )
    parser.add_argument(
        "--backend", default="python", choices=("python", "c"),
        help="execution backend (default: %(default)s)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="seed of the measured input image (default: %(default)s)",
    )
    parser.add_argument(
        "--no-prebuild",
        action="store_true",
        help="assume --cache-dir is already AOT-warm (tools/aot.py ran)",
    )
    parser.add_argument(
        "--trajectory",
        default=DEFAULT_TRAJECTORY,
        help="trajectory ledger to append to (default: %(default)s)",
    )
    parser.add_argument(
        "--no-trajectory",
        action="store_true",
        help="measure and check, but do not append trajectory cells",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the full summary as JSON"
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        help="write the final metrics snapshot here in Prometheus text "
        "exposition format (CI artifact)",
    )
    parser.add_argument(
        "--events-out",
        default=None,
        help="dump the structured event log here as JSONL (CI artifact)",
    )
    args = parser.parse_args()
    if args.warm < 1 or args.workers < 1 or args.cold < 0:
        print(
            "loadtest: --warm/--workers must be >= 1 and --cold >= 0",
            file=sys.stderr,
        )
        return 2
    if args.no_prebuild and args.cache_dir is None:
        print("loadtest: --no-prebuild needs --cache-dir", file=sys.stderr)
        return 2

    tmp = None
    if args.cache_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro_loadtest_")
        cache_dir = Path(tmp.name) / "store"
    else:
        cache_dir = Path(args.cache_dir)
    try:
        if not args.no_prebuild:
            prebuild(cache_dir, backends=(args.backend,))
        result = run_loadtest(
            cache_dir,
            warm=args.warm,
            cold=args.cold,
            workers=args.workers,
            max_queue=args.max_queue,
            deadline_s=args.deadline_s,
            backend=args.backend,
            seed=args.seed,
        )
    finally:
        if tmp is not None:
            tmp.cleanup()

    from repro.observe.events import event_log
    from repro.observe.slo import evaluate_slo, record_slo_gauges

    # fold the SLO burn rates into the registry before any export, so the
    # Prometheus dump and the trajectory sample both carry slo.* gauges
    record_slo_gauges(evaluate_slo(metrics_registry().snapshot()))
    if args.metrics_out:
        Path(args.metrics_out).write_text(
            metrics_registry().render_prometheus(), encoding="utf-8"
        )
        print(f"wrote metrics snapshot to {args.metrics_out}")
    if args.events_out:
        event_log().dump_jsonl(args.events_out)
        print(f"wrote event log to {args.events_out}")

    problems = result.check()
    summary = result.to_dict()
    summary["problems"] = problems
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        for cell, value in sorted(summary["cells"].items()):
            print(f"  {cell:<32} {value:10.3f} ms")
        print(
            f"loadtest: {summary['samples']['warm_compile']} warm / "
            f"{summary['samples']['cold_jit']} cold served, "
            f"{result.rejected} rejected, "
            f"{result.deadline_exceeded} deadline-exceeded"
        )
        for problem in problems:
            print(f"loadtest: INVARIANT VIOLATED: {problem}", file=sys.stderr)

    if not args.no_trajectory:
        sample = {
            "schema": SAMPLE_SCHEMA,
            "timestamp": round(time.time(), 3),
            "git_sha": git_sha(),
            "k": 1,
            "environment": {
                "tool": "loadtest",
                "warm": args.warm,
                "cold": args.cold,
                "workers": args.workers,
                "backend": args.backend,
            },
            "cells": result.cells(),
            "metrics": metrics_registry().snapshot(),
            "serve": {
                "problems": problems,
                "warm_cache_statuses": dict(result.warm_cache_statuses),
                "server": result.server,
            },
        }
        append_sample(args.trajectory, sample)
        print(f"appended {len(sample['cells'])} serve| cells to {args.trajectory}")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
