#!/usr/bin/env python3
"""Query a structured event log (``repro.observe.events/v1`` JSONL).

Reads an event file produced by ``tools/loadtest.py --events-out``, a
sink configured via :meth:`repro.observe.events.EventLog.open_sink`, or
a flight-recorder dump, and answers the debugging questions the raw
JSONL makes tedious:

* filter by request (``--request``), cache key (``--key``) or outcome
  (``--outcome error``);
* reconstruct one request's ordered timeline with millisecond offsets
  (``--timeline req-...``);
* show the last N failures (``--failures 20``) — the post-mortem view
  of a crashed or misbehaving server.

Exit codes: 0 success (even when the filter matches nothing),
2 usage / malformed-input errors.

Usage:  python tools/events.py EVENTS.jsonl [--request REQ] [--key KEY]
                                            [--outcome OUTCOME]
                                            [--timeline REQ]
                                            [--failures N] [--json]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))


def _format_record(record: dict) -> str:
    """One human-readable line per event record."""
    attrs = record.get("attrs") or {}
    extra = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
    rid = record.get("request_id") or "-"
    key = record.get("key")
    parts = [
        f"{record.get('ts', 0.0):.6f}",
        f"#{record.get('seq', 0):<5}",
        f"{record.get('event', '?'):<26}",
        f"{rid:<18}",
    ]
    if key:
        parts.append(f"key={key[:16]}")
    if extra:
        parts.append(extra)
    return " ".join(parts)


def main() -> int:
    """Filter, timeline, or failure-dump one event file."""
    from repro.observe.events import is_failure, read_events, request_timeline

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("file", help="JSONL event file to query")
    parser.add_argument(
        "--request", default=None, help="only events of this request_id"
    )
    parser.add_argument("--key", default=None, help="only events of this cache key")
    parser.add_argument(
        "--outcome",
        default=None,
        help="only events with this attrs.outcome (ok/error/rejected/...)",
    )
    parser.add_argument(
        "--timeline",
        default=None,
        metavar="REQUEST_ID",
        help="print the ordered timeline of one request (dt_ms offsets)",
    )
    parser.add_argument(
        "--failures",
        type=int,
        default=None,
        metavar="N",
        help="print only the last N failure events",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit matching records as JSON"
    )
    args = parser.parse_args()

    path = Path(args.file)
    if not path.is_file():
        print(f"events: no such file: {path}", file=sys.stderr)
        return 2
    try:
        records = list(read_events(path))
    except ValueError as exc:
        print(f"events: {exc}", file=sys.stderr)
        return 2

    if args.timeline is not None:
        records = request_timeline(records, args.timeline)
    else:
        if args.request is not None:
            records = [r for r in records if r.get("request_id") == args.request]
        if args.key is not None:
            records = [r for r in records if r.get("key") == args.key]
        if args.outcome is not None:
            records = [
                r
                for r in records
                if (r.get("attrs") or {}).get("outcome") == args.outcome
            ]
        if args.failures is not None:
            records = [r for r in records if is_failure(r)][-args.failures :]

    if args.json:
        print(json.dumps(records, indent=2))
        return 0
    for record in records:
        line = _format_record(record)
        if args.timeline is not None:
            line = f"+{record.get('dt_ms', 0.0):9.3f}ms  {line}"
        print(line)
    label = "timeline events" if args.timeline else "events"
    print(f"events: {len(records)} {label} from {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
