#!/usr/bin/env python3
"""Automated schedule discovery for any registered pipeline.

Runs the cost-guided beam search of ``repro.tune`` over the paper's
optimization vocabulary on one pipeline from the registry
(``--pipeline``, default the Harris case study), verifies the cheapest survivors against the
differential oracle (naive schedule as reference), compares the winner
with the hand-written listing 5/9 schedules under the same objective,
and records the discovery as ``tuned|*`` cells in the benchmark
trajectory ledger.

The search log (``--log``, default ``TUNE_log.json``) is written after
every step and is resumable: re-run with ``--resume`` to continue an
interrupted search — replay is cheap because every transition is
memoized and the rewrites are deterministic.

Exit codes: 0 a schedule was discovered and oracle-verified,
1 no candidate survived verification, 2 usage errors.

Usage:  python tools/tune.py --seed 0 --beam 4 --steps 6
        python tools/tune.py --pipeline gaussian-blur --beam 2 --steps 2
        python tools/tune.py --beam 2 --steps 2 --no-trajectory   # smoke
        python tools/tune.py --resume --log TUNE_log.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))


def build_parser() -> argparse.ArgumentParser:
    """The tuner's command-line interface."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0, help="verification-input seed (default: %(default)s)")
    parser.add_argument(
        "--pipeline",
        default="harris",
        help="registered pipeline to tune (default: %(default)s; see "
        "repro.pipelines.registry.names())",
    )
    parser.add_argument("--beam", type=int, default=4, help="beam width (default: %(default)s)")
    parser.add_argument("--steps", type=int, default=6, help="search depth in actions (default: %(default)s)")
    parser.add_argument(
        "--machine",
        default=None,
        help="objective machine model by name, e.g. 'A73' (default: Cortex A73)",
    )
    parser.add_argument(
        "--log",
        default="TUNE_log.json",
        help="resumable JSON search log path (default: %(default)s)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume the search recorded in --log (same seed expression "
        "and objective required)",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=3,
        help="verify up to this many frontier candidates (default: %(default)s)",
    )
    parser.add_argument(
        "--wall-rank",
        action="store_true",
        help="also wall-clock-rank the verified winner against cbuf+rot "
        "through the batch runner (measured, machine-dependent)",
    )
    parser.add_argument(
        "--trajectory",
        default="BENCH_trajectory.json",
        help="trajectory ledger to append the tuned| cells to "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--no-trajectory",
        action="store_true",
        help="do not append a trajectory sample (smoke / CI runs)",
    )
    return parser


def main() -> int:
    """Search, verify, compare with the hand schedules, record the result."""
    args = build_parser().parse_args()
    if args.beam < 1 or args.steps < 1 or args.top < 1:
        print("tune: --beam, --steps and --top must be >= 1", file=sys.stderr)
        return 2

    from repro.bench.regress import SAMPLE_SCHEMA, append_sample, git_sha
    from repro.observe.metrics import registry as metrics_registry
    from repro.perf.objective import CostObjective, objective_for
    from repro.pipelines import registry
    from repro.tune import (
        TuneConfig,
        beam_search,
        handwritten_costs,
        schedule_from_actions,
        tuned_cells,
        verification_sizes,
        make_inputs,
        verify_schedule,
        wall_rank,
    )

    try:
        objective = (
            objective_for(args.machine) if args.machine else CostObjective()
        )
    except ValueError as exc:
        print(f"tune: {exc}", file=sys.stderr)
        return 2

    try:
        spec = registry.get(args.pipeline)
    except KeyError as exc:
        print(f"tune: {exc.args[0]}", file=sys.stderr)
        return 2
    seed_expr = spec.expr()
    type_env = spec.type_env()
    config = TuneConfig(beam=args.beam, steps=args.steps, seed=args.seed)

    print(
        f"searching {spec.name}: beam={config.beam} steps={config.steps} "
        f"objective=[{objective.identity}]"
    )
    t0 = time.perf_counter()
    result = beam_search(
        seed_expr,
        type_env,
        config=config,
        objective=objective,
        log_path=args.log,
        resume=args.resume,
    )
    elapsed = time.perf_counter() - t0
    print(
        f"search done in {elapsed:.1f}s: scored {result.stats['scored']} "
        f"candidates over {result.stats['expanded']} expansions "
        f"(log: {args.log})"
    )
    for cand in result.frontier:
        print(f"  {cand.cost_ms:10.6f} ms  {' > '.join(cand.actions)}")

    # Oracle-verify the cheapest survivors; the winner is the cheapest
    # candidate whose outputs match the naive schedule bit-for-tolerance.
    winner = None
    verdicts = []
    for cand in result.frontier[: args.top]:
        if not cand.actions:
            continue
        sched = schedule_from_actions(cand.actions, type_env)
        sizes = verification_sizes(cand.n_multiple, cand.m_multiple)
        verdict = verify_schedule(
            seed_expr, sched, type_env, sizes=sizes, seed=args.seed
        )
        verdicts.append({"actions": list(cand.actions), **verdict})
        status = "ok" if verdict["ok"] else "FAILED"
        print(f"verify[{sched.name}] sizes={sizes}: {status}")
        if verdict["ok"] and winner is None:
            winner = cand
    if winner is None:
        print("tune: no candidate survived oracle verification", file=sys.stderr)
        return 1

    hand = handwritten_costs(seed_expr, type_env, objective=objective)
    bar = hand["rise-cbuf-rrot"]
    verdict_word = "<= hand cbuf+rot" if winner.cost_ms <= bar else "above hand cbuf+rot"
    print("objective scores (modeled ms):")
    for name, ms in sorted(hand.items(), key=lambda kv: kv[1]):
        print(f"  {name:<24} {ms:10.6f}")
    print(f"  {'discovered':<24} {winner.cost_ms:10.6f}   ({verdict_word})")

    sched = schedule_from_actions(winner.actions, type_env)
    print(f"discovered schedule: {sched.name}")
    print(f"  actions: {' > '.join(winner.actions)}")
    print(
        "  replay:  from repro.tune import schedule_from_actions; "
        f"schedule_from_actions({list(winner.actions)!r}, env)"
    )

    if args.wall_rank:
        sizes = verification_sizes(winner.n_multiple, winner.m_multiple)
        inputs = make_inputs(type_env, sizes, seed=args.seed)
        from repro.strategies.schedules import cbuf_rrot_version

        ranked = wall_rank(
            {sched.name: sched, "rise-cbuf-rrot": cbuf_rrot_version(dict(type_env))},
            seed_expr,
            type_env,
            sizes,
            inputs,
        )
        print("wall-clock ranking (min item ms):")
        for name, ms in ranked.items():
            print(f"  {name:<24} {ms:10.3f}")

    if not args.no_trajectory:
        label = sched.name if spec.name == "harris" else f"{spec.name}:{sched.name}"
        cells = tuned_cells(winner.actions, seed_expr, type_env, label=label)
        sample = {
            "schema": SAMPLE_SCHEMA,
            "timestamp": round(time.time(), 3),
            "git_sha": git_sha(),
            "k": 1,
            "environment": {
                "tool": "tune",
                "pipeline": spec.name,
                "seed": args.seed,
                "beam": args.beam,
                "steps": args.steps,
                "objective": objective.identity,
            },
            "cells": cells,
            "metrics": metrics_registry().snapshot(),
            "tune": {
                "best": winner.to_dict(),
                "handwritten_ms": {k: round(v, 6) for k, v in hand.items()},
                "stats": {
                    k: v for k, v in result.stats.items() if isinstance(v, int)
                },
                "verified": verdicts,
            },
        }
        append_sample(args.trajectory, sample)
        print(f"appended {len(cells)} tuned| cells to {args.trajectory}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
