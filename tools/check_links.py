#!/usr/bin/env python3
"""Markdown link checker for the repository docs.

Scans README.md, docs/ and the other top-level markdown files for inline
links and verifies that every *relative* target resolves to a file in the
repository (anchors are checked for in-file existence of a matching
heading).  External links (http/https/mailto) are not fetched — the check
must work offline.

Usage:  python tools/check_links.py [file-or-dir ...]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

DEFAULT_TARGETS = ("README.md", "docs", "CHANGES.md", "ROADMAP.md")

#: Inline markdown links: [text](target), skipping images is not needed —
#: image targets must resolve too.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

SKIP_SCHEMES = ("http://", "https://", "mailto:", "#http")


def slugify(heading: str) -> str:
    """GitHub-style anchor slug for a markdown heading."""
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def anchors_in(path: Path) -> set[str]:
    """All heading anchors defined by a markdown file."""
    out: set[str] = set()
    for line in path.read_text(encoding="utf-8").splitlines():
        if line.startswith("#"):
            out.add(slugify(line.lstrip("#")))
    return out


def check_file(path: Path) -> list[str]:
    """Return 'file: broken target' entries for one markdown file."""
    errors: list[str] = []
    try:
        rel = path.relative_to(REPO_ROOT)
    except ValueError:
        rel = path
    text = path.read_text(encoding="utf-8")
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(SKIP_SCHEMES):
            continue
        target, _, anchor = target.partition("#")
        if not target:  # pure in-file anchor: #section
            if anchor and slugify(anchor) not in anchors_in(path):
                errors.append(f"{rel}: missing anchor #{anchor}")
            continue
        resolved = (path.parent / target).resolve()
        if not resolved.exists():
            errors.append(f"{rel}: broken link {target}")
        elif anchor and resolved.suffix == ".md":
            if slugify(anchor) not in anchors_in(resolved):
                errors.append(f"{rel}: missing anchor {target}#{anchor}")
    return errors


def main(argv: list[str]) -> int:
    targets = argv[1:] or [str(REPO_ROOT / t) for t in DEFAULT_TARGETS]
    files: list[Path] = []
    for t in targets:
        p = Path(t)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.md")))
        elif p.exists():
            files.append(p)
    errors: list[str] = []
    for f in files:
        errors.extend(check_file(f))
    if errors:
        print(f"broken links ({len(errors)}):")
        for e in errors:
            print(f"  {e}")
        return 1
    print(f"links OK: {len(files)} markdown files checked")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
