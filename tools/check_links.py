#!/usr/bin/env python3
"""Markdown link checker for the repository docs.

Scans README.md, docs/ and the other top-level markdown files for inline
links and verifies that every *relative* target resolves to a file in the
repository (anchors are checked for in-file existence of a matching
heading).  External links (http/https/mailto) are not fetched — the check
must work offline.

Fenced code blocks are stripped before both anchor collection and link
extraction: a ``# comment`` line inside a ```bash block is not a heading,
and treating it as one used to let links to long-deleted sections pass
silently (the anchor check matched the comment instead of a real
heading).  Links inside code fences are examples, not navigation, so
they are not checked either.

When ``docs/index.md`` exists, the checker additionally requires every
other page under ``docs/`` to be linked from it — the index is the
documentation map, and a page it does not reach is unreachable for
readers too.

Usage:  python tools/check_links.py [file-or-dir ...]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

DEFAULT_TARGETS = ("README.md", "docs", "CHANGES.md", "ROADMAP.md")

#: Inline markdown links: [text](target), skipping images is not needed —
#: image targets must resolve too.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Opening/closing fence of a code block (``` or ~~~, any info string).
FENCE_RE = re.compile(r"^\s*(```|~~~)")

SKIP_SCHEMES = ("http://", "https://", "mailto:", "#http")


def strip_code_fences(text: str) -> str:
    """The markdown text with fenced code blocks blanked out.

    Fenced lines are replaced by empty lines (not removed), so line
    numbers in future diagnostics stay meaningful.
    """
    out: list[str] = []
    in_fence = False
    fence = ""
    for line in text.splitlines():
        match = FENCE_RE.match(line)
        if match and not in_fence:
            in_fence, fence = True, match.group(1)
            out.append("")
            continue
        if match and in_fence and match.group(1) == fence:
            in_fence = False
            out.append("")
            continue
        out.append("" if in_fence else line)
    return "\n".join(out)


def slugify(heading: str) -> str:
    """GitHub-style anchor slug for a markdown heading."""
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def anchors_in(path: Path) -> set[str]:
    """All heading anchors defined by a markdown file.

    Only real headings count: ``#`` lines inside fenced code blocks are
    shell comments, not anchors.
    """
    out: set[str] = set()
    text = strip_code_fences(path.read_text(encoding="utf-8"))
    for line in text.splitlines():
        if line.startswith("#"):
            out.add(slugify(line.lstrip("#")))
    return out


def check_file(path: Path) -> list[str]:
    """Return 'file: broken target' entries for one markdown file."""
    errors: list[str] = []
    try:
        rel = path.relative_to(REPO_ROOT)
    except ValueError:
        rel = path
    text = strip_code_fences(path.read_text(encoding="utf-8"))
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(SKIP_SCHEMES):
            continue
        target, _, anchor = target.partition("#")
        if not target:  # pure in-file anchor: #section
            if anchor and slugify(anchor) not in anchors_in(path):
                errors.append(f"{rel}: missing anchor #{anchor}")
            continue
        resolved = (path.parent / target).resolve()
        if not resolved.exists():
            errors.append(f"{rel}: broken link {target}")
        elif anchor and resolved.suffix == ".md":
            if slugify(anchor) not in anchors_in(resolved):
                errors.append(f"{rel}: missing anchor {target}#{anchor}")
    return errors


def linked_targets(path: Path) -> set[Path]:
    """Resolved file targets of every relative link in one markdown file."""
    out: set[Path] = set()
    text = strip_code_fences(path.read_text(encoding="utf-8"))
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(SKIP_SCHEMES):
            continue
        target, _, _ = target.partition("#")
        if target:
            out.add((path.parent / target).resolve())
    return out


def orphan_docs(files: list[Path]) -> list[str]:
    """Docs pages not linked from their ``index.md`` documentation map.

    For every scanned ``index.md``, each sibling (and descendant) ``.md``
    page of its directory must appear as a link target in the index;
    directories without an index are exempt.
    """
    errors: list[str] = []
    indexes = [f for f in files if f.name == "index.md"]
    for index in indexes:
        reachable = linked_targets(index)
        pages = sorted(index.parent.rglob("*.md"))
        for page in pages:
            if page.resolve() == index.resolve():
                continue
            if page.resolve() not in reachable:
                try:
                    rel = page.relative_to(REPO_ROOT)
                except ValueError:
                    rel = page
                errors.append(f"{rel}: not linked from {index.name} (orphan page)")
    return errors


def main(argv: list[str]) -> int:
    targets = argv[1:] or [str(REPO_ROOT / t) for t in DEFAULT_TARGETS]
    files: list[Path] = []
    for t in targets:
        p = Path(t)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.md")))
        elif p.exists():
            files.append(p)
    errors: list[str] = []
    for f in files:
        errors.extend(check_file(f))
    errors.extend(orphan_docs(files))
    if errors:
        print(f"broken links ({len(errors)}):")
        for e in errors:
            print(f"  {e}")
        return 1
    print(f"links OK: {len(files)} markdown files checked")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
