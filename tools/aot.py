#!/usr/bin/env python3
"""Install-time AOT prebuild of the serving kernel set.

Compiles the named Harris schedule ladder (naive, cbuf, cbuf+rot and the
strip-parallel forms — the paper's evaluation grid) for each requested
backend into a shared artifact store, then writes ``aot_manifest.json``
at the store root.  ``--zoo`` additionally prebuilds every pipeline in
the registry under every schedule that structurally applies to it (the
``zoo-<pipeline>-<schedule>`` kernel set).  Any serving process pointing at the same store
(``repro.serve.Server`` workers, ``$REPRO_CACHE_DIR`` users) warm-starts
those kernels from disk without running a single compiler phase.

Re-running over a warm store is cheap and idempotent; ``--verify-warm``
additionally *requires* the second-pass property (zero builds) and exits
non-zero if any kernel had to be built — the install-script check that a
deployment image really ships prebuilt.

Exit codes: 0 success, 1 --verify-warm found cold kernels,
2 usage errors.

Usage:  python tools/aot.py --cache-dir /var/cache/repro
                            [--backends python,c] [--chunk 4] [--vec 4]
                            [--zoo] [--verify-warm] [--json]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))


def main() -> int:
    """Prebuild the kernel set and write the manifest."""
    from repro.serve.aot import harris_kernel_requests, prebuild, zoo_kernel_requests

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--cache-dir",
        required=True,
        help="artifact-store root to prebuild into (shared with servers)",
    )
    parser.add_argument(
        "--backends",
        default="python",
        help="comma-separated backends to prebuild (default: %(default)s)",
    )
    parser.add_argument(
        "--chunk",
        type=int,
        default=None,
        help="row-chunk size of the schedule grid (default: the serving "
        "default, 4)",
    )
    parser.add_argument(
        "--vec",
        type=int,
        default=None,
        help="vector width of the schedule grid (default: the bench default)",
    )
    parser.add_argument(
        "--zoo",
        action="store_true",
        help="also prebuild the pipeline-zoo kernel set (every registered "
        "pipeline under its applicable schedules)",
    )
    parser.add_argument(
        "--verify-warm",
        action="store_true",
        help="fail (exit 1) if any kernel was actually built — asserts the "
        "store was already fully prebuilt",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the manifest on stdout"
    )
    args = parser.parse_args()

    backends = tuple(b.strip() for b in args.backends.split(",") if b.strip())
    if not backends:
        print("aot: --backends must name at least one backend", file=sys.stderr)
        return 2
    if args.backends and "c" in backends:
        from repro.exec.cbridge import have_c_compiler

        if not have_c_compiler():
            print("aot: backend 'c' needs a host C compiler", file=sys.stderr)
            return 2

    requests = harris_kernel_requests(
        backends=backends, chunk=args.chunk, vec=args.vec
    )
    if args.zoo:
        requests += zoo_kernel_requests(
            backends=backends, chunk=args.chunk, vec=args.vec
        )
    manifest = prebuild(args.cache_dir, requests=requests)
    built = [k for k in manifest["kernels"] if k["cache"] == "miss"]
    warm = len(manifest["kernels"]) - len(built)
    if args.json:
        print(json.dumps(manifest, indent=2))
    else:
        for kernel in manifest["kernels"]:
            print(
                f"  {kernel['kernel']:<28} {kernel['cache']:<10} "
                f"{kernel['compile_ms']:9.1f} ms  {kernel['key'][:12]}"
            )
        print(
            f"aot: {len(built)} built, {warm} already warm -> "
            f"{Path(args.cache_dir) / 'aot_manifest.json'}"
        )
    if args.verify_warm and built:
        print(
            f"aot: --verify-warm failed: {len(built)} kernel(s) were cold: "
            + ", ".join(k["kernel"] for k in built),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
