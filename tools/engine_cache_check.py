#!/usr/bin/env python3
"""CI guard for the compile cache: cold pass misses, warm pass hits.

Compiles the Harris ``cbuf`` pipeline through a :class:`repro.engine.Engine`
backed by an on-disk artifact store, runs it once on a synthetic image,
and checks the cache statistics against the expectation:

* ``--expect cold`` — a fresh store: every compile must be a miss;
* ``--expect warm`` — a pre-populated store (a previous ``cold`` run,
  typically in a *separate process*): at least one hit and zero misses,
  which proves structural hashes are stable across interpreter runs.

Exits non-zero (printing the offending statistics) when the expectation
is violated — in particular when a warm pass reports 0 hits.

Usage:  python tools/engine_cache_check.py --cache-dir .cache --expect cold
        python tools/engine_cache_check.py --cache-dir .cache --expect warm
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))


def main() -> int:
    """Run one compile+execute pass and validate the cache statistics."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--cache-dir", required=True, help="artifact-store root directory"
    )
    parser.add_argument(
        "--expect", choices=("cold", "warm"), required=True,
        help="cold: all misses (fresh store); warm: hits and no misses",
    )
    args = parser.parse_args()

    from repro.engine import Engine
    from repro.image import synthetic_rgb
    from repro.pipelines import harris, harris_input_type
    from repro.rise import Identifier
    from repro.strategies import cbuf_version

    senv = {"rgb": harris_input_type()}
    engine = Engine(cache_dir=args.cache_dir)
    start = time.perf_counter()
    pipeline = engine.compile(
        harris(Identifier("rgb")),
        strategy=cbuf_version(senv, chunk=4),
        type_env=senv,
        sizes={"n": 12, "m": 16},
        name="harris_cbuf",
    )
    compile_ms = (time.perf_counter() - start) * 1e3
    pipeline.run(rgb=synthetic_rgb(16, 20, seed=3))

    stats = engine.stats()
    print(f"cache pass [{args.expect}]: {pipeline.cache_status} "
          f"in {compile_ms:.1f} ms")
    print(json.dumps(stats, indent=2))

    if args.expect == "cold":
        ok = stats["misses"] > 0 and stats["hits"] == 0
        why = "expected a fresh store: misses > 0 and hits == 0"
    else:
        ok = stats["hits"] > 0 and stats["misses"] == 0
        why = "expected a warm store: hits > 0 and misses == 0"
    if not ok:
        print(f"FAIL: {why}", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
