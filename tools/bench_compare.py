#!/usr/bin/env python3
"""CI guard for benchmark regressions: compare against BENCH_trajectory.json.

Loads a trajectory produced by ``python -m repro.bench.harness run_report``
and checks the newest sample (or an explicit ``--candidate`` sample file)
against the best previously recorded value of every fig. 8 cell.  A cell
more than ``--threshold`` (relative, default 0.10 = 10%) slower than the
historical minimum is a regression; the tool prints the offending cells
and exits non-zero so CI fails.

Robustness: each sample already stores *min-of-k* runtimes, and the
baseline is the *minimum over history*, so a single slow machine or run
can neither fabricate a regression in the baseline nor hide one in the
candidate.

``--gate-slo`` additionally evaluates the serving SLOs (see
:mod:`repro.observe.slo`) against the newest trajectory sample that
embeds serve metrics and fails when any objective's error-budget burn
rate exceeds ``--slo-max-burn`` (default 1.0 = budget exhausted).

Exit codes: 0 no regressions (or not enough history to compare),
1 regressions or SLO burn violations found, 2 usage / malformed-input
errors.

Usage:  python tools/bench_compare.py [--trajectory BENCH_trajectory.json]
                                      [--threshold 0.10] [--candidate sample.json]
                                      [--gate-slo] [--slo-max-burn 1.0]
                                      [--json]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))


def main() -> int:
    """Compare the newest trajectory sample against its history."""
    from repro.bench.regress import (
        DEFAULT_THRESHOLD,
        DEFAULT_TRAJECTORY,
        compare_trajectory,
        format_regressions,
        load_trajectory,
    )

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--trajectory",
        default=DEFAULT_TRAJECTORY,
        help="trajectory ledger path (default: %(default)s)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="relative slowdown flagged as regression (default: %(default)s)",
    )
    parser.add_argument(
        "--candidate",
        default=None,
        help="JSON file holding one sample to compare against the whole "
        "trajectory (default: the trajectory's newest sample vs the rest)",
    )
    parser.add_argument(
        "--gate-wall",
        action="store_true",
        help="also gate measured wall| cells (informational by default: "
        "wall clocks on shared CI runners are noisy)",
    )
    parser.add_argument(
        "--gate-tuned",
        action="store_true",
        help="also gate autotuner tuned| cells (informational by default: "
        "a re-tuned search may land on a different discovered schedule)",
    )
    parser.add_argument(
        "--gate-serve",
        action="store_true",
        help="also gate serving-latency serve| cells (informational by "
        "default: loadtest percentiles are measured wall clocks)",
    )
    parser.add_argument(
        "--gate-slo",
        action="store_true",
        help="also gate serving SLO burn rates computed from the newest "
        "sample's embedded serve metrics (see repro.observe.slo)",
    )
    parser.add_argument(
        "--slo-max-burn",
        type=float,
        default=1.0,
        help="highest acceptable error-budget burn rate with --gate-slo "
        "(default: %(default)s = budget spent exactly at the objective rate)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON output"
    )
    args = parser.parse_args()

    trajectory_path = Path(args.trajectory)
    if not trajectory_path.is_file():
        print(f"bench_compare: no trajectory at {trajectory_path}", file=sys.stderr)
        return 2
    try:
        trajectory = load_trajectory(trajectory_path)
        candidate = None
        if args.candidate is not None:
            candidate = json.loads(Path(args.candidate).read_text(encoding="utf-8"))
            if "cells" not in candidate:
                raise ValueError(f"{args.candidate}: candidate sample has no cells")
    except (OSError, ValueError) as exc:
        print(f"bench_compare: {exc}", file=sys.stderr)
        return 2

    regressions, info = compare_trajectory(
        trajectory,
        candidate=candidate,
        threshold=args.threshold,
        gate_wall=args.gate_wall,
        gate_tuned=args.gate_tuned,
        gate_serve=args.gate_serve,
    )
    slo_violations: list[dict] = []
    slo_info: dict = {}
    if args.gate_slo:
        from repro.observe.slo import gate_slo

        slo_violations, slo_info = gate_slo(trajectory, max_burn=args.slo_max_burn)
    if args.json:
        doc = {"info": info, "regressions": [r.to_dict() for r in regressions]}
        if args.gate_slo:
            doc["slo"] = {"info": slo_info, "violations": slo_violations}
        print(json.dumps(doc, indent=2))
    else:
        print(format_regressions(regressions, info))
        if args.gate_slo:
            if slo_info.get("sample_sha") is None:
                print("slo gate: no serve metrics in the trajectory (skipped)")
            elif not slo_violations:
                print(
                    f"slo gate: all burn rates <= {args.slo_max_burn} "
                    f"(sample {slo_info['sample_sha']})"
                )
            for v in slo_violations:
                print(
                    f"slo gate: BURN VIOLATION {v['name']}: burn "
                    f"{v['burn_rate']:.3f} > {args.slo_max_burn} "
                    f"(error rate {v['error_rate']:.4f}, target {v['target']})",
                    file=sys.stderr,
                )
    return 1 if (regressions or slo_violations) else 0


if __name__ == "__main__":
    sys.exit(main())
