#!/usr/bin/env python3
"""Docstring-coverage check for the public API.

Walks the packages listed in CHECKED_PACKAGES and requires a docstring on
every public module, class, function and method (names not starting with
an underscore, plus ``__init__.py`` modules).  Exits non-zero listing the
offenders, so CI fails when new public API lands undocumented.

Usage:  python tools/check_docstrings.py [package-dir ...]
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Packages (directories, walked recursively) and single tool files whose
#: public API must be fully documented.
CHECKED_PACKAGES = (
    REPO_ROOT / "src" / "repro" / "observe",
    REPO_ROOT / "src" / "repro" / "elevate",
    REPO_ROOT / "src" / "repro" / "engine",
    REPO_ROOT / "src" / "repro" / "serve",
    REPO_ROOT / "src" / "repro" / "verify",
    REPO_ROOT / "src" / "repro" / "tune",
    REPO_ROOT / "tools" / "dashboard.py",
    REPO_ROOT / "tools" / "events.py",
    REPO_ROOT / "tools" / "bench_compare.py",
    REPO_ROOT / "tools" / "loadtest.py",
)


def is_public(name: str) -> bool:
    return not name.startswith("_")


def display_path(path: Path) -> Path:
    """Repo-relative when possible, absolute otherwise."""
    try:
        return path.relative_to(REPO_ROOT)
    except ValueError:
        return path


def missing_docstrings(path: Path) -> list[str]:
    """Return ``file:line: name`` entries for undocumented public defs."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    rel = display_path(path)
    missing: list[str] = []
    if ast.get_docstring(tree) is None:
        missing.append(f"{rel}:1: module")

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                qualname = f"{prefix}{child.name}"
                if is_public(child.name) and ast.get_docstring(child) is None:
                    missing.append(f"{rel}:{child.lineno}: {qualname}")
                # only descend into classes: nested functions are private
                if isinstance(child, ast.ClassDef):
                    visit(child, f"{qualname}.")

    visit(tree, "")
    return missing


def main(argv: list[str]) -> int:
    roots = [Path(a) for a in argv[1:]] or list(CHECKED_PACKAGES)
    offenders: list[str] = []
    files = 0
    for root in roots:
        paths = [root] if root.is_file() else sorted(root.rglob("*.py"))
        for path in paths:
            files += 1
            offenders.extend(missing_docstrings(path))
    if offenders:
        print(f"missing docstrings ({len(offenders)}):")
        for line in offenders:
            print(f"  {line}")
        return 1
    print(f"docstring coverage OK: {files} files, all public defs documented")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
