#!/usr/bin/env python3
"""Render a static HTML serving dashboard from the JSON telemetry files.

Zero dependencies, zero network: the input is ``BENCH_trajectory.json``
(plus, optionally, a metrics snapshot JSON) and the output is one
self-contained HTML file — inline CSS, inline SVG sparklines, no
scripts, no external fonts — suitable for publishing as a CI artifact
and opening offline.

Sections rendered:

* **SLO budgets** — every objective of :mod:`repro.observe.slo`
  evaluated against the serve metrics, with error-budget burn bars;
* **Serving percentiles** — the ``serve|`` cells of the newest loadtest
  sample (cold-JIT vs warm-compile vs AOT-warm-run families);
* **Cache behaviour** — hit/miss/coalesce/eviction counters and derived
  rates from the metrics snapshot;
* **Trajectory ledger** — per-cell history sparklines (min over history
  vs newest) for the modeled, measured, tuned and serving cells.

The metrics snapshot defaults to the newest trajectory sample that
embeds one; ``--metrics FILE`` points at an explicit snapshot JSON
(e.g. the one a future exporter writes).  Malformed inputs fail loudly
(exit 2) — CI uses that as the schema check.

Exit codes: 0 rendered, 2 usage / malformed-input errors.

Usage:  python tools/dashboard.py [--trajectory BENCH_trajectory.json]
                                  [--metrics snapshot.json]
                                  [--out dashboard.html] [--title TITLE]
"""

from __future__ import annotations

import argparse
import html
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))


# -- tiny HTML helpers -------------------------------------------------------


def _esc(value) -> str:
    """HTML-escape one value."""
    return html.escape(str(value))


def _sparkline(values: list[float], width: int = 120, height: int = 24) -> str:
    """An inline SVG sparkline of a value series (empty string if < 2)."""
    if len(values) < 2:
        return ""
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    step = width / (len(values) - 1)
    points = " ".join(
        f"{round(i * step, 1)},{round(height - 2 - (v - lo) / span * (height - 4), 1)}"
        for i, v in enumerate(values)
    )
    last_x = round((len(values) - 1) * step, 1)
    last_y = round(height - 2 - (values[-1] - lo) / span * (height - 4), 1)
    return (
        f'<svg class="spark" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}">'
        f'<polyline fill="none" stroke="#4c78a8" stroke-width="1.5" '
        f'points="{points}"/>'
        f'<circle cx="{last_x}" cy="{last_y}" r="2.2" fill="#e45756"/>'
        "</svg>"
    )


def _burn_bar(burn: float, width: int = 160) -> str:
    """A budget bar: green under burn 1, red beyond."""
    frac = max(0.0, min(burn, 2.0)) / 2.0
    color = "#59a14f" if burn <= 1.0 else "#e45756"
    return (
        f'<div class="bar" style="width:{width}px">'
        f'<div class="fill" style="width:{round(frac * width)}px;'
        f'background:{color}"></div>'
        f'<div class="mark" style="left:{width // 2}px"></div>'
        "</div>"
    )


def _table(headers: list[str], rows: list[list[str]]) -> str:
    """A plain HTML table from pre-escaped cell fragments."""
    head = "".join(f"<th>{h}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{cell}</td>" for cell in row) + "</tr>"
        for row in rows
    )
    return f"<table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"


_CSS = """
body { font: 14px/1.5 -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 70rem; padding: 0 1rem; color: #1a1a2e; }
h1 { font-size: 1.5rem; border-bottom: 2px solid #4c78a8; padding-bottom: .3rem; }
h2 { font-size: 1.15rem; margin-top: 2rem; }
table { border-collapse: collapse; width: 100%; margin: .8rem 0; }
th, td { text-align: left; padding: .3rem .6rem; border-bottom: 1px solid #e2e2ea;
         font-variant-numeric: tabular-nums; vertical-align: middle; }
th { background: #f4f4f8; font-weight: 600; }
code { background: #f4f4f8; padding: .05rem .3rem; border-radius: 3px; }
.meta { color: #6b6b7b; font-size: .85rem; }
.ok { color: #59a14f; font-weight: 600; } .bad { color: #e45756; font-weight: 600; }
.bar { position: relative; height: 12px; background: #eceff4;
       border-radius: 6px; display: inline-block; vertical-align: middle; }
.fill { height: 12px; border-radius: 6px; }
.mark { position: absolute; top: -2px; width: 2px; height: 16px; background: #1a1a2e; }
.spark { vertical-align: middle; }
"""


# -- section renderers -------------------------------------------------------


def render_slo_section(snapshot: dict) -> str:
    """The SLO budget table for one metrics snapshot."""
    from repro.observe.slo import evaluate_slo

    evaluation = evaluate_slo(snapshot)
    rows = []
    for obj in evaluation["objectives"]:
        status = (
            '<span class="ok">within budget</span>'
            if obj["burn_rate"] <= 1.0
            else '<span class="bad">budget exhausted</span>'
        )
        threshold = (
            f"&lt; {obj['threshold_ms'] / 1e3:g}s" if obj["threshold_ms"] else "—"
        )
        rows.append(
            [
                f"<b>{_esc(obj['name'])}</b><br>"
                f'<span class="meta">{_esc(obj["description"])}</span>',
                _esc(obj["kind"]),
                f"{obj['target']:.2%}",
                threshold,
                f"{int(obj['total'])}",
                f"{obj['error_rate']:.4f}",
                f"{obj['burn_rate']:.3f} {_burn_bar(obj['burn_rate'])}",
                status,
            ]
        )
    return "<h2>SLO budgets</h2>" + _table(
        ["objective", "kind", "target", "threshold", "events", "error rate",
         "burn rate (mark = 1.0)", "status"],
        rows,
    )


def render_serve_section(samples: list[dict]) -> str:
    """Serving percentile cells from the newest serve-bearing sample."""
    for sample in reversed(samples):
        serve_cells = {
            cell: ms
            for cell, ms in (sample.get("cells") or {}).items()
            if cell.startswith("serve|")
        }
        if serve_cells:
            rows = [
                [f"<code>{_esc(cell)}</code>", f"{float(ms):,.3f}"]
                for cell, ms in sorted(serve_cells.items())
            ]
            note = (
                f'<p class="meta">newest loadtest sample '
                f"(git <code>{_esc(sample.get('git_sha', 'unknown'))}</code>)</p>"
            )
            return (
                "<h2>Serving percentiles</h2>"
                + note
                + _table(["cell", "latency (ms)"], rows)
            )
    return "<h2>Serving percentiles</h2><p class='meta'>no serve| cells recorded</p>"


def render_cache_section(snapshot: dict) -> str:
    """Cache hit/coalesce/eviction counters and derived rates."""
    from repro.observe.slo import counter_total

    hits_mem = counter_total(snapshot, "engine.cache.hits", tier="memory")
    hits_disk = counter_total(snapshot, "engine.cache.hits", tier="disk")
    misses = counter_total(snapshot, "engine.cache.misses")
    coalesced = counter_total(snapshot, "engine.compile.coalesced")
    evict_mem = counter_total(snapshot, "engine.cache.evictions", tier="memory")
    evict_disk = counter_total(snapshot, "engine.cache.evictions", tier="disk")
    stores = counter_total(snapshot, "engine.cache.stores")
    lookups = hits_mem + hits_disk + misses
    compiles = lookups + coalesced
    rows = [
        ["cache hits (memory / disk)", f"{int(hits_mem)} / {int(hits_disk)}"],
        ["cache misses", f"{int(misses)}"],
        ["hit rate", f"{(hits_mem + hits_disk) / lookups:.2%}" if lookups else "—"],
        ["coalesced followers", f"{int(coalesced)}"],
        ["coalesce rate", f"{coalesced / compiles:.2%}" if compiles else "—"],
        ["stores", f"{int(stores)}"],
        ["evictions (memory / disk)", f"{int(evict_mem)} / {int(evict_disk)}"],
    ]
    return "<h2>Cache behaviour</h2>" + _table(
        ["metric", "value"], [[_esc(k), v] for k, v in rows]
    )


def render_trajectory_section(samples: list[dict]) -> str:
    """Per-cell history sparklines over the whole ledger."""
    history: dict[str, list[float]] = {}
    for sample in samples:
        for cell, ms in (sample.get("cells") or {}).items():
            history.setdefault(cell, []).append(float(ms))
    rows = []
    for cell in sorted(history):
        values = history[cell]
        newest, best = values[-1], min(values)
        ratio = newest / best if best > 0 else float("inf")
        flag = "" if ratio <= 1.10 else ' class="bad"'
        rows.append(
            [
                f"<code>{_esc(cell)}</code>",
                f"{len(values)}",
                f"{best:,.4f}",
                f"<span{flag}>{newest:,.4f}</span>",
                f"<span{flag}>{ratio:.2f}×</span>",
                _sparkline(values),
            ]
        )
    return (
        "<h2>Trajectory ledger</h2>"
        '<p class="meta">min over history vs newest; red = newest &gt; 110% '
        "of the best (the bench_compare gate threshold)</p>"
        + _table(["cell", "samples", "best (ms)", "newest (ms)", "ratio", "history"],
                 rows)
    )


def render_dashboard(trajectory: dict, snapshot: dict, title: str) -> str:
    """The full self-contained HTML document."""
    samples = list(trajectory.get("samples", []))
    newest_sha = samples[-1].get("git_sha", "unknown") if samples else "none"
    stamp = time.strftime("%Y-%m-%d %H:%M:%S UTC", time.gmtime())
    header = (
        f"<h1>{_esc(title)}</h1>"
        f'<p class="meta">{len(samples)} trajectory sample(s), newest git '
        f"<code>{_esc(newest_sha)}</code> · generated {stamp} · "
        f"schema <code>{_esc(trajectory.get('schema', '?'))}</code></p>"
    )
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        f"<title>{_esc(title)}</title><style>{_CSS}</style></head><body>"
        + header
        + render_slo_section(snapshot)
        + render_serve_section(samples)
        + render_cache_section(snapshot)
        + render_trajectory_section(samples)
        + "</body></html>"
    )


def newest_metrics(samples: list[dict]) -> dict:
    """The newest sample's embedded metrics snapshot (``{}`` when none)."""
    for sample in reversed(samples):
        metrics = sample.get("metrics")
        if metrics:
            return metrics
    return {}


def main() -> int:
    """Load inputs, render, write the HTML artifact."""
    from repro.bench.regress import DEFAULT_TRAJECTORY, load_trajectory

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--trajectory",
        default=DEFAULT_TRAJECTORY,
        help="trajectory ledger path (default: %(default)s)",
    )
    parser.add_argument(
        "--metrics",
        default=None,
        help="metrics snapshot JSON (default: the newest trajectory "
        "sample's embedded snapshot)",
    )
    parser.add_argument(
        "--out", default="dashboard.html", help="output HTML path (default: %(default)s)"
    )
    parser.add_argument(
        "--title", default="repro serving dashboard", help="page title"
    )
    args = parser.parse_args()

    trajectory_path = Path(args.trajectory)
    if not trajectory_path.is_file():
        print(f"dashboard: no trajectory at {trajectory_path}", file=sys.stderr)
        return 2
    try:
        trajectory = load_trajectory(trajectory_path)
        if args.metrics is not None:
            snapshot = json.loads(Path(args.metrics).read_text(encoding="utf-8"))
            if not isinstance(snapshot, dict):
                raise ValueError(f"{args.metrics}: snapshot must be a JSON object")
        else:
            snapshot = newest_metrics(trajectory.get("samples", []))
    except (OSError, ValueError) as exc:
        print(f"dashboard: {exc}", file=sys.stderr)
        return 2

    out = Path(args.out)
    out.write_text(render_dashboard(trajectory, snapshot, args.title), encoding="utf-8")
    print(f"dashboard: wrote {out} ({out.stat().st_size} bytes)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
