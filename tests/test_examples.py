"""Every example script must run to completion (they assert internally)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(name: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart():
    out = _run("quickstart.py")
    assert "dotSeq" in out
    assert "168.0" in out


def test_harris_pipeline():
    out = _run("harris_pipeline.py")
    assert "PSNR" in out
    assert "modeled runtime" in out


def test_extending_the_compiler():
    out = _run("extending_the_compiler.py")
    assert "matches the numpy reference" in out
    assert "dropUnitMultiply" in out


@pytest.mark.slow
def test_evaluation_figures(tmp_path):
    out = _run("evaluation_figures.py")
    assert "Fig. 8" in out
    assert "Section V-B claims" in out
