"""Backwards-compatible shim over :mod:`tests.support`.

The helpers were promoted into the ``tests/support`` package (and their
flatten/compare core into :mod:`repro.verify.oracle`); importing from
``tests.helpers`` keeps working for existing tests.
"""

from __future__ import annotations

from tests.support import (  # noqa: F401 (re-exports)
    apply_ok,
    assert_semantics_preserved,
    assert_values_close,
    flatten_value,
    values_close,
)

__all__ = [
    "flatten_value",
    "values_close",
    "assert_values_close",
    "apply_ok",
    "assert_semantics_preserved",
]
