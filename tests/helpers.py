"""Shared helpers for the test suite: semantic-equivalence checking.

``assert_semantics_preserved`` is the test-side analogue of the paper's
PSNR validation: a rewrite is correct iff interpreting the program before
and after on the same inputs gives (numerically) the same outputs.
"""

from __future__ import annotations

import numpy as np

from repro.elevate.core import Strategy, Success
from repro.rise.expr import Expr
from repro.rise.interpreter import evaluate, from_numpy
from repro.rise.typecheck import infer_types


def flatten_value(value) -> list[float]:
    """Flatten an interpreter value (nested lists/tuples/vectors) to floats."""
    out: list[float] = []

    def go(v) -> None:
        if isinstance(v, list) or isinstance(v, np.ndarray):
            for x in v:
                go(x)
        elif isinstance(v, tuple):
            for x in v:
                go(x)
        else:
            out.append(float(v))

    go(value)
    return out


def assert_values_close(a, b, rtol: float = 1e-5, atol: float = 1e-6) -> None:
    fa, fb = flatten_value(a), flatten_value(b)
    assert len(fa) == len(fb), f"shape mismatch: {len(fa)} vs {len(fb)} elements"
    np.testing.assert_allclose(fa, fb, rtol=rtol, atol=atol)


def apply_ok(strategy: Strategy, expr: Expr) -> Expr:
    """Apply a strategy, asserting success."""
    result = strategy(expr)
    assert isinstance(result, Success), f"{strategy.name} failed on {expr!r}"
    return result.expr


def assert_semantics_preserved(
    strategy: Strategy,
    expr: Expr,
    env_values: dict,
    type_env: dict | None = None,
    rtol: float = 1e-5,
) -> Expr:
    """Apply ``strategy`` to ``expr`` and check both type- and value-level
    equivalence under the given environment.  Returns the rewritten expr."""
    rewritten = apply_ok(strategy, expr)
    if type_env is not None:
        before = infer_types(expr, type_env).root_type
        after = infer_types(rewritten, type_env).root_type
        assert before == after, f"type changed: {before!r} -> {after!r}"
    value_env = {
        name: from_numpy(v) if isinstance(v, np.ndarray) else v
        for name, v in env_values.items()
    }
    before_value = evaluate(expr, value_env)
    after_value = evaluate(rewritten, value_env)
    assert_values_close(before_value, after_value, rtol=rtol)
    return rewritten
