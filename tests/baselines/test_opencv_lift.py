"""Tests for the OpenCV-library and LIFT per-operator baselines."""

import numpy as np
import pytest

import repro
from repro.image import synthetic_rgb, reference
from repro.lift import compile_pipeline_per_operator


@pytest.fixture(scope="module")
def image():
    img = synthetic_rgb(16, 20)
    return img, reference.harris(img)


class TestOpenCV:
    @pytest.fixture(scope="class")
    def prog(self):
        return repro.compile("harris-opencv").program

    def test_correct(self, prog, image):
        img, ref = image
        hwc = np.ascontiguousarray(img.transpose(1, 2, 0))
        out = repro.compile("harris-opencv", sizes={"n": 12, "m": 16}).run(rgb_hwc=hwc)
        np.testing.assert_allclose(out.reshape(12, 16), ref, rtol=1e-3, atol=1e-4)

    def test_one_kernel_per_library_call(self, prog):
        names = [f.name for f in prog.functions]
        assert names == [
            "cv_cvtColor",
            "cv_makeBorder_gray",
            "cv_sobel_dx",
            "cv_sobel_dy",
            "cv_cov",
            "cv_makeBorder_cov",
            "cv_boxFilter",
            "cv_cornerResponse",
        ]
        assert prog.launch_overheads == len(names)

    def test_single_threaded(self, prog):
        from repro.codegen.ir import For, LoopKind, walk_stmts

        for fn in prog.functions:
            kinds = [s.kind for s in walk_stmts(fn.body) if isinstance(s, For)]
            assert LoopKind.PARALLEL not in kinds, fn.name

    def test_interleaved_input_layout(self, prog):
        # channel-interleaved loads: index arithmetic multiplies by 3
        from repro.exec import program_to_python
        from repro.codegen.sizes import resolve_sizes

        src = program_to_python(prog, resolve_sizes(prog, {"n": 12, "m": 16}))
        assert "* 3)" in src


class TestLift:
    @pytest.fixture(scope="class")
    def prog(self):
        return repro.compile("harris-lift").program

    def test_correct(self, prog, image):
        img, ref = image
        out = repro.compile("harris-lift", sizes={"n": 12, "m": 16}).run(rgb=img)
        np.testing.assert_allclose(out.reshape(12, 16), ref, rtol=1e-3, atol=1e-4)

    def test_one_kernel_per_operator(self, prog):
        # listing 3 has 9 defs + the final coarsity = 10 kernels
        assert len(prog.functions) == 10
        assert prog.launch_overheads == 10

    def test_kernels_parallel_and_vectorized(self, prog):
        from repro.codegen.ir import For, LoopKind, walk_stmts

        for fn in prog.functions:
            kinds = [s.kind for s in walk_stmts(fn.body) if isinstance(s, For)]
            assert LoopKind.PARALLEL in kinds, fn.name

    def test_generic_pipeline_compiler(self, image):
        """compile_pipeline_per_operator works for other Let pipelines too."""
        from repro.pipelines import sobel_magnitude
        from repro.pipelines.harris import harris_input_type
        from repro.rise import Identifier
        from repro.rise.types import array2d, f32
        from repro.nat import nat

        img2d = synthetic_rgb(12, 14)[0]
        prog = compile_pipeline_per_operator(
            sobel_magnitude(Identifier("img")),
            {"img": array2d(nat("n") + 4, nat("m") + 4, f32)},
            name="sobelmag",
        )
        # sobel_magnitude applies one 3x3 stage: output is [n+2][m+2]
        out = repro.compile(prog, sizes={"n": 8, "m": 10}).run(img=img2d)
        expected = reference.sobel_x(img2d) ** 2 + reference.sobel_y(img2d) ** 2
        np.testing.assert_allclose(
            out.reshape(expected.shape), expected, rtol=1e-3, atol=1e-4
        )
