"""Unit and property tests for symbolic natural-number arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.nat import Nat, NatVar, ceil_div, nat, round_up
from repro.nat.core import NatEvalError


class TestConstruction:
    def test_int(self):
        assert nat(5).constant_value() == 5

    def test_zero(self):
        assert nat(0).is_zero()

    def test_var(self):
        assert nat("n").free_vars() == {"n"}

    def test_atom(self):
        assert nat(NatVar("k")) == nat("k")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            nat(True)

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            nat(1.5)


class TestArithmetic:
    def test_add_sub_cancel(self):
        n = nat("n")
        assert (n + 4) - 4 == n

    def test_sub_self_is_zero(self):
        n = nat("n")
        assert (n - n).is_zero()

    def test_distribution(self):
        n, m = nat("n"), nat("m")
        assert (n + 1) * (m + 2) == n * m + 2 * n + m + 2

    def test_binomial(self):
        n = nat("n")
        assert (n + 1) * (n - 1) == n * n - 1

    def test_int_on_left(self):
        n = nat("n")
        assert 3 + n == n + 3
        assert 3 * n == n * 3
        assert 10 - n == (n - 10) * -1

    def test_slide_size_algebra(self):
        """The size algebra used by the slide type: sp*n + sz - sp."""
        n = nat("n")
        sz, sp = nat(3), nat(1)
        assert sp * n + sz - sp == n + 2


class TestDivision:
    def test_exact_constant(self):
        assert nat(12) // 4 == nat(3)

    def test_exact_symbolic(self):
        n = nat("n")
        assert (4 * n + 8) // 4 == n + 2

    def test_exact_monomial(self):
        n, m = nat("n"), nat("m")
        assert (n * m * 6) // (m * 2) == 3 * n

    def test_inexact_constant_floor(self):
        assert nat(13) // 4 == nat(3)

    def test_inexact_symbolic_is_opaque(self):
        n = nat("n")
        e = (n + 1) // 2
        assert e.evaluate({"n": 5}) == 3
        assert e.evaluate({"n": 6}) == 3

    def test_mod_exact_is_zero(self):
        n = nat("n")
        assert (4 * n) % 4 == nat(0)

    def test_mod_constants(self):
        assert nat(13) % 4 == nat(1)

    def test_mod_symbolic_evaluates(self):
        n = nat("n")
        assert ((n + 1) % 3).evaluate({"n": 8}) == 0

    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            nat("n") // 0

    def test_ceil_div(self):
        assert ceil_div(13, 4) == nat(4)
        assert ceil_div(nat("n") * 4, 4) == nat("n")
        assert ceil_div(nat("n"), 4).evaluate({"n": 9}) == 3

    def test_round_up(self):
        assert round_up(13, 4) == nat(16)
        assert round_up(nat("n") * 4, 4) == nat("n") * 4
        assert round_up(nat("n"), 4).evaluate({"n": 9}) == 12


class TestSubstitutionEvaluation:
    def test_substitute(self):
        n, m = nat("n"), nat("m")
        assert (n * m + 1).substitute({"n": nat(3)}) == 3 * m + 1

    def test_substitute_with_expression(self):
        n = nat("n")
        assert (n * n).substitute({"n": nat("k") + 1}) == (nat("k") + 1) * (nat("k") + 1)

    def test_substitute_inside_opaque_div(self):
        n = nat("n")
        e = (n + 1) // 2
        assert e.substitute({"n": nat(5)}) == nat(3)

    def test_evaluate_unbound_raises(self):
        with pytest.raises(NatEvalError):
            nat("n").evaluate({})

    def test_evaluate_negative_raises(self):
        with pytest.raises(NatEvalError):
            (nat("n") - 5).evaluate({"n": 2})


class TestSolving:
    def test_simple(self):
        n = nat("n")
        assert (n + 2).solve_for("n", nat(34)) == nat(32)

    def test_with_coefficient(self):
        n = nat("n")
        assert (2 * n + 2).solve_for("n", nat(10)) == nat(4)

    def test_symbolic_rhs(self):
        n, k = nat("n"), nat("k")
        assert (n + 2).solve_for("n", k + 4) == k + 2

    def test_inexact_coefficient(self):
        n = nat("n")
        assert (2 * n).solve_for("n", nat(7)) is None

    def test_nonlinear(self):
        n = nat("n")
        assert (n * n).solve_for("n", nat(9)) is None

    def test_var_on_both_sides(self):
        n = nat("n")
        assert (n + 1).solve_for("n", n * 2) is None

    def test_two_vars(self):
        n, m = nat("n"), nat("m")
        solution = (n + m).solve_for("m", nat(10))
        assert solution == 10 - n


@st.composite
def nat_exprs(draw, depth=3):
    if depth == 0:
        choice = draw(st.integers(0, 2))
        if choice == 0:
            return nat(draw(st.integers(0, 20)))
        return nat(draw(st.sampled_from(["n", "m", "k"])))
    a = draw(nat_exprs(depth=depth - 1))
    b = draw(nat_exprs(depth=depth - 1))
    op = draw(st.sampled_from(["add", "sub", "mul", "div", "mod"]))
    if op == "add":
        return a + b
    if op == "sub":
        return a - b
    if op == "mul":
        return a * b
    if op == "div":
        return a // b if not b.is_zero() else a
    return a % b if not b.is_zero() else a


ENV = st.fixed_dictionaries(
    {"n": st.integers(1, 50), "m": st.integers(1, 50), "k": st.integers(1, 50)}
)


class TestProperties:
    @given(nat_exprs(), nat_exprs(), ENV)
    def test_addition_models_integers(self, a, b, env):
        try:
            va, vb = a.evaluate(env), b.evaluate(env)
            vsum = (a + b).evaluate(env)
        except NatEvalError:
            return
        assert vsum == va + vb

    @given(nat_exprs(), nat_exprs(), ENV)
    def test_multiplication_models_integers(self, a, b, env):
        try:
            va, vb = a.evaluate(env), b.evaluate(env)
            vmul = (a * b).evaluate(env)
        except NatEvalError:
            return
        assert vmul == va * vb

    @given(nat_exprs(), ENV)
    def test_substitution_commutes_with_evaluation(self, a, env):
        try:
            direct = a.evaluate(env)
        except NatEvalError:
            return
        substituted = a.substitute({k: nat(v) for k, v in env.items()})
        assert substituted.evaluate({}) == direct

    @given(nat_exprs(), nat_exprs())
    def test_addition_commutes_structurally(self, a, b):
        assert a + b == b + a

    @given(nat_exprs(), nat_exprs(), nat_exprs())
    def test_multiplication_distributes_structurally(self, a, b, c):
        assert a * (b + c) == a * b + a * c

    @given(nat_exprs())
    def test_equality_is_hash_consistent(self, a):
        b = a + 0
        assert a == b
        assert hash(a) == hash(b)
