"""End-to-end schedule tests: every schedule takes listing 3 to a correct
low-level program (interpreter AND generated code agree with the numpy
reference — the repository's PSNR-style validation)."""

import numpy as np
import pytest

import repro
from repro.codegen import compile_program
from repro.image import synthetic_rgb, reference
from repro.pipelines import harris, harris_input_type
from repro.rise import Identifier, evaluate, from_numpy, to_numpy
from repro.rise.traverse import subterms
from repro.strategies import cbuf_rrot_version, cbuf_version, naive_version

SENV = {"rgb": harris_input_type()}


@pytest.fixture(scope="module")
def small_image():
    img = synthetic_rgb(16, 20)
    return img, reference.harris(img)


def _schedules():
    return {
        "naive": naive_version(),
        "cbuf": cbuf_version(SENV, chunk=4, vec=4),
        "cbuf+rot": cbuf_rrot_version(SENV, chunk=4, vec=4),
    }


@pytest.fixture(scope="module")
def lowered():
    rgb = Identifier("rgb")
    return {name: s.apply(harris(rgb)) for name, s in _schedules().items()}


class TestScheduleSemantics:
    @pytest.mark.parametrize("name", ["naive", "cbuf", "cbuf+rot"])
    def test_interpreter_matches_reference(self, lowered, small_image, name):
        img, ref = small_image
        out = to_numpy(evaluate(lowered[name], {"rgb": from_numpy(img)}))
        np.testing.assert_allclose(out, ref, rtol=1e-3, atol=1e-4)

    @pytest.mark.parametrize("name", ["naive", "cbuf", "cbuf+rot"])
    def test_compiled_code_matches_reference(self, lowered, small_image, name):
        img, ref = small_image
        prog = compile_program(lowered[name], SENV, "k")
        out = repro.compile(prog, sizes={"n": 12, "m": 16}).run(rgb=img)
        np.testing.assert_allclose(out.reshape(12, 16), ref, rtol=1e-3, atol=1e-4)


class TestScheduleStructure:
    def test_cbuf_patterns(self, lowered):
        from repro.rise.expr import CircularBuffer, MapGlobal, MapSeqVec

        kinds = [type(n).__name__ for n in subterms(lowered["cbuf"])]
        assert kinds.count("CircularBuffer") == 2
        assert kinds.count("MapGlobal") == 1
        assert kinds.count("MapSeqVec") >= 3
        assert kinds.count("RotateValues") == 0

    def test_rot_patterns(self, lowered):
        kinds = [type(n).__name__ for n in subterms(lowered["cbuf+rot"])]
        assert kinds.count("CircularBuffer") == 2
        assert kinds.count("RotateValues") >= 2  # sobel + sums

    def test_naive_is_sequential(self, lowered):
        kinds = set(type(n).__name__ for n in subterms(lowered["naive"]))
        assert "MapGlobal" not in kinds
        assert "CircularBuffer" not in kinds

    def test_no_high_level_patterns_remain(self, lowered):
        """Low-level programs contain no bare map/reduce (every
        implementation decision is explicit, paper section II-B)."""
        from repro.rise.expr import Map, Reduce

        for name in ("cbuf", "cbuf+rot"):
            bare_maps = [n for n in subterms(lowered[name]) if type(n) is Map]
            bare_reduces = [n for n in subterms(lowered[name]) if type(n) is Reduce]
            assert not bare_maps, name
            assert not bare_reduces, name

    def test_apply_traced_records_steps(self):
        sched = cbuf_version(SENV, chunk=4, vec=4)
        trace = sched.apply_traced(harris(Identifier("rgb")))
        assert trace[0][0] == "input"
        assert len(trace) == len(sched.steps) + 1
        names = [t[0] for t in trace[1:]]
        assert "fuseOperators" in names
        assert any("splitPipeline" in n for n in names)


class TestChunkSizes:
    @pytest.mark.parametrize("chunk", [2, 4, 8])
    def test_other_chunk_sizes_work(self, small_image, chunk):
        img, ref = small_image
        rows = ref.shape[0]
        if rows % chunk:
            pytest.skip("size not aligned")
        sched = cbuf_version(SENV, chunk=chunk, vec=4)
        low = sched.apply(harris(Identifier("rgb")))
        prog = compile_program(low, SENV, "k")
        out = repro.compile(prog, sizes={"n": rows, "m": ref.shape[1]}).run(rgb=img)
        np.testing.assert_allclose(out.reshape(ref.shape), ref, rtol=1e-3, atol=1e-4)

    def test_vector_width_two(self, small_image):
        img, ref = small_image
        sched = cbuf_version(SENV, chunk=4, vec=2)
        low = sched.apply(harris(Identifier("rgb")))
        prog = compile_program(low, SENV, "k")
        out = repro.compile(prog, sizes={"n": 12, "m": 16}).run(rgb=img)
        np.testing.assert_allclose(out.reshape(12, 16), ref, rtol=1e-3, atol=1e-4)
