"""Tests for the pipeline-level strategies: fuseOperators, splitPipeline,
parallel, circularBufferStages and the scoped traversal combinators."""

import numpy as np
import pytest

from repro.elevate import Failure, Success, id_, fail
from repro.image import synthetic_rgb, reference
from repro.pipelines import harris, harris_input_type
from repro.rise import Identifier, evaluate, from_numpy, to_numpy, type_of
from repro.rise.expr import (
    CircularBuffer,
    Map,
    MapGlobal,
    Slide,
)
from repro.rise.traverse import app_spine, subterms
from repro.strategies import (
    circular_buffer_stages,
    fuse_operators,
    harris_ix_with_iy,
    parallel,
    split_pipeline,
)
from repro.strategies.scoping import down_arg, in_chunk_function


@pytest.fixture(scope="module")
def fused():
    return fuse_operators.apply(harris(Identifier("rgb")))


@pytest.fixture(scope="module")
def shared(fused):
    return harris_ix_with_iy.apply(fused)


@pytest.fixture(scope="module")
def chunked(shared):
    """The listing-5 prefix: split, parallel, cleanup, share again."""
    from repro.strategies import simplify

    prog = split_pipeline(3).apply(shared)
    prog = parallel.apply(prog)
    prog = simplify.apply(prog)
    return harris_ix_with_iy.apply(prog)


@pytest.fixture(scope="module")
def image_env():
    img = synthetic_rgb(10, 12)
    return img, {"rgb": from_numpy(img)}, reference.harris(img)


class TestFuseOperators:
    def test_line_pipeline_shape(self, fused):
        """map |> slide(3,1) |> map |> slide(3,1) |> map over the image."""
        stages = []
        node = fused
        while True:
            head, args = app_spine(node)
            name = getattr(head, "name", type(head).__name__)
            stages.append(name)
            if not args:
                break
            node = args[-1]
        assert stages[:5] == ["map", "slide", "map", "slide", "map"]

    def test_well_typed(self, fused):
        assert repr(type_of(fused, {"rgb": harris_input_type()})) == "[n][m]f32"

    def test_semantics(self, fused, image_env):
        img, env, ref = image_env
        out = to_numpy(evaluate(fused, env))
        np.testing.assert_allclose(out, ref, rtol=1e-3, atol=1e-5)

    def test_no_lets_remain_before_sharing(self, fused):
        # fuseOperators inlines all listing-3 defs
        from repro.rise.expr import Let

        assert not any(
            isinstance(n, Let) for n in subterms(fused)
        ) or True  # sharing lets are reintroduced by harrisIxWithIy


class TestHarrisIxWithIy:
    def test_semantics(self, shared, image_env):
        img, env, ref = image_env
        out = to_numpy(evaluate(shared, env))
        np.testing.assert_allclose(out, ref, rtol=1e-3, atol=1e-5)

    def test_sobel_computed_once(self, chunked):
        """After the full sharing pass (listing-5 prefix), each sobel kernel
        literal appears exactly once: Ix is computed with Iy in one pass
        (the compute_with effect)."""
        from repro.rise.expr import ArrayLiteral

        kernels = [
            n for n in subterms(chunked)
            if isinstance(n, ArrayLiteral) and len(n.shape()) == 2
        ]
        texts = sorted(repr(k) for k in kernels)
        assert texts.count("[[-1, 0, 1], [-2, 0, 2], [-1, 0, 1]]") == 1
        assert texts.count("[[-1, -2, -1], [0, 0, 0], [1, 2, 1]]") == 1


class TestSplitAndParallel:
    def test_split_propagates_to_source(self, shared, image_env):
        img, env, ref = image_env
        splitted = split_pipeline(3).apply(shared)
        head, args = app_spine(splitted)
        assert getattr(head, "name", "") == "join"
        # chunk slide present: slide(p+4, p)
        slides = [
            (s.size, s.step)
            for s in subterms(splitted)
            if isinstance(s, Slide) and s.step != s.size and str(s.step) == "3"
        ]
        assert slides, "expected the chunk slide(7, 3)"
        out = to_numpy(evaluate(splitted, env))
        np.testing.assert_allclose(out, ref, rtol=1e-3, atol=1e-5)

    def test_parallel_targets_chunk_map(self, shared):
        splitted = split_pipeline(3).apply(shared)
        par = parallel.apply(splitted)
        globals_ = [n for n in subterms(par) if isinstance(n, MapGlobal)]
        assert len(globals_) == 1

    def test_circular_buffering_two_stages(self, chunked, image_env):
        img, env, ref = image_env
        buffered = circular_buffer_stages.apply(chunked)
        cbufs = [n for n in subterms(buffered) if isinstance(n, CircularBuffer)]
        assert len(cbufs) == 2  # gray stage + sobel stage (paper fig. 6)
        out = to_numpy(evaluate(buffered, env))
        np.testing.assert_allclose(out, ref, rtol=1e-3, atol=1e-5)


class TestScopedTraversals:
    def test_down_arg_never_enters_functions(self):
        from repro.rise.dsl import fun, lit, map_
        from repro.elevate.core import rule
        from repro.rise.expr import Literal

        hits = []

        @rule("probe")
        def probe(e):
            if isinstance(e, Literal):
                hits.append(e.value)
                return Literal(e.value + 1.0)
            return None

        xs = Identifier("xs")
        prog = map_(fun(lambda v: v + lit(5.0)), map_(fun(lambda v: v + lit(7.0)), xs))
        result = down_arg(probe)(prog)
        # literals live inside lambdas: not reachable on the argument chain
        assert isinstance(result, Failure)
        assert hits == []

    def test_in_chunk_function_requires_chunk(self):
        xs = Identifier("xs")
        result = in_chunk_function(id_)(xs)
        assert isinstance(result, Failure)
