"""Strip parallelization: the stripParallel rule, the cbuf+par /
cbuf+rot+par schedule variants and their multicore determinism on both
backends (1, 2 and 4 threads, bit-identical and PSNR-valid)."""

import numpy as np
import pytest

from repro.codegen import compile_program
from repro.exec.pyexec import execute_program, strippable_parallel_loop, _loop_extent
from repro.image import reference, synthetic_rgb
from repro.pipelines import harris, harris_input_type
from repro.rise import Identifier, evaluate, from_numpy, to_numpy
from repro.rise.expr import App, Identifier as Id, MapGlobal, MapSeq
from repro.rise.traverse import subterms
from repro.strategies import (
    DEFAULT_STRIP,
    cbuf_par_version,
    cbuf_rrot_par_version,
    strip_parallel,
)

SENV = {"rgb": harris_input_type()}

# 16x16 output: 4 chunks of 4 rows, regrouped into 2 strips of 2 chunks.
SIZES = {"n": 16, "m": 16}


@pytest.fixture(scope="module")
def image():
    img = synthetic_rgb(20, 20, seed=11)
    return img, reference.harris(img)


@pytest.fixture(scope="module")
def lowered():
    high = harris(Identifier("rgb"))
    return {
        "cbuf+par": cbuf_par_version(SENV, chunk=4, vec=4, strip=2).apply(high),
        "cbuf+rot+par": cbuf_rrot_par_version(SENV, chunk=4, vec=4, strip=2).apply(
            high
        ),
    }


class TestRule:
    def test_strip_parallel_map_shape(self):
        """mapGlobal(f) $ x  -->  join(mapGlobal(mapSeq(f))(split(k, x)))"""
        from repro.rules.lowering import strip_parallel_map

        expr = App(App(MapGlobal(), Id("f")), Id("x"))
        result = strip_parallel_map(2).apply(expr)
        kinds = [type(n).__name__ for n in subterms(result)]
        assert kinds.count("MapGlobal") == 1
        assert kinds.count("MapSeq") == 1
        assert kinds.count("Split") == 1
        assert kinds.count("Join") == 1

    def test_rule_needs_applied_map_global(self):
        from repro.elevate.core import Failure
        from repro.rules.lowering import strip_parallel_map

        result = strip_parallel_map(2)(App(MapSeq(), Id("f")))
        assert isinstance(result, Failure)

    def test_strategy_fails_without_map_global(self):
        from repro.elevate.core import StrategyError

        with pytest.raises(StrategyError):
            strip_parallel(2).apply(Id("x"))


class TestStructure:
    @pytest.mark.parametrize("name", ["cbuf+par", "cbuf+rot+par"])
    def test_single_map_global_survives(self, lowered, name):
        kinds = [type(n).__name__ for n in subterms(lowered[name])]
        assert kinds.count("MapGlobal") == 1

    @pytest.mark.parametrize("name", ["cbuf+par", "cbuf+rot+par"])
    def test_parallel_extent_is_strip_count(self, lowered, name):
        prog = compile_program(lowered[name], SENV, "k")
        loop = strippable_parallel_loop(prog.functions[-1])
        assert loop is not None
        # 16 rows / chunk 4 = 4 chunks / strip 2 = 2 thread strips
        assert _loop_extent(loop, prog_sizes(prog)) == 2

    def test_default_strip_exported(self):
        assert DEFAULT_STRIP >= 2


def prog_sizes(prog):
    from repro.codegen.sizes import resolve_sizes

    return resolve_sizes(prog, SIZES)


class TestSemantics:
    @pytest.mark.parametrize("name", ["cbuf+par", "cbuf+rot+par"])
    def test_interpreter_matches_reference(self, lowered, image, name):
        img, ref = image
        out = to_numpy(evaluate(lowered[name], {"rgb": from_numpy(img)}))
        np.testing.assert_allclose(out, ref, rtol=1e-3, atol=1e-4)

    @pytest.mark.parametrize("name", ["cbuf+par", "cbuf+rot+par"])
    def test_python_backend_deterministic_across_threads(self, lowered, image, name):
        img, ref = image
        prog = compile_program(lowered[name], SENV, "k")
        outs = {
            t: execute_program(prog, SIZES, {"rgb": img}, threads=t)
            for t in (1, 2, 4)
        }
        np.testing.assert_allclose(
            outs[1].reshape(16, 16), ref, rtol=1e-3, atol=1e-4
        )
        assert np.array_equal(outs[1], outs[2])
        assert np.array_equal(outs[1], outs[4])

    @pytest.mark.parametrize("name", ["cbuf+par", "cbuf+rot+par"])
    def test_repeated_runs_bit_identical(self, lowered, image, name):
        img, _ = image
        prog = compile_program(lowered[name], SENV, "k")
        first = execute_program(prog, SIZES, {"rgb": img}, threads=2)
        for _ in range(3):
            again = execute_program(prog, SIZES, {"rgb": img}, threads=2)
            assert np.array_equal(first, again)


@pytest.mark.requires_gcc
class TestSemanticsC:
    @pytest.mark.parametrize("name", ["cbuf+par", "cbuf+rot+par"])
    def test_c_backend_deterministic_across_threads(self, lowered, image, name):
        from repro.exec import cbridge

        img, ref = image
        prog = compile_program(lowered[name], SENV, "k")
        lib = cbridge.compile_c_library(prog, extra_flags=cbridge.effective_cflags())
        try:
            outs = {
                t: np.array(
                    cbridge.execute_with_library(
                        lib, prog, SIZES, {"rgb": img}, threads=t
                    ),
                    copy=True,
                )
                for t in (1, 2, 4)
            }
        finally:
            lib.close()
        np.testing.assert_allclose(
            outs[1].reshape(16, 16), ref, rtol=1e-3, atol=1e-4
        )
        assert np.array_equal(outs[1], outs[2])
        assert np.array_equal(outs[1], outs[4])

    def test_c_and_python_agree_bitwise(self, lowered, image):
        from repro.exec import cbridge

        img, _ = image
        prog = compile_program(lowered["cbuf+rot+par"], SENV, "k")
        py = execute_program(prog, SIZES, {"rgb": img}, threads=2)
        lib = cbridge.compile_c_library(prog, extra_flags=cbridge.effective_cflags())
        try:
            c = cbridge.execute_with_library(lib, prog, SIZES, {"rgb": img}, threads=2)
        finally:
            lib.close()
        np.testing.assert_allclose(py, c, rtol=1e-6, atol=1e-6)
