"""The paper claims its optimizations 'are generalizable and applicable to
other such compositions' (section III).  These tests apply the *unchanged*
Harris schedules to a different pipeline — a two-stage Gaussian blur chain
with a pointwise tail — and check correctness and the expected low-level
structure."""

import numpy as np
import pytest

import repro
from repro.codegen import compile_program
from repro.image import synthetic_rgb, reference
from repro.pipelines import blur_input_type, blur_pipeline
from repro.rise import Identifier
from repro.rise.traverse import subterms
from repro.strategies import cbuf_rrot_version, cbuf_version

SENV = {"img": blur_input_type()}


def _reference(image: np.ndarray) -> np.ndarray:
    g = np.array([[1, 2, 1], [2, 4, 2], [1, 2, 1]], dtype=np.float32) / 16
    once = reference.conv2d_valid(image, g)
    twice = reference.conv2d_valid(once, g)
    return (twice * 2 - 0.5).astype(np.float32)


@pytest.fixture(scope="module")
def blur_case():
    image = synthetic_rgb(16, 20, seed=5)[0]
    return image, _reference(image)


class TestBlurGeneralization:
    @pytest.mark.parametrize("make", [cbuf_version, cbuf_rrot_version])
    def test_schedules_transfer_unchanged(self, blur_case, make):
        image, expected = blur_case
        schedule = make(SENV, chunk=4, vec=4)
        low = schedule.apply(blur_pipeline(Identifier("img")))
        prog = compile_program(low, SENV, "blur")
        out = repro.compile(prog, sizes={"n": 12, "m": 16}).run(img=image)
        np.testing.assert_allclose(out.reshape(12, 16), expected, rtol=1e-3, atol=1e-4)

    def test_cbuf_structure_transfers(self, blur_case):
        from repro.rise.expr import CircularBuffer, MapGlobal

        low = cbuf_version(SENV, chunk=4, vec=4).apply(blur_pipeline(Identifier("img")))
        kinds = [type(n).__name__ for n in subterms(low)]
        assert kinds.count("MapGlobal") == 1
        assert kinds.count("CircularBuffer") >= 1  # blur stages buffered

    def test_separation_fires_on_gaussian(self, blur_case):
        """The Gaussian kernel is separable, so the rot schedule separates
        and rotates it just like the sobel kernels."""
        low = cbuf_rrot_version(SENV, chunk=4, vec=4).apply(blur_pipeline(Identifier("img")))
        kinds = [type(n).__name__ for n in subterms(low)]
        assert kinds.count("RotateValues") >= 1

    def test_rot_costs_less_than_cbuf(self, blur_case):
        from repro.perf import CORTEX_A53, estimate_runtime_ms

        progs = {}
        for make in (cbuf_version, cbuf_rrot_version):
            sched = make(SENV, chunk=32, vec=4)
            progs[sched.name] = compile_program(
                sched.apply(blur_pipeline(Identifier("img"))), SENV, "blur"
            )
        sizes = {"n": 1536, "m": 2556}
        cbuf = estimate_runtime_ms(progs["rise-cbuf"], sizes, CORTEX_A53, "opencl")
        rot = estimate_runtime_ms(progs["rise-cbuf-rrot"], sizes, CORTEX_A53, "opencl")
        assert rot.runtime_ms < cbuf.runtime_ms
