"""Shared test helpers (the promoted ``tests/helpers`` module).

Semantic-equivalence checking is the test-side analogue of the paper's
PSNR validation: a rewrite is correct iff interpreting the program
before and after on the same inputs gives (numerically) the same
outputs.  The flattening/comparison core lives in
:mod:`repro.verify.oracle` so the unit tests and the fuzzer share one
hardened definition of "semantically equal"; fixtures (small images,
``requires_gcc`` skipping, fresh metrics registries) live in
``tests/conftest.py``.
"""

from __future__ import annotations

import numpy as np

from repro.elevate.core import Strategy, Success
from repro.rise.expr import Expr
from repro.rise.interpreter import evaluate, from_numpy
from repro.rise.typecheck import infer_types
from repro.verify.oracle import equivalence_report, flatten_value, values_close

__all__ = [
    "flatten_value",
    "values_close",
    "assert_values_close",
    "apply_ok",
    "assert_semantics_preserved",
]


def assert_values_close(a, b, rtol: float = 1e-5, atol: float = 1e-6) -> None:
    """Assert two interpreter values are shape- and value-equivalent."""
    report = equivalence_report(a, b, rtol=rtol, atol=atol)
    assert report is None, f"values differ: {report}"


def apply_ok(strategy: Strategy, expr: Expr) -> Expr:
    """Apply a strategy, asserting success."""
    result = strategy(expr)
    assert isinstance(result, Success), f"{strategy.name} failed on {expr!r}"
    return result.expr


def assert_semantics_preserved(
    strategy: Strategy,
    expr: Expr,
    env_values: dict,
    type_env: dict | None = None,
    rtol: float = 1e-5,
) -> Expr:
    """Apply ``strategy`` to ``expr`` and check both type- and value-level
    equivalence under the given environment.  Returns the rewritten expr."""
    rewritten = apply_ok(strategy, expr)
    if type_env is not None:
        before = infer_types(expr, type_env).root_type
        after = infer_types(rewritten, type_env).root_type
        assert before == after, f"type changed: {before!r} -> {after!r}"
    value_env = {
        name: from_numpy(v) if isinstance(v, np.ndarray) else v
        for name, v in env_values.items()
    }
    before_value = evaluate(expr, value_env)
    after_value = evaluate(rewritten, value_env)
    assert_values_close(before_value, after_value, rtol=rtol)
    return rewritten
