"""Tests for the structural fusion rules (zip_of_maps, CSE, producer
narrowing, sibling-map merging) behind fuseOperators and harrisIxWithIy."""

import numpy as np
import pytest

from repro.elevate import Failure, Success, normalize, top_down
from repro.rise import Identifier, alpha_equal, array, array2d, f32
from repro.rise.dsl import (
    fst,
    fun,
    lit,
    make_pair,
    map_,
    pipe,
    slide,
    snd,
    transpose,
    zip_,
)
from repro.rise.expr import Lambda, Let, Map
from repro.rise.traverse import count_nodes, subterms
from repro.rules.structure import (
    canonical_key,
    cse_in_lambda,
    merge_sibling_maps,
    narrow_shared_pair_producer,
    slide_before_map_view,
    zip_of_maps,
)
from tests.helpers import apply_ok, assert_semantics_preserved

xs = Identifier("xs")
ys = Identifier("ys")
F = fun(lambda v: v * lit(2.0))
G = fun(lambda v: v + lit(1.0))


class TestZipOfMaps:
    def test_both_sides(self):
        prog = zip_(map_(F, xs), map_(G, ys))
        assert isinstance(zip_of_maps(prog), Success)

    def test_one_sided_left(self):
        prog = zip_(map_(F, xs), ys)
        assert isinstance(zip_of_maps(prog), Success)

    def test_one_sided_right(self):
        prog = zip_(xs, map_(G, ys))
        assert isinstance(zip_of_maps(prog), Success)

    def test_no_maps_no_match(self):
        assert isinstance(zip_of_maps(zip_(xs, ys)), Failure)

    def test_semantics_different_sources(self):
        prog = map_(fun(lambda p: fst(p) + snd(p)), zip_(map_(F, xs), map_(G, ys)))
        rewritten = apply_ok(top_down(zip_of_maps), prog)
        from repro.rise.interpreter import evaluate, from_numpy

        env = {"xs": from_numpy(np.arange(5.0)), "ys": from_numpy(np.arange(5.0) * 3)}
        before = [float(v) for v in evaluate(prog, env)]
        after = [float(v) for v in evaluate(rewritten, env)]
        assert before == after


class TestSlideBeforeMapView:
    def test_moves_view_map(self):
        prog = slide(3, 1, map_(transpose(), xs))
        assert isinstance(slide_before_map_view(prog), Success)

    def test_refuses_compute_map(self):
        prog = slide(3, 1, map_(F, xs))
        assert isinstance(slide_before_map_view(prog), Failure)


class TestCanonicalKey:
    def test_alpha_equal_same_key(self):
        a = fun(lambda v: v + lit(1.0))
        b = fun(lambda w: w + lit(1.0))
        assert canonical_key(a) == canonical_key(b)

    def test_free_vars_distinguished(self):
        assert canonical_key(xs) != canonical_key(ys)

    def test_structure_distinguished(self):
        assert canonical_key(map_(F, xs)) != canonical_key(map_(G, xs))


class TestCseInLambda:
    def test_factors_duplicates(self):
        heavy = lambda a: pipe(a, map_(F), map_(G))
        lam = fun(lambda a: zip_(heavy(a), heavy(a)))
        out = apply_ok(cse_in_lambda(min_nodes=4), lam)
        lets = [n for n in subterms(out) if isinstance(n, Let)]
        assert len(lets) == 1
        assert count_nodes(out) < count_nodes(lam)

    def test_no_duplicates_no_match(self):
        lam = fun(lambda a: map_(F, a))
        assert isinstance(cse_in_lambda(min_nodes=4)(lam), Failure)

    def test_skips_partial_applications(self):
        # pair(x) partially applied twice at different types must not be shared
        lam = fun(lambda a: make_pair(make_pair(a, a), make_pair(a, lit(1.0))))
        result = cse_in_lambda(min_nodes=2)(lam)
        if isinstance(result, Success):
            from repro.rise.typecheck import well_typed

            assert well_typed(result.expr, {})

    def test_semantics(self):
        heavy = lambda a: pipe(a, map_(F), map_(G))
        lam = fun(lambda a: zip_(heavy(a), heavy(a)))
        prog = map_(fun(lambda p: fst(p) + snd(p)), zip_(*[lam(xs)][0:1], lam(xs)))
        # simpler: apply to data directly
        prog = lam(xs)
        rewritten = apply_ok(cse_in_lambda(min_nodes=4), lam)(0) if False else apply_ok(top_down(cse_in_lambda(min_nodes=4)), prog)
        from repro.rise.interpreter import evaluate, from_numpy

        env = {"xs": from_numpy(np.arange(5.0))}
        before = evaluate(prog, env)
        after = evaluate(rewritten, env)
        for (b1, b2), (a1, a2) in zip(before, after):
            assert float(b1) == float(a1) and float(b2) == float(a2)


class TestNarrowSharedPairProducer:
    def _producer(self):
        # slide(3,1)(map(fun l. def t = map(F, l) in pair(t, pair(t, t)), xs2d))
        def g(l):
            from repro.rise.dsl import let

            return let(map_(F, l), lambda t: make_pair(t, make_pair(t, t)))

        return slide(3, 1, map_(fun(g), Identifier("img")))

    def test_narrows(self):
        out = apply_ok(narrow_shared_pair_producer, self._producer())
        # the producing map now computes the single shared line
        text = repr(out)
        assert "pair" in text  # pair structure rebuilt as a view

    def test_semantics(self):
        img = np.arange(20.0).reshape(5, 4)
        prog = self._producer()
        rewritten = apply_ok(narrow_shared_pair_producer, prog)
        from repro.rise.interpreter import evaluate, from_numpy

        env = {"img": from_numpy(img)}

        def flatten(v):
            if isinstance(v, (list, tuple)):
                return [x for sub in v for x in flatten(sub)]
            return [float(v)]

        assert flatten(evaluate(prog, env)) == flatten(evaluate(rewritten, env))


class TestMergeSiblingMaps:
    def test_merges_same_source(self):
        prog = make_pair(map_(F, xs), make_pair(slide(3, 1, map_(G, xs)), map_(F, xs)))
        out = apply_ok(merge_sibling_maps, prog)
        assert isinstance(out, Let)

    def test_different_sources_not_merged(self):
        prog = make_pair(map_(F, xs), map_(G, ys))
        assert isinstance(merge_sibling_maps(prog), Failure)

    def test_idempotent(self):
        prog = make_pair(map_(F, xs), make_pair(slide(3, 1, map_(G, xs)), map_(F, xs)))
        out = apply_ok(merge_sibling_maps, prog)
        # projections of the shared map are not re-merged
        assert isinstance(merge_sibling_maps(out.body), Failure)

    def test_semantics(self):
        prog = make_pair(map_(F, xs), make_pair(slide(3, 1, map_(G, xs)), map_(F, xs)))
        rewritten = apply_ok(merge_sibling_maps, prog)
        from repro.rise.interpreter import evaluate, from_numpy

        env = {"xs": from_numpy(np.arange(6.0))}

        def flatten(v):
            if isinstance(v, (list, tuple)):
                return [x for sub in v for x in flatten(sub)]
            return [float(v)]

        assert flatten(evaluate(prog, env)) == flatten(evaluate(rewritten, env))
