"""Semantic-preservation tests for the algorithmic rewrite rules.

Every rule is applied to a program containing its left-hand side and the
program is interpreted before and after (tests/helpers.py), mirroring the
paper's output-equivalence validation.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.elevate import Failure, apply_once, normalize
from repro.nat import nat
from repro.rise import Identifier, ReduceSeq, app_spine, array, array2d, f32
from repro.rise.dsl import (
    arr,
    dot,
    fst,
    fun,
    join,
    let,
    lit,
    make_pair,
    map_,
    pipe,
    reduce_,
    slide,
    snd,
    split,
    transpose,
    zip_,
)
from repro.rules.algorithmic import (
    beta_reduction,
    eta_reduction,
    fst_pair,
    let_inline,
    map_fusion,
    map_of_identity,
    map_outside_zip,
    reduce_map_fusion,
    slide_after_split,
    slide_before_map,
    slide_before_slide,
    slide_outside_zip,
    snd_pair,
    split_join,
    zip_same,
)
from tests.helpers import apply_ok, assert_semantics_preserved

xs = Identifier("xs")
ys = Identifier("ys")

F_DOUBLE = fun(lambda x: x * lit(2.0))
F_INC = fun(lambda x: x + lit(1.0))

ARRAYS = st.lists(st.floats(-10, 10), min_size=8, max_size=8).map(
    lambda v: np.asarray(v, dtype=np.float32)
)


class TestLambdaCalculus:
    def test_beta(self):
        prog = F_DOUBLE(lit(3.0))
        out = assert_semantics_preserved(beta_reduction, prog, {})
        assert float(out.value if hasattr(out, "value") else 6.0)

    def test_beta_avoids_capture(self):
        # (fun x. fun y. x)(y)  must NOT become  fun y. y
        y = Identifier("y")
        inner = fun(lambda a: a)  # placeholder to get fresh names
        from repro.rise.expr import App, Lambda

        x_id = Identifier("x")
        y_id = Identifier("y_bound")
        prog = App(Lambda(x_id, Lambda(Identifier("y_cap"), x_id)), Identifier("y_cap"))
        reduced = apply_ok(beta_reduction, prog)
        assert isinstance(reduced, Lambda)
        from repro.rise.traverse import free_identifiers

        assert "y_cap" in free_identifiers(reduced)

    def test_eta(self):
        prog = fun(lambda x: F_DOUBLE(x))
        reduced = apply_ok(eta_reduction, prog)
        # fun x. F(x) --> F
        from repro.rise.traverse import alpha_equal

        assert alpha_equal(reduced, F_DOUBLE)

    def test_eta_blocked_when_captured(self):
        from repro.rise.expr import App, Lambda

        x = Identifier("x")
        prog = Lambda(x, App(x, x))
        assert isinstance(eta_reduction(prog), Failure)

    def test_let_inline(self):
        prog = let(lit(2.0), lambda v: v * v)
        assert_semantics_preserved(let_inline, prog, {})

    def test_pair_projections(self):
        assert_semantics_preserved(fst_pair, fst(make_pair(lit(1.0), lit(2.0))), {})
        assert_semantics_preserved(snd_pair, snd(make_pair(lit(1.0), lit(2.0))), {})


class TestFusion:
    @given(ARRAYS)
    @settings(max_examples=15, deadline=None)
    def test_map_fusion(self, data):
        prog = map_(F_INC, map_(F_DOUBLE, xs))
        assert_semantics_preserved(
            map_fusion, prog, {"xs": data}, {"xs": array(8, f32)}
        )

    def test_map_fusion_does_not_fire_on_map_seq(self):
        from repro.rise.dsl import map_seq

        prog = map_seq(F_INC, map_seq(F_DOUBLE, xs))
        assert isinstance(map_fusion(prog), Failure)

    @given(ARRAYS)
    @settings(max_examples=15, deadline=None)
    def test_reduce_map_fusion(self, data):
        prog = reduce_(
            fun(lambda a, b: a + b), lit(0.0), map_(F_DOUBLE, xs)
        )
        rewritten = assert_semantics_preserved(
            reduce_map_fusion, prog, {"xs": data}, {"xs": array(8, f32)}
        )
        head, _ = app_spine(rewritten)
        assert isinstance(head, ReduceSeq)

    def test_map_of_identity(self):
        prog = map_(fun(lambda x: x), xs)
        assert_semantics_preserved(
            map_of_identity, prog, {"xs": np.arange(8.0)}, {"xs": array(8, f32)}
        )


class TestMultiThreadingRules:
    """The rules of listing 6."""

    @given(ARRAYS)
    @settings(max_examples=15, deadline=None)
    def test_split_join(self, data):
        prog = map_(F_DOUBLE, xs)
        assert_semantics_preserved(
            split_join(4), prog, {"xs": data}, {"xs": array(8, f32)}
        )

    @given(ARRAYS)
    @settings(max_examples=15, deadline=None)
    def test_slide_after_split(self, data):
        prog = split(3, slide(3, 1, xs))  # 8 -> 6 windows -> 2 chunks of 3
        assert_semantics_preserved(
            slide_after_split, prog, {"xs": data}, {"xs": array(8, f32)}
        )

    def test_slide_after_split_with_step(self):
        # slide(3,2) over 13 elements -> 6 windows -> split(2) -> 3 chunks
        data = np.arange(13.0, dtype=np.float32)
        prog = split(2, slide(3, 2, xs))
        assert_semantics_preserved(
            slide_after_split, prog, {"xs": data}, {"xs": array(13, f32)}
        )

    @given(ARRAYS)
    @settings(max_examples=15, deadline=None)
    def test_slide_before_map(self, data):
        prog = slide(3, 1, map_(F_DOUBLE, xs))
        assert_semantics_preserved(
            slide_before_map, prog, {"xs": data}, {"xs": array(8, f32)}
        )

    @given(ARRAYS)
    @settings(max_examples=15, deadline=None)
    def test_slide_before_slide(self, data):
        prog = slide(2, 2, slide(3, 1, xs))
        assert_semantics_preserved(
            slide_before_slide, prog, {"xs": data}, {"xs": array(8, f32)}
        )

    def test_slide_before_slide_requires_unit_step(self):
        prog = slide(2, 2, slide(3, 2, xs))
        assert isinstance(slide_before_slide(prog), Failure)


class TestZipRules:
    @given(ARRAYS)
    @settings(max_examples=15, deadline=None)
    def test_map_outside_zip(self, data):
        prog = zip_(map_(F_DOUBLE, xs), map_(F_INC, xs))
        rewritten = apply_ok(map_outside_zip, prog)
        from repro.rise.interpreter import evaluate, from_numpy

        env = {"xs": from_numpy(data)}
        before = evaluate(prog, env)
        after = evaluate(rewritten, env)
        assert [tuple(map(float, p)) for p in before] == [
            tuple(map(float, p)) for p in after
        ]

    def test_map_outside_zip_asymmetric(self):
        data = np.arange(8.0, dtype=np.float32)
        from repro.rise.interpreter import evaluate, from_numpy

        for prog in (zip_(xs, map_(F_INC, xs)), zip_(map_(F_INC, xs), xs)):
            rewritten = apply_ok(map_outside_zip, prog)
            env = {"xs": from_numpy(data)}
            assert [tuple(map(float, p)) for p in evaluate(prog, env)] == [
                tuple(map(float, p)) for p in evaluate(rewritten, env)
            ]

    def test_map_outside_zip_requires_same_source(self):
        prog = zip_(map_(F_DOUBLE, xs), map_(F_INC, ys))
        assert isinstance(map_outside_zip(prog), Failure)

    def test_zip_same(self):
        data = np.arange(8.0, dtype=np.float32)
        prog = zip_(xs, xs)
        rewritten = apply_ok(zip_same, prog)
        from repro.rise.interpreter import evaluate, from_numpy

        env = {"xs": from_numpy(data)}
        assert [tuple(map(float, p)) for p in evaluate(prog, env)] == [
            tuple(map(float, p)) for p in evaluate(rewritten, env)
        ]

    @given(ARRAYS, ARRAYS)
    @settings(max_examples=15, deadline=None)
    def test_slide_outside_zip(self, a, b):
        prog = zip_(slide(3, 1, xs), slide(3, 1, ys))
        rewritten = apply_ok(slide_outside_zip, prog)
        from repro.rise.interpreter import evaluate, from_numpy

        env = {"xs": from_numpy(a), "ys": from_numpy(b)}
        before = evaluate(prog, env)
        after = evaluate(rewritten, env)
        # both: [n] pairs of ([3] windows)
        for (wa1, wb1), (wa2, wb2) in zip(before, after):
            assert list(map(float, wa1)) == list(map(float, wa2))
            assert list(map(float, wb1)) == list(map(float, wb2))

    def test_slide_outside_zip_requires_same_window(self):
        prog = zip_(slide(3, 1, xs), slide(2, 1, ys))
        assert isinstance(slide_outside_zip(prog), Failure)


class TestDotExample:
    """The paper's running example (section II-A): lowerDot."""

    def test_lower_dot_produces_reduce_seq(self):
        prog = dot(arr([1, 2, 3]))(xs)
        lowered = apply_ok(apply_once(reduce_map_fusion), prog)
        data = np.array([4.0, 5.0, 6.0], dtype=np.float32)
        from repro.rise.interpreter import evaluate, from_numpy

        before = evaluate(prog, {"xs": from_numpy(data)})
        after = evaluate(lowered, {"xs": from_numpy(data)})
        assert float(before) == float(after) == 32.0
        assert any(
            isinstance(node, ReduceSeq)
            for node in _subterms(lowered)
        )


def _subterms(expr):
    from repro.rise.traverse import subterms

    return list(subterms(expr))
