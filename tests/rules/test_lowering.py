"""Tests for the lowering rules (fig. 4 / listings 8 and 11)."""

import numpy as np

from repro.elevate import Failure, apply_once, normalize
from repro.rise import Identifier, array, f32
from repro.rise.dsl import fun, lit, map_, map_seq, reduce_, reduce_seq, slide
from repro.rise.expr import (
    CircularBuffer,
    Map,
    MapGlobal,
    MapSeq,
    MapSeqUnroll,
    MapSeqVec,
    Reduce,
    ReduceSeq,
    ReduceSeqUnroll,
    RotateValues,
)
from repro.rise.types import AddressSpace
from repro.rules.lowering import (
    slide_to_circular_buffer,
    slide_to_rotate_values,
    unroll_map_seq,
    unroll_reduce_seq,
    use_map_global,
    use_map_seq,
    use_map_seq_unroll,
    use_reduce_seq,
    use_reduce_seq_unroll,
)
from tests.helpers import apply_ok, assert_semantics_preserved

xs = Identifier("xs")
F = fun(lambda v: v * lit(2.0))


class TestMapLowering:
    def test_use_map_seq(self):
        assert isinstance(apply_ok(use_map_seq, Map()), MapSeq)

    def test_use_map_global(self):
        assert isinstance(apply_ok(use_map_global, Map()), MapGlobal)

    def test_use_map_seq_unroll(self):
        assert isinstance(apply_ok(use_map_seq_unroll, Map()), MapSeqUnroll)

    def test_does_not_redo_lowered(self):
        # lowering decisions are explicit: mapSeq is not re-lowered
        assert isinstance(use_map_global(MapSeq()), Failure)
        assert isinstance(use_map_seq(MapSeqVec()), Failure)

    def test_unroll_map_seq(self):
        assert isinstance(apply_ok(unroll_map_seq, MapSeq()), MapSeqUnroll)
        assert isinstance(unroll_map_seq(Map()), Failure)

    def test_semantics_unchanged(self):
        prog = map_(F, xs)
        assert_semantics_preserved(
            apply_once(use_map_seq), prog, {"xs": np.arange(6.0)}, {"xs": array(6, f32)}
        )


class TestReduceLowering:
    def test_use_reduce_seq(self):
        assert isinstance(apply_ok(use_reduce_seq, Reduce()), ReduceSeq)

    def test_use_reduce_seq_unroll(self):
        assert isinstance(apply_ok(use_reduce_seq_unroll, Reduce()), ReduceSeqUnroll)

    def test_unroll_reduce_seq(self):
        assert isinstance(apply_ok(unroll_reduce_seq, ReduceSeq()), ReduceSeqUnroll)

    def test_semantics(self):
        prog = reduce_(fun(lambda a, b: a + b), lit(0.0), xs)
        assert_semantics_preserved(
            apply_once(use_reduce_seq), prog, {"xs": np.arange(5.0)}, {"xs": array(5, f32)}
        )


class TestCircularBuffer:
    def test_fuses_producing_map(self):
        prog = slide(3, 1, map_(F, xs))
        out = apply_ok(slide_to_circular_buffer(AddressSpace.GLOBAL), prog)
        from repro.rise.traverse import subterms

        cbufs = [n for n in subterms(out) if isinstance(n, CircularBuffer)]
        assert len(cbufs) == 1
        assert cbufs[0].addr is AddressSpace.GLOBAL

    def test_bare_slide_gets_identity_load(self):
        prog = slide(3, 1, xs)
        out = apply_ok(slide_to_circular_buffer(AddressSpace.GLOBAL), prog)
        assert any(
            isinstance(n, CircularBuffer) for n in _subterms(out)
        )

    def test_requires_unit_step(self):
        prog = slide(3, 2, map_(F, xs))
        assert isinstance(slide_to_circular_buffer(AddressSpace.GLOBAL)(prog), Failure)

    def test_semantics(self):
        prog = slide(3, 1, map_(F, xs))
        assert_semantics_preserved(
            slide_to_circular_buffer(AddressSpace.GLOBAL),
            prog,
            {"xs": np.arange(8.0)},
            {"xs": array(8, f32)},
        )


class TestRotateValues:
    def test_basic(self):
        prog = slide(3, 1, xs)
        out = apply_ok(slide_to_rotate_values(AddressSpace.PRIVATE), prog)
        assert any(isinstance(n, RotateValues) for n in _subterms(out))

    def test_requires_unit_step(self):
        prog = slide(3, 2, xs)
        assert isinstance(slide_to_rotate_values(AddressSpace.PRIVATE)(prog), Failure)

    def test_semantics(self):
        prog = slide(4, 1, xs)
        assert_semantics_preserved(
            slide_to_rotate_values(AddressSpace.PRIVATE),
            prog,
            {"xs": np.arange(9.0)},
            {"xs": array(9, f32)},
        )


def _subterms(e):
    from repro.rise.traverse import subterms

    return list(subterms(e))
