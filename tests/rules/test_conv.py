"""Tests for convolution separation (paper section IV-B)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.elevate import Failure, Success, normalize, top_down, try_
from repro.image.reference import SOBEL_X, SOBEL_Y, SUM_3X3
from repro.rise import Identifier, array2d, f32
from repro.rise.dsl import arr, dot, fun, join, lit, map_, pipe, reduce_, slide, transpose
from repro.rise.expr import RotateValues
from repro.rise.traverse import subterms
from repro.rules.conv import (
    rotate_values_consume,
    separate_conv_line,
    separate_kernel,
)
from tests.helpers import apply_ok


class TestSeparateKernel:
    def test_sobel_x(self):
        col, row = separate_kernel(SOBEL_X)
        assert np.allclose(np.outer(col, row), SOBEL_X)

    def test_sobel_y(self):
        col, row = separate_kernel(SOBEL_Y)
        assert np.allclose(np.outer(col, row), SOBEL_Y)

    def test_box(self):
        col, row = separate_kernel(SUM_3X3)
        assert np.allclose(np.outer(col, row), SUM_3X3)

    def test_identity_not_separable(self):
        assert separate_kernel(np.eye(3, dtype=np.float32)) is None

    def test_laplacian_not_separable(self):
        lap = np.array([[0, 1, 0], [1, -4, 1], [0, 1, 0]], dtype=np.float32)
        assert separate_kernel(lap) is None

    def test_zero_kernel(self):
        assert separate_kernel(np.zeros((3, 3), dtype=np.float32)) is None

    def test_kernel_with_zero_row(self):
        w = np.array([[1, 2, 1], [0, 0, 0], [2, 4, 2]], dtype=np.float32)
        col, row = separate_kernel(w)
        assert np.allclose(np.outer(col, row), w)

    # well-conditioned factors: zero or of sane magnitude (a kernel built
    # from denormals may be *refused*, which is always safe)
    _factor = st.floats(-4, 4).map(lambda v: 0.0 if abs(v) < 1e-3 else v)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(_factor, min_size=3, max_size=3),
        st.lists(_factor, min_size=3, max_size=3),
    )
    def test_outer_products_always_separable(self, col, row):
        w = np.outer(np.float32(col), np.float32(row))
        if not w.any():
            return
        result = separate_kernel(w)
        assert result is not None
        c, r = result
        assert np.allclose(np.outer(c, r), w, rtol=1e-4, atol=1e-5)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2 **  9 - 1))
    def test_separation_never_wrong(self, bits):
        # random small-integer kernels: separate_kernel either refuses or
        # returns an exact factorization
        values = [(bits >> k) % 2 + (bits >> (k + 3)) % 3 for k in range(9)]
        w = np.asarray(values, dtype=np.float32).reshape(3, 3)
        result = separate_kernel(w)
        if result is not None:
            c, r = result
            assert np.allclose(np.outer(c, r), w, rtol=1e-5, atol=1e-6)


def _conv_line_site(weights, size=3):
    """map(fun w. dot(join W, join w), transpose(map(slide(s,1), rows))),
    beta-normalized as fuseOperators leaves it (the rule matches the
    reduced form, not the dot redex).  ``size`` is the window extent —
    the rule reads it off the slide, nothing pins it to 3."""
    from repro.elevate import normalize
    from repro.rules.algorithmic import beta_reduction

    rows = Identifier("rows")
    w2d = arr([[float(x) for x in r] for r in weights])
    f = fun(lambda w: dot(join(w2d))(join(w)))
    prog = map_(f, transpose(map_(slide(size, 1), rows)))
    return normalize(beta_reduction).apply(prog), rows


class TestSeparateConvLine:
    def test_fires_on_separable(self):
        prog, _ = _conv_line_site(SOBEL_X)
        assert isinstance(separate_conv_line(prog), Success)

    def test_refuses_non_separable(self):
        lap = [[0, 1, 0], [1, -4, 1], [0, 1, 0]]
        prog, _ = _conv_line_site(lap)
        assert isinstance(separate_conv_line(prog), Failure)

    def test_semantics(self):
        prog, rows_id = _conv_line_site(SOBEL_X)
        rewritten = apply_ok(separate_conv_line, prog)
        data = np.arange(15.0, dtype=np.float32).reshape(3, 5) * 0.25 + 1.0
        from repro.rise.interpreter import evaluate, from_numpy

        env = {"rows": from_numpy(data)}
        before = [float(v) for v in evaluate(prog, env)]
        after = [float(v) for v in evaluate(rewritten, env)]
        np.testing.assert_allclose(before, after, rtol=1e-5)

    def test_arithmetic_reduction(self):
        """Separation shares vertical sums: fewer multiply nodes remain."""
        prog, _ = _conv_line_site(SUM_3X3)
        rewritten = apply_ok(separate_conv_line, prog)
        # the separated form contains two 1-d dots instead of one 2-d dot
        text = repr(rewritten)
        assert "slide(3,1)" in text


#: 5x5 binomial Gaussian: the separable kernel the zoo's chained 3x3
#: stages compose into (outer square of [1,4,6,4,1]/16).
BINOMIAL_5X5 = np.outer(
    [1.0, 4.0, 6.0, 4.0, 1.0], [1.0, 4.0, 6.0, 4.0, 1.0]
).astype(np.float32) / 256.0


class TestWindowSizeGenerality:
    """Regression tests for the window-size generalization: separation
    must read the extent off the slide, never assume the paper's 3x3."""

    def test_separate_kernel_5x5(self):
        col, row = separate_kernel(BINOMIAL_5X5)
        assert np.allclose(np.outer(col, row), BINOMIAL_5X5, rtol=1e-5)

    def test_separate_kernel_refuses_non_separable_5x5(self):
        w = np.eye(5, dtype=np.float32)
        assert separate_kernel(w) is None

    @pytest.mark.parametrize("size", [3, 5])
    def test_fires_on_separable_any_size(self, size):
        ones = np.ones((size, size), dtype=np.float32)
        prog, _ = _conv_line_site(ones, size=size)
        assert isinstance(separate_conv_line(prog), Success)

    def test_refuses_non_separable_5x5_site(self):
        prog, _ = _conv_line_site(np.eye(5, dtype=np.float32), size=5)
        assert isinstance(separate_conv_line(prog), Failure)

    def test_refuses_kernel_window_size_mismatch(self):
        """A 3x3 kernel over a 5-wide window is not a convolution the
        rule understands; it must refuse rather than mis-factor."""
        prog, _ = _conv_line_site(SOBEL_X, size=5)
        assert isinstance(separate_conv_line(prog), Failure)

    def test_semantics_5x5(self):
        prog, _ = _conv_line_site(BINOMIAL_5X5, size=5)
        rewritten = apply_ok(separate_conv_line, prog)
        data = np.arange(35.0, dtype=np.float32).reshape(5, 7) * 0.125 - 1.0
        from repro.rise.interpreter import evaluate, from_numpy

        env = {"rows": from_numpy(data)}
        before = [float(v) for v in evaluate(prog, env)]
        after = [float(v) for v in evaluate(rewritten, env)]
        np.testing.assert_allclose(before, after, rtol=1e-5)

    def test_separated_5x5_keeps_window_size(self):
        prog, _ = _conv_line_site(BINOMIAL_5X5, size=5)
        rewritten = apply_ok(separate_conv_line, prog)
        assert "slide(5,1)" in repr(rewritten)


class TestRotateValuesConsume:
    def test_fires_on_computed_windows(self):
        xs = Identifier("xs")
        prog = map_(fun(lambda w: reduce_(fun(lambda a, b: a + b), lit(0.0), w)),
                    slide(3, 1, map_(fun(lambda v: v * lit(2.0)), xs)))
        out = apply_ok(rotate_values_consume, prog)
        assert any(isinstance(n, RotateValues) for n in subterms(out))

    def test_skips_buffer_views(self):
        xs = Identifier("xs")
        prog = map_(fun(lambda w: w), slide(3, 1, xs))
        assert isinstance(rotate_values_consume(prog), Failure)

    def test_semantics(self):
        xs = Identifier("xs")
        prog = map_(fun(lambda w: reduce_(fun(lambda a, b: a + b), lit(0.0), w)),
                    slide(3, 1, map_(fun(lambda v: v * lit(2.0)), xs)))
        rewritten = apply_ok(rotate_values_consume, prog)
        from repro.rise.interpreter import evaluate, from_numpy

        env = {"xs": from_numpy(np.arange(8.0))}
        before = [float(v) for v in evaluate(prog, env)]
        after = [float(v) for v in evaluate(rewritten, env)]
        assert before == after
