"""Tests for the vectorization rewrite rules (paper listing 7)."""

import numpy as np

from repro.elevate import Failure, apply_once, normalize
from repro.rise import Identifier, array, f32
from repro.rise.dsl import as_vector, fun, lit, map_, reduce_, transpose
from repro.rules.vectorize import (
    start_vectorization,
    vectorize_before_map,
    vectorize_before_map_reduce,
)
from repro.rise.typecheck import infer_types, well_typed
from tests.helpers import apply_ok, assert_semantics_preserved

xs = Identifier("xs")
rows = Identifier("rows")
F = fun(lambda v: v * lit(3.0))


class TestStartVectorization:
    def test_wraps_with_roundtrip(self):
        out = apply_ok(start_vectorization(4), xs)
        # a |> asVector(4) |> asScalar
        from repro.rise.expr import AsScalar, AsVector
        from repro.rise.traverse import subterms

        kinds = [type(n).__name__ for n in subterms(out)]
        assert "AsScalar" in kinds and "AsVector" in kinds

    def test_typecheck_enforces_divisibility(self):
        out = apply_ok(start_vectorization(4), xs)
        assert well_typed(out, {"xs": array(8, f32)})
        assert not well_typed(out, {"xs": array(10, f32)})

    def test_semantics(self):
        out = apply_ok(start_vectorization(4), xs)
        assert_semantics_preserved(
            apply_once(start_vectorization(4)), xs, {"xs": np.arange(8.0)}, {"xs": array(8, f32)}
        )


class TestVectorizeBeforeMap:
    def test_rewrites(self):
        prog = as_vector(4, map_(F, xs))
        out = apply_ok(vectorize_before_map, prog)
        from repro.rise.expr import MapVec
        from repro.rise.traverse import subterms

        assert any(isinstance(n, MapVec) for n in subterms(out))

    def test_semantics(self):
        prog = as_vector(4, map_(F, xs))
        assert_semantics_preserved(
            vectorize_before_map, prog, {"xs": np.arange(8.0)}, {"xs": array(8, f32)}
        )

    def test_no_match_without_as_vector(self):
        assert isinstance(vectorize_before_map(map_(F, xs)), Failure)


class TestVectorizeBeforeMapReduce:
    def _prog(self):
        # map(reduce(+, 0)) |> asVector(4) over an [8][3] matrix
        return as_vector(
            4, map_(reduce_(fun(lambda a, b: a + b), lit(0.0)), rows)
        )

    def test_rewrites_with_transposes(self):
        out = apply_ok(vectorize_before_map_reduce, self._prog())
        from repro.rise.expr import Transpose, VectorFromScalar
        from repro.rise.traverse import subterms

        kinds = [type(n).__name__ for n in subterms(out)]
        assert kinds.count("Transpose") >= 2
        assert "VectorFromScalar" in kinds

    def test_semantics(self):
        data = np.arange(24.0).reshape(8, 3)
        assert_semantics_preserved(
            vectorize_before_map_reduce,
            self._prog(),
            {"rows": data},
            {"rows": array(8, array(3, f32))},
        )

    def test_composed_strategy_listing7(self):
        """The full vectorize strategy of listing 7 on the paper's shape."""
        strategy = apply_once(start_vectorization(4)) >> normalize(
            vectorize_before_map | vectorize_before_map_reduce
        )
        prog = map_(reduce_(fun(lambda a, b: a + b), lit(0.0)), rows)
        data = np.arange(24.0).reshape(8, 3)
        assert_semantics_preserved(
            strategy, prog, {"rows": data}, {"rows": array(8, array(3, f32))}
        )
