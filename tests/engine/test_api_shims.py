"""The pre-engine entry points are retired: after two releases as
``DeprecationWarning`` shims they now raise with a migration hint that
names the ``repro.compile`` front door."""

import pytest

from repro.codegen import compile_program
from repro.pipelines import harris, harris_input_type
from repro.rise import Identifier
from repro.strategies import cbuf_version

SENV = {"rgb": harris_input_type()}
SIZES = {"n": 12, "m": 16}


@pytest.fixture(scope="module")
def prog():
    return compile_program(
        cbuf_version(SENV, chunk=4).apply(harris(Identifier("rgb"))), SENV, "shim"
    )


class TestRetiredRunners:
    def test_run_program_raises_with_hint(self, prog):
        from repro.exec import run_program

        with pytest.raises(RuntimeError, match=r"run_program was removed"):
            run_program(prog, SIZES, {})

    def test_run_program_c_raises_with_hint(self, prog):
        from repro.exec.cbridge import run_program_c

        with pytest.raises(RuntimeError, match=r"run_program_c was removed"):
            run_program_c(prog, SIZES, {})

    def test_hints_point_at_the_front_door(self, prog):
        from repro.exec import run_program

        with pytest.raises(RuntimeError, match=r"repro\.compile"):
            run_program(prog, SIZES, {})


class TestRetiredBaselineCompilers:
    @pytest.mark.parametrize(
        "module, shim_name",
        [
            ("repro.halide", "compile_harris_halide"),
            ("repro.opencv", "compile_harris_opencv"),
            ("repro.lift", "compile_harris_lift"),
        ],
    )
    def test_shim_raises_with_hint(self, module, shim_name):
        import importlib

        shim = getattr(importlib.import_module(module), shim_name)
        with pytest.raises(RuntimeError, match=rf"{shim_name} was removed"):
            shim()

    def test_builders_replace_the_shims(self):
        """The migration target named in every hint actually works."""
        import repro

        pipeline = repro.compile(
            "harris-halide", options={"vec": 4, "split": 4}, sizes=SIZES
        )
        assert pipeline.program.functions
