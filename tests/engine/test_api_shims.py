"""The deprecated entry points survive as shims over ``repro.compile``:
they must warn, and they must return exactly what the new API returns."""

import numpy as np
import pytest

import repro
from repro.codegen import compile_program
from repro.exec import execute_program, run_program
from repro.exec.cbridge import run_program_c
from repro.image import synthetic_rgb
from repro.pipelines import harris, harris_input_type
from repro.rise import Identifier
from repro.strategies import cbuf_version

SENV = {"rgb": harris_input_type()}
SIZES = {"n": 12, "m": 16}


@pytest.fixture(scope="module")
def prog():
    return compile_program(
        cbuf_version(SENV, chunk=4).apply(harris(Identifier("rgb"))), SENV, "shim"
    )


@pytest.fixture(scope="module")
def img():
    return synthetic_rgb(16, 20, seed=9)


class TestRunProgramShims:
    def test_run_program_warns_and_matches(self, prog, img):
        expected = execute_program(prog, SIZES, {"rgb": img})
        with pytest.warns(DeprecationWarning, match="run_program is deprecated"):
            out = run_program(prog, SIZES, {"rgb": img})
        np.testing.assert_array_equal(out, expected)

    @pytest.mark.requires_gcc
    def test_run_program_c_warns_and_matches(self, prog, img):
        pipeline = repro.compile(prog, backend="c", sizes=SIZES)
        expected = pipeline.run(rgb=img)
        with pytest.warns(DeprecationWarning, match="run_program_c is deprecated"):
            out = run_program_c(prog, SIZES, {"rgb": img})
        np.testing.assert_array_equal(out, expected)


class TestBaselineCompileShims:
    @pytest.mark.parametrize(
        "module, shim_name, builder_name, options",
        [
            ("repro.halide", "compile_harris_halide", "harris-halide",
             {"vec": 4, "split": 4}),
            ("repro.opencv", "compile_harris_opencv", "harris-opencv",
             {"vec": 4}),
            ("repro.lift", "compile_harris_lift", "harris-lift",
             {"vec": 4}),
        ],
    )
    def test_shim_warns_and_matches_engine(
        self, module, shim_name, builder_name, options, img
    ):
        import importlib

        shim = getattr(importlib.import_module(module), shim_name)
        with pytest.warns(DeprecationWarning, match=shim_name):
            prog = shim(**options)
        pipeline = repro.compile(builder_name, options=options, sizes=SIZES)
        # the engine cached the shim's compile, so both are one artifact
        assert repr(prog) == repr(pipeline.program)
        if builder_name == "harris-opencv":
            inputs = {"rgb_hwc": np.ascontiguousarray(img.transpose(1, 2, 0))}
        else:
            inputs = {"rgb": img}
        np.testing.assert_array_equal(
            execute_program(prog, SIZES, inputs), pipeline.run(**inputs)
        )
